/**
 * @file
 * Offline book-length summarisation (the paper's motivating workload,
 * §1): a batch of 128K-token documents is summarised with OPT-175B.
 *
 * The example does two things:
 *  1. sweeps context lengths and reports end-to-end throughput, energy
 *     per request, and the interconnect-traffic savings of HILOS versus
 *     the FLEX(SSD) baseline;
 *  2. runs the *functional* pipeline on a miniature document batch —
 *     actual FP16 KV data through the delayed-writeback buffer and the
 *     attention accelerator — and verifies the outputs against the FP32
 *     FlashAttention reference, demonstrating the lossless claim end to
 *     end.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "accel/attention_kernel.h"
#include "common/random.h"
#include "common/table.h"
#include "core/hilos.h"
#include "llm/attention_ref.h"
#include "llm/kv_cache.h"
#include "llm/tensor.h"
#include "runtime/writeback.h"

using namespace hilos;

namespace {

void
sweepThroughput()
{
    SystemConfig sys = defaultSystem();
    HilosOptions opts;
    opts.num_devices = 16;

    printBanner(std::cout,
                "Batch summarisation of long documents (OPT-175B, "
                "bs 16, 512 output tokens)");
    TextTable table({"document len", "FLEX(SSD) tok/s", "HILOS tok/s",
                     "speedup", "energy/request", "HILOS energy/req"});
    for (std::uint64_t s : {16384ull, 32768ull, 65536ull, 131072ull}) {
        RunConfig run;
        run.model = opt175b();
        run.batch = 16;
        run.context_len = s;
        run.output_len = 512;
        const RunResult base =
            makeEngine(EngineKind::FlexSsd, sys)->run(run);
        const RunResult hil =
            makeEngine(EngineKind::Hilos, sys, opts)->run(run);
        table.row()
            .cell(std::to_string(s / 1024) + "K")
            .num(base.endToEndThroughput(run.output_len), 3)
            .num(hil.endToEndThroughput(run.output_len), 3)
            .ratio(hil.endToEndThroughput(run.output_len) /
                   base.endToEndThroughput(run.output_len))
            .num(base.energy.total() / 16.0 / 1e3, 1)
            .num(hil.energy.total() / 16.0 / 1e3, 1);
    }
    table.print(std::cout);
}

void
functionalMiniature()
{
    printBanner(std::cout,
                "Functional miniature: 2 documents x 2 KV heads through "
                "the accelerator");
    const std::size_t batches = 2, heads = 2, d = 64;
    const std::size_t prompt = 512, steps = 24, spill = 16;
    Rng rng(2026);

    KvCache cache(batches, heads, d);
    const SlicePartition part(batches, heads, /*devices=*/4);
    WritebackBuffer wb(batches * heads, d, spill);
    const AttentionKernel kernel{AttentionKernelConfig{}};
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    double worst_err = 0.0;
    for (std::uint32_t b = 0; b < batches; b++) {
        for (std::uint32_t h = 0; h < heads; h++) {
            const SliceId slice{b, h};
            const std::size_t wslice = b * heads + h;
            const Matrix all_k =
                Matrix::random(prompt + steps, d, rng, 0.5f);
            const Matrix all_v =
                Matrix::random(prompt + steps, d, rng, 0.5f);
            const Matrix q = Matrix::random(1, d, rng, 0.5f);

            for (std::size_t i = 0; i < prompt; i++) {
                std::vector<Half> kr(d), vr(d);
                for (std::size_t c = 0; c < d; c++) {
                    kr[c] = Half(all_k.at(i, c));
                    vr[c] = Half(all_v.at(i, c));
                }
                cache.append(slice, kr.data(), vr.data());
            }

            std::vector<float> qf(d);
            for (std::size_t c = 0; c < d; c++)
                qf[c] = Half(q.at(0, c)).toFloat();
            const std::vector<Half> qh = toHalf(q);

            AttentionResult res;
            for (std::size_t step = 0; step < steps; step++) {
                const std::size_t tok = prompt + step;
                std::vector<Half> kr(d), vr(d);
                for (std::size_t c = 0; c < d; c++) {
                    kr[c] = Half(all_k.at(tok, c));
                    vr[c] = Half(all_v.at(tok, c));
                }
                wb.append(wslice, kr.data(), vr.data());
                // Spill commits buffered rows to the stored cache.
                const std::size_t covered =
                    cache.length(slice) + wb.buffered(wslice);
                for (std::size_t i = covered; i <= tok; i++) {
                    std::vector<Half> kk(d), vv(d);
                    for (std::size_t c = 0; c < d; c++) {
                        kk[c] = Half(all_k.at(i, c));
                        vv[c] = Half(all_v.at(i, c));
                    }
                    cache.append(slice, kk.data(), vv.data());
                }

                AttentionRequest req;
                req.queries = viewOf(qh, 1, d);
                req.keys = cache.keys(slice);
                req.values = cache.values(slice);
                req.valid_len = cache.length(slice);
                req.scale = scale;
                req.partial_scores =
                    wb.partialScores(wslice, qf, 1, scale);
                req.buffered_values = wb.bufferedValues(wslice);
                res = kernel.run(req);
            }

            // Verify against FlashAttention over the full context.
            Matrix kq(prompt + steps, d), vq(prompt + steps, d);
            for (std::size_t i = 0; i < prompt + steps; i++)
                for (std::size_t c = 0; c < d; c++) {
                    kq.at(i, c) = Half(all_k.at(i, c)).toFloat();
                    vq.at(i, c) = Half(all_v.at(i, c)).toFloat();
                }
            Matrix qq(1, d);
            for (std::size_t c = 0; c < d; c++)
                qq.at(0, c) = qf[c];
            const Matrix ref = flashAttention(qq, kq, vq, scale);
            for (std::size_t c = 0; c < d; c++) {
                worst_err = std::max(
                    worst_err,
                    static_cast<double>(
                        std::fabs(res.outputs[c] - ref.at(0, c))));
            }
            std::printf(
                "  doc %u head %u -> device %zu, context %zu tokens, "
                "buffered %zu\n",
                b, h, part.deviceOf(slice), cache.length(slice),
                wb.buffered(wslice));
        }
    }
    std::printf("max |kernel - FlashAttention| over all outputs: %.2e "
                "(lossless within FP16 storage precision)\n",
                worst_err);
}

}  // namespace

int
main()
{
    sweepThroughput();
    functionalMiniature();
    return 0;
}
