/**
 * @file
 * hilos_fuzz — seeded differential fuzzing of the HILOS simulator.
 *
 * Drives the two differential oracles from tests/support over randomly
 * sampled valid configurations:
 *
 *   attention     accelerator AttentionKernel vs FP32 reference across
 *                 the GQA x sliding-window x sink x padding x buffered
 *                 space
 *   engine        analytic HilosEngine vs slice-level event simulation
 *                 (agreement band + structural invariants +
 *                 monotonicity)
 *   flexgen-plan  FlexGen StepPlan evaluated analytically vs replayed
 *                 over contended resources (per-op structural invariant
 *                 + agreement band)
 *   fleet         FleetEngine determinism + graceful-degradation
 *                 invariants + analytic-vs-event-sim fleet step band
 *   serving       continuous-batching ServingSimulator determinism +
 *                 scheduling invariants + all-arrivals-at-zero makespan
 *                 band against OfflineBatcher
 *
 * Every failure prints a one-line `seed=... cfg=...` repro; re-running
 * with `--replay <seed>` re-executes exactly that case:
 *
 *   hilos_fuzz --oracle all --iters 200
 *   hilos_fuzz --oracle attention --replay 1234567890
 *
 * `--perturb` deliberately breaks one side (drop-padding-mask on the
 * kernel, skew-analytic on the engine) to demonstrate that the oracles
 * detect real defects; see tests/test_fuzz_oracles.cc for the
 * automated version of that check.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "support/fuzzer.h"
#include "support/oracles.h"

using namespace hilos;
using namespace hilos::test;

namespace {

struct OracleSpec {
    std::string name;
    OracleOutcome (*run)(std::uint64_t, Perturbation);
};

const std::vector<OracleSpec> kOracles = {
    {"attention", &runAttentionOracle},
    {"engine", &runEngineOracle},
    {"flexgen-plan", &runFlexGenPlanOracle},
    {"fleet", &runFleetOracle},
    {"serving", &runServingOracle},
};

Perturbation
perturbByName(const std::string &name)
{
    if (name == "none")
        return Perturbation::None;
    if (name == "drop-padding-mask")
        return Perturbation::DropPaddingMask;
    if (name == "skew-analytic")
        return Perturbation::SkewAnalytic;
    std::cerr << "error: unknown --perturb '" << name
              << "' (none, drop-padding-mask, skew-analytic)\n";
    std::exit(2);
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("hilos_fuzz");
    args.addOption("oracle", "all",
                   "which oracle to run: attention, engine, "
                   "flexgen-plan, fleet, serving, all")
        .addOption("iters", "200", "fuzz iterations per oracle")
        .addOption("seed", "4994579712861519", "base seed for the run")
        .addOption("replay", "",
                   "re-execute one failure from its repro seed "
                   "(requires --oracle attention|engine)")
        .addOption("perturb", "none",
                   "deliberately break one side: none, "
                   "drop-padding-mask (attention), skew-analytic "
                   "(engine)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }

    const std::string which = args.get("oracle");
    std::vector<OracleSpec> oracles;
    for (const OracleSpec &o : kOracles)
        if (which == "all" || which == o.name)
            oracles.push_back(o);
    if (oracles.empty()) {
        std::cerr << "error: unknown --oracle '" << which
                  << "' (attention, engine, flexgen-plan, fleet, "
                     "serving, all)\n";
        return 2;
    }
    const Perturbation perturb = perturbByName(args.get("perturb"));

    const std::string replay = args.get("replay");
    if (!replay.empty()) {
        if (oracles.size() != 1) {
            std::cerr << "error: --replay needs a single --oracle "
                         "(the repro line names it)\n";
            return 2;
        }
        const std::uint64_t seed = std::stoull(replay);
        const OracleOutcome out = oracles[0].run(seed, perturb);
        std::cout << "replay oracle=" << oracles[0].name
                  << " seed=" << seed << " cfg={" << out.cfg << "}\n";
        if (out.skipped) {
            std::cout << "SKIP (case infeasible on this system)\n";
            return 0;
        }
        std::cout << (out.ok ? "PASS" : "FAIL: " + out.detail) << "\n";
        return out.ok ? 0 : 1;
    }

    const std::uint64_t base =
        static_cast<std::uint64_t>(args.getInt("seed"));
    const std::uint64_t iters =
        static_cast<std::uint64_t>(args.getInt("iters"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    int total_failures = 0;
    for (const OracleSpec &o : oracles) {
        std::uint64_t ran = 0, skipped = 0, failures = 0;
        for (std::uint64_t i = 0; i < iters; i++) {
            const std::uint64_t seed = fuzzSeedForIteration(base, i);
            const OracleOutcome out = o.run(seed, perturb);
            if (out.skipped) {
                skipped++;
                continue;
            }
            ran++;
            if (!out.ok) {
                failures++;
                std::cout << "FAIL oracle=" << o.name << " "
                          << out.reproLine(o.name) << "\n    "
                          << out.detail << "\n";
            }
        }
        std::cout << "oracle " << o.name << ": " << ran << " run, "
                  << skipped << " skipped (infeasible), " << failures
                  << " failed\n";
        total_failures += static_cast<int>(failures);
    }
    return total_failures ? 1 : 0;
}
