/**
 * @file
 * Quickstart: run OPT-66B offline batched inference (batch 16, 32K
 * context, 64 output tokens) on HILOS with 8 SmartSSDs and compare
 * against the FLEX(SSD) baseline.
 */

#include <cstdio>

#include "core/hilos.h"

int
main()
{
    using namespace hilos;

    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt66b();
    run.batch = 16;
    run.context_len = 32768;
    run.output_len = 64;

    HilosOptions opts;
    opts.num_devices = 8;

    auto hilos_engine = makeEngine(EngineKind::Hilos, sys, opts);
    auto baseline = makeEngine(EngineKind::FlexSsd, sys);

    const RunResult ours = hilos_engine->run(run);
    const RunResult base = baseline->run(run);

    std::printf("model: %s, batch %llu, context %llu, output %llu\n",
                run.model.name.c_str(),
                (unsigned long long)run.batch,
                (unsigned long long)run.context_len,
                (unsigned long long)run.output_len);
    std::printf("%-24s %12s %14s %12s\n", "engine", "tokens/s",
                "step time (s)", "energy (kJ)");
    std::printf("%-24s %12.3f %14.3f %12.1f\n", base.feasible
                    ? baseline->name().c_str() : "FLEX(SSD) [infeasible]",
                base.decodeThroughput(), base.decode_step_time,
                base.energy.total() / 1e3);
    std::printf("%-24s %12.3f %14.3f %12.1f\n",
                hilos_engine->name().c_str(), ours.decodeThroughput(),
                ours.decode_step_time, ours.energy.total() / 1e3);
    std::printf("speedup over FLEX(SSD): %.2fx\n",
                normalizedThroughput(ours, base));
    std::printf("energy reduction: %.0f%%\n",
                100.0 * (1.0 - ours.energy.total() / base.energy.total()));
    return 0;
}
