/**
 * @file
 * Capacity planner: given a target model and an Azure-style request
 * mix, choose the SmartSSD count that maximises tokens/s/$ and report
 * the fleet's expected lifetime (serviceable requests against the PBW
 * budget) — the deployment question §6.6 answers.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"
#include "llm/workload.h"
#include "runtime/batcher.h"

using namespace hilos;

namespace {

double
requestNandBytes(const ModelConfig &m, const Request &req, double alpha,
                 unsigned spill_interval)
{
    const double kv_tok =
        static_cast<double>(m.kvBytesPerTokenPerLayer());
    const double layers = static_cast<double>(m.layers);
    const double prefill_scale = 1.0 - alpha / 2.0;
    const double chunk = static_cast<double>(spill_interval) *
                         static_cast<double>(2 * m.headDim() *
                                             m.dtype_bytes);
    const double wa = std::max(1.0, 4096.0 / chunk) *
                      (1.0 + 1.9 / static_cast<double>(spill_interval));
    return static_cast<double>(req.input_tokens) * kv_tok * layers *
               prefill_scale +
           static_cast<double>(req.output_tokens) * kv_tok * layers *
               wa * prefill_scale;
}

}  // namespace

int
main()
{
    SystemConfig sys = defaultSystem();
    const ModelConfig model = opt175b();
    const Request req = makeRequest(RequestClass::Long);

    printBanner(std::cout,
                "Capacity planning: OPT-175B, Long requests "
                "(I:8K/O:350), bs 16");

    TextTable table({"SmartSSDs", "tokens/s", "price $", "tok/s/$ rank",
                     "Mreq lifetime", "years @ 1 req/min"});
    RunConfig run;
    run.model = model;
    run.batch = 16;
    run.context_len = req.input_tokens;
    run.output_len = req.output_tokens;

    double best_ce = 0.0;
    unsigned best_n = 0;
    std::vector<std::tuple<unsigned, double, double, double>> rows;
    for (unsigned n : {4u, 8u, 12u, 16u}) {
        HilosOptions opts;
        opts.num_devices = n;
        const HilosEngine engine(sys, opts);
        const RunResult r = engine.run(run);
        const double price =
            systemPriceUsd(sys, StorageKind::SmartSsds, n);
        const double ce =
            costEffectiveness(r.decodeThroughput(), price);
        if (ce > best_ce) {
            best_ce = ce;
            best_n = n;
        }
        EnduranceInputs ein;
        ein.devices = n;
        ein.bytes_per_request =
            requestNandBytes(model, req, engine.selectedAlpha(run),
                             opts.spill_interval);
        const double mreq = serviceableRequests(ein) / 1e6;
        rows.emplace_back(n, r.decodeThroughput(), price, mreq);
    }
    for (const auto &[n, tput, price, mreq] : rows) {
        // One request per minute: minutes -> years.
        const double years = mreq * 1e6 / (60.0 * 24.0 * 365.0);
        table.row()
            .cell(std::to_string(n))
            .num(tput, 3)
            .num(price, 0)
            .cell(n == best_n ? "BEST" : "")
            .num(mreq, 2)
            .num(years, 1);
    }
    table.print(std::cout);
    std::cout << "\nRecommended fleet: " << best_n
              << " SmartSSDs (max tokens/s/$ for this mix).\n";

    // --- Mixed Azure-style queue drained through the batcher ---
    printBanner(std::cout,
                "Draining a mixed Azure-style queue (64 Small + 32 "
                "Medium + 16 Long, OPT-66B)");
    std::vector<Request> queue;
    for (const auto &[cls, count] :
         std::vector<std::pair<RequestClass, std::size_t>>{
             {RequestClass::Small, 64},
             {RequestClass::Medium, 32},
             {RequestClass::Long, 16}}) {
        const auto batch = makeBatch(cls, count);
        queue.insert(queue.end(), batch.begin(), batch.end());
    }
    const OfflineBatcher batcher(16, 1024);
    TextTable mix({"system", "makespan", "requests/hour",
                   "gen tokens/s", "padding overhead"});
    HilosOptions hopts;
    hopts.num_devices = best_n;
    const HilosEngine hil(sys, hopts);
    const FlexGenEngine flex(sys, FlexTier::BaselineSsds);
    for (const auto &[name, result] :
         {std::pair<std::string, BatchPlanResult>{
              "FLEX(SSD)", batcher.serve(flex, opt66b(), queue)},
          {"HILOS(" + std::to_string(best_n) + ")",
           batcher.serve(hil, opt66b(), queue)}}) {
        mix.row()
            .cell(name)
            .cell(formatSeconds(result.makespan))
            .num(result.requests_per_hour, 1)
            .num(result.tokens_per_second, 3)
            .num(100.0 * result.padding_overhead, 1);
    }
    mix.print(std::cout);
    return 0;
}
