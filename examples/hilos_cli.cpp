/**
 * @file
 * hilos_cli — run any engine/model/workload combination from the
 * command line and print the full report: throughput, per-stage
 * breakdown, interconnect traffic, energy, and cost-effectiveness.
 *
 *   hilos_cli --engine hilos --model OPT-66B --context 32768 \
 *             --batch 16 --devices 8
 *   hilos_cli --compare --model OPT-175B --context 131072
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/cli.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/event_sim.h"
#include "runtime/plan_analyzer.h"
#include "runtime/report.h"

using namespace hilos;

namespace {

EngineKind
engineByName(const std::string &name)
{
    if (name == "hilos")
        return EngineKind::Hilos;
    if (name == "flex-ssd")
        return EngineKind::FlexSsd;
    if (name == "flex-dram")
        return EngineKind::FlexDram;
    if (name == "flex-16p3")
        return EngineKind::FlexSmartSsdRaw;
    if (name == "ds-uvm")
        return EngineKind::DeepSpeedUvm;
    if (name == "vllm")
        return EngineKind::VllmMultiGpu;
    HILOS_FATAL("unknown engine '", name,
                "' (hilos, flex-ssd, flex-dram, flex-16p3, ds-uvm, vllm)");
}

void
printReport(const std::string &engine_name, const RunConfig &run,
            const RunResult &r, double price)
{
    printBanner(std::cout, engine_name);
    if (!r.feasible) {
        std::cout << "infeasible: " << r.note << "\n";
        return;
    }
    if (!r.note.empty())
        std::cout << "note: " << r.note << "\n";
    std::printf("effective batch      : %llu\n",
                (unsigned long long)r.effective_batch);
    std::printf("decode step          : %s\n",
                formatSeconds(r.decode_step_time).c_str());
    std::printf("decode throughput    : %.4f tokens/s\n",
                r.decodeThroughput());
    std::printf("prefill              : %s\n",
                formatSeconds(r.prefill_time).c_str());
    std::printf("end-to-end throughput: %.4f tokens/s\n",
                r.endToEndThroughput(run.output_len));
    std::printf("energy               : %.1f kJ (%.0f J/token)\n",
                r.energy.total() / 1e3,
                r.energy.total() /
                    static_cast<double>(r.effective_batch *
                                        run.output_len));
    std::printf("cost-effectiveness   : %.3e tokens/s/$ ($%.0f)\n",
                costEffectiveness(r.decodeThroughput(), price), price);

    TextTable bt({"stage (per decode step)", "seconds", "%"});
    const double total = r.breakdown.sum();
    for (const auto &[name, t] : r.breakdown.stages()) {
        if (t <= 0.0)
            continue;
        bt.row().cell(name).num(t, 3).num(100.0 * t / total, 1);
    }
    bt.print(std::cout);

    std::printf("host interconnect    : %s read, %s written per step\n",
                formatBytes(r.traffic.host_read_bytes).c_str(),
                formatBytes(r.traffic.host_write_bytes).c_str());
    std::printf("NSP-internal traffic : %s per step\n",
                formatBytes(r.traffic.internal_bytes).c_str());

    // Only printed when a fault plan actually perturbed the run, so
    // fault-free output is unchanged.
    if (r.faults.any()) {
        printBanner(std::cout, "fault resilience");
        std::printf("availability         : %.4f\n",
                    r.faults.availability);
        std::printf("slowdown             : %.3fx\n", r.faults.slowdown);
        std::printf("devices failed       : %u (surviving %u)\n",
                    r.faults.devices_failed, r.faults.devices_surviving);
        std::printf("degraded decode step : %s\n",
                    formatSeconds(r.faults.degraded_step_time).c_str());
        std::printf("retry recovery time  : %s\n",
                    formatSeconds(r.faults.retry_time).c_str());
        std::printf("shard rebuild time   : %s\n",
                    formatSeconds(r.faults.rebuild_time).c_str());
        std::printf("NAND read errors     : %llu (%llu retry steps)\n",
                    (unsigned long long)r.faults.nand_read_errors,
                    (unsigned long long)r.faults.nand_retry_steps);
        std::printf("NVMe timeouts        : %llu (%llu retries)\n",
                    (unsigned long long)r.faults.nvme_timeouts,
                    (unsigned long long)r.faults.nvme_retries);
        std::printf("re-dispatched slices : %llu\n",
                    (unsigned long long)r.faults.redispatched_slices);
        if (r.faults.requests_degraded > 0 || r.faults.requests_failed > 0)
            std::printf("requests             : %llu degraded, %llu "
                        "failed\n",
                        (unsigned long long)r.faults.requests_degraded,
                        (unsigned long long)r.faults.requests_failed);
    }

    // Cluster accounting: only fleet runs carry a FleetSummary.
    if (r.fleet.any()) {
        printBanner(std::cout, "fleet");
        std::printf("fleet shape          : %u hosts x %u SmartSSDs "
                    "(%s)\n",
                    r.fleet.hosts, r.fleet.devices_per_host,
                    r.fleet.policy.c_str());
        std::printf("availability         : %.4f\n", r.fleet.availability);
        std::printf("slowdown             : %.3fx\n", r.fleet.slowdown);
        std::printf("hosts failed         : %u (%u stalls recovered, "
                    "%u spares activated)\n",
                    r.fleet.hosts_failed, r.fleet.host_stalls,
                    r.fleet.spares_activated);
        std::printf("shard rebuild        : %s in %s\n",
                    formatBytes(r.fleet.rebuild_bytes).c_str(),
                    formatSeconds(r.fleet.rebuild_time).c_str());
        std::printf("stall time           : %s\n",
                    formatSeconds(r.fleet.stall_time).c_str());
        std::printf("degraded fleet step  : %s\n",
                    formatSeconds(r.fleet.degraded_step_time).c_str());
        for (std::size_t i = 0; i < r.fleet.epochs.size(); ++i) {
            const FleetEpoch &e = r.fleet.epochs[i];
            std::printf("epoch %zu: t=%s serving=%u stalled=%u "
                        "failed=%u batch=%llu step=%s tokens=%llu\n",
                        i, formatSeconds(e.start).c_str(),
                        e.hosts_serving, e.hosts_stalled,
                        e.hosts_failed,
                        (unsigned long long)e.placed_batch,
                        formatSeconds(e.step_time).c_str(),
                        (unsigned long long)e.tokens);
        }
    }
}

void
printServingReport(const std::string &engine_name,
                   const ServingConfig &cfg, const ServingResult &r)
{
    printBanner(std::cout, engine_name + " serving");
    if (!r.feasible) {
        std::cout << "infeasible: " << r.note << "\n";
        return;
    }
    std::printf("policy               : %s\n",
                servingPolicyName(cfg.policy).c_str());
    std::printf("requests             : %llu (%llu met SLO)\n",
                (unsigned long long)r.requests,
                (unsigned long long)r.slo_met);
    std::printf("makespan             : %s\n",
                formatSeconds(r.makespan).c_str());
    std::printf("goodput              : %.4f req/s (attainment %.4f)\n",
                r.goodput_rps, r.slo_attainment);
    std::printf("throughput           : %.4f tokens/s\n",
                r.tokens_per_second);
    TextTable lt({"latency", "p50", "p99", "p999"});
    lt.row()
        .cell("TTFT")
        .cell(formatSeconds(r.ttft_p50))
        .cell(formatSeconds(r.ttft_p99))
        .cell(formatSeconds(r.ttft_p999));
    lt.row()
        .cell("end-to-end")
        .cell(formatSeconds(r.latency_p50))
        .cell(formatSeconds(r.latency_p99))
        .cell(formatSeconds(r.latency_p999));
    lt.print(std::cout);
    std::printf("mean queue wait      : %s\n",
                formatSeconds(r.mean_queue_wait).c_str());
    std::printf("queue depth          : %.3f mean, %llu peak\n",
                r.mean_queue_depth,
                (unsigned long long)r.peak_queue_depth);
    std::printf("in-flight batch      : %.3f mean, %llu peak\n",
                r.mean_in_flight, (unsigned long long)r.peak_in_flight);
    std::printf("decode steps         : %llu (%llu prefill batches)\n",
                (unsigned long long)r.decode_steps,
                (unsigned long long)r.prefill_batches);
    std::printf("prefill chunking     : %llu chunk(s)/group, %llu run, "
                "%llu decode preemptions\n",
                (unsigned long long)cfg.prefill_chunks,
                (unsigned long long)r.prefill_chunks_run,
                (unsigned long long)r.prefill_preemptions);
    std::printf("step-cost cache      : %llu hits, %llu misses\n",
                (unsigned long long)r.cost_cache_hits,
                (unsigned long long)r.cost_cache_misses);
}

double
priceFor(const std::string &engine, const SystemConfig &sys,
         unsigned devices)
{
    if (engine == "hilos")
        return systemPriceUsd(sys, StorageKind::SmartSsds, devices);
    if (engine == "flex-dram" || engine == "ds-uvm")
        return systemPriceUsd(sys, StorageKind::None, 0);
    if (engine == "flex-16p3")
        return systemPriceUsd(sys, StorageKind::SmartSsds, 16);
    if (engine == "vllm")
        return 2 * 28000.0;
    return systemPriceUsd(sys, StorageKind::BaselineSsds,
                          sys.num_baseline_ssds);
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("hilos_cli");
    args.addOption("engine", "hilos",
                   "engine: hilos, flex-ssd, flex-dram, flex-16p3, "
                   "ds-uvm, vllm")
        .addOption("model", "OPT-66B",
                   "Table 2 model name (e.g. OPT-175B, Qwen2.5-32B)")
        .addOption("batch", "16", "batch size")
        .addOption("context", "32768", "prompt length in tokens")
        .addOption("output", "64", "generated tokens")
        .addOption("devices", "8", "SmartSSD count for HILOS (1..16)")
        .addOption("hosts", "1",
                   "scale HILOS out to a fleet of this many hosts "
                   "(>1 selects the fleet engine)")
        .addOption("policy", "spread",
                   "fleet placement policy: spread, pack, fault-aware")
        .addOption("spares", "1",
                   "hosts the fault-aware policy holds in reserve")
        .addOption("alpha", "-1",
                   "X-cache ratio override (-1 = scheduler-selected)")
        .addOption("spill", "16", "delayed-writeback spill interval c")
        .addOption("window", "0",
                   "sliding attention window in tokens (0 = full)")
        .addOption("gpu", "a100", "gpu: a100 or h100")
        .addFlag("no-xcache", "disable cooperative X-cache")
        .addFlag("no-writeback", "disable delayed KV writeback")
        .addFlag("cxl", "model a CXL.mem-coherent accelerator (7.3)")
        .addFlag("compare", "run every engine on the workload")
        .addOption("fault-plan", "",
                   "inject faults, e.g. "
                   "'seed=7;nand-err=1e-3;fail@2.5=3;uplink@1=0.8' "
                   "(HILOS only; see sim/fault.h)")
        .addOption("report", "",
                   "write a markdown evaluation report (headline grid) "
                   "to this file")
        .addOption("jobs", "1",
                   "worker threads for the --report grid sweep "
                   "(0 = all cores; output is identical at any value)")
        .addOption("trace", "",
                   "write a chrome://tracing JSON of one simulated "
                   "decode step (HILOS only) to this file")
        .addFlag("serve",
                 "online serving simulation: continuous batching over "
                 "an arrival stream (uses --batch as the batch cap; "
                 "--policy selects fcfs, sjf, or slo)")
        .addOption("arrival-rate", "1",
                   "serving arrival rate in requests/s (Poisson)")
        .addOption("requests", "64",
                   "request count of the generated Poisson stream")
        .addOption("arrival-trace", "",
                   "replay arrivals from a trace file "
                   "(`<arrival_seconds> <input> <output>` per line) "
                   "instead of generating a Poisson stream")
        .addOption("slo-ms", "0",
                   "end-to-end latency SLO in milliseconds (0 = none)")
        .addOption("prefill-chunks", "1",
                   "split each prefill into this many chunks (offline "
                   "run and --serve; later chunks yield to the decode "
                   "batch)")
        .addFlag("analyze-plan",
                 "run the semantic plan analyzer over every engine's "
                 "decode and prefill plans for this workload and print "
                 "the findings/slack report (exits 1 on unwaivered "
                 "error findings)")
        .addOption("plan-waivers", "",
                   "waiver file for --analyze-plan (one 'PAnnn "
                   "<op-label|*>' per line; see tests/plan_waivers.txt)");

    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cout << args.usage();
        if (!args.ok())
            std::cerr << "error: " << args.error() << "\n";
        return args.ok() ? 0 : 2;
    }

    SystemConfig sys =
        args.get("gpu") == "h100" ? h100System() : defaultSystem();
    RunConfig run;
    run.model = modelByName(args.get("model"));
    run.batch = static_cast<std::uint64_t>(args.getInt("batch"));
    run.context_len = static_cast<std::uint64_t>(args.getInt("context"));
    run.output_len = static_cast<std::uint64_t>(args.getInt("output"));
    run.prefill_chunks =
        static_cast<std::uint64_t>(args.getInt("prefill-chunks"));
    if (args.ok() && run.prefill_chunks < 1) {
        std::cerr << "error: --prefill-chunks needs at least 1\n";
        return 2;
    }

    HilosOptions opts;
    opts.num_devices = static_cast<unsigned>(args.getInt("devices"));
    opts.xcache = !args.getFlag("no-xcache");
    opts.delayed_writeback = !args.getFlag("no-writeback");
    opts.alpha_override = args.getDouble("alpha");
    opts.spill_interval =
        static_cast<unsigned>(args.getInt("spill"));
    opts.cxl_mode = args.getFlag("cxl");
    opts.attention_window =
        static_cast<std::uint64_t>(args.getInt("window"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }
    const std::string fault_spec = args.get("fault-plan");
    if (!fault_spec.empty()) {
        try {
            opts.fault_plan = parseFaultPlan(fault_spec);
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
    }

    if (args.getFlag("analyze-plan")) {
        std::vector<PlanWaiver> waivers;
        const std::string waiver_path = args.get("plan-waivers");
        if (!waiver_path.empty()) {
            std::ifstream in(waiver_path);
            if (!in) {
                std::cerr << "error: cannot read waiver file "
                          << waiver_path << "\n";
                return 2;
            }
            std::stringstream buf;
            buf << in.rdbuf();
            std::vector<std::string> problems;
            waivers = parsePlanWaivers(buf.str(), &problems);
            for (const std::string &p : problems)
                std::cerr << "warning: " << waiver_path << ": " << p
                          << "\n";
        }
        static const struct {
            const char *name;
            EngineKind kind;
        } kAllEngines[] = {
            {"flex-dram", EngineKind::FlexDram},
            {"flex-ssd", EngineKind::FlexSsd},
            {"flex-16p3", EngineKind::FlexSmartSsdRaw},
            {"ds-uvm", EngineKind::DeepSpeedUvm},
            {"vllm", EngineKind::VllmMultiGpu},
            {"hilos", EngineKind::Hilos},
        };
        bool failed = false;
        const auto report = [&](const std::string &header,
                                const StepPlan &plan) {
            std::cout << "==== " << header << " ====\n";
            PlanAnalysis analysis = analyzePlan(plan);
            applyPlanWaivers(analysis, waivers);
            std::cout << serializeAnalysis(plan, analysis);
            if (hasUnwaivedErrors(analysis))
                failed = true;
        };
        for (const auto &e : kAllEngines) {
            report(std::string(e.name) + " decode",
                   decodeStepPlanFor(e.kind, sys, run, opts));
            report(std::string(e.name) + " prefill",
                   prefillStepPlanFor(e.kind, sys, run, 0,
                                      run.prefill_chunks, opts));
        }
        return failed ? 1 : 0;
    }

    const unsigned hosts = static_cast<unsigned>(args.getInt("hosts"));
    const std::string policy_name = args.get("policy");
    const unsigned spares = static_cast<unsigned>(args.getInt("spares"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    const std::string report_path = args.get("report");
    if (!report_path.empty()) {
        ReportConfig rc;
        rc.fault_plan = opts.fault_plan;
        rc.hosts = hosts;
        rc.fleet_policy = parsePlacementPolicy(policy_name);
        rc.jobs = static_cast<unsigned>(args.getInt("jobs"));
        if (!args.ok()) {
            std::cerr << "error: " << args.error() << "\n";
            return 2;
        }
        const EvaluationReport rep = runEvaluation(sys, rc);
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "error: cannot write " << report_path << "\n";
            return 2;
        }
        out << rep.toMarkdown();
        std::cout << "wrote evaluation report to " << report_path
                  << " (peak speedup "
                  << rep.max_speedup << "x)\n";
        return 0;
    }

    if (args.getFlag("compare")) {
        printBanner(std::cout, "engine comparison");
        TextTable table({"engine", "tokens/s", "step", "energy kJ",
                         "note"});
        for (const auto &row :
             compareEngines(sys, run, opts.num_devices)) {
            table.row().cell(row.engine);
            if (!row.result.feasible) {
                table.cell("OOM").cell("").cell("").cell(
                    row.result.note);
                continue;
            }
            table.num(row.result.decodeThroughput(), 4)
                .cell(formatSeconds(row.result.decode_step_time))
                .num(row.result.energy.total() / 1e3, 1)
                .cell(row.result.note);
        }
        table.print(std::cout);
        return 0;
    }

    const std::string engine_name = args.get("engine");
    std::unique_ptr<InferenceEngine> engine;
    double price = priceFor(engine_name, sys, opts.num_devices);
    if (hosts > 1) {
        if (engine_name != "hilos") {
            std::cerr << "error: --hosts > 1 requires --engine hilos\n";
            return 2;
        }
        FleetConfig fc;
        fc.hosts = hosts;
        fc.devices_per_host = opts.num_devices;
        fc.policy = parsePlacementPolicy(policy_name);
        fc.spare_hosts = spares;
        fc.fault_plan = opts.fault_plan;
        engine = makeFleetEngine(sys, fc, opts);
        price *= static_cast<double>(hosts);
    } else {
        engine = makeEngine(engineByName(engine_name), sys, opts);
    }
    if (args.getFlag("serve")) {
        ServingConfig scfg;
        scfg.model = run.model;
        scfg.max_batch = run.batch;
        if (policy_name != "spread" &&
            !parseServingPolicy(policy_name, &scfg.policy)) {
            std::cerr << "error: unknown serving policy '" << policy_name
                      << "' (fcfs, sjf, slo)\n";
            return 2;
        }
        scfg.slo = Seconds(args.getDouble("slo-ms") / 1e3);
        scfg.prefill_chunks = run.prefill_chunks;
        std::vector<Request> stream;
        const std::string trace_file = args.get("arrival-trace");
        if (!trace_file.empty()) {
            std::ifstream in(trace_file);
            if (!in) {
                std::cerr << "error: cannot read " << trace_file << "\n";
                return 2;
            }
            std::ostringstream text;
            text << in.rdbuf();
            stream = parseArrivalTrace(text.str());
        } else {
            PoissonStreamConfig pc;
            pc.arrival_rate = args.getDouble("arrival-rate");
            pc.count =
                static_cast<std::size_t>(args.getInt("requests"));
            if (!args.ok()) {
                std::cerr << "error: " << args.error() << "\n";
                return 2;
            }
            Rng rng;  // fixed default seed: streams replay exactly
            stream = makePoissonArrivals(pc, rng);
        }
        if (stream.empty()) {
            std::cerr << "error: empty arrival stream\n";
            return 2;
        }
        const ServingSimulator sim(*engine, scfg);
        const ServingResult sr = sim.run(stream);
        printServingReport(engine->name(), scfg, sr);
        return sr.feasible ? 0 : 1;
    }

    const RunResult r = engine->run(run);
    printReport(engine->name(), run, r, price);

    const std::string trace_path = args.get("trace");
    if (!trace_path.empty()) {
        if (engine_name != "hilos") {
            std::cerr << "error: --trace requires --engine hilos\n";
            return 2;
        }
        TraceRecorder recorder;
        const HilosEventSimulator sim(sys, opts);
        sim.simulateDecodeStep(run, &recorder);
        std::ofstream out(trace_path);
        if (!out) {
            std::cerr << "error: cannot write " << trace_path << "\n";
            return 2;
        }
        recorder.writeChromeTrace(out);
        std::cout << "\nwrote " << recorder.size()
                  << " trace events to " << trace_path
                  << " (open in chrome://tracing)\n";
    }
    return r.feasible ? 0 : 1;
}
