/**
 * @file
 * Accelerator design-space explorer: drive the functional attention
 * kernel directly, verify it against the FP32 reference, and walk the
 * d_group / sequence-length space with the cycle and resource models —
 * the workflow §5.1's user-level design flow supports (validate
 * functionally, then estimate performance before synthesis).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "accel/attention_kernel.h"
#include "accel/cycle_model.h"
#include "accel/resource_model.h"
#include "common/random.h"
#include "common/table.h"
#include "llm/attention_ref.h"
#include "llm/tensor.h"

using namespace hilos;

int
main()
{
    Rng rng(42);
    const std::size_t d = 128;

    printBanner(std::cout, "Step 1: functional verification vs FP32");
    for (std::size_t dg : {1ul, 4ul, 5ul}) {
        const std::size_t s = 2048;
        const Matrix q = Matrix::random(dg, d, rng, 0.5f);
        const Matrix k = Matrix::random(s, d, rng, 0.5f);
        const Matrix v = Matrix::random(s, d, rng, 0.5f);
        const std::vector<Half> qh = toHalf(q), kh = toHalf(k),
                                vh = toHalf(v);
        AttentionKernelConfig cfg;
        cfg.d_group = dg;
        const AttentionKernel kernel(cfg);
        AttentionRequest req;
        req.queries = viewOf(qh, dg, d);
        req.keys = viewOf(kh, s, d);
        req.values = viewOf(vh, s, d);
        req.valid_len = s;
        const AttentionResult res = kernel.run(req);
        const Matrix expected = naiveAttention(
            fromHalf(qh, dg, d), fromHalf(kh, s, d), fromHalf(vh, s, d));
        double worst = 0;
        for (std::size_t i = 0; i < res.outputs.size(); i++)
            worst = std::max(
                worst, static_cast<double>(std::fabs(
                           res.outputs[i] - expected.data()[i])));
        std::printf("  d_group=%zu: max |err| vs reference = %.2e %s\n",
                    dg, worst, worst < 1e-3 ? "(PASS)" : "(FAIL)");
    }

    printBanner(std::cout,
                "Step 2: performance estimation across the design space");
    const CycleModel cm{CycleModelConfig{}};
    TextTable pt({"d_group", "s=4K time", "s=32K time", "GFLOPS",
                  "KV GB/s"});
    for (std::size_t dg = 1; dg <= 6; dg++) {
        pt.row()
            .cell(std::to_string(dg))
            .cell(formatSeconds(cm.kernelTime(4096, d, dg)))
            .cell(formatSeconds(cm.kernelTime(32768, d, dg)))
            .num(cm.gflops(32768, d, dg), 1)
            .num(cm.kvBytesPerSec(32768, d, dg) / 1e9, 2);
    }
    pt.print(std::cout);

    printBanner(std::cout, "Step 3: resource feasibility on the KU15P");
    const ResourceModel rm;
    TextTable rt({"d_group", "LUT %", "DSP %", "power W", "fits?",
                  "softmax DSP share"});
    for (std::size_t dg = 1; dg <= 6; dg++) {
        const ResourceUtilization u = rm.utilization(dg);
        rt.row()
            .cell(std::to_string(dg))
            .num(u.lut_pct, 1)
            .num(u.dsp_pct, 1)
            .num(rm.powerWatts(dg), 2)
            .cell(u.fits() ? "yes" : "NO")
            .num(100.0 * rm.softmaxDspShare(dg), 0);
    }
    rt.print(std::cout);
    std::cout << "\nThe flow mirrors §5.1: functional checks gate the "
                 "expensive synthesis; the estimator tracks hardware "
                 "with r ~ 0.93.\n";
    return 0;
}
