/**
 * @file
 * Figure 11: batch-size sensitivity with OPT-66B.
 *  (a) decoding throughput vs batch size: FLEX(DRAM) caps at bs 2 (host
 *      DRAM), FLEX(SSD) saturates on KV I/O, HILOS scales to bs 16;
 *  (b) per-layer execution breakdown: FLEX(DRAM) is dominated by Load
 *      Weight at its small feasible batch.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();
    const ModelConfig model = opt66b();
    const std::uint64_t context = 32768;

    HilosOptions opts;
    opts.num_devices = 8;
    auto fmt = [](const RunResult &r) -> std::string {
        if (!r.feasible)
            return "OOM";
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.3f t/s (bs %llu)",
                      r.decodeThroughput(),
                      (unsigned long long)r.effective_batch);
        return buf;
    };
    for (std::uint64_t ctx : {context, std::uint64_t{4096}}) {
        printBanner(std::cout,
                    "Figure 11(a): decoding throughput vs batch size "
                    "(OPT-66B, " +
                        std::to_string(ctx / 1024) + "K context)");
        TextTable table({"batch", "FLEX(DRAM)", "FLEX(SSD)",
                         "HILOS(8 SmartSSDs)"});
        for (std::uint64_t bs : {1ull, 2ull, 4ull, 8ull, 16ull}) {
            RunConfig run;
            run.model = model;
            run.batch = bs;
            run.context_len = ctx;
            run.output_len = 64;
            const RunResult dram =
                makeEngine(EngineKind::FlexDram, sys)->run(run);
            const RunResult ssd =
                makeEngine(EngineKind::FlexSsd, sys)->run(run);
            const RunResult hil =
                makeEngine(EngineKind::Hilos, sys, opts)->run(run);
            table.row()
                .cell(std::to_string(bs))
                .cell(fmt(dram))
                .cell(fmt(ssd))
                .cell(fmt(hil));
        }
        table.print(std::cout);
    }

    printBanner(std::cout,
                "Figure 11(b): per-layer execution breakdown at bs 16 "
                "(seconds per decode step)");
    TextTable bt({"engine", "load_weight", "kv/attn path", "gpu",
                  "other", "step"});
    RunConfig run;
    run.model = model;
    run.batch = 16;
    run.context_len = context;
    run.output_len = 64;
    auto add_row = [&](const RunResult &r, const std::string &name,
                       const std::string &attn_keys) {
        if (!r.feasible) {
            bt.row().cell(name).cell("OOM").cell("").cell("").cell("")
                .cell("");
            return;
        }
        double attn = 0.0;
        if (attn_keys == "flex") {
            attn = r.breakdown.get("kv_io") +
                   r.breakdown.get("cpu_attention");
        } else {
            attn = r.breakdown.get("internal_storage_io") +
                   r.breakdown.get("xcache_pci");
        }
        const double other = r.breakdown.sum() -
                             r.breakdown.get("load_weight") - attn -
                             r.breakdown.get("gpu_compute");
        bt.row()
            .cell(name)
            .num(r.breakdown.get("load_weight"), 3)
            .num(attn, 3)
            .num(r.breakdown.get("gpu_compute"), 3)
            .num(other, 3)
            .cell(formatSeconds(r.decode_step_time));
    };
    const RunResult dram = makeEngine(EngineKind::FlexDram, sys)->run(run);
    const RunResult ssd = makeEngine(EngineKind::FlexSsd, sys)->run(run);
    const RunResult hil =
        makeEngine(EngineKind::Hilos, sys, opts)->run(run);
    add_row(dram, "FLEX(DRAM)", "flex");
    add_row(ssd, "FLEX(SSD)", "flex");
    add_row(hil, "HILOS(8)", "hilos");
    bt.print(std::cout);

    std::cout << "\nShape checks: FLEX(DRAM) shrinks its batch (weight "
                 "transfer dominates); FLEX(SSD) is KV-I/O bound; HILOS "
                 "scales to bs 16.\n";
    return 0;
}
