/**
 * @file
 * Figure 2 motivation experiments with OPT-175B:
 *  (a) memory-footprint breakdown (weights vs KV cache vs activations)
 *      across batch sizes and context lengths — the KV cache reaches
 *      terabyte scale and dwarfs host memory;
 *  (b) execution-time breakdown of the offloading baseline — KV cache
 *      I/O consumes over 60% of decode time at long contexts.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"
#include "runtime/cost_model.h"

using namespace hilos;

int
main()
{
    const ModelConfig model = opt175b();
    SystemConfig sys = defaultSystem();

    printBanner(std::cout,
                "Figure 2(a): OPT-175B memory footprint breakdown");
    TextTable fp_table({"batch", "context", "weights", "KV cache",
                        "activations", "total", "vs 512 GiB host"});
    for (std::uint64_t bs : {4ull, 8ull, 16ull}) {
        for (std::uint64_t s : {4096ull, 32768ull, 131072ull}) {
            const MemoryFootprint fp = memoryFootprint(model, bs, s);
            fp_table.row()
                .cell(std::to_string(bs))
                .cell(std::to_string(s / 1024) + "K")
                .cell(formatBytes(fp.weights_bytes))
                .cell(formatBytes(fp.kv_bytes))
                .cell(formatBytes(fp.activation_bytes))
                .cell(formatBytes(fp.total()))
                .ratio(fp.total() /
                       static_cast<double>(sys.dram.capacity));
        }
    }
    fp_table.print(std::cout);

    printBanner(std::cout,
                "Figure 2(b): FLEX(SSD) decode-time breakdown (OPT-175B, "
                "batch 16)");
    TextTable bt({"context", "kv_io %", "load_weight %", "cpu_attn %",
                  "gpu %", "other %", "step time"});
    auto flex = makeEngine(EngineKind::FlexSsd, sys);
    for (std::uint64_t s : {4096ull, 16384ull, 65536ull, 131072ull}) {
        RunConfig run;
        run.model = model;
        run.batch = 16;
        run.context_len = s;
        run.output_len = 64;
        const RunResult r = flex->run(run);
        const double total = r.breakdown.sum();
        auto pct = [&](const std::string &k) {
            return 100.0 * r.breakdown.get(k) / total;
        };
        bt.row()
            .cell(std::to_string(s / 1024) + "K")
            .num(pct("kv_io"), 1)
            .num(pct("load_weight"), 1)
            .num(pct("cpu_attention"), 1)
            .num(pct("gpu_compute"), 1)
            .num(100.0 - pct("kv_io") - pct("load_weight") -
                     pct("cpu_attention") - pct("gpu_compute"),
                 1)
            .cell(formatSeconds(r.decode_step_time));
    }
    bt.print(std::cout);
    std::cout << "\nShape check: KV-cache transfer exceeds 60% of "
                 "execution time at long contexts (paper Fig. 2(b)).\n";
    return 0;
}
