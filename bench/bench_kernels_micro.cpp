/**
 * @file
 * Google-benchmark microbenchmarks of the functional accelerator
 * kernels (two-pass softmax, blocked GEMV with online transpose, the
 * full attention kernel) and the reference implementations they are
 * verified against. These measure the host-side functional models, not
 * the FPGA — useful for keeping the simulator itself fast.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "accel/attention_kernel.h"
#include "accel/gemv.h"
#include "accel/softmax.h"
#include "common/random.h"
#include "llm/attention_ref.h"
#include "llm/tensor.h"

namespace {

using namespace hilos;

void
BM_TwoPassSoftmax(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<float> base = rng.normalVector(n);
    const TwoPassSoftmax sm;
    const SoftmaxMask mask;
    for (auto _ : state) {
        std::vector<float> v = base;
        sm.apply(v, mask);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TwoPassSoftmax)->Arg(4096)->Arg(32768)->Arg(131072);

void
BM_ThreePassSoftmax(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<float> base = rng.normalVector(n);
    const SoftmaxMask mask;
    for (auto _ : state) {
        std::vector<float> v = base;
        threePassSoftmax(v, mask);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ThreePassSoftmax)->Arg(4096)->Arg(32768);

void
BM_QkGemvOnlineTranspose(benchmark::State &state)
{
    const auto s = static_cast<std::size_t>(state.range(0));
    const std::size_t d = 128;
    Rng rng(2);
    const Matrix q = Matrix::random(1, d, rng);
    const Matrix k = Matrix::random(s, d, rng);
    const std::vector<Half> qh = toHalf(q);
    const std::vector<Half> kh = toHalf(k);
    for (auto _ : state) {
        auto scores = qkGemv(viewOf(qh, 1, d), viewOf(kh, s, d), 0.0883f);
        benchmark::DoNotOptimize(scores.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(s * d));
}
BENCHMARK(BM_QkGemvOnlineTranspose)->Arg(4096)->Arg(16384);

void
BM_AttentionKernel(benchmark::State &state)
{
    const auto s = static_cast<std::size_t>(state.range(0));
    const std::size_t d = 128;
    const auto dg = static_cast<std::size_t>(state.range(1));
    Rng rng(3);
    const Matrix q = Matrix::random(dg, d, rng);
    const Matrix k = Matrix::random(s, d, rng);
    const Matrix v = Matrix::random(s, d, rng);
    const std::vector<Half> qh = toHalf(q);
    const std::vector<Half> kh = toHalf(k);
    const std::vector<Half> vh = toHalf(v);
    AttentionKernelConfig cfg;
    cfg.d_group = dg;
    const AttentionKernel kernel(cfg);
    AttentionRequest req;
    req.queries = viewOf(qh, dg, d);
    req.keys = viewOf(kh, s, d);
    req.values = viewOf(vh, s, d);
    req.valid_len = s;
    for (auto _ : state) {
        AttentionResult r = kernel.run(req);
        benchmark::DoNotOptimize(r.outputs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(s));
}
BENCHMARK(BM_AttentionKernel)
    ->Args({4096, 1})
    ->Args({4096, 5})
    ->Args({16384, 1});

void
BM_FlashAttentionRef(benchmark::State &state)
{
    const auto s = static_cast<std::size_t>(state.range(0));
    const std::size_t d = 128;
    Rng rng(4);
    const Matrix q = Matrix::random(1, d, rng);
    const Matrix k = Matrix::random(s, d, rng);
    const Matrix v = Matrix::random(s, d, rng);
    for (auto _ : state) {
        Matrix out = flashAttention(q, k, v);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(s));
}
BENCHMARK(BM_FlashAttentionRef)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
