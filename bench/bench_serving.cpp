/**
 * @file
 * Online serving saturation study (not a paper figure; the paper stops
 * at offline throughput). Sweeps Poisson arrival rate x admission
 * policy over one engine and reports the serving metrics that decide a
 * deployment: TTFT / end-to-end latency percentiles, goodput under an
 * SLO, and queue growth. Reading the sweep top to bottom shows the
 * saturation knee: below engine capacity the queue stays bounded and
 * goodput tracks the offered load; past it queue depth and tail
 * latency blow up while goodput flattens.
 *
 * Deterministic: every (rate, policy) point regenerates its arrival
 * stream from a fixed per-point seed, so the sweep is byte-identical
 * run-to-run and across --jobs. Results land in BENCH_serving.json via
 * the shared bench-JSON writer.
 */

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/hilos.h"
#include "sim/parallel.h"

using namespace hilos;

namespace {

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "FAILED: " << what << "\n";
        std::exit(1);
    }
}

struct SweepPoint {
    double rate = 0.0;
    ServingPolicy policy = ServingPolicy::Fcfs;
};

/** Arrival stream of one sweep point: seeded by the rate index so the
 *  same stream hits every policy at that rate. */
std::vector<Request>
pointStream(double rate, std::size_t rate_index, std::size_t count)
{
    PoissonStreamConfig pc;
    pc.arrival_rate = rate;
    pc.count = count;
    Rng rng(0x5e711 + 101 * static_cast<std::uint64_t>(rate_index));
    return makePoissonArrivals(pc, rng);
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_serving");
    args.addOption("model", "OPT-66B", "model to serve");
    args.addOption("devices", "8", "SmartSSDs on the host");
    args.addOption("max-batch", "16", "scheduler cap on in-flight batch");
    args.addOption("requests", "48", "requests per sweep point");
    // Default SLO sits between the unloaded (~10 min) and saturated
    // (hours) end-to-end latency of the headline config, so the
    // attainment column actually separates the sweep points.
    args.addOption("slo-ms", "1800000",
                   "end-to-end latency SLO in ms (0 = no SLO)");
    args.addOption("rates", "0.002,0.01,0.05,0.25",
                   "comma-separated arrival rates (req/s)");
    args.addOption("json-dir", ".",
                   "where BENCH_serving.json goes (empty = skip)");
    args.addOption("jobs", "1",
                   "worker threads for the sweep (0 = all cores)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const std::size_t requests =
        static_cast<std::size_t>(args.getInt("requests"));
    const Seconds slo = msec(args.getDouble("slo-ms"));
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    std::vector<double> rates;
    std::stringstream rate_list(args.get("rates"));
    std::string tok;
    while (std::getline(rate_list, tok, ','))
        if (!tok.empty())
            rates.push_back(std::stod(tok));
    check(!rates.empty(), "at least one arrival rate is required");

    SystemConfig sys = defaultSystem();
    HilosOptions opts;
    opts.num_devices = static_cast<unsigned>(args.getInt("devices"));
    const HilosEngine engine(sys, opts);

    ServingConfig base;
    base.model = modelByName(args.get("model"));
    base.max_batch = static_cast<std::uint64_t>(args.getInt("max-batch"));
    base.slo = slo;

    const ServingPolicy policies[] = {
        ServingPolicy::Fcfs, ServingPolicy::Sjf, ServingPolicy::SloAware};
    std::vector<SweepPoint> points;
    for (double r : rates)
        for (ServingPolicy p : policies)
            points.push_back(SweepPoint{r, p});

    SweepDriver driver(jobs);
    const std::vector<ServingResult> sweep =
        driver.map(points, [&](const SweepPoint &pt) {
            std::size_t rate_index = 0;
            while (rates[rate_index] != pt.rate)
                rate_index++;
            ServingConfig cfg = base;
            cfg.policy = pt.policy;
            const ServingSimulator sim(engine, cfg);
            return sim.run(
                pointStream(pt.rate, rate_index, requests));
        });

    printBanner(std::cout,
                "serving saturation (" + args.get("model") + ", " +
                    std::to_string(requests) + " req/point, batch cap " +
                    std::to_string(base.max_batch) + ", SLO " +
                    std::to_string(static_cast<long long>(
                        static_cast<double>(slo))) +
                    " s)");

    bench::BenchJson json("serving");
    json.meta("model", args.get("model"))
        .meta("devices", std::uint64_t{opts.num_devices})
        .meta("max_batch", base.max_batch)
        .meta("requests", std::uint64_t{requests})
        .meta("slo_s", double(slo));

    TextTable table({"rate req/s", "policy", "ttft p50 s", "ttft p99 s",
                     "e2e p99 s", "goodput r/s", "slo att",
                     "peak queue"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ServingResult &r = sweep[i];
        const std::string policy = servingPolicyName(points[i].policy);
        check(r.feasible, "sweep point must be feasible: " + r.note);
        table.row()
            .num(points[i].rate, 3)
            .cell(policy)
            .num(r.ttft_p50, 2)
            .num(r.ttft_p99, 2)
            .num(r.latency_p99, 2)
            .num(r.goodput_rps, 4)
            .num(r.slo_attainment, 3)
            .num(static_cast<double>(r.peak_queue_depth), 0);
        json.row()
            .cell("rate", points[i].rate)
            .cell("policy", policy)
            .cell("ttft_p50_s", double(r.ttft_p50))
            .cell("ttft_p99_s", double(r.ttft_p99))
            .cell("ttft_p999_s", double(r.ttft_p999))
            .cell("latency_p50_s", double(r.latency_p50))
            .cell("latency_p99_s", double(r.latency_p99))
            .cell("latency_p999_s", double(r.latency_p999))
            .cell("goodput_rps", r.goodput_rps)
            .cell("slo_attainment", r.slo_attainment)
            .cell("tokens_per_s", r.tokens_per_second)
            .cell("mean_in_flight", r.mean_in_flight)
            .cell("peak_in_flight", r.peak_in_flight)
            .cell("mean_queue_depth", r.mean_queue_depth)
            .cell("peak_queue_depth", r.peak_queue_depth)
            .cell("makespan_s", double(r.makespan));
    }
    table.print(std::cout);

    // Saturation is visible in the sweep itself: the highest rate must
    // queue at least as deep as the lowest (same stream length, less
    // inter-arrival slack). FCFS rows only — policies reorder waits.
    double low_depth = -1.0, high_depth = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].policy != ServingPolicy::Fcfs)
            continue;
        if (points[i].rate == rates.front())
            low_depth = sweep[i].mean_queue_depth;
        if (points[i].rate == rates.back())
            high_depth = sweep[i].mean_queue_depth;
    }
    check(high_depth >= low_depth,
          "queue depth must not shrink as offered load grows");

    // --- chunked prefill at saturation ---------------------------------
    // At the highest rate the decode flight is always populated, so a
    // monolithic prefill stalls every in-flight request for the whole
    // prompt. Splitting prefill into chunks lets decode steps run at
    // priority between chunks (counted as preemptions), which shortens
    // the TTFT tail for everyone waiting behind a long prompt.
    //
    // The comparison runs on the multi-GPU baseline, where decode steps
    // and serving-length chunks are both short, so the interleave is
    // nearly free and the decode-side relief wins. On HILOS a
    // long-context chunk dwarfs the decode step, and every mid-prefill
    // turn (costed at the slower of the two) slows the in-flight token
    // cadence to chunk granularity — that is why the headline sweep
    // above keeps prefill_chunks = 1 (see DESIGN.md section 14).
    {
        const std::size_t rate_index = rates.size() - 1;
        const std::vector<Request> stream =
            pointStream(rates.back(), rate_index, requests);
        const auto vllm = makeEngine(EngineKind::VllmMultiGpu, sys);
        ServingConfig mono_cfg = base;
        mono_cfg.policy = ServingPolicy::Fcfs;
        const ServingResult mono =
            ServingSimulator(*vllm, mono_cfg).run(stream);
        ServingConfig chunk_cfg = mono_cfg;
        chunk_cfg.prefill_chunks = 4;
        const ServingResult chunked =
            ServingSimulator(*vllm, chunk_cfg).run(stream);
        check(mono.feasible && chunked.feasible,
              "chunked-prefill comparison point infeasible");
        check(chunked.prefill_preemptions > 0,
              "saturated chunked run must preempt prefill with decode");

        printBanner(std::cout,
                    "chunked prefill at saturation (rate " +
                        std::to_string(rates.back()) + " req/s, FCFS)");
        TextTable chunk_table({"prefill chunks", "ttft p50 s",
                               "ttft p99 s", "e2e p99 s", "preemptions",
                               "makespan s"});
        const auto chunk_row = [&](const std::string &label,
                                   const ServingResult &r) {
            chunk_table.row()
                .cell(label)
                .num(r.ttft_p50, 2)
                .num(r.ttft_p99, 2)
                .num(r.latency_p99, 2)
                .num(static_cast<double>(r.prefill_preemptions), 0)
                .num(r.makespan, 2);
            json.row()
                .cell("rate", rates.back())
                .cell("policy", "fcfs/chunks=" + label)
                .cell("ttft_p50_s", double(r.ttft_p50))
                .cell("ttft_p99_s", double(r.ttft_p99))
                .cell("latency_p99_s", double(r.latency_p99))
                .cell("prefill_chunks_run", r.prefill_chunks_run)
                .cell("prefill_preemptions", r.prefill_preemptions)
                .cell("makespan_s", double(r.makespan));
        };
        chunk_row("1", mono);
        chunk_row("4", chunked);
        chunk_table.print(std::cout);
        check(chunked.ttft_p99 <= mono.ttft_p99,
              "chunked prefill must not worsen the p99 TTFT at "
              "saturation");
    }

    if (!args.get("json-dir").empty())
        json.write(args.get("json-dir"));
    return 0;
}
