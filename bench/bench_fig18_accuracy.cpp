/**
 * @file
 * Figure 18(c) + §7.1: accuracy of lossless near-storage attention vs
 * InstAttention-style lossy sparse retrieval (1/8 compression), and the
 * ISP bandwidth-parity argument.
 *
 * LongBench is substituted with synthetic long-context retrieval tasks
 * where ground truth is known by construction (see DESIGN.md): needles
 * of graded relevance are planted in the context; retrieval F1 measures
 * whether the attention output recovers them. The HILOS kernel (FP16
 * storage, FP32 accumulate, two-pass softmax) is compared against the
 * FP32 FlashAttention reference (identical retrieval, tiny numeric
 * error) and against top-s/8 sparse retrieval (several F1 points lost
 * at 32K context, negligible at 4K).
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "accel/attention_kernel.h"
#include "common/random.h"
#include "common/table.h"
#include "core/hilos.h"
#include "device/smartssd.h"
#include "llm/attention_ref.h"
#include "llm/sparse_attention.h"
#include "llm/tensor.h"
#include "llm/workload.h"

using namespace hilos;

namespace {

/** One synthetic "dataset": a needle-task configuration. */
struct Dataset {
    const char *name;
    std::size_t needles;
    std::size_t head_dim;
    float gain_sigma;
};

/** Relevance margin decays with context (information density drops). */
float
meanGain(std::size_t context)
{
    return 2.9f - 0.317f * std::log2(static_cast<float>(context) / 4096.0f);
}

struct EvalResult {
    double exact_f1 = 0;
    double hilos_f1 = 0;
    double sparse_f1 = 0;
    double max_err = 0;  ///< HILOS kernel vs FlashAttention outputs
};

EvalResult
evaluate(const Dataset &ds, std::size_t context, std::size_t trials,
         Rng &rng)
{
    const SparseAttention sparse{SparseAttentionConfig{}};
    AttentionKernelConfig kc;
    kc.d_group = 1;
    const AttentionKernel kernel(kc);

    EvalResult out;
    for (std::size_t t = 0; t < trials; t++) {
        NeedleTaskConfig cfg;
        cfg.context_len = context;
        cfg.head_dim = ds.head_dim;
        cfg.needles = ds.needles;
        cfg.d_group = 1;
        NeedleTask task = makeNeedleTask(cfg, rng);
        // Grade the needle relevance: rewrite each needle key with its
        // own margin drawn around the context-dependent mean.
        for (std::size_t j = 0; j < task.needles.size(); j++) {
            const float gain = meanGain(context) +
                               ds.gain_sigma *
                                   static_cast<float>(rng.normal());
            for (std::size_t c = 0; c < ds.head_dim; c++) {
                const float dir = task.queries.at(0, c);
                task.keys.at(task.needles[j], c) =
                    dir * gain +
                    0.02f * static_cast<float>(rng.normal());
            }
        }
        const float scale = 1.0f;  // tasks are generated in score units

        // FP32 FlashAttention reference.
        const Matrix flash = flashAttention(task.queries, task.keys,
                                            task.values, scale);
        out.exact_f1 += retrievalF1(
            task.needles, recoveredNeedles(flash, task.needles));

        // HILOS accelerator kernel (FP16 storage).
        const std::vector<Half> qh = toHalf(task.queries);
        const std::vector<Half> kh = toHalf(task.keys);
        const std::vector<Half> vh = toHalf(task.values);
        AttentionRequest req;
        req.queries = viewOf(qh, 1, ds.head_dim);
        req.keys = viewOf(kh, context, ds.head_dim);
        req.values = viewOf(vh, context, ds.head_dim);
        req.valid_len = context;
        req.scale = scale;
        const AttentionResult ar = kernel.run(req);
        Matrix hilos_out(1, ds.head_dim);
        for (std::size_t c = 0; c < ds.head_dim; c++)
            hilos_out.at(0, c) = ar.outputs[c];
        out.hilos_f1 += retrievalF1(
            task.needles, recoveredNeedles(hilos_out, task.needles));
        out.max_err = std::max(
            out.max_err,
            static_cast<double>(hilos_out.maxAbsDiff(flash)));

        // InstAttention-style 1/8 sparse retrieval.
        const SparseAttentionResult sr =
            sparse.run(task.queries, task.keys, task.values, scale);
        out.sparse_f1 += retrievalF1(
            task.needles, recoveredNeedles(sr.outputs, task.needles));
    }
    const double n = static_cast<double>(trials);
    out.exact_f1 = 100.0 * out.exact_f1 / n;
    out.hilos_f1 = 100.0 * out.hilos_f1 / n;
    out.sparse_f1 = 100.0 * out.sparse_f1 / n;
    return out;
}

}  // namespace

int
main()
{
    Rng rng(0xF18ACC);
    const std::vector<Dataset> datasets = {
        {"synth-qa-1", 8, 64, 0.45f},   {"synth-qa-2", 12, 64, 0.46f},
        {"synth-sum-1", 16, 64, 0.48f}, {"synth-ret-1", 10, 64, 0.50f},
        {"synth-ret-2", 14, 64, 0.42f},
    };

    printBanner(std::cout,
                "Figure 18(c): retrieval F1, lossless vs 1/8 sparse "
                "retrieval (32K context, 5 synthetic datasets)");
    TextTable ft({"dataset", "FlashAttn F1", "HILOS F1",
                  "InstAttn-1/8 F1", "drop (pts)", "max |err|"});
    for (const Dataset &ds : datasets) {
        const EvalResult r = evaluate(ds, 32768, 24, rng);
        ft.row()
            .cell(ds.name)
            .num(r.exact_f1, 2)
            .num(r.hilos_f1, 2)
            .num(r.sparse_f1, 2)
            .num(r.exact_f1 - r.sparse_f1, 2)
            .num(r.max_err, 5);
    }
    ft.print(std::cout);

    printBanner(std::cout,
                "Context sweep (dataset synth-qa-1): lossy degradation "
                "grows with context");
    TextTable ct({"context", "HILOS F1", "InstAttn-1/8 F1", "drop"});
    for (std::size_t s : {4096ul, 8192ul, 16384ul, 32768ul}) {
        const EvalResult r = evaluate(datasets[0], s, 24, rng);
        ct.row()
            .cell(std::to_string(s / 1024) + "K")
            .num(r.hilos_f1, 2)
            .num(r.sparse_f1, 2)
            .num(r.hilos_f1 - r.sparse_f1, 2);
    }
    ct.print(std::cout);

    printBanner(std::cout,
                "Section 7.1: envisioned ISP device vs four SmartSSDs "
                "(bandwidth parity)");
    const SmartSsdConfig isp = ispDeviceConfig();
    const SmartSsdConfig sdev = smartSsdConfig();
    TextTable it({"path", "1x ISP device", "4x SmartSSD"});
    it.row()
        .cell("internal storage read")
        .cell(std::to_string(isp.p2p_read_bw / 1e9) + " GB/s")
        .cell(std::to_string(4.0 * sdev.p2p_read_bw / 1e9) + " GB/s");
    it.row()
        .cell("internal memory")
        .cell(std::to_string(isp.fpga_dram_bandwidth / 1e9) + " GB/s")
        .cell(std::to_string(4.0 * sdev.fpga_dram_bandwidth / 1e9) +
              " GB/s");
    it.print(std::cout);

    printBanner(std::cout,
                "Section 7.1: end-to-end parity, HILOS on 1 ISP unit vs "
                "4 SmartSSDs (OPT-66B, bs 16)");
    {
        using namespace hilos;
        SystemConfig smart_sys = defaultSystem();
        SystemConfig isp_sys = ispSystem(1);
        TextTable et({"context", "4x SmartSSD t/s", "1x ISP t/s",
                      "ratio"});
        for (std::uint64_t s : {16384ull, 65536ull}) {
            RunConfig run;
            run.model = opt66b();
            run.batch = 16;
            run.context_len = s;
            run.output_len = 64;
            HilosOptions smart_opts;
            smart_opts.num_devices = 4;
            HilosOptions isp_opts;
            isp_opts.num_devices = 1;
            const double smart =
                HilosEngine(smart_sys, smart_opts)
                    .run(run)
                    .decodeThroughput();
            const double one_isp =
                HilosEngine(isp_sys, isp_opts).run(run).decodeThroughput();
            et.row()
                .cell(std::to_string(s / 1024) + "K")
                .num(smart, 3)
                .num(one_isp, 3)
                .ratio(one_isp / smart);
        }
        et.print(std::cout);
    }

    std::cout << "\nShape checks: HILOS F1 == FlashAttention F1 "
                 "(lossless; FP16 numeric error ~1e-3); 1/8 sparse "
                 "retrieval loses ~3.5-5.7 points at 32K and almost "
                 "nothing at 4K; one ISP device matches four SmartSSDs "
                 "in internal bandwidth.\n";
    return 0;
}
