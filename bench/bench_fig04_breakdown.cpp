/**
 * @file
 * Figure 4(b)/(c): with naive attention-near-storage (no X-cache, no
 * delayed writeback) the bottleneck shifts to the devices' internal
 * storage I/O, and the host (CPU/GPU/DRAM) sits below 20% utilisation —
 * the observation motivating cooperative X-cache.
 */

#include <iostream>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt175b();
    run.batch = 16;
    run.context_len = 32768;
    run.output_len = 64;

    HilosOptions opts;
    opts.num_devices = 8;
    opts.xcache = false;
    opts.delayed_writeback = false;
    auto ans = makeEngine(EngineKind::Hilos, sys, opts);
    const RunResult r = ans->run(run);

    printBanner(std::cout,
                "Figure 4(b): decode latency breakdown with naive ANS "
                "(OPT-175B, bs 16, 32K)");
    TextTable bt({"stage", "seconds/step", "% of stage sum"});
    const double total = r.breakdown.sum();
    for (const auto &[name, t] : r.breakdown.stages()) {
        bt.row().cell(name).num(t, 3).num(100.0 * t / total, 1);
    }
    bt.print(std::cout);
    std::cout << "critical-path step time: "
              << formatSeconds(r.decode_step_time) << "\n";

    printBanner(std::cout,
                "Figure 4(c): host-resource utilisation under ANS");
    TextTable ut({"resource", "busy s/step", "utilisation %"});
    ut.row().cell("GPU").num(r.busy.gpu, 3).num(
        100.0 * r.busy.gpu / r.decode_step_time, 1);
    ut.row().cell("CPU").num(r.busy.cpu, 3).num(
        100.0 * r.busy.cpu / r.decode_step_time, 1);
    ut.row().cell("DRAM").num(r.busy.dram, 3).num(
        100.0 * r.busy.dram / r.decode_step_time, 1);
    ut.row().cell("NSP internal I/O").num(r.busy.storage, 3).num(
        100.0 * r.busy.storage / r.decode_step_time, 1);
    ut.print(std::cout);

    std::cout << "\nShape checks: internal storage I/O dominates the "
                 "breakdown; host CPU/GPU/DRAM utilisation < 20% "
                 "(paper Fig. 4).\n";
    return 0;
}
