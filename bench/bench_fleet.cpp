/**
 * @file
 * Fleet scale-out study (not a paper figure; the paper stops at one
 * host). Answers the two capacity-planning questions a fleet operator
 * asks of the model:
 *  - How many nodes for a request-rate target at a per-step latency
 *    budget? A fault-free scaling sweep grows the batch with the host
 *    count and reports throughput, request rate, and fleet step.
 *  - What does a node loss cost? A host failure mid-run is charged
 *    shard-rebuild traffic over the inter-host link and the run
 *    completes degraded; the bench reports availability, slowdown,
 *    and rebuild bytes/seconds, and cross-checks the analytic fleet
 *    step against the event-sim backend (the fuzz oracle's agreement
 *    band).
 *
 * `--replay-dir tests/fault_plans` switches to the adversarial-plan
 * library: every *.txt plan is replayed against the fleet and the
 * recovery invariants are asserted, with a non-zero exit on the first
 * violation (the nightly CI job). Results land in BENCH_fleet.json via
 * the shared bench-JSON writer.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/fleet_engine.h"
#include "sim/parallel.h"

using namespace hilos;

namespace {

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "FAILED: " << what << "\n";
        std::exit(1);
    }
}

/** The scalar surface two runs of one config must reproduce exactly. */
std::string
fingerprint(const RunResult &r)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << r.feasible << ' ' << r.decode_step_time << ' '
        << r.prefill_time << ' ' << r.total_time << ' '
        << r.fleet.availability << ' ' << r.fleet.slowdown << ' '
        << r.fleet.rebuild_bytes << ' ' << r.fleet.rebuild_time << ' '
        << r.fleet.hosts_failed << ' ' << r.fleet.host_stalls << ' '
        << r.fleet.epochs.size();
    return oss.str();
}

/**
 * Recovery invariants every fault plan must satisfy at fleet scope.
 * Returns the first violated invariant, empty when all hold.
 */
std::string
recoveryInvariants(const FleetEngine &fe, const RunConfig &run,
                   unsigned hosts)
{
    const RunResult a = fe.run(run);
    const RunResult b = fe.run(run);
    if (fingerprint(a) != fingerprint(b))
        return "non-deterministic replay (same seed, different result)";
    if (std::isnan(a.total_time) || std::isinf(a.total_time) ||
        std::isnan(a.decode_step_time))
        return "non-finite timing";
    if (a.fleet.availability < 0.0 || a.fleet.availability > 1.0)
        return "availability outside [0, 1]";
    if (!a.feasible)
        return a.note.empty() ? "infeasible without a note" : "";
    // Feasible: graceful degradation, never a crash or a free lunch.
    if (a.fleet.hosts_failed >= hosts)
        return "feasible result with every host failed";
    if (a.fleet.hosts_failed > 0 && a.fleet.availability >= 1.0)
        return "host loss must cost availability";
    if (a.fleet.rebuild_bytes > 0.0 && !(a.fleet.rebuild_time > 0.0))
        return "rebuild bytes without rebuild time";
    if (a.fleet.slowdown < 1.0 - 1e-9)
        return "slowdown below 1 (faults made the fleet faster)";
    // Analytic vs event-sim fleet step at the first decode epoch
    // (sampling the sim at the epoch start keeps both backends on the
    // same serving set) and again on the end-of-run placement.
    const Seconds t0 = a.fleet.epochs.empty()
                           ? Seconds(0.0)
                           : a.fleet.epochs.front().start;
    const Seconds ideal = a.fleet.epochs.empty()
                              ? a.decode_step_time
                              : a.fleet.epochs.front().step_time;
    const double early = fe.simulatedDecodeStep(run, t0) / ideal;
    if (early < 0.4 || early > 2.5)
        return "event-sim disagrees with analytic step at epoch 0";
    if (a.fleet.degraded_step_time > 0.0) {
        const double late =
            fe.simulatedDecodeStep(run, a.total_time + 1.0) /
            a.fleet.degraded_step_time;
        if (late < 0.4 || late > 2.5)
            return "event-sim disagrees with degraded analytic step";
    }
    return "";
}

/** Replay every *.txt plan in `dir`; count of violated plans. */
int
replayPlanLibrary(const std::string &dir, const SystemConfig &sys,
                  const FleetConfig &shape, const RunConfig &run)
{
    std::vector<std::filesystem::path> plans;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".txt")
            plans.push_back(entry.path());
    std::sort(plans.begin(), plans.end());
    check(!plans.empty(), "no *.txt fault plans in " + dir);

    int violations = 0;
    for (const auto &path : plans) {
        std::ifstream in(path);
        std::string spec, line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;  // comment lines document the scenario
            if (!spec.empty())
                spec += ';';
            spec += line;
        }
        FleetConfig fc = shape;
        fc.fault_plan = parseFaultPlan(spec);
        const FleetEngine fe(sys, fc);
        const std::string violated =
            recoveryInvariants(fe, run, fc.hosts);
        std::cout << (violated.empty() ? "PASS " : "FAIL ")
                  << path.filename().string()
                  << (violated.empty() ? "" : ": " + violated) << "\n";
        violations += violated.empty() ? 0 : 1;
    }
    return violations;
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fleet");
    args.addOption("hosts", "4", "fleet size for the node-loss study");
    args.addOption("devices", "8", "SmartSSDs per host");
    args.addOption("policy", "spread",
                   "placement policy (spread|pack|fault-aware)");
    args.addOption("spares", "1", "spare hosts under fault-aware");
    args.addOption("max-hosts", "8", "scaling-sweep upper bound");
    args.addOption("batch-per-host", "16", "requests per host in the sweep");
    args.addOption("context", "32768", "context length (tokens)");
    args.addOption("output", "64", "decode tokens per request");
    args.addOption("target-step", "0",
                   "per-step latency budget in ms (0 = report only)");
    args.addOption("fault-plan", "",
                   "node-loss scenario (default: host 1 fails mid-run)");
    args.addOption("replay-dir", "",
                   "replay every *.txt fault plan in this directory and "
                   "exit non-zero on a recovery-invariant violation");
    args.addOption("json-dir", ".",
                   "where BENCH_fleet.json goes (empty = skip)");
    args.addOption("jobs", "1",
                   "worker threads for the scaling sweep (0 = all cores)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const unsigned hosts = static_cast<unsigned>(args.getInt("hosts"));
    const unsigned devices = static_cast<unsigned>(args.getInt("devices"));
    const unsigned max_hosts =
        static_cast<unsigned>(args.getInt("max-hosts"));
    const std::uint64_t per_host =
        static_cast<std::uint64_t>(args.getInt("batch-per-host"));
    const PlacementPolicy policy =
        parsePlacementPolicy(args.get("policy"));
    const unsigned spares = static_cast<unsigned>(args.getInt("spares"));
    const Seconds target_step = msec(args.getDouble("target-step"));
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt66b();
    run.context_len = static_cast<std::uint64_t>(args.getInt("context"));
    run.output_len = static_cast<std::uint64_t>(args.getInt("output"));

    FleetConfig shape;
    shape.hosts = hosts;
    shape.devices_per_host = devices;
    shape.policy = policy;
    shape.spare_hosts = spares;

    if (!args.get("replay-dir").empty()) {
        run.batch = per_host * hosts;
        const int violations =
            replayPlanLibrary(args.get("replay-dir"), sys, shape, run);
        std::cout << (violations ? "replay FAILED: " : "replay OK: ")
                  << violations << " violated plan(s)\n";
        return violations ? 1 : 0;
    }

    bench::BenchJson json("fleet");
    json.meta("model", std::string("OPT-66B"))
        .meta("context", run.context_len)
        .meta("output_len", run.output_len)
        .meta("batch_per_host", per_host)
        .meta("devices_per_host", std::uint64_t{devices})
        .meta("policy", std::string(placementPolicyName(policy)));

    // --- Scaling sweep: how many nodes for X req/s at a step budget ---
    printBanner(std::cout,
                "fleet scaling (OPT-66B, " +
                    std::to_string(run.context_len / 1024) +
                    "K context, " + std::to_string(per_host) +
                    " req/host, " + std::to_string(devices) +
                    " SmartSSDs/host)");
    std::vector<unsigned> counts;
    for (unsigned h = 1; h <= max_hosts; ++h)
        counts.push_back(h);
    SweepDriver driver(jobs);
    const std::vector<RunResult> sweep =
        driver.map(counts, [&](unsigned h) {
            FleetConfig fc = shape;
            fc.hosts = h;
            fc.spare_hosts = std::min(spares, h - 1);
            RunConfig r = run;
            r.batch = per_host * h;
            return FleetEngine(sys, fc).run(r);
        });

    TextTable table({"hosts", "batch", "step ms", "tokens/s", "req/s",
                     "meets target"});
    unsigned needed_hosts = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const RunResult &r = sweep[i];
        const bool meets =
            r.feasible &&
            (target_step <= 0.0 || r.decode_step_time <= target_step);
        if (meets && target_step > 0.0 && needed_hosts == 0)
            needed_hosts = counts[i];
        table.row().num(counts[i], 0).num(per_host * counts[i], 0);
        if (!r.feasible) {
            table.cell("OOM").cell("-").cell("-").cell("-");
        } else {
            const double req_per_s =
                static_cast<double>(per_host * counts[i]) / r.total_time;
            table.num(r.decode_step_time * 1e3, 3)
                .num(r.decodeThroughput(), 1)
                .num(req_per_s, 3)
                .cell(target_step > 0.0 ? (meets ? "yes" : "no") : "-");
            json.row()
                .cell("kind", std::string("scale"))
                .cell("hosts", std::uint64_t{counts[i]})
                .cell("batch", per_host * counts[i])
                .cell("step_s", double(r.decode_step_time))
                .cell("tokens_per_s", r.decodeThroughput())
                .cell("req_per_s", req_per_s);
        }
    }
    table.print(std::cout);
    if (target_step > 0.0) {
        std::cout << "hosts for a " << target_step * 1e3
                  << " ms step budget: ";
        if (needed_hosts)
            std::cout << needed_hosts << "\n";
        else
            std::cout << "not reachable within " << max_hosts
                      << " hosts\n";
        json.meta("target_step_s", double(target_step))
            .meta("hosts_for_target", std::uint64_t{needed_hosts});
    }

    // --- Node-loss cost at the requested fleet size ---
    run.batch = per_host * hosts;
    const RunResult healthy = FleetEngine(sys, shape).run(run);
    check(healthy.feasible, "healthy fleet must be feasible");

    FleetConfig faulted = shape;
    if (args.get("fault-plan").empty()) {
        // Default scenario: one host lost a third of the way through.
        const Seconds mid =
            healthy.prefill_time +
            (run.output_len / 3.0) * healthy.decode_step_time;
        faulted.fault_plan = FaultPlan{}.addHostFailure(mid, 1);
    } else {
        faulted.fault_plan = parseFaultPlan(args.get("fault-plan"));
    }
    const FleetEngine fe(sys, faulted);
    const RunResult lost = fe.run(run);
    const RunResult lost2 = fe.run(run);
    check(fingerprint(lost) == fingerprint(lost2),
          "node-loss run must be deterministic per seed");
    check(lost.feasible, "node loss must degrade, not fail");
    check(lost.fleet.any() && lost.fleet.availability < 1.0,
          "node loss must be visible as availability < 1");

    printBanner(std::cout, "node-loss cost (" + std::to_string(hosts) +
                               " hosts, " +
                               std::string(placementPolicyName(policy)) +
                               ")");
    const double tput_cost =
        1.0 - lost.decodeThroughput() / healthy.decodeThroughput();
    std::cout << "healthy:   " << healthy.decodeThroughput()
              << " tokens/s, step " << healthy.decode_step_time * 1e3
              << " ms\n"
              << "node loss: " << lost.decodeThroughput()
              << " tokens/s (" << tput_cost * 100.0
              << "% throughput cost), availability "
              << lost.fleet.availability << "\n"
              << "rebuild:   " << lost.fleet.rebuild_bytes / double(GiB)
              << " GiB in " << lost.fleet.rebuild_time << " s; slowdown "
              << lost.fleet.slowdown << "x over " << lost.fleet.epochs.size()
              << " epoch(s)\n";
    json.row()
        .cell("kind", std::string("node_loss"))
        .cell("hosts", std::uint64_t{hosts})
        .cell("availability", lost.fleet.availability)
        .cell("slowdown", lost.fleet.slowdown)
        .cell("throughput_cost", tput_cost)
        .cell("rebuild_bytes", double(lost.fleet.rebuild_bytes))
        .cell("rebuild_s", double(lost.fleet.rebuild_time))
        .cell("hosts_failed", std::uint64_t{lost.fleet.hosts_failed});

    // --- Analytic vs event-sim fleet step (the fuzz oracle's band) ---
    const double early =
        fe.simulatedDecodeStep(run, 0.0) / healthy.decode_step_time;
    double late = 1.0;
    if (lost.fleet.degraded_step_time > 0.0)
        late = fe.simulatedDecodeStep(run, lost.total_time + 1.0) /
               lost.fleet.degraded_step_time;
    std::cout << "event-sim / analytic fleet step: " << early
              << "x healthy, " << late << "x degraded (band [0.4, 2.5])\n";
    check(early > 0.4 && early < 2.5 && late > 0.4 && late < 2.5,
          "fleet backends must agree within [0.4, 2.5]");
    json.row()
        .cell("kind", std::string("agreement"))
        .cell("sim_over_analytic_healthy", early)
        .cell("sim_over_analytic_degraded", late);

    if (!args.get("json-dir").empty())
        json.write(args.get("json-dir"));
    std::cout << "\nShape checks passed: deterministic node-loss replay, "
                 "graceful degradation with availability < 1, and "
                 "analytic/event-sim agreement.\n";
    return 0;
}
