/**
 * @file
 * Equation 3: interconnect-traffic reduction of attention near storage.
 * The baseline moves 4sh + 4h bytes of attention data per token per
 * layer across the shared interconnect; ANS moves 8h (6h up, 2h down),
 * so T_BASE / T_ANS = (s + 1) / 2.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();
    const ModelConfig model = opt175b();

    printBanner(std::cout,
                "Equation 3: attention interconnect traffic, baseline vs "
                "ANS (per decode step)");
    TextTable table({"context", "T_BASE bytes", "T_ANS bytes",
                     "measured ratio", "(s+1)/2"});

    HilosOptions opts;
    opts.num_devices = 8;
    opts.xcache = false;  // pure ANS isolates the Eq. 3 mechanism
    opts.delayed_writeback = false;
    auto ans = makeEngine(EngineKind::Hilos, sys, opts);
    auto flex = makeEngine(EngineKind::FlexSsd, sys);

    for (std::uint64_t s :
         {1024ull, 4096ull, 16384ull, 65536ull, 131072ull}) {
        RunConfig run;
        run.model = model;
        run.batch = 1;
        run.context_len = s;
        run.output_len = 2;  // keep s_mid ~ s
        const RunResult base = flex->run(run);
        const RunResult near = ans->run(run);
        const double t_base = base.traffic.attn_host_read_bytes +
                              base.traffic.attn_host_write_bytes;
        const double t_ans = near.traffic.attn_host_read_bytes +
                             near.traffic.attn_host_write_bytes;
        table.row()
            .cell(std::to_string(s))
            .cell(formatBytes(t_base))
            .cell(formatBytes(t_ans))
            .ratio(t_base / t_ans, 1)
            .num((static_cast<double>(s) + 1.0) / 2.0, 1);
    }
    table.print(std::cout);
    std::cout << "\nShape check: the measured ratio tracks (s+1)/2 and "
                 "grows linearly with context length.\n";
    return 0;
}
