/**
 * @file
 * Figure 14: total execution-time breakdown by output length. Longer
 * outputs amortise the fixed prefill cost, so HILOS's end-to-end
 * speedup over FLEX(SSD) grows with the output length (up to ~6x in
 * the paper).
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();
    HilosOptions opts;
    opts.num_devices = 16;

    printBanner(std::cout,
                "Figure 14: end-to-end time breakdown by output length "
                "(bs 16)");
    TextTable table({"model", "context", "output", "FLEX prefill",
                     "FLEX decode", "HILOS prefill", "HILOS decode",
                     "e2e speedup"});

    for (const ModelConfig &model : {opt66b(), opt175b()}) {
        for (std::uint64_t s : {16384ull, 65536ull}) {
            for (std::uint64_t out : {16ull, 64ull, 256ull, 1024ull}) {
                RunConfig run;
                run.model = model;
                run.batch = 16;
                run.context_len = s;
                run.output_len = out;
                const RunResult base =
                    makeEngine(EngineKind::FlexSsd, sys)->run(run);
                const RunResult hil =
                    makeEngine(EngineKind::Hilos, sys, opts)->run(run);
                table.row()
                    .cell(model.name)
                    .cell(std::to_string(s / 1024) + "K")
                    .cell(std::to_string(out))
                    .cell(formatSeconds(base.prefill_time))
                    .cell(formatSeconds(base.total_time -
                                        base.prefill_time))
                    .cell(formatSeconds(hil.prefill_time))
                    .cell(formatSeconds(hil.total_time -
                                        hil.prefill_time))
                    .ratio(hil.endToEndThroughput(out) /
                           base.endToEndThroughput(out));
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check: the end-to-end speedup grows with "
                 "output length as prefill amortises (paper: up to "
                 "~6.1x).\n";
    return 0;
}
