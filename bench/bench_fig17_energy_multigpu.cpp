/**
 * @file
 * Figure 17: (a) energy-consumption breakdown per engine (HILOS cuts
 * energy by up to ~85% versus FLEX(SSD) thanks to the latency
 * reduction outweighing the SmartSSD fleet power) and (b) comparison
 * with a 2-node, 8 x RTX A6000 vLLM deployment at long contexts, where
 * KV overflow and small batches bottleneck the multi-GPU cluster.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();

    printBanner(std::cout,
                "Figure 17(a): energy per generated token (bs 16, 32K "
                "context, 64 output tokens)");
    TextTable et({"model", "engine", "GPU J", "CPU J", "DRAM J",
                  "storage J", "total kJ", "J/token", "vs FLEX(SSD)"});
    for (const ModelConfig &model : {opt30b(), opt66b(), opt175b()}) {
        RunConfig run;
        run.model = model;
        run.batch = 16;
        run.context_len = 32768;
        run.output_len = 64;
        const double tokens =
            static_cast<double>(run.batch * run.output_len);

        const RunResult base =
            makeEngine(EngineKind::FlexSsd, sys)->run(run);
        const double base_jpt = base.energy.total() / tokens;

        auto add = [&](const std::string &name, const RunResult &r) {
            et.row().cell(model.name).cell(name);
            if (!r.feasible) {
                et.cell("OOM").cell("").cell("").cell("").cell("")
                    .cell("").cell("");
                return;
            }
            const double jpt = r.energy.total() / tokens;
            et.num(r.energy.gpu, 0)
                .num(r.energy.cpu, 0)
                .num(r.energy.dram, 0)
                .num(r.energy.storage, 0)
                .num(r.energy.total() / 1e3, 1)
                .num(jpt, 0)
                .cell(name == "FLEX(SSD)"
                          ? "1.00x"
                          : std::to_string(jpt / base_jpt)
                                    .substr(0, 4) +
                                "x");
        };
        add("FLEX(SSD)", base);
        add("FLEX(DRAM)",
            makeEngine(EngineKind::FlexDram, sys)->run(run));
        HilosOptions opts;
        opts.num_devices = 16;
        add("HILOS(16)",
            makeEngine(EngineKind::Hilos, sys, opts)->run(run));
    }
    et.print(std::cout);

    printBanner(std::cout,
                "Figure 17(b): vs 2-node 8 x A6000 vLLM (tensor + "
                "pipeline parallelism), OPT-66B, bs 16");
    TextTable vt({"context", "vLLM t/s", "vLLM note", "HILOS(8) t/s",
                  "HILOS(16) t/s", "HILOS(16)/vLLM"});
    VllmClusterConfig cluster;
    const VllmMultiGpuEngine vllm(sys, cluster);
    for (std::uint64_t s : {32768ull, 65536ull, 131072ull}) {
        RunConfig run;
        run.model = opt66b();
        run.batch = 16;
        run.context_len = s;
        run.output_len = 64;
        const RunResult v = vllm.run(run);
        HilosOptions o8;
        o8.num_devices = 8;
        HilosOptions o16;
        o16.num_devices = 16;
        const RunResult h8 =
            makeEngine(EngineKind::Hilos, sys, o8)->run(run);
        const RunResult h16 =
            makeEngine(EngineKind::Hilos, sys, o16)->run(run);
        vt.row()
            .cell(std::to_string(s / 1024) + "K")
            .num(v.feasible ? v.decodeThroughput() : 0.0, 3)
            .cell(v.note.empty() ? "fits" : v.note)
            .num(h8.decodeThroughput(), 3)
            .num(h16.decodeThroughput(), 3)
            .ratio(v.decodeThroughput() > 0
                       ? h16.decodeThroughput() / v.decodeThroughput()
                       : 0.0);
    }
    vt.print(std::cout);
    std::cout << "\nShape checks: HILOS reduces energy by up to ~85% "
                 "vs FLEX(SSD); at long contexts the multi-GPU cluster "
                 "thrashes its KV swap and HILOS pulls ahead (paper: "
                 "1.64-1.81x).\n";
    return 0;
}
