/**
 * @file
 * Figure 13 / §4.2: sensitivity to the X-cache ratio alpha and the
 * spill interval c.
 *  - The analytic model predicts alpha = 2 B_PCI / (B_SSD + B_PCI);
 *    with B_SSD/B_PCI ~ 3 (8 SmartSSDs) that is ~50%, and the sweep
 *    confirms alpha = 50% gives the best throughput.
 *  - c = 16 (4 KiB chunks) performs best across alpha; larger
 *    intervals pay XRT DMA-orchestration overhead, smaller ones pay
 *    sub-page spill penalties.
 *
 * Both sensitivity grids run through runGrid, so `--jobs N` fans the
 * points across worker threads with byte-identical tables.
 */

#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/xcache.h"

using namespace hilos;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig13_sensitivity");
    args.addOption("jobs", "1",
                   "worker threads for the sweep (0 = all cores)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt66b();
    run.batch = 16;
    run.context_len = 32768;
    run.output_len = 64;

    // Analytic alpha.
    HilosOptions probe;
    probe.num_devices = 8;
    HilosEngine probe_engine(sys, probe);
    const XCacheScheduler sched(probe_engine.internalReadBw(),
                                probe_engine.gdsBw(),
                                sys.gpu.fp16_peak * sys.gpu.gemm_efficiency);
    printBanner(std::cout, "X-cache analytic model (8 SmartSSDs)");
    std::cout << "B_SSD = " << probe_engine.internalReadBw() / 1e9
              << " GB/s, B_PCI = " << probe_engine.gdsBw() / 1e9
              << " GB/s (ratio "
              << probe_engine.internalReadBw() / probe_engine.gdsBw()
              << ")\n"
              << "alpha* = 2*B_PCI/(B_SSD+B_PCI) = "
              << sched.analyticAlpha() << " -> selected "
              << sched.selectAlpha() << "\n";

    printBanner(std::cout,
                "Figure 13: throughput (tokens/s) across alpha and "
                "spill interval c (OPT-66B, 32K, bs 16, 8 SmartSSDs)");
    const std::vector<double> alphas = {0.0, 0.25, 0.5, 0.75, 1.0};
    const std::vector<unsigned> intervals = {4, 16, 64};

    // Flatten both sensitivity grids (alpha-major, then the CXL modes)
    // into one sweep; runGrid hands the points back in grid order so
    // the tables render identically at any `--jobs` value.
    std::vector<GridPoint> grid;
    for (double alpha : alphas) {
        for (unsigned c : intervals) {
            HilosOptions opts;
            opts.num_devices = 8;
            opts.alpha_override = alpha;
            opts.spill_interval = c;
            grid.push_back(GridPoint{EngineKind::Hilos, opts, run});
        }
    }
    for (bool cxl_mode : {false, true}) {
        for (unsigned c : intervals) {
            HilosOptions opts;
            opts.num_devices = 8;
            opts.alpha_override = 0.5;
            opts.spill_interval = c;
            opts.cxl_mode = cxl_mode;
            grid.push_back(GridPoint{EngineKind::Hilos, opts, run});
        }
    }
    const std::vector<RunResult> results = runGrid(sys, grid, jobs);

    TextTable table({"alpha", "c=4", "c=16", "c=64", "best c"});
    std::size_t idx = 0;
    for (double alpha : alphas) {
        table.row().cell(std::to_string(static_cast<int>(alpha * 100)) +
                         "%");
        double best = 0.0;
        std::string best_c;
        for (unsigned c : intervals) {
            const RunResult &r = results[idx++];
            table.num(r.decodeThroughput(), 4);
            if (r.decodeThroughput() > best) {
                best = r.decodeThroughput();
                best_c = "c=" + std::to_string(c);
            }
        }
        table.cell(best_c);
    }
    table.print(std::cout);

    printBanner(std::cout,
                "Section 7.3: spill-interval sensitivity with a "
                "CXL.mem-coherent accelerator (alpha 50%)");
    TextTable cxl({"mode", "c=4", "c=16", "c=64",
                   "c=64 vs c=16"});
    for (bool cxl_mode : {false, true}) {
        cxl.row().cell(cxl_mode ? "CXL.mem" : "PCIe + XRT DMA");
        double t16 = 0, t64 = 0;
        for (unsigned c : intervals) {
            const RunResult &r = results[idx++];
            cxl.num(r.decodeThroughput(), 4);
            if (c == 16)
                t16 = r.decodeThroughput();
            if (c == 64)
                t64 = r.decodeThroughput();
        }
        cxl.ratio(t64 / t16, 4);
    }
    cxl.print(std::cout);

    std::cout << "\nShape checks: alpha = 50% peaks (matching the "
                 "analytic prediction at B_SSD/B_PCI ~ 3); c = 16 is "
                 "best for every alpha (4 KiB page alignment); CXL.mem "
                 "removes the large-interval DMA-orchestration penalty "
                 "(paper §7.3).\n";
    return 0;
}
