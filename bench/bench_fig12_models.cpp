/**
 * @file
 * Figure 12: model-architecture sensitivity.
 *  (a) accelerator kernel KV throughput per d_group — all kernels well
 *      above the ~3 GB/s internal P2P read rate, GQA slightly below
 *      the d_group = 1 kernel in bytes/s;
 *  (b) end-to-end decoding throughput on GQA (Qwen2.5-32B) and MoE
 *      (Mixtral-8x7B, GLaM-143B) models across context lengths: HILOS
 *      1.16-3.36x over the best baseline, the gap widening with
 *      context.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "accel/cycle_model.h"
#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

int
main()
{
    printBanner(std::cout,
                "Figure 12(a): attention kernel throughput (32K "
                "context, d = 128)");
    TextTable kt({"kernel", "GFLOPS", "KV GB/s", "> 3.0 GB/s P2P?"});
    const CycleModel cm{CycleModelConfig{}};
    for (std::size_t dg : {1ul, 4ul, 5ul}) {
        const double gf = cm.gflops(32768, 128, dg);
        const double gbs = cm.kvBytesPerSec(32768, 128, dg) / 1e9;
        kt.row()
            .cell("d_group=" + std::to_string(dg))
            .num(gf, 1)
            .num(gbs, 2)
            .cell(gbs > 3.0 ? "yes" : "NO");
    }
    kt.print(std::cout);

    printBanner(std::cout,
                "Figure 12(b): end-to-end decode throughput, GQA/MoE "
                "models (bs 16)");
    SystemConfig sys = defaultSystem();
    HilosOptions opts;
    opts.num_devices = 8;
    TextTable et({"model", "context", "FLEX(SSD)", "FLEX(DRAM)",
                  "HILOS(8)", "vs best baseline"});
    for (const ModelConfig &model :
         {qwen32b(), mixtral8x7b(), glam143b()}) {
        for (std::uint64_t s : {16384ull, 65536ull, 131072ull}) {
            RunConfig run;
            run.model = model;
            run.batch = 16;
            run.context_len = s;
            run.output_len = 64;
            const RunResult ssd =
                makeEngine(EngineKind::FlexSsd, sys)->run(run);
            const RunResult dram =
                makeEngine(EngineKind::FlexDram, sys)->run(run);
            const RunResult hil =
                makeEngine(EngineKind::Hilos, sys, opts)->run(run);
            const double best_base = std::max(
                ssd.decodeThroughput(), dram.decodeThroughput());
            et.row()
                .cell(model.name)
                .cell(std::to_string(s / 1024) + "K")
                .num(ssd.decodeThroughput(), 3)
                .cell(dram.feasible
                          ? std::to_string(dram.decodeThroughput())
                                .substr(0, 5)
                          : "OOM")
                .num(hil.decodeThroughput(), 3)
                .ratio(best_base > 0
                           ? hil.decodeThroughput() / best_base
                           : 0.0);
        }
    }
    et.print(std::cout);
    std::cout << "\nShape checks: kernels all exceed the 3 GB/s P2P "
                 "feed; HILOS beats the best baseline by ~1.2-3.4x with "
                 "the gap growing with context (paper Fig. 12).\n";
    return 0;
}
