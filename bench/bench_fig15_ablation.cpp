/**
 * @file
 * Figure 15 ablation: ANS alone, ANS + delayed writeback (WB), ANS +
 * cooperative X-cache (X), and full HILOS, normalised to FLEX(SSD).
 * Paper shape: ANS up to 3.39x; +WB up to 1.32x over ANS; +X up to
 * 1.64x over ANS; GLaM-143B gains are more modest (low KV-to-weight
 * ratio); benefits grow with context length and batch size.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

namespace {

RunResult
runVariant(const SystemConfig &sys, const RunConfig &run, unsigned devices,
           bool wb, bool xc)
{
    HilosOptions opts;
    opts.num_devices = devices;
    opts.delayed_writeback = wb;
    opts.xcache = xc;
    return makeEngine(EngineKind::Hilos, sys, opts)->run(run);
}

}  // namespace

int
main()
{
    SystemConfig sys = defaultSystem();
    const std::vector<ModelConfig> models = {opt66b(), opt175b(),
                                             glam143b()};
    const std::vector<std::uint64_t> contexts = {4096, 32768, 131072};

    for (unsigned devices : {8u, 4u}) {
        printBanner(std::cout,
                    "Figure 15: ablation, throughput normalized to "
                    "FLEX(SSD), " +
                        std::to_string(devices) + " SmartSSDs");
        TextTable table({"model", "context", "ANS", "ANS+WB", "ANS+X",
                         "HILOS", "WB/ANS", "X/ANS"});

        for (const auto &model : models) {
            for (std::uint64_t s : contexts) {
                RunConfig run;
                run.model = model;
                run.batch = 16;
                run.context_len = s;
                run.output_len = 64;

                const RunResult base =
                    makeEngine(EngineKind::FlexSsd, sys)->run(run);
                const RunResult ans =
                    runVariant(sys, run, devices, false, false);
                const RunResult ans_wb =
                    runVariant(sys, run, devices, true, false);
                const RunResult ans_x =
                    runVariant(sys, run, devices, false, true);
                const RunResult full =
                    runVariant(sys, run, devices, true, true);

                table.row()
                    .cell(model.name)
                    .cell(std::to_string(s / 1024) + "K")
                    .ratio(normalizedThroughput(ans, base))
                    .ratio(normalizedThroughput(ans_wb, base))
                    .ratio(normalizedThroughput(ans_x, base))
                    .ratio(normalizedThroughput(full, base))
                    .ratio(ans_wb.decodeThroughput() /
                           ans.decodeThroughput())
                    .ratio(ans_x.decodeThroughput() /
                           ans.decodeThroughput());
            }
        }
        table.print(std::cout);
    }
    std::cout << "\nShape checks (paper): ANS <= ~3.4x; WB adds up to "
                 "~1.3x over ANS (largest at short contexts); X adds up "
                 "to ~1.6x over ANS; GLaM-143B gains are modest.\n";
    return 0;
}
