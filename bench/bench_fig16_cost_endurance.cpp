/**
 * @file
 * Figure 16: cost-effectiveness and endurance.
 *  (a) tokens/sec/$ normalised to FLEX(SSD) with the paper's price
 *      list ($15K server, $7K A100 / $30K H100, $400 PCIe4 SSDs, $10K
 *      chassis + 16 x $2,400 SmartSSDs). Shapes: HILOS up to ~2x over
 *      FLEX(SSD) (66B), FLEX(DRAM) wins when DRAM suffices, the H100
 *      swap speeds FLEX up less than it costs.
 *  (b) serviceable requests before the fleet's PBW budget is spent,
 *      for Azure-derived Small/Medium/Long request classes. Shapes:
 *      HILOS 1.34-1.47x more requests than the baseline; c 16 -> 32
 *      adds another ~1.02-1.05x; >4M Long requests at 175B.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"
#include "llm/workload.h"

using namespace hilos;

namespace {

/**
 * Per-request NAND write volume. Baselines commit every decode-step KV
 * entry with sub-page write amplification; HILOS spills page-aligned
 * chunks and stores X (half the KV size) for the alpha portion.
 */
double
requestNandBytes(const ModelConfig &m, const Request &req, bool is_hilos,
                 double alpha, unsigned spill_interval)
{
    const double kv_tok =
        static_cast<double>(m.kvBytesPerTokenPerLayer());
    const double layers = static_cast<double>(m.layers);
    // Prefill: sequential row-wise writes, WA ~ 1. X-cache stores X
    // (half of K+V) for the alpha portion.
    const double prefill_scale = is_hilos ? (1.0 - alpha / 2.0) : 1.0;
    const double prefill =
        static_cast<double>(req.input_tokens) * kv_tok * layers *
        prefill_scale;
    // Decode: per-token appends. The baseline commits 256 B per head
    // with partial batching (effective WA ~ 4); HILOS buffers
    // spill_interval entries and writes page-aligned chunks.
    double decode_wa;
    if (is_hilos) {
        const double chunk =
            static_cast<double>(spill_interval) *
            static_cast<double>(2 * m.headDim() * m.dtype_bytes);
        // Page padding plus residual FTL/GC amplification; larger
        // spill intervals leave fewer partially-filled pages.
        decode_wa = std::max(1.0, 4096.0 / chunk) *
                    (1.0 + 1.9 / static_cast<double>(spill_interval));
    } else {
        // The baseline batches per-layer appends into mostly-sequential
        // chunks but still straddles page boundaries per step.
        decode_wa = 1.5;
    }
    const double decode = static_cast<double>(req.output_tokens) *
                          kv_tok * layers * decode_wa * prefill_scale;
    return prefill + decode;
}

}  // namespace

int
main()
{
    SystemConfig sys = defaultSystem();
    SystemConfig h100sys = h100System();

    printBanner(std::cout,
                "Figure 16(a): cost-effectiveness (tokens/s/$) "
                "normalized to FLEX(SSD), bs 16, 32K context");
    TextTable ct({"model", "config", "tokens/s", "price $",
                  "tok/s/$ vs FLEX(SSD)"});
    for (const ModelConfig &model : {opt66b(), opt175b()}) {
        RunConfig run;
        run.model = model;
        run.batch = 16;
        run.context_len = 32768;
        run.output_len = 64;

        const RunResult base =
            makeEngine(EngineKind::FlexSsd, sys)->run(run);
        const double base_price =
            systemPriceUsd(sys, StorageKind::BaselineSsds,
                           sys.num_baseline_ssds);
        const double base_ce =
            costEffectiveness(base.decodeThroughput(), base_price);

        auto add = [&](const std::string &name, const RunResult &r,
                       double price) {
            ct.row().cell(model.name).cell(name);
            if (!r.feasible) {
                ct.cell("OOM").num(price, 0).cell("-");
                return;
            }
            ct.num(r.decodeThroughput(), 3)
                .num(price, 0)
                .ratio(costEffectiveness(r.decodeThroughput(), price) /
                       base_ce);
        };

        add("FLEX(SSD) A100", base, base_price);
        add("FLEX(DRAM) A100",
            makeEngine(EngineKind::FlexDram, sys)->run(run),
            systemPriceUsd(sys, StorageKind::None, 0));
        add("FLEX(SSD) H100",
            makeEngine(EngineKind::FlexSsd, h100sys)->run(run),
            systemPriceUsd(h100sys, StorageKind::BaselineSsds,
                           h100sys.num_baseline_ssds));
        HilosOptions opts;
        opts.num_devices = 16;
        add("HILOS(16) A100",
            makeEngine(EngineKind::Hilos, sys, opts)->run(run),
            systemPriceUsd(sys, StorageKind::SmartSsds, 16));
    }
    ct.print(std::cout);

    printBanner(std::cout,
                "Figure 16(b): endurance — serviceable requests with "
                "16 SmartSSDs (7.008 PBW each)");
    TextTable et({"model", "class", "baseline Mreq", "HILOS c=16",
                  "HILOS c=32", "HILOS/base", "c32/c16"});
    const double alpha = 0.5;
    for (const ModelConfig &model : {opt66b(), opt175b()}) {
        for (RequestClass cls : {RequestClass::Small,
                                 RequestClass::Medium,
                                 RequestClass::Long}) {
            const Request req = makeRequest(cls);
            EnduranceInputs in;
            in.devices = 16;
            in.bytes_per_request =
                requestNandBytes(model, req, false, 0.0, 16);
            const double base_req = serviceableRequests(in) / 1e6;
            in.bytes_per_request =
                requestNandBytes(model, req, true, alpha, 16);
            const double h16 = serviceableRequests(in) / 1e6;
            in.bytes_per_request =
                requestNandBytes(model, req, true, alpha, 32);
            const double h32 = serviceableRequests(in) / 1e6;
            et.row()
                .cell(model.name)
                .cell(requestClassName(cls))
                .num(base_req, 2)
                .num(h16, 2)
                .num(h32, 2)
                .ratio(h16 / base_req)
                .ratio(h32 / h16, 3);
        }
    }
    et.print(std::cout);
    std::cout << "\nShape checks: HILOS ~1.3-1.5x baseline requests; "
                 "c=32 adds ~1.02-1.05x; >4M Long requests at 175B "
                 "(paper Fig. 16).\n";
    return 0;
}
