/**
 * @file
 * Table 3 + §5.1: accelerator resource utilisation, peak performance
 * and power per d_group configuration; performance-estimator validation
 * (Pearson correlation vs a detailed block-level event simulation over
 * 4K-32K sequence lengths); and the two-pass vs three-pass softmax
 * off-chip traffic comparison plus the §7.2 PCIe 5.0 DSP-scaling
 * analysis.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "accel/cycle_model.h"
#include "accel/kernel_sim.h"
#include "accel/resource_model.h"
#include "accel/softmax.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"

using namespace hilos;

namespace {

/**
 * "Measured" kernel time: the library's block-level simulator with the
 * deterministic 10% measurement-noise model enabled.
 */
Seconds
simulateKernel(std::size_t s, std::size_t d, std::size_t d_group)
{
    KernelSimConfig cfg;
    cfg.measurement_noise = 0.10;
    return KernelSimulator(cfg).simulate(s, d, d_group);
}

}  // namespace

int
main()
{
    const ResourceModel rm;
    const CycleModel cm{CycleModelConfig{}};

    printBanner(std::cout,
                "Table 3: resource utilisation and achieved performance "
                "(KU15P, 296.05 MHz)");
    TextTable rt({"config", "LUT %", "FF %", "BRAM %", "URAM %", "DSP %",
                  "peak perf", "power W", "fits?"});
    for (std::size_t dg : {1ul, 4ul, 5ul}) {
        const ResourceUtilization u = rm.utilization(dg);
        char perf[32];
        std::snprintf(perf, sizeof(perf), "%.1f GFLOPS",
                      cm.gflops(1u << 20, 128, dg));
        rt.row()
            .cell("d_group=" + std::to_string(dg))
            .num(u.lut_pct, 2)
            .num(u.ff_pct, 2)
            .num(u.bram_pct, 2)
            .num(u.uram_pct, 2)
            .num(u.dsp_pct, 2)
            .cell(perf)
            .num(rm.powerWatts(dg), 2)
            .cell(u.fits() ? "yes" : "NO");
    }
    rt.print(std::cout);

    printBanner(std::cout,
                "Performance estimator validation (Pearson r vs "
                "block-level simulation, s = 4K..32K)");
    TextTable pt({"kernel", "pearson r", ">= 0.9?"});
    for (std::size_t dg : {1ul, 4ul, 5ul}) {
        std::vector<double> est, meas;
        for (std::size_t s = 4096; s <= 32768; s += 2048) {
            est.push_back(cm.kernelTime(s, 128, dg));
            meas.push_back(simulateKernel(s, 128, dg));
        }
        const double r = pearson(est, meas);
        pt.row()
            .cell("d_group=" + std::to_string(dg))
            .num(r, 4)
            .cell(r >= 0.9 ? "yes" : "NO");
    }
    pt.print(std::cout);

    printBanner(std::cout,
                "Two-pass vs three-pass softmax off-chip traffic");
    TextTable st({"sequence", "3-pass elems", "2-pass elems", "saving"});
    for (std::uint64_t s : {4096ull, 32768ull, 131072ull}) {
        st.row()
            .cell(std::to_string(s / 1024) + "K")
            .cell(std::to_string(TwoPassSoftmax::threePassTrafficElements(s)))
            .cell(std::to_string(TwoPassSoftmax::trafficElements(s)))
            .ratio(static_cast<double>(
                       TwoPassSoftmax::threePassTrafficElements(s)) /
                   static_cast<double>(TwoPassSoftmax::trafficElements(s)));
    }
    st.print(std::cout);

    printBanner(std::cout,
                "Section 7.2: DSPs needed for a 4x (PCIe 5.0) "
                "throughput scale-up");
    TextTable dt({"config", "DSPs now", "DSPs at 4x", "budget",
                  "feasible?"});
    for (std::size_t dg : {1ul, 4ul, 5ul}) {
        const std::uint64_t now = rm.dspCount(dg);
        const std::uint64_t scaled = rm.dspsForThroughputScale(dg, 4.0);
        dt.row()
            .cell("d_group=" + std::to_string(dg))
            .cell(std::to_string(now))
            .cell(std::to_string(scaled))
            .cell(std::to_string(rm.budget().dsps))
            .cell(scaled <= rm.budget().dsps ? "yes" : "NO (exceeds chip)");
    }
    dt.print(std::cout);
    std::cout << "\nShape checks: utilisation/power reproduce Table 3; "
                 "estimator r >= 0.93-level correlation; two-pass "
                 "softmax saves 1.33x traffic; 4x DSP scaling exceeds "
                 "the KU15P at d_group >= 4 (paper §7.2: >2,000 DSPs).\n";
    return 0;
}
