/**
 * @file
 * Shared machine-readable bench output.
 *
 * Every bench binary that tracks a perf/robustness trajectory writes a
 * `BENCH_<name>.json` document next to its stdout tables: a flat meta
 * object (configuration of the run) plus an array of row objects (one
 * per swept point). Numbers are rendered with the same canonical %.9g
 * the golden-snapshot serializer uses, so the JSON is byte-identical
 * run-to-run for a deterministic bench and diffs localise a perf change
 * to the row that moved. Header-only: bench binaries share no library
 * beyond `hilos` itself.
 */

#ifndef HILOS_BENCH_BENCH_JSON_H_
#define HILOS_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace hilos {
namespace bench {

/** Canonical %.9g rendering (nan/inf spelled as null, -0 folded to 0). */
inline std::string
jsonNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";  // JSON has no nan/inf; null keeps the document valid
    if (v == 0.0)
        v = 0.0;  // fold -0
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Minimal string escaping (quotes, backslashes, control chars). */
inline std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

/**
 * Builder for one BENCH_<name>.json document: meta scalars first, then
 * rows in insertion order. Keys keep insertion order (no sorting) so
 * the document reads like the bench's own table.
 */
class BenchJson
{
  public:
    /** @param name bench name; the file becomes BENCH_<name>.json */
    explicit BenchJson(std::string name) : name_(std::move(name)) {}

    /** Add a top-level meta field. */
    BenchJson &
    meta(const std::string &key, double value)
    {
        meta_.emplace_back(key, jsonNumber(value));
        return *this;
    }

    BenchJson &
    meta(const std::string &key, std::uint64_t value)
    {
        meta_.emplace_back(key, std::to_string(value));
        return *this;
    }

    BenchJson &
    meta(const std::string &key, const std::string &value)
    {
        meta_.emplace_back(key, jsonString(value));
        return *this;
    }

    /** Start a new row; subsequent cell() calls fill it. */
    BenchJson &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    BenchJson &
    cell(const std::string &key, double value)
    {
        rows_.back().emplace_back(key, jsonNumber(value));
        return *this;
    }

    BenchJson &
    cell(const std::string &key, std::uint64_t value)
    {
        rows_.back().emplace_back(key, std::to_string(value));
        return *this;
    }

    BenchJson &
    cell(const std::string &key, const std::string &value)
    {
        rows_.back().emplace_back(key, jsonString(value));
        return *this;
    }

    BenchJson &
    cell(const std::string &key, bool value)
    {
        rows_.back().emplace_back(key, value ? "true" : "false");
        return *this;
    }

    /** Render the full document. */
    std::string
    str() const
    {
        std::string out = "{\n  \"bench\": " + jsonString(name_);
        for (const auto &kv : meta_)
            out += ",\n  " + jsonString(kv.first) + ": " + kv.second;
        out += ",\n  \"rows\": [";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out += i ? ",\n    {" : "\n    {";
            for (std::size_t j = 0; j < rows_[i].size(); ++j) {
                out += j ? ", " : "";
                out += jsonString(rows_[i][j].first) + ": " +
                       rows_[i][j].second;
            }
            out += "}";
        }
        out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
        return out;
    }

    /**
     * Write BENCH_<name>.json into `dir` (default: the working
     * directory). Reports the path on stdout; a write failure is a
     * warning, not a bench failure — the stdout tables remain the
     * primary output.
     */
    void
    write(const std::string &dir = ".") const
    {
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        std::ofstream out(path);
        out << str();
        if (out.good())
            std::cout << "wrote " << path << "\n";
        else
            std::cerr << "warning: could not write " << path << "\n";
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> meta_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace bench
}  // namespace hilos

#endif  // HILOS_BENCH_BENCH_JSON_H_
