/**
 * @file
 * Cross-validation: the analytic HILOS engine versus the slice-level
 * event simulation of the same decoding step. The two models are built
 * independently (closed-form stage composition vs contended-resource
 * replay); agreement within tens of percent across the grid is the
 * internal consistency check for every HILOS number reported by the
 * other benches, in the spirit of the paper's estimator validation
 * (§5.1).
 *
 * Each grid point constructs its own engine and simulator, so the
 * sweep fans across `--jobs N` worker threads with byte-identical
 * output (results are merged in grid order, not completion order).
 */

#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/event_sim.h"
#include "runtime/flexgen.h"
#include "runtime/step_plan.h"
#include "sim/parallel.h"
#include "support/oracles.h"

using namespace hilos;

int
main(int argc, char **argv)
{
    ArgParser args("bench_crossval_eventsim");
    args.addOption("jobs", "1",
                   "worker threads for the sweep (0 = all cores)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }

    SystemConfig sys = defaultSystem();

    struct Point {
        ModelConfig model;
        std::uint64_t context;
        unsigned devices;
    };
    std::vector<Point> points;
    for (const ModelConfig &model : {opt66b(), opt175b()})
        for (std::uint64_t s : {8192ull, 32768ull, 131072ull})
            for (unsigned n : {8u, 16u})
                points.push_back(Point{model, s, n});

    struct PairResult {
        RunResult analytic;
        EventSimResult sim;
    };
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }
    SweepDriver driver(jobs);
    const std::vector<PairResult> results =
        driver.map(points, [&sys](const Point &p) {
            RunConfig run;
            run.model = p.model;
            run.batch = 16;
            run.context_len = p.context;
            run.output_len = 64;
            HilosOptions opts;
            opts.num_devices = p.devices;
            const HilosEngine engine(sys, opts);
            const HilosEventSimulator sim(sys, opts);
            return PairResult{engine.run(run),
                              sim.simulateDecodeStep(run)};
        });

    printBanner(std::cout,
                "Analytic engine vs slice-level event simulation "
                "(decode step seconds)");
    TextTable table({"model", "context", "devices", "analytic", "event sim",
                     "ratio", "uplink util", "internal util", "agreement"});

    // The hand-picked grid historically sits inside 0.7-1.4x; enforce a
    // band with modest headroom via the same check the fuzz harness's
    // engine oracle applies to random configurations.
    constexpr double kBandLo = 0.5;
    constexpr double kBandHi = 2.0;
    int violations = 0;
    std::vector<double> analytic_series, sim_series;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const RunResult &a = results[i].analytic;
        const EventSimResult &e = results[i].sim;
        analytic_series.push_back(a.decode_step_time);
        sim_series.push_back(e.decode_step_time);
        const test::AgreementCheck chk =
            test::checkEngineAgreement(a, e, kBandLo, kBandHi);
        if (!chk.ok)
            violations++;
        table.row()
            .cell(p.model.name)
            .cell(std::to_string(p.context / 1024) + "K")
            .cell(std::to_string(p.devices))
            .cell(formatSeconds(a.decode_step_time))
            .cell(formatSeconds(e.decode_step_time))
            .ratio(e.decode_step_time / a.decode_step_time)
            .num(100.0 * e.uplink_utilization, 1)
            .num(100.0 * e.internal_utilization, 1)
            .cell(chk.ok ? "ok" : chk.detail);
    }
    table.print(std::cout);

    std::cout << "\nPearson r between the two models across the grid: "
              << pearson(analytic_series, sim_series) << "\n"
              << "Shape check: ratios stay within ~0.7-1.4x and the "
                 "correlation is ~1 (the analytic model is a faithful "
                 "summary of the contended-resource replay).\n";

    // --- FlexGen via the StepPlan replay backend ---
    // The same cross-validation for a second engine: the plan FlexGen
    // emits is evaluated analytically (its RunResult) and replayed over
    // contended per-resource timelines. Random corners stress the
    // analytic model harder than the hand-picked HILOS grid, so the
    // band matches the fuzz oracle's.
    struct FlexPoint {
        ModelConfig model;
        std::uint64_t context;
        FlexTier tier;
    };
    std::vector<FlexPoint> flex_points;
    for (const ModelConfig &model : {opt66b(), opt175b()})
        for (std::uint64_t s : {8192ull, 32768ull, 131072ull})
            for (FlexTier tier : {FlexTier::HostDram, FlexTier::BaselineSsds})
                flex_points.push_back(FlexPoint{model, s, tier});

    const std::vector<PairResult> flex_results =
        driver.map(flex_points, [&sys](const FlexPoint &p) {
            RunConfig run;
            run.model = p.model;
            run.batch = 16;
            run.context_len = p.context;
            run.output_len = 64;
            const FlexGenEngine engine(sys, p.tier);
            RunResult analytic = engine.run(run);
            if (!analytic.feasible || analytic.effective_batch == 0)
                return PairResult{analytic, EventSimResult{}};
            run.batch = analytic.effective_batch;
            analytic = engine.run(run);
            const PlanSimResult ps =
                simulatePlan(engine.decodeStepPlan(run));
            return PairResult{analytic, toEventSimResult(ps)};
        });

    printBanner(std::cout,
                "FlexGen analytic evaluation vs StepPlan replay "
                "(decode step seconds)");
    TextTable flex_table({"model", "context", "tier", "analytic", "replay",
                          "ratio", "pcie util", "storage util",
                          "agreement"});
    constexpr double kFlexBandLo = 0.4;
    constexpr double kFlexBandHi = 2.5;
    std::vector<double> flex_analytic_series, flex_sim_series;
    for (std::size_t i = 0; i < flex_points.size(); ++i) {
        const FlexPoint &p = flex_points[i];
        const RunResult &a = flex_results[i].analytic;
        const EventSimResult &e = flex_results[i].sim;
        const char *tier =
            p.tier == FlexTier::HostDram ? "DRAM" : "SSD";
        if (!a.feasible || a.effective_batch == 0) {
            flex_table.row()
                .cell(p.model.name)
                .cell(std::to_string(p.context / 1024) + "K")
                .cell(tier)
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("-")
                .cell("infeasible");
            continue;
        }
        flex_analytic_series.push_back(a.decode_step_time);
        flex_sim_series.push_back(e.decode_step_time);
        const test::AgreementCheck chk =
            test::checkEngineAgreement(a, e, kFlexBandLo, kFlexBandHi);
        if (!chk.ok)
            violations++;
        flex_table.row()
            .cell(p.model.name)
            .cell(std::to_string(p.context / 1024) + "K")
            .cell(tier)
            .cell(formatSeconds(a.decode_step_time))
            .cell(formatSeconds(e.decode_step_time))
            .ratio(e.decode_step_time / a.decode_step_time)
            .num(100.0 * e.uplink_utilization, 1)
            .num(100.0 * e.internal_utilization, 1)
            .cell(chk.ok ? "ok" : chk.detail);
    }
    flex_table.print(std::cout);

    std::cout << "\nPearson r between the two backends across the "
                 "FlexGen grid: "
              << pearson(flex_analytic_series, flex_sim_series) << "\n"
              << "Shape check: the replay only adds queueing, so ratios "
                 "sit at >= 1 and within the agreement band.\n";
    if (violations != 0) {
        std::cerr << "\nFAIL: " << violations
                  << " grid point(s) violated the agreement band or a "
                     "structural invariant\n";
        return 1;
    }
    return 0;
}
