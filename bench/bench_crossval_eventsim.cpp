/**
 * @file
 * Cross-validation: the analytic HILOS engine versus the slice-level
 * event simulation of the same decoding step. The two models are built
 * independently (closed-form stage composition vs contended-resource
 * replay); agreement within tens of percent across the grid is the
 * internal consistency check for every HILOS number reported by the
 * other benches, in the spirit of the paper's estimator validation
 * (§5.1).
 */

#include <iostream>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/event_sim.h"

using namespace hilos;

int
main()
{
    SystemConfig sys = defaultSystem();

    printBanner(std::cout,
                "Analytic engine vs slice-level event simulation "
                "(decode step seconds)");
    TextTable table({"model", "context", "devices", "analytic", "event sim",
                     "ratio", "uplink util", "internal util"});

    std::vector<double> analytic_series, sim_series;
    for (const ModelConfig &model : {opt66b(), opt175b()}) {
        for (std::uint64_t s : {8192ull, 32768ull, 131072ull}) {
            for (unsigned n : {8u, 16u}) {
                RunConfig run;
                run.model = model;
                run.batch = 16;
                run.context_len = s;
                run.output_len = 64;
                HilosOptions opts;
                opts.num_devices = n;

                const HilosEngine engine(sys, opts);
                const RunResult a = engine.run(run);
                const HilosEventSimulator sim(sys, opts);
                const EventSimResult e = sim.simulateDecodeStep(run);

                analytic_series.push_back(a.decode_step_time);
                sim_series.push_back(e.decode_step_time);
                table.row()
                    .cell(model.name)
                    .cell(std::to_string(s / 1024) + "K")
                    .cell(std::to_string(n))
                    .cell(formatSeconds(a.decode_step_time))
                    .cell(formatSeconds(e.decode_step_time))
                    .ratio(e.decode_step_time / a.decode_step_time)
                    .num(100.0 * e.uplink_utilization, 1)
                    .num(100.0 * e.internal_utilization, 1);
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nPearson r between the two models across the grid: "
              << pearson(analytic_series, sim_series) << "\n"
              << "Shape check: ratios stay within ~0.7-1.4x and the "
                 "correlation is ~1 (the analytic model is a faithful "
                 "summary of the contended-resource replay).\n";
    return 0;
}
