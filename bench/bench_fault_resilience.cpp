/**
 * @file
 * Fault-resilience study: how the HILOS fleet degrades under injected
 * storage faults (not a paper figure; the paper assumes a healthy
 * fleet).
 *  - A zero-fault FaultPlan reproduces the fault-free engine exactly
 *    (the regression invariant the subsystem is built around).
 *  - Probabilistic NAND/NVMe faults add retry-recovery latency but
 *    leave availability at 1.0.
 *  - A mid-run device failure re-dispatches the failed device's shards
 *    onto the survivors; the degraded step time lands near the
 *    analytic prediction for the shrunken fleet.
 *  - The event simulator reproduces bit-identical results for the same
 *    seed and plan.
 *
 * The scenario sweep runs through the sweep driver: `--jobs N` fans
 * the independent fault plans across worker threads with byte-identical
 * output (per-task RNG state lives in the plan seed, not the driver).
 */

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/event_sim.h"
#include "sim/parallel.h"

using namespace hilos;

namespace {

RunResult
runWithPlan(const SystemConfig &sys, const RunConfig &run,
            unsigned devices, const FaultPlan &plan)
{
    HilosOptions opts;
    opts.num_devices = devices;
    opts.fault_plan = plan;
    return makeEngine(EngineKind::Hilos, sys, opts)->run(run);
}

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::cerr << "FAILED: " << what << "\n";
        std::exit(1);
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fault_resilience");
    args.addOption("jobs", "1",
                   "worker threads for the scenario sweep (0 = all "
                   "cores)");
    args.addOption("json-dir", ".",
                   "where BENCH_fault_resilience.json goes (empty = "
                   "skip)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }
    SweepDriver driver(jobs);

    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt66b();
    run.batch = 16;
    run.context_len = 32768;
    run.output_len = 64;
    const unsigned N = 8;

    // --- Zero-fault plan == fault-free engine, exactly ---
    const RunResult clean = runWithPlan(sys, run, N, FaultPlan{});
    FaultPlan seeded_empty;
    seeded_empty.seed = 12345;  // seed alone must not perturb anything
    const RunResult clean2 = runWithPlan(sys, run, N, seeded_empty);
    check(clean.decode_step_time == clean2.decode_step_time &&
              clean.prefill_time == clean2.prefill_time &&
              clean.total_time == clean2.total_time,
          "zero-fault plan must be bit-identical to the fault-free run");
    check(!clean.faults.any(), "zero-fault run must report no faults");

    printBanner(std::cout,
                "fault resilience (OPT-66B, 32K context, bs 16, " +
                    std::to_string(N) + " SmartSSDs)");
    std::cout << "fault-free decode step: " << clean.decode_step_time
              << " s (" << clean.decodeThroughput() << " tokens/s)\n";

    // --- Scenario sweep ---
    struct Scenario {
        const char *name;
        FaultPlan plan;
    };
    const Seconds mid = clean.prefill_time +
                        32.0 * clean.decode_step_time;
    std::vector<Scenario> scenarios;
    scenarios.push_back({"healthy", FaultPlan{}});
    scenarios.push_back(
        {"nand-err 1e-3", FaultPlan{}.addNandReadError(1e-3)});
    scenarios.push_back(
        {"nvme-timeout 1e-4", FaultPlan{}.addNvmeTimeout(1e-4)});
    scenarios.push_back(
        {"uplink 0.7x", FaultPlan{}.addUplinkDegrade(0.0, 0.7)});
    scenarios.push_back(
        {"dev3 p2p 0.5x", FaultPlan{}.addLinkDegrade(0.0, 0.5, 3)});
    scenarios.push_back(
        {"dev3 fails mid-run", FaultPlan{}.addDeviceFailure(mid, 3)});
    scenarios.push_back({"dev3+dev5 fail",
                         FaultPlan{}
                             .addDeviceFailure(mid, 3)
                             .addDeviceFailure(mid, 5)});

    // Scenarios are independent (each run constructs its own engine
    // and fault-injector RNG from the plan seed), so fan them across
    // the sweep driver; results come back in scenario order and the
    // table is byte-identical at any `--jobs` value.
    const std::vector<RunResult> scenario_results =
        driver.map(scenarios, [&](const Scenario &sc) {
            return runWithPlan(sys, run, N, sc.plan);
        });

    bench::BenchJson json("fault_resilience");
    json.meta("model", std::string("OPT-66B"))
        .meta("context", run.context_len)
        .meta("batch", run.batch)
        .meta("devices", std::uint64_t{N});
    TextTable table({"scenario", "tokens/s", "slowdown", "availability",
                     "retry s", "rebuild s"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &sc = scenarios[i];
        const RunResult &r = scenario_results[i];
        table.row().cell(sc.name);
        if (!r.feasible) {
            table.cell("unavailable").cell("-").cell("-").cell("-").cell(
                r.note);
            json.row()
                .cell("scenario", std::string(sc.name))
                .cell("feasible", false);
            continue;
        }
        table.num(r.decodeThroughput(), 4)
            .ratio(r.faults.slowdown, 3)
            .num(r.faults.availability, 4)
            .num(r.faults.retry_time, 4)
            .num(r.faults.rebuild_time, 4);
        json.row()
            .cell("scenario", std::string(sc.name))
            .cell("feasible", true)
            .cell("tokens_per_s", r.decodeThroughput())
            .cell("slowdown", r.faults.slowdown)
            .cell("availability", r.faults.availability)
            .cell("retry_s", double(r.faults.retry_time))
            .cell("rebuild_s", double(r.faults.rebuild_time))
            .cell("requests_degraded", r.faults.requests_degraded)
            .cell("requests_failed", r.faults.requests_failed);
    }
    table.print(std::cout);

    // --- Degraded fleet vs the analytic (N-1)-device model ---
    const RunResult failed =
        runWithPlan(sys, run, N, FaultPlan{}.addDeviceFailure(mid, 3));
    check(failed.feasible, "single-device failure must stay feasible");
    check(failed.faults.devices_failed == 1 &&
              failed.faults.devices_surviving == N - 1,
          "failure accounting");
    HilosOptions shrunk;
    shrunk.num_devices = N - 1;
    const RunResult seven =
        makeEngine(EngineKind::Hilos, sys, shrunk)->run(run);
    const double ratio =
        failed.faults.degraded_step_time / seven.decode_step_time;
    std::cout << "\ndegraded step vs analytic " << (N - 1)
              << "-device model: " << ratio << "x (expect ~1)\n";
    check(ratio > 0.95 && ratio < 1.05,
          "degraded step must match the surviving-fleet model");

    // --- Whole-fleet failure: clear error, no NaN ---
    const RunResult dead =
        runWithPlan(sys, run, N, FaultPlan{}.addFleetFailure(mid));
    check(!dead.feasible && !dead.note.empty(),
          "fleet failure must yield a clear error");
    check(!std::isnan(dead.decode_step_time) &&
              !std::isnan(dead.total_time),
          "fleet failure must not produce NaN");
    std::cout << "whole-fleet failure: \"" << dead.note << "\"\n";

    // --- Event-sim determinism under faults ---
    HilosOptions sim_opts;
    sim_opts.num_devices = N;
    sim_opts.fault_plan =
        FaultPlan{}.addNandReadError(5e-3).addNvmeTimeout(1e-3);
    const HilosEventSimulator sim(sys, sim_opts);
    const EventSimResult a = sim.simulateDecodeStep(run);
    const EventSimResult b = sim.simulateDecodeStep(run);
    check(a.decode_step_time == b.decode_step_time &&
              a.nand_read_errors == b.nand_read_errors &&
              a.nvme_timeouts == b.nvme_timeouts,
          "same seed + plan must reproduce identical event-sim results");
    std::cout << "event sim under faults: step " << a.decode_step_time
              << " s, " << a.nand_read_errors << " NAND errors, "
              << a.nvme_timeouts << " NVMe timeouts (deterministic)\n";

    if (!args.get("json-dir").empty())
        json.write(args.get("json-dir"));
    std::cout << "\nShape checks passed: zero-fault identity, graceful "
                 "single-failure degradation matching the analytic "
                 "surviving-fleet model, clear whole-fleet error, and "
                 "deterministic seeded injection.\n";
    return 0;
}
