/**
 * @file
 * Artifact-appendix workflow (Appendix A.4), reproduced end to end:
 *
 *  Step 1 — functional verification ("python tests/test_llm.py --mode
 *  hls_gqa"): run a miniature GQA model through the accelerator path
 *  and verify the generated token ids match the reference exactly.
 *
 *  Step 2 — inference deployment ("python3 bench_suite.py hilos" /
 *  "... xcache"): run the HILOS engine with ANS only and with the
 *  X-cache optimisation, reporting the speedups over FLEX(SSD).
 */

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/table.h"
#include "core/hilos.h"
#include "llm/transformer.h"

using namespace hilos;

namespace {

bool
step1FunctionalVerification()
{
    printBanner(std::cout,
                "Step 1: HLS functional verification (GQA mode)");
    LayerShape shape{64, 4, 2, 96, /*use_rope=*/true, 4096};
    const std::size_t vocab = 128, batches = 2;
    Rng a(11), b(11);
    TransformerModel reference(shape, 3, vocab, batches, a, 8);
    TransformerModel accel(shape, 3, vocab, batches, b, 8);

    Rng prompt_rng(3);
    std::vector<std::vector<std::uint32_t>> prompt(batches);
    for (auto &seq : prompt)
        for (int t = 0; t < 16; t++)
            seq.push_back(static_cast<std::uint32_t>(
                prompt_rng.uniformInt(0, vocab - 1)));
    reference.prefill(prompt);
    accel.prefill(prompt);

    const auto expected = reference.generate(24, AttentionPath::Reference);
    const auto got = accel.generate(24, AttentionPath::NearStorage);
    const bool pass = expected == got;
    std::printf("  generated %zu tokens/batch on the accelerator path; "
                "token output %s the expected values\n",
                expected.front().size(), pass ? "MATCHES" : "DIFFERS");
    return pass;
}

void
step2Deployment()
{
    printBanner(std::cout, "Step 2: LLM inference deployment");
    SystemConfig sys = defaultSystem();
    RunConfig run;
    run.model = opt66b();
    run.batch = 16;
    run.context_len = 32768;
    run.output_len = 64;

    const RunResult base = makeEngine(EngineKind::FlexSsd, sys)->run(run);

    TextTable table({"suite", "tokens/s", "vs FLEX(SSD)"});
    HilosOptions ans;
    ans.num_devices = 8;
    ans.xcache = false;
    const RunResult r_ans =
        makeEngine(EngineKind::Hilos, sys, ans)->run(run);
    table.row()
        .cell("bench_suite hilos (ANS)")
        .num(r_ans.decodeThroughput(), 4)
        .ratio(normalizedThroughput(r_ans, base));

    HilosOptions xc;
    xc.num_devices = 8;
    const RunResult r_xc = makeEngine(EngineKind::Hilos, sys, xc)->run(run);
    table.row()
        .cell("bench_suite xcache (+X-Cache)")
        .num(r_xc.decodeThroughput(), 4)
        .ratio(normalizedThroughput(r_xc, base));
    table.print(std::cout);
}

}  // namespace

int
main()
{
    const bool pass = step1FunctionalVerification();
    step2Deployment();
    std::cout << "\nartifact check: "
              << (pass ? "PASS (kernel executes without errors and "
                         "tokens match)"
                       : "FAIL")
              << "\n";
    return pass ? 0 : 1;
}
