/**
 * @file
 * Simulator hot-path microbench guarding the profile-driven fast path:
 *
 *  1. engine evaluation, legacy vs cached — a fresh engine + full plan
 *     build per point (exactly what runGrid does) against
 *     runCached()'s verified in-place rebuild;
 *  2. plan evaluation backends — analytic evaluatePlan and the
 *     event-driven simulatePlan over one HILOS decode plan, plus the
 *     Prefill-phase plan's build/evaluate cost and the deterministic
 *     chunked-prefill overhead ratio (4 chunks vs monolithic);
 *  3. event-queue throughput — the calendar queue against the binary
 *     heap it replaced (kept verbatim below), on a pre-filled drain
 *     and on a schedule-on-pop workload;
 *  4. end-to-end sweep rate — runGridCached vs runGrid on a Fig-10
 *     style engine x batch x context grid, same binary.
 *
 * Deterministic workloads (seeded schedules, fixed grids); wall times
 * of course vary run to run, so the checked-in baseline is compared
 * with a wide relative tolerance (scripts/check_bench_regression.py).
 * Exits non-zero when the cached sweep speedup falls below
 * --min-speedup (default 10): that ratio is the PR's contract, not a
 * tuning suggestion.
 *
 * Results land in BENCH_sim_perf.json via the shared bench-JSON writer.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/random.h"
#include "common/table.h"
#include "core/hilos.h"
#include "runtime/event_sim.h"
#include "runtime/plan_cache.h"
#include "sim/event_queue.h"

using namespace hilos;

namespace {

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "FAILED: " << what << "\n";
        std::exit(1);
    }
}

/** Median-of-repeats wall time of fn(), in seconds. */
double
timeSeconds(const std::function<void()> &fn, int repeats)
{
    using SteadyClock = std::chrono::steady_clock;
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repeats));
    for (int rep = 0; rep < repeats; rep++) {
        const auto t0 = SteadyClock::now();
        fn();
        const auto t1 = SteadyClock::now();
        samples.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/**
 * The event queue this PR replaced, kept verbatim as the in-binary
 * baseline for the throughput comparison.
 */
class LegacyHeapQueue
{
  public:
    using Callback = std::function<void()>;

    Seconds now() const { return now_; }

    void
    scheduleAt(Seconds when, Callback fn)
    {
        heap_.push(Entry{when, next_seq_++, std::move(fn)});
    }

    void
    scheduleAfter(Seconds delay, Callback fn)
    {
        scheduleAt(now_ + delay, std::move(fn));
    }

    Seconds
    run()
    {
        while (!heap_.empty()) {
            Entry e = heap_.top();
            heap_.pop();
            now_ = e.when;
            e.fn();
        }
        return now_;
    }

  private:
    struct Entry {
        Seconds when;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Seconds now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

/** Drive `q` through `n` pre-filled events plus `n` schedule-on-pop
 *  descendants; returns a checksum so the work cannot be elided. */
template <typename Queue>
std::uint64_t
eventQueueWorkload(Queue &q, std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; i++) {
        const Seconds when = Seconds(rng.uniform(0.0, 1.0));
        q.scheduleAt(when, [&q, &fired, &rng] {
            fired++;
            // Half the events reschedule: the simulation-like pattern
            // (transfer completion enqueues the dependent op).
            if ((fired & 1) == 0) {
                q.scheduleAfter(Seconds(rng.uniform(0.0, 1e-3)),
                                [&fired] { fired++; });
            }
        });
    }
    q.run();
    return fired;
}

/** Fig-10-style sweep grid: every baseline plus HILOS across batch x
 *  context, dominated (like the figure) by the storage baselines whose
 *  per-point setup the cached path amortises.  Points are ordered
 *  engine-major — each engine sweeps its whole batch x context grid
 *  before the next, exactly how the figure is produced — which is the
 *  ordering the cached path's per-worker engine slot amortises. */
std::vector<GridPoint>
sweepGrid(const ModelConfig &model, std::size_t repeats)
{
    std::vector<GridPoint> grid;
    const std::uint64_t batches[] = {4, 8, 16, 32};
    const std::uint64_t contexts[] = {8192, 16384, 32768};
    for (const EngineKind kind :
         {EngineKind::FlexSsd, EngineKind::FlexSsd,
          EngineKind::FlexSmartSsdRaw, EngineKind::FlexDram,
          EngineKind::DeepSpeedUvm, EngineKind::VllmMultiGpu,
          EngineKind::Hilos}) {
        for (std::size_t rep = 0; rep < repeats; rep++) {
            for (const std::uint64_t batch : batches) {
                for (const std::uint64_t ctx : contexts) {
                    GridPoint p;
                    p.kind = kind;
                    p.run = RunConfig{model, batch, ctx, 64};
                    grid.push_back(p);
                }
            }
        }
    }
    return grid;
}

}  // namespace

int
main(int argc, char **argv)
{
    // This bench times the production hot path; the opt-in semantic
    // analyzer gate (HILOS_ANALYZE_PLANS, DESIGN.md section 15) adds a
    // per-applyPlan cost to both sweep arms that compresses the
    // cached-vs-legacy ratio below its contract floor. Scrub it before
    // the first plan evaluation caches the flag.
    unsetenv("HILOS_ANALYZE_PLANS");
    ArgParser args("bench_sim_perf");
    args.addOption("events", "20000", "pre-filled events per queue run");
    args.addOption("grid-repeats", "3",
                   "repetitions of the base sweep grid");
    args.addOption("repeats", "5", "timing repeats (median taken)");
    args.addOption("min-speedup", "10",
                   "fail if cached sweep speedup drops below this");
    args.addOption("json-dir", ".",
                   "where BENCH_sim_perf.json goes (empty = skip)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const std::size_t events =
        static_cast<std::size_t>(args.getInt("events"));
    const std::size_t grid_repeats =
        static_cast<std::size_t>(args.getInt("grid-repeats"));
    const int repeats = static_cast<int>(args.getInt("repeats"));
    const double min_speedup = args.getDouble("min-speedup");
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    const SystemConfig sys = defaultSystem();
    const ModelConfig model = opt66b();
    const RunConfig headline{model, 16, 32768, 64};

    TextTable table({"case", "unit", "value"});
    bench::BenchJson json("sim_perf");
    json.meta("model", model.name)
        .meta("events", static_cast<std::uint64_t>(events))
        .meta("grid_repeats", static_cast<std::uint64_t>(grid_repeats));

    const auto report = [&](const std::string &name,
                            const std::string &unit, double value) {
        table.row().cell(name).cell(unit).num(value, 3);
        json.row().cell("case", name).cell("unit", unit).cell("value",
                                                              value);
    };

    // --- 1. engine evaluation: fresh-engine legacy vs cached rebuild ---
    const std::vector<std::uint64_t> batches = {4, 8, 16, 32};
    const int eval_iters = 20;
    const double legacy_flex = timeSeconds(
        [&] {
            for (int i = 0; i < eval_iters; i++) {
                RunConfig cfg = headline;
                cfg.batch =
                    batches[static_cast<std::size_t>(i) % batches.size()];
                const auto engine =
                    makeEngine(EngineKind::FlexSsd, sys);
                const RunResult r = engine->run(cfg);
                check(r.feasible, "legacy FLEX(SSD) point infeasible");
            }
        },
        repeats);
    PlanCache flex_cache;
    const auto flex_engine = makeEngine(EngineKind::FlexSsd, sys);
    flex_engine->runCached(headline, flex_cache);  // warm the cache
    const double cached_flex = timeSeconds(
        [&] {
            for (int i = 0; i < eval_iters; i++) {
                RunConfig cfg = headline;
                cfg.batch =
                    batches[static_cast<std::size_t>(i) % batches.size()];
                const RunResult r =
                    flex_engine->runCached(cfg, flex_cache);
                check(r.feasible, "cached FLEX(SSD) point infeasible");
            }
        },
        repeats);
    report("flex_ssd_legacy", "us/point",
           1e6 * legacy_flex / eval_iters);
    report("flex_ssd_cached", "us/point",
           1e6 * cached_flex / eval_iters);
    report("flex_ssd_point_speedup", "x", legacy_flex / cached_flex);

    PlanCache hilos_cache;
    const auto hilos_engine = makeEngine(EngineKind::Hilos, sys);
    hilos_engine->runCached(headline, hilos_cache);
    const double legacy_hilos = timeSeconds(
        [&] {
            for (int i = 0; i < eval_iters; i++) {
                const auto engine = makeEngine(EngineKind::Hilos, sys);
                (void)engine->run(headline);
            }
        },
        repeats);
    const double cached_hilos = timeSeconds(
        [&] {
            for (int i = 0; i < eval_iters; i++)
                (void)hilos_engine->runCached(headline, hilos_cache);
        },
        repeats);
    report("hilos_legacy", "us/point", 1e6 * legacy_hilos / eval_iters);
    report("hilos_cached", "us/point", 1e6 * cached_hilos / eval_iters);

    // --- 2. plan evaluation backends over one HILOS decode plan ---
    const StepPlan plan =
        decodeStepPlanFor(EngineKind::Hilos, sys, headline);
    check(plan.feasible, "headline HILOS plan infeasible");
    const int eval_plan_iters = 200;
    double sink = 0.0;
    const double analytic = timeSeconds(
        [&] {
            for (int i = 0; i < eval_plan_iters; i++)
                sink += evaluatePlan(plan).decode_step_time;
        },
        repeats);
    const double event_sim = timeSeconds(
        [&] {
            for (int i = 0; i < eval_plan_iters; i++)
                sink += simulatePlan(plan).decode_step_time;
        },
        repeats);
    check(sink > 0.0, "plan evaluation produced zero time");
    report("evaluate_plan_analytic", "us/op",
           1e6 * analytic / eval_plan_iters);
    report("simulate_plan_event", "us/op",
           1e6 * event_sim / eval_plan_iters);

    // --- 2b. Prefill-phase plans: build/evaluate cost + chunk ratio ---
    const double prefill_build = timeSeconds(
        [&] {
            for (int i = 0; i < eval_plan_iters; i++) {
                const StepPlan p =
                    prefillStepPlanFor(EngineKind::Hilos, sys, headline);
                sink += static_cast<double>(p.layer_ops.size());
            }
        },
        repeats);
    const StepPlan prefill_plan =
        prefillStepPlanFor(EngineKind::Hilos, sys, headline);
    check(prefill_plan.feasible, "headline HILOS prefill plan infeasible");
    const double prefill_eval = timeSeconds(
        [&] {
            for (int i = 0; i < eval_plan_iters; i++)
                sink += evaluatePlan(prefill_plan).decode_step_time;
        },
        repeats);
    report("prefill_plan_build", "us/op",
           1e6 * prefill_build / eval_plan_iters);
    report("prefill_plan_evaluate", "us/op",
           1e6 * prefill_eval / eval_plan_iters);
    // Deterministic model ratios: machine-portable, so enforced against
    // the baseline like the speedups. Chunking re-streams weights per
    // pass, so 4 chunks cost >= 1x the monolithic prefill.
    const Seconds mono_prefill =
        evaluatePlan(prefill_plan).decode_step_time;
    Seconds chunk4_sum = 0.0;
    for (std::uint64_t k = 0; k < 4; ++k)
        chunk4_sum += evaluatePlan(prefillStepPlanFor(
                                       EngineKind::Hilos, sys, headline,
                                       k, 4))
                          .decode_step_time;
    check(chunk4_sum >= mono_prefill,
          "chunked prefill cheaper than monolithic");
    report("prefill_chunk4_overhead", "x", chunk4_sum / mono_prefill);
    const RunResult headline_run =
        makeEngine(EngineKind::Hilos, sys)->run(headline);
    check(headline_run.feasible, "headline HILOS run infeasible");
    report("prefill_share_of_total", "x",
           headline_run.prefill_time / headline_run.total_time);

    // --- 3. event-queue throughput, calendar vs legacy heap ---
    std::uint64_t fired_calendar = 0;
    std::uint64_t fired_heap = 0;
    const double calendar_t = timeSeconds(
        [&] {
            EventQueue q;
            fired_calendar = eventQueueWorkload(q, events, 0xE0E0);
        },
        repeats);
    const double heap_t = timeSeconds(
        [&] {
            LegacyHeapQueue q;
            fired_heap = eventQueueWorkload(q, events, 0xE0E0);
        },
        repeats);
    check(fired_calendar == fired_heap,
          "event queue workloads diverged");
    const double fired = static_cast<double>(fired_calendar);
    report("event_queue_calendar", "Mev/s", fired / calendar_t / 1e6);
    report("event_queue_heap", "Mev/s", fired / heap_t / 1e6);
    report("event_queue_speedup", "x", heap_t / calendar_t);

    // --- 4. end-to-end sweep: runGridCached vs runGrid, same grid ---
    const std::vector<GridPoint> grid = sweepGrid(model, grid_repeats);
    std::vector<RunResult> legacy_results;
    std::vector<RunResult> cached_results;
    const double sweep_legacy = timeSeconds(
        [&] { legacy_results = runGrid(sys, grid, 1); }, repeats);
    const double sweep_cached = timeSeconds(
        [&] { cached_results = runGridCached(sys, grid, 1); }, repeats);
    check(legacy_results.size() == cached_results.size(),
          "sweep result count mismatch");
    for (std::size_t i = 0; i < grid.size(); i++) {
        check(legacy_results[i].decodeThroughput() ==
                  cached_results[i].decodeThroughput(),
              "cached sweep diverged from legacy at point " +
                  std::to_string(i));
    }
    const double pts = static_cast<double>(grid.size());
    const double speedup = sweep_legacy / sweep_cached;
    report("sweep_legacy", "points/s", pts / sweep_legacy);
    report("sweep_cached", "points/s", pts / sweep_cached);
    report("sweep_speedup", "x", speedup);

    table.print(std::cout);
    std::cout << "sweep: " << grid.size() << " points, cached speedup "
              << bench::jsonNumber(speedup) << "x (floor "
              << bench::jsonNumber(min_speedup) << "x)\n";
    if (!args.get("json-dir").empty())
        json.write(args.get("json-dir"));
    check(speedup >= min_speedup,
          "cached sweep speedup below the contract floor");
    std::cout << "OK\n";
    return 0;
}
