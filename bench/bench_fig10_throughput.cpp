/**
 * @file
 * Figure 10: end-to-end decoding throughput of HILOS (4/8/16 SmartSSDs)
 * versus FLEX(SSD), FLEX(DRAM), FLEX(16 PCIe 3.0 SSDs) and
 * DS+UVM(DRAM) across OPT model sizes and context lengths, normalised
 * to FLEX(SSD).
 *
 * Paper shape targets: DS+UVM > 4x slower than FLEX(DRAM);
 * FLEX(16 PCIe3 SSDs) at 0.64-0.94x of FLEX(SSD); HILOS(16) up to
 * 7.86x over FLEX(SSD) (5.3-7.8x at long contexts); HILOS(4) 1.10-1.36x
 * and HILOS(16) 1.88-2.49x over FLEX(DRAM) where the latter is feasible.
 *
 * The (model, context) x engine grid is evaluated through runGrid, so
 * `--jobs N` fans the points across worker threads; results come back
 * in grid order and the rendered table is byte-identical at any job
 * count.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

namespace {

std::string
fmt(const RunResult &r, const RunResult &base)
{
    if (!r.feasible)
        return "OOM";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx (%.3f t/s)",
                  normalizedThroughput(r, base), r.decodeThroughput());
    return buf;
}

}  // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig10_throughput");
    args.addOption("jobs", "1",
                   "worker threads for the sweep (0 = all cores)");
    if (!args.parse(argc, argv) || args.helpRequested()) {
        std::cerr << args.usage();
        return args.helpRequested() ? 0 : 2;
    }
    const unsigned jobs = static_cast<unsigned>(args.getInt("jobs"));
    if (!args.ok()) {
        std::cerr << "error: " << args.error() << "\n";
        return 2;
    }

    SystemConfig sys = defaultSystem();
    const std::vector<ModelConfig> models = {opt30b(), opt66b(),
                                             opt175b()};
    const std::vector<std::uint64_t> contexts = {4096, 16384, 32768,
                                                 65536, 131072};
    const std::vector<unsigned> device_counts = {4, 8, 16};

    // Flatten the grid: 7 engines per (model, context) cell, baselines
    // first, then HILOS fleets in device order.
    std::vector<GridPoint> grid;
    for (const auto &model : models) {
        for (const auto s : contexts) {
            RunConfig run;
            run.model = model;
            run.batch = 16;
            run.context_len = s;
            run.output_len = 64;
            for (EngineKind kind :
                 {EngineKind::FlexSsd, EngineKind::FlexDram,
                  EngineKind::FlexSmartSsdRaw, EngineKind::DeepSpeedUvm})
                grid.push_back(GridPoint{kind, HilosOptions{}, run});
            for (unsigned n : device_counts) {
                HilosOptions opts;
                opts.num_devices = n;
                grid.push_back(GridPoint{EngineKind::Hilos, opts, run});
            }
        }
    }
    const std::vector<RunResult> results = runGrid(sys, grid, jobs);
    const std::size_t stride = 4 + device_counts.size();

    printBanner(std::cout,
                "Figure 10: decoding throughput normalized to FLEX(SSD)");
    TextTable table({"model", "context", "FLEX(SSD)", "FLEX(DRAM)",
                     "FLEX(16xP3)", "DS+UVM", "HILOS(4)", "HILOS(8)",
                     "HILOS(16)"});

    std::size_t idx = 0;
    for (const auto &model : models) {
        for (const auto s : contexts) {
            const RunResult &base = results[idx];
            table.row()
                .cell(model.name)
                .cell(std::to_string(s / 1024) + "K")
                .cell("1.00x (" +
                      std::to_string(base.decodeThroughput())
                          .substr(0, 5) +
                      " t/s)")
                .cell(fmt(results[idx + 1], base))
                .cell(fmt(results[idx + 2], base))
                .cell(fmt(results[idx + 3], base));
            for (std::size_t d = 0; d < device_counts.size(); ++d)
                table.cell(fmt(results[idx + 4 + d], base));
            idx += stride;
        }
    }
    table.print(std::cout);

    std::cout << "\nShape checks (paper: DS+UVM >4x slower than "
                 "FLEX(DRAM); FLEX(16xP3) 0.64-0.94x of FLEX(SSD);\n"
                 "HILOS(16) up to ~7.9x over FLEX(SSD) at long "
                 "context).\n";
    return 0;
}
