/**
 * @file
 * Figure 10: end-to-end decoding throughput of HILOS (4/8/16 SmartSSDs)
 * versus FLEX(SSD), FLEX(DRAM), FLEX(16 PCIe 3.0 SSDs) and
 * DS+UVM(DRAM) across OPT model sizes and context lengths, normalised
 * to FLEX(SSD).
 *
 * Paper shape targets: DS+UVM > 4x slower than FLEX(DRAM);
 * FLEX(16 PCIe3 SSDs) at 0.64-0.94x of FLEX(SSD); HILOS(16) up to
 * 7.86x over FLEX(SSD) (5.3-7.8x at long contexts); HILOS(4) 1.10-1.36x
 * and HILOS(16) 1.88-2.49x over FLEX(DRAM) where the latter is feasible.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/hilos.h"

using namespace hilos;

namespace {

std::string
fmt(const RunResult &r, const RunResult &base)
{
    if (!r.feasible)
        return "OOM";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx (%.3f t/s)",
                  normalizedThroughput(r, base), r.decodeThroughput());
    return buf;
}

}  // namespace

int
main()
{
    SystemConfig sys = defaultSystem();
    const std::vector<ModelConfig> models = {opt30b(), opt66b(),
                                             opt175b()};
    const std::vector<std::uint64_t> contexts = {4096, 16384, 32768,
                                                 65536, 131072};

    printBanner(std::cout,
                "Figure 10: decoding throughput normalized to FLEX(SSD)");
    TextTable table({"model", "context", "FLEX(SSD)", "FLEX(DRAM)",
                     "FLEX(16xP3)", "DS+UVM", "HILOS(4)", "HILOS(8)",
                     "HILOS(16)"});

    for (const auto &model : models) {
        for (const auto s : contexts) {
            RunConfig run;
            run.model = model;
            run.batch = 16;
            run.context_len = s;
            run.output_len = 64;

            const RunResult base =
                makeEngine(EngineKind::FlexSsd, sys)->run(run);
            const RunResult dram =
                makeEngine(EngineKind::FlexDram, sys)->run(run);
            const RunResult raw =
                makeEngine(EngineKind::FlexSmartSsdRaw, sys)->run(run);
            const RunResult uvm =
                makeEngine(EngineKind::DeepSpeedUvm, sys)->run(run);

            table.row()
                .cell(model.name)
                .cell(std::to_string(s / 1024) + "K")
                .cell("1.00x (" +
                      std::to_string(base.decodeThroughput())
                          .substr(0, 5) +
                      " t/s)")
                .cell(fmt(dram, base))
                .cell(fmt(raw, base))
                .cell(fmt(uvm, base));
            for (unsigned n : {4u, 8u, 16u}) {
                HilosOptions opts;
                opts.num_devices = n;
                const RunResult h =
                    makeEngine(EngineKind::Hilos, sys, opts)->run(run);
                table.cell(fmt(h, base));
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nShape checks (paper: DS+UVM >4x slower than "
                 "FLEX(DRAM); FLEX(16xP3) 0.64-0.94x of FLEX(SSD);\n"
                 "HILOS(16) up to ~7.9x over FLEX(SSD) at long "
                 "context).\n";
    return 0;
}
