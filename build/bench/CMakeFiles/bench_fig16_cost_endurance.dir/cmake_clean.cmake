file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cost_endurance.dir/bench_fig16_cost_endurance.cpp.o"
  "CMakeFiles/bench_fig16_cost_endurance.dir/bench_fig16_cost_endurance.cpp.o.d"
  "bench_fig16_cost_endurance"
  "bench_fig16_cost_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cost_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
