# Empty compiler generated dependencies file for bench_fig16_cost_endurance.
# This may be replaced when dependencies are built.
