# Empty compiler generated dependencies file for bench_crossval_eventsim.
# This may be replaced when dependencies are built.
