file(REMOVE_RECURSE
  "CMakeFiles/bench_crossval_eventsim.dir/bench_crossval_eventsim.cpp.o"
  "CMakeFiles/bench_crossval_eventsim.dir/bench_crossval_eventsim.cpp.o.d"
  "bench_crossval_eventsim"
  "bench_crossval_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossval_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
