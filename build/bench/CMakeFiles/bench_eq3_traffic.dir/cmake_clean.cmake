file(REMOVE_RECURSE
  "CMakeFiles/bench_eq3_traffic.dir/bench_eq3_traffic.cpp.o"
  "CMakeFiles/bench_eq3_traffic.dir/bench_eq3_traffic.cpp.o.d"
  "bench_eq3_traffic"
  "bench_eq3_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq3_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
