# Empty dependencies file for bench_eq3_traffic.
# This may be replaced when dependencies are built.
