# Empty dependencies file for bench_table3_accelerator.
# This may be replaced when dependencies are built.
