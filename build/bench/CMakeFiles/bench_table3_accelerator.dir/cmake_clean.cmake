file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_accelerator.dir/bench_table3_accelerator.cpp.o"
  "CMakeFiles/bench_table3_accelerator.dir/bench_table3_accelerator.cpp.o.d"
  "bench_table3_accelerator"
  "bench_table3_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
