file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_batch.dir/bench_fig11_batch.cpp.o"
  "CMakeFiles/bench_fig11_batch.dir/bench_fig11_batch.cpp.o.d"
  "bench_fig11_batch"
  "bench_fig11_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
