# Empty dependencies file for bench_artifact_check.
# This may be replaced when dependencies are built.
