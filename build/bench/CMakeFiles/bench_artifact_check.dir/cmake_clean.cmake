file(REMOVE_RECURSE
  "CMakeFiles/bench_artifact_check.dir/bench_artifact_check.cpp.o"
  "CMakeFiles/bench_artifact_check.dir/bench_artifact_check.cpp.o.d"
  "bench_artifact_check"
  "bench_artifact_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_artifact_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
