# Empty dependencies file for bench_fig17_energy_multigpu.
# This may be replaced when dependencies are built.
