# Empty dependencies file for bench_fig14_output_len.
# This may be replaced when dependencies are built.
