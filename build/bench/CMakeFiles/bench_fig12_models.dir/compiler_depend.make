# Empty compiler generated dependencies file for bench_fig12_models.
# This may be replaced when dependencies are built.
