# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_eq3_traffic "/root/repo/build/bench/bench_eq3_traffic")
set_tests_properties(smoke_bench_eq3_traffic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig02_motivation "/root/repo/build/bench/bench_fig02_motivation")
set_tests_properties(smoke_bench_fig02_motivation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig04_breakdown "/root/repo/build/bench/bench_fig04_breakdown")
set_tests_properties(smoke_bench_fig04_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig13_sensitivity "/root/repo/build/bench/bench_fig13_sensitivity")
set_tests_properties(smoke_bench_fig13_sensitivity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table3_accelerator "/root/repo/build/bench/bench_table3_accelerator")
set_tests_properties(smoke_bench_table3_accelerator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_artifact_check "/root/repo/build/bench/bench_artifact_check")
set_tests_properties(smoke_bench_artifact_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_crossval_eventsim "/root/repo/build/bench/bench_crossval_eventsim")
set_tests_properties(smoke_bench_crossval_eventsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
