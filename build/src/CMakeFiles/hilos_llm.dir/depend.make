# Empty dependencies file for hilos_llm.
# This may be replaced when dependencies are built.
