file(REMOVE_RECURSE
  "CMakeFiles/hilos_llm.dir/llm/attention_ref.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/attention_ref.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/kv_cache.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/kv_cache.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/kv_staging.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/kv_staging.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/model_config.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/model_config.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/rope.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/rope.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/sparse_attention.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/sparse_attention.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/tensor.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/tensor.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/transformer.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/transformer.cc.o.d"
  "CMakeFiles/hilos_llm.dir/llm/workload.cc.o"
  "CMakeFiles/hilos_llm.dir/llm/workload.cc.o.d"
  "libhilos_llm.a"
  "libhilos_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
