file(REMOVE_RECURSE
  "libhilos_llm.a"
)
