
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/attention_ref.cc" "src/CMakeFiles/hilos_llm.dir/llm/attention_ref.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/attention_ref.cc.o.d"
  "/root/repo/src/llm/kv_cache.cc" "src/CMakeFiles/hilos_llm.dir/llm/kv_cache.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/kv_cache.cc.o.d"
  "/root/repo/src/llm/kv_staging.cc" "src/CMakeFiles/hilos_llm.dir/llm/kv_staging.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/kv_staging.cc.o.d"
  "/root/repo/src/llm/model_config.cc" "src/CMakeFiles/hilos_llm.dir/llm/model_config.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/model_config.cc.o.d"
  "/root/repo/src/llm/rope.cc" "src/CMakeFiles/hilos_llm.dir/llm/rope.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/rope.cc.o.d"
  "/root/repo/src/llm/sparse_attention.cc" "src/CMakeFiles/hilos_llm.dir/llm/sparse_attention.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/sparse_attention.cc.o.d"
  "/root/repo/src/llm/tensor.cc" "src/CMakeFiles/hilos_llm.dir/llm/tensor.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/tensor.cc.o.d"
  "/root/repo/src/llm/transformer.cc" "src/CMakeFiles/hilos_llm.dir/llm/transformer.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/transformer.cc.o.d"
  "/root/repo/src/llm/workload.cc" "src/CMakeFiles/hilos_llm.dir/llm/workload.cc.o" "gcc" "src/CMakeFiles/hilos_llm.dir/llm/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
