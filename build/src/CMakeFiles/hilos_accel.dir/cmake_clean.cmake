file(REMOVE_RECURSE
  "CMakeFiles/hilos_accel.dir/accel/attention_kernel.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/attention_kernel.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/cycle_model.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/cycle_model.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/exp_unit.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/exp_unit.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/gemv.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/gemv.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/kernel_sim.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/kernel_sim.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/resource_model.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/resource_model.cc.o.d"
  "CMakeFiles/hilos_accel.dir/accel/softmax.cc.o"
  "CMakeFiles/hilos_accel.dir/accel/softmax.cc.o.d"
  "libhilos_accel.a"
  "libhilos_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
