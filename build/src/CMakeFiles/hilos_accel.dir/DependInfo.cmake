
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/attention_kernel.cc" "src/CMakeFiles/hilos_accel.dir/accel/attention_kernel.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/attention_kernel.cc.o.d"
  "/root/repo/src/accel/cycle_model.cc" "src/CMakeFiles/hilos_accel.dir/accel/cycle_model.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/cycle_model.cc.o.d"
  "/root/repo/src/accel/exp_unit.cc" "src/CMakeFiles/hilos_accel.dir/accel/exp_unit.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/exp_unit.cc.o.d"
  "/root/repo/src/accel/gemv.cc" "src/CMakeFiles/hilos_accel.dir/accel/gemv.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/gemv.cc.o.d"
  "/root/repo/src/accel/kernel_sim.cc" "src/CMakeFiles/hilos_accel.dir/accel/kernel_sim.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/kernel_sim.cc.o.d"
  "/root/repo/src/accel/resource_model.cc" "src/CMakeFiles/hilos_accel.dir/accel/resource_model.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/resource_model.cc.o.d"
  "/root/repo/src/accel/softmax.cc" "src/CMakeFiles/hilos_accel.dir/accel/softmax.cc.o" "gcc" "src/CMakeFiles/hilos_accel.dir/accel/softmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
