file(REMOVE_RECURSE
  "libhilos_accel.a"
)
