# Empty dependencies file for hilos_accel.
# This may be replaced when dependencies are built.
