
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/batcher.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/batcher.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/batcher.cc.o.d"
  "/root/repo/src/runtime/cost_model.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/cost_model.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/cost_model.cc.o.d"
  "/root/repo/src/runtime/deepspeed_uvm.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/deepspeed_uvm.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/deepspeed_uvm.cc.o.d"
  "/root/repo/src/runtime/energy.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/energy.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/energy.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/event_sim.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/event_sim.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/event_sim.cc.o.d"
  "/root/repo/src/runtime/flexgen.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/flexgen.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/flexgen.cc.o.d"
  "/root/repo/src/runtime/hilos_engine.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/hilos_engine.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/hilos_engine.cc.o.d"
  "/root/repo/src/runtime/system_config.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/system_config.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/system_config.cc.o.d"
  "/root/repo/src/runtime/vllm_multigpu.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/vllm_multigpu.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/vllm_multigpu.cc.o.d"
  "/root/repo/src/runtime/writeback.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/writeback.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/writeback.cc.o.d"
  "/root/repo/src/runtime/xcache.cc" "src/CMakeFiles/hilos_runtime.dir/runtime/xcache.cc.o" "gcc" "src/CMakeFiles/hilos_runtime.dir/runtime/xcache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
