# Empty dependencies file for hilos_runtime.
# This may be replaced when dependencies are built.
