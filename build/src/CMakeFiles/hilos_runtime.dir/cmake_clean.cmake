file(REMOVE_RECURSE
  "CMakeFiles/hilos_runtime.dir/runtime/batcher.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/batcher.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/cost_model.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/cost_model.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/deepspeed_uvm.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/deepspeed_uvm.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/energy.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/energy.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/engine.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/engine.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/event_sim.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/event_sim.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/flexgen.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/flexgen.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/hilos_engine.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/hilos_engine.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/system_config.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/system_config.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/vllm_multigpu.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/vllm_multigpu.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/writeback.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/writeback.cc.o.d"
  "CMakeFiles/hilos_runtime.dir/runtime/xcache.cc.o"
  "CMakeFiles/hilos_runtime.dir/runtime/xcache.cc.o.d"
  "libhilos_runtime.a"
  "libhilos_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
