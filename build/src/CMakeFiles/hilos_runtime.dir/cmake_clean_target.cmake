file(REMOVE_RECURSE
  "libhilos_runtime.a"
)
