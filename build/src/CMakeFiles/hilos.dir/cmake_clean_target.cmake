file(REMOVE_RECURSE
  "libhilos.a"
)
