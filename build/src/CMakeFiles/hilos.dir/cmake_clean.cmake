file(REMOVE_RECURSE
  "CMakeFiles/hilos.dir/core/hilos.cc.o"
  "CMakeFiles/hilos.dir/core/hilos.cc.o.d"
  "CMakeFiles/hilos.dir/runtime/report.cc.o"
  "CMakeFiles/hilos.dir/runtime/report.cc.o.d"
  "libhilos.a"
  "libhilos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
