# Empty compiler generated dependencies file for hilos.
# This may be replaced when dependencies are built.
