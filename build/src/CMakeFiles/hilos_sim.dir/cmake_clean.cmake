file(REMOVE_RECURSE
  "CMakeFiles/hilos_sim.dir/sim/bandwidth.cc.o"
  "CMakeFiles/hilos_sim.dir/sim/bandwidth.cc.o.d"
  "CMakeFiles/hilos_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/hilos_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/hilos_sim.dir/sim/pipeline.cc.o"
  "CMakeFiles/hilos_sim.dir/sim/pipeline.cc.o.d"
  "CMakeFiles/hilos_sim.dir/sim/trace.cc.o"
  "CMakeFiles/hilos_sim.dir/sim/trace.cc.o.d"
  "libhilos_sim.a"
  "libhilos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
