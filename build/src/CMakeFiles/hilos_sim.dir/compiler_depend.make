# Empty compiler generated dependencies file for hilos_sim.
# This may be replaced when dependencies are built.
