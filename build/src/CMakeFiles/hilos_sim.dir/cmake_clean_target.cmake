file(REMOVE_RECURSE
  "libhilos_sim.a"
)
