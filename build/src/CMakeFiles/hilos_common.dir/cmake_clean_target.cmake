file(REMOVE_RECURSE
  "libhilos_common.a"
)
