file(REMOVE_RECURSE
  "CMakeFiles/hilos_common.dir/common/cli.cc.o"
  "CMakeFiles/hilos_common.dir/common/cli.cc.o.d"
  "CMakeFiles/hilos_common.dir/common/half.cc.o"
  "CMakeFiles/hilos_common.dir/common/half.cc.o.d"
  "CMakeFiles/hilos_common.dir/common/logging.cc.o"
  "CMakeFiles/hilos_common.dir/common/logging.cc.o.d"
  "CMakeFiles/hilos_common.dir/common/random.cc.o"
  "CMakeFiles/hilos_common.dir/common/random.cc.o.d"
  "CMakeFiles/hilos_common.dir/common/stats.cc.o"
  "CMakeFiles/hilos_common.dir/common/stats.cc.o.d"
  "CMakeFiles/hilos_common.dir/common/table.cc.o"
  "CMakeFiles/hilos_common.dir/common/table.cc.o.d"
  "libhilos_common.a"
  "libhilos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
