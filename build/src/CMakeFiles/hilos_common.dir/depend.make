# Empty dependencies file for hilos_common.
# This may be replaced when dependencies are built.
