file(REMOVE_RECURSE
  "CMakeFiles/hilos_storage.dir/storage/ftl.cc.o"
  "CMakeFiles/hilos_storage.dir/storage/ftl.cc.o.d"
  "CMakeFiles/hilos_storage.dir/storage/nand.cc.o"
  "CMakeFiles/hilos_storage.dir/storage/nand.cc.o.d"
  "CMakeFiles/hilos_storage.dir/storage/nvme_queue.cc.o"
  "CMakeFiles/hilos_storage.dir/storage/nvme_queue.cc.o.d"
  "CMakeFiles/hilos_storage.dir/storage/raid0.cc.o"
  "CMakeFiles/hilos_storage.dir/storage/raid0.cc.o.d"
  "CMakeFiles/hilos_storage.dir/storage/ssd.cc.o"
  "CMakeFiles/hilos_storage.dir/storage/ssd.cc.o.d"
  "libhilos_storage.a"
  "libhilos_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
