
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/ftl.cc" "src/CMakeFiles/hilos_storage.dir/storage/ftl.cc.o" "gcc" "src/CMakeFiles/hilos_storage.dir/storage/ftl.cc.o.d"
  "/root/repo/src/storage/nand.cc" "src/CMakeFiles/hilos_storage.dir/storage/nand.cc.o" "gcc" "src/CMakeFiles/hilos_storage.dir/storage/nand.cc.o.d"
  "/root/repo/src/storage/nvme_queue.cc" "src/CMakeFiles/hilos_storage.dir/storage/nvme_queue.cc.o" "gcc" "src/CMakeFiles/hilos_storage.dir/storage/nvme_queue.cc.o.d"
  "/root/repo/src/storage/raid0.cc" "src/CMakeFiles/hilos_storage.dir/storage/raid0.cc.o" "gcc" "src/CMakeFiles/hilos_storage.dir/storage/raid0.cc.o.d"
  "/root/repo/src/storage/ssd.cc" "src/CMakeFiles/hilos_storage.dir/storage/ssd.cc.o" "gcc" "src/CMakeFiles/hilos_storage.dir/storage/ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
