file(REMOVE_RECURSE
  "libhilos_storage.a"
)
