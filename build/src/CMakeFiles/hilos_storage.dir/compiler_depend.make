# Empty compiler generated dependencies file for hilos_storage.
# This may be replaced when dependencies are built.
