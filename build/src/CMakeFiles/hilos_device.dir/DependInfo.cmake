
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cpu.cc" "src/CMakeFiles/hilos_device.dir/device/cpu.cc.o" "gcc" "src/CMakeFiles/hilos_device.dir/device/cpu.cc.o.d"
  "/root/repo/src/device/dram.cc" "src/CMakeFiles/hilos_device.dir/device/dram.cc.o" "gcc" "src/CMakeFiles/hilos_device.dir/device/dram.cc.o.d"
  "/root/repo/src/device/gpu.cc" "src/CMakeFiles/hilos_device.dir/device/gpu.cc.o" "gcc" "src/CMakeFiles/hilos_device.dir/device/gpu.cc.o.d"
  "/root/repo/src/device/smartssd.cc" "src/CMakeFiles/hilos_device.dir/device/smartssd.cc.o" "gcc" "src/CMakeFiles/hilos_device.dir/device/smartssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
