file(REMOVE_RECURSE
  "CMakeFiles/hilos_device.dir/device/cpu.cc.o"
  "CMakeFiles/hilos_device.dir/device/cpu.cc.o.d"
  "CMakeFiles/hilos_device.dir/device/dram.cc.o"
  "CMakeFiles/hilos_device.dir/device/dram.cc.o.d"
  "CMakeFiles/hilos_device.dir/device/gpu.cc.o"
  "CMakeFiles/hilos_device.dir/device/gpu.cc.o.d"
  "CMakeFiles/hilos_device.dir/device/smartssd.cc.o"
  "CMakeFiles/hilos_device.dir/device/smartssd.cc.o.d"
  "libhilos_device.a"
  "libhilos_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
