file(REMOVE_RECURSE
  "libhilos_device.a"
)
