# Empty compiler generated dependencies file for hilos_device.
# This may be replaced when dependencies are built.
