file(REMOVE_RECURSE
  "libhilos_interconnect.a"
)
