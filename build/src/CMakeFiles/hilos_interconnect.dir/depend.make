# Empty dependencies file for hilos_interconnect.
# This may be replaced when dependencies are built.
