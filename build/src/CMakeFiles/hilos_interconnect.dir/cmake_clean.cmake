file(REMOVE_RECURSE
  "CMakeFiles/hilos_interconnect.dir/interconnect/pcie.cc.o"
  "CMakeFiles/hilos_interconnect.dir/interconnect/pcie.cc.o.d"
  "CMakeFiles/hilos_interconnect.dir/interconnect/topology.cc.o"
  "CMakeFiles/hilos_interconnect.dir/interconnect/topology.cc.o.d"
  "libhilos_interconnect.a"
  "libhilos_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
