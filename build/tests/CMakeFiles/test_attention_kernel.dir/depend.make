# Empty dependencies file for test_attention_kernel.
# This may be replaced when dependencies are built.
