file(REMOVE_RECURSE
  "CMakeFiles/test_attention_kernel.dir/test_attention_kernel.cc.o"
  "CMakeFiles/test_attention_kernel.dir/test_attention_kernel.cc.o.d"
  "test_attention_kernel"
  "test_attention_kernel.pdb"
  "test_attention_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
