# Empty dependencies file for test_writeback.
# This may be replaced when dependencies are built.
