file(REMOVE_RECURSE
  "CMakeFiles/test_writeback.dir/test_writeback.cc.o"
  "CMakeFiles/test_writeback.dir/test_writeback.cc.o.d"
  "test_writeback"
  "test_writeback.pdb"
  "test_writeback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
