
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_raid0.cc" "tests/CMakeFiles/test_raid0.dir/test_raid0.cc.o" "gcc" "tests/CMakeFiles/test_raid0.dir/test_raid0.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hilos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hilos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
