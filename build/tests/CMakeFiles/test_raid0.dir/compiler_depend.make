# Empty compiler generated dependencies file for test_raid0.
# This may be replaced when dependencies are built.
