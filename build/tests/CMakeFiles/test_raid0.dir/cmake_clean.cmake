file(REMOVE_RECURSE
  "CMakeFiles/test_raid0.dir/test_raid0.cc.o"
  "CMakeFiles/test_raid0.dir/test_raid0.cc.o.d"
  "test_raid0"
  "test_raid0.pdb"
  "test_raid0[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raid0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
