# Empty compiler generated dependencies file for test_sparse_attention.
# This may be replaced when dependencies are built.
