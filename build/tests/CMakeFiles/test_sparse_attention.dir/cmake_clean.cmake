file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_attention.dir/test_sparse_attention.cc.o"
  "CMakeFiles/test_sparse_attention.dir/test_sparse_attention.cc.o.d"
  "test_sparse_attention"
  "test_sparse_attention.pdb"
  "test_sparse_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
