# Empty dependencies file for test_rope.
# This may be replaced when dependencies are built.
