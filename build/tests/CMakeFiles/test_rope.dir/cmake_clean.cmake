file(REMOVE_RECURSE
  "CMakeFiles/test_rope.dir/test_rope.cc.o"
  "CMakeFiles/test_rope.dir/test_rope.cc.o.d"
  "test_rope"
  "test_rope.pdb"
  "test_rope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
