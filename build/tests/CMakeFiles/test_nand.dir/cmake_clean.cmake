file(REMOVE_RECURSE
  "CMakeFiles/test_nand.dir/test_nand.cc.o"
  "CMakeFiles/test_nand.dir/test_nand.cc.o.d"
  "test_nand"
  "test_nand.pdb"
  "test_nand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
