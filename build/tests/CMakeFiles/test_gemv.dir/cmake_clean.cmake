file(REMOVE_RECURSE
  "CMakeFiles/test_gemv.dir/test_gemv.cc.o"
  "CMakeFiles/test_gemv.dir/test_gemv.cc.o.d"
  "test_gemv"
  "test_gemv.pdb"
  "test_gemv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
