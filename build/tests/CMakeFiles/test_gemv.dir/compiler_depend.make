# Empty compiler generated dependencies file for test_gemv.
# This may be replaced when dependencies are built.
