# Empty dependencies file for test_xcache.
# This may be replaced when dependencies are built.
