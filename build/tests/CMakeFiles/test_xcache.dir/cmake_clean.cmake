file(REMOVE_RECURSE
  "CMakeFiles/test_xcache.dir/test_xcache.cc.o"
  "CMakeFiles/test_xcache.dir/test_xcache.cc.o.d"
  "test_xcache"
  "test_xcache.pdb"
  "test_xcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
