# Empty dependencies file for test_endurance_integration.
# This may be replaced when dependencies are built.
