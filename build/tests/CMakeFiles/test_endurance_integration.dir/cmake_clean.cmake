file(REMOVE_RECURSE
  "CMakeFiles/test_endurance_integration.dir/test_endurance_integration.cc.o"
  "CMakeFiles/test_endurance_integration.dir/test_endurance_integration.cc.o.d"
  "test_endurance_integration"
  "test_endurance_integration.pdb"
  "test_endurance_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endurance_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
