# Empty dependencies file for test_attention_ref.
# This may be replaced when dependencies are built.
