file(REMOVE_RECURSE
  "CMakeFiles/test_attention_ref.dir/test_attention_ref.cc.o"
  "CMakeFiles/test_attention_ref.dir/test_attention_ref.cc.o.d"
  "test_attention_ref"
  "test_attention_ref.pdb"
  "test_attention_ref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
