file(REMOVE_RECURSE
  "CMakeFiles/test_hilos_integration.dir/test_hilos_integration.cc.o"
  "CMakeFiles/test_hilos_integration.dir/test_hilos_integration.cc.o.d"
  "test_hilos_integration"
  "test_hilos_integration.pdb"
  "test_hilos_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hilos_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
