# Empty dependencies file for test_hilos_integration.
# This may be replaced when dependencies are built.
