# Empty dependencies file for test_attention_variants.
# This may be replaced when dependencies are built.
