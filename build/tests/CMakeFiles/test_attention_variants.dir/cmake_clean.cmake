file(REMOVE_RECURSE
  "CMakeFiles/test_attention_variants.dir/test_attention_variants.cc.o"
  "CMakeFiles/test_attention_variants.dir/test_attention_variants.cc.o.d"
  "test_attention_variants"
  "test_attention_variants.pdb"
  "test_attention_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
