# Empty compiler generated dependencies file for test_exp_unit.
# This may be replaced when dependencies are built.
