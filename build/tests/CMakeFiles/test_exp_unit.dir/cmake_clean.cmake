file(REMOVE_RECURSE
  "CMakeFiles/test_exp_unit.dir/test_exp_unit.cc.o"
  "CMakeFiles/test_exp_unit.dir/test_exp_unit.cc.o.d"
  "test_exp_unit"
  "test_exp_unit.pdb"
  "test_exp_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
