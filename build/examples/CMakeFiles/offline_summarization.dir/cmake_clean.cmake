file(REMOVE_RECURSE
  "CMakeFiles/offline_summarization.dir/offline_summarization.cpp.o"
  "CMakeFiles/offline_summarization.dir/offline_summarization.cpp.o.d"
  "offline_summarization"
  "offline_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
