# Empty compiler generated dependencies file for offline_summarization.
# This may be replaced when dependencies are built.
