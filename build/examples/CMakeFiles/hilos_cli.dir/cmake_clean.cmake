file(REMOVE_RECURSE
  "CMakeFiles/hilos_cli.dir/hilos_cli.cpp.o"
  "CMakeFiles/hilos_cli.dir/hilos_cli.cpp.o.d"
  "hilos_cli"
  "hilos_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hilos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
