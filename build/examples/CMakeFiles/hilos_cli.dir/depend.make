# Empty dependencies file for hilos_cli.
# This may be replaced when dependencies are built.
