#!/usr/bin/env python3
"""Compare a BENCH_*.json result file against its checked-in baseline.

Usage:
    scripts/check_bench_regression.py CURRENT BASELINE [options]

Every row is matched by its "case" name.  By default only the
dimensionless ratio rows (unit "x") are *enforced* -- speedup ratios
are the machine-portable part of a perf baseline, while raw wall-time
and throughput rows shift with the host and are reported for
information only.  Pass --all to enforce every row (same-machine
comparisons, e.g. refreshing a baseline locally).

The check is one-sided: a row fails only when the current value is
WORSE than the baseline by more than --tolerance (default 0.25, i.e.
25%).  Improvements never fail; refresh the baseline when they stick.
Direction is inferred from the unit: us/* rows are lower-is-better,
everything else (x, Mev/s, points/s, tokens/s) is higher-is-better.

Rows must match in both directions: a baseline row missing from the
current results fails (a benchmark silently disappeared), and a current
row missing from the baseline fails too (a new benchmark landed without
refreshing the baseline that guards it).

Exit status: 0 when all enforced rows pass, 1 on any regression or a
row missing from either side, 2 on usage/IO errors.
"""

import argparse
import json
import sys

LOWER_IS_BETTER_PREFIXES = ("us/", "ms/", "s/", "ns/")


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in doc.get("rows", []):
        if "case" in row and "value" in row:
            rows[row["case"]] = (row.get("unit", ""), float(row["value"]))
    if not rows:
        print(f"error: no benchmark rows in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def lower_is_better(unit):
    return unit.startswith(LOWER_IS_BETTER_PREFIXES)


def main():
    ap = argparse.ArgumentParser(
        description="one-sided perf-regression check for BENCH_*.json")
    ap.add_argument("current", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", help="checked-in baseline BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative worsening (default 0.25)")
    ap.add_argument("--all", action="store_true",
                    help="enforce every row, not just unit-'x' ratios")
    args = ap.parse_args()

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    failures = []
    width = max(len(name) for name in baseline)
    for name, (unit, base) in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from current results")
            continue
        cur_unit, cur = current[name]
        enforced = args.all or unit == "x"
        if lower_is_better(unit):
            worsening = (cur - base) / base if base != 0 else 0.0
        else:
            worsening = (base - cur) / base if base != 0 else 0.0
        ok = worsening <= args.tolerance
        status = ("PASS" if ok else "FAIL") if enforced else "info"
        print(f"  [{status}] {name:<{width}}  {cur:>12.4g} {cur_unit:<8} "
              f"baseline {base:.4g}  ({-worsening:+.1%})")
        if enforced and not ok:
            failures.append(
                f"{name}: {cur:.4g} {cur_unit} vs baseline {base:.4g} "
                f"(worse by {worsening:.1%}, tolerance "
                f"{args.tolerance:.0%})")

    for name in sorted(set(current) - set(baseline)):
        failures.append(
            f"{name}: missing from baseline {args.baseline} "
            f"(new benchmark row -- refresh the baseline to cover it)")

    if failures:
        print(f"\nREGRESSION: {len(failures)} enforced row(s) failed:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall enforced rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
