#!/usr/bin/env python3
"""Repo-specific lint invariants for the HILOS simulator.

Seven checks, each guarding a convention the test suite cannot express
as a compile error (those live in tests/compile_fail/):

 1. quantity-typed public APIs: headers under src/ must not declare
    `double` parameters or members whose names say they carry a time,
    bandwidth, power, or energy quantity — those are spelled Seconds,
    Bandwidth/BytesPerSec, Watts, Joules (src/common/units.h).

 2. golden serialisation format: the golden snapshots are byte-compared,
    so every floating-point printf-conversion in src/ and tests/support/
    must be exactly %.9g (the shortest round-trippable rendering used by
    tests/support/serialize.cc). Anything else would silently fork the
    serialisation format.

 3. seeded determinism: the simulator guarantees bit-identical replays
    from a seed, so wall-clock and OS-entropy sources are banned outside
    src/common/random.* (the one place allowed to own RNG plumbing).

 4. serving latency typing: the serving headers report SLO-facing
    timestamps and latencies (ttft, deadline, makespan, queue wait, ...)
    whose unit mistakes ship straight into goodput numbers; any `double`
    member or parameter built from those words must be Seconds. Stricter
    than check 1: inside src/runtime/serving*.h the word may appear
    anywhere in the identifier, not just as a suffix.

 5. named prefill fractions: prefill busy/energy fractions once lived
    as magic literals copied across engines; they now live in
    runtime/prefill_constants.h. Any line in src/runtime/ that mentions
    prefill and carries a bare 0.x literal regresses that — name the
    constant instead.

 6. test/example determinism: check 3 covers src/; the serving and
    fleet layers are exercised end-to-end from tests/, examples/, and
    bench/, so raw rand()/srand(), time(), and
    std::chrono::system_clock are banned there too. steady_clock stays
    allowed (bench wall-timing measures the host, not the simulation).

 7. stable analyzer diagnostic IDs: every diagnostic the plan analyzer
    (src/runtime/plan_analyzer.*) emits must carry a well-formed,
    unique PAnnn ID, and every finding must flow through the single
    ID-stamping emitter — no ad-hoc PlanFinding construction.

Exits non-zero listing file:line for every violation. No third-party
imports; runs anywhere a python3 exists (CI and the ctest fast lane).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# --- check 1: raw doubles posing as physical quantities -------------------

QUANTITY_SUFFIXES = (
    "seconds",
    "_time",
    "_bw",
    "bandwidth",
    "latency",
    "watts",
    "joules",
    "_power",
)

# `double foo_latency` as a member, parameter, or return-adjacent
# declaration. Names whose suffix only *contains* a quantity word
# (layer_time_divisor, timeout_prob) are fine; the suffix must end the
# identifier.
DOUBLE_DECL = re.compile(r"\bdouble\s+(&?\s*)([A-Za-z_][A-Za-z0-9_]*)")

# Dimensionless ratios that legitimately stay double even though the
# name ends in a quantity suffix would be listed here; none exist today.
QUANTITY_ALLOWLIST: set = set()


def check_quantity_types(violations):
    for path in sorted((ROOT / "src").rglob("*.h")):
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            for match in DOUBLE_DECL.finditer(code):
                name = match.group(2)
                if f"{rel}:{name}" in QUANTITY_ALLOWLIST:
                    continue
                if name.lower().endswith(QUANTITY_SUFFIXES):
                    violations.append(
                        f"{rel}:{lineno}: '{match.group(0).strip()}' "
                        f"looks like a physical quantity; use the typed "
                        f"alias from common/units.h (Seconds, Bandwidth, "
                        f"Watts, ...) instead of raw double"
                    )


# --- check 2: one canonical float rendering in the golden pipeline --------

FLOAT_CONVERSION = re.compile(r"%[-+ #0-9.*]*[aAeEfFgG]")


def check_golden_format(violations):
    scan_dirs = [ROOT / "src", ROOT / "tests" / "support"]
    for base in scan_dirs:
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(ROOT)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for literal in re.findall(r'"((?:[^"\\]|\\.)*)"', line):
                    for conv in FLOAT_CONVERSION.findall(literal):
                        if conv != "%.9g":
                            violations.append(
                                f"{rel}:{lineno}: float conversion "
                                f"'{conv}' — golden serialisation is "
                                f"byte-compared and uses exactly %.9g "
                                f"(tests/support/serialize.cc)"
                            )


# --- check 3: no nondeterminism outside common/random ---------------------

BANNED_CALLS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"), "time(nullptr)"),
    (re.compile(r"\bstd::chrono::(system|steady|high_resolution)_clock\b"),
     "std::chrono clocks"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
]


def check_determinism(violations):
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(ROOT)
        if str(rel).startswith("src/common/random"):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            for pattern, label in BANNED_CALLS:
                if pattern.search(code):
                    violations.append(
                        f"{rel}:{lineno}: {label} breaks seeded "
                        f"reproducibility; draw from common/random "
                        f"instead"
                    )


# --- check 4: serving headers type every latency as Seconds ---------------

SERVING_LATENCY_WORDS = {
    "ttft",
    "slo",
    "deadline",
    "makespan",
    "wait",
    "arrival",
    "e2e",
    "latency",
    "admitted",
    "completed",
}

# A latency word qualified into a dimensionless metric (arrival_rate,
# slo_attainment) legitimately stays double: the *last* token names the
# actual dimension.
SERVING_DIMENSIONLESS_TAILS = {
    "rate",
    "rps",
    "ratio",
    "attainment",
    "overhead",
    "weight",
    "count",
}

# file:name escapes for anything the tail rule cannot express.
SERVING_LATENCY_ALLOWLIST: set = set()


def check_serving_latency_types(violations):
    for path in sorted((ROOT / "src" / "runtime").glob("serving*.h")):
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            for match in DOUBLE_DECL.finditer(code):
                name = match.group(2)
                if f"{rel}:{name}" in SERVING_LATENCY_ALLOWLIST:
                    continue
                tokens = name.lower().split("_")
                if tokens[-1] in SERVING_DIMENSIONLESS_TAILS:
                    continue
                hits = set(tokens) & SERVING_LATENCY_WORDS
                if hits:
                    violations.append(
                        f"{rel}:{lineno}: '{match.group(0).strip()}' "
                        f"carries a serving latency "
                        f"({', '.join(sorted(hits))}) as raw double; "
                        f"declare it Seconds (common/units.h)"
                    )


# --- check 5: prefill fractions are named constants ------------------------

BARE_FRACTION = re.compile(r"(?<![0-9.\w])0\.\d+")


def check_prefill_fractions(violations):
    for path in sorted((ROOT / "src" / "runtime").glob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        if path.name == "prefill_constants.h":
            continue  # the one place the fractions are defined
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            if "prefill" not in code.lower():
                continue
            if BARE_FRACTION.search(code):
                violations.append(
                    f"{rel}:{lineno}: bare fraction literal on a "
                    f"prefill line; name it in "
                    f"runtime/prefill_constants.h so every engine "
                    f"shares one definition"
                )


# --- check 6: determinism in the test/example/bench layers -----------------

STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')

EXTERNAL_BANNED_CALLS = [
    (re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![A-Za-z0-9_.:])time\s*\("), "time()"),
    (re.compile(r"\bstd::chrono::system_clock\b"),
     "std::chrono::system_clock"),
]


def check_external_determinism(violations):
    scan_dirs = [ROOT / "tests", ROOT / "examples", ROOT / "bench"]
    for base in scan_dirs:
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc", ".cpp"):
                continue
            rel = path.relative_to(ROOT)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if line.lstrip().startswith(("*", "/*")):
                    continue  # block-comment line
                code = STRING_LITERAL.sub('""', line.split("//")[0])
                for pattern, label in EXTERNAL_BANNED_CALLS:
                    if pattern.search(code):
                        violations.append(
                            f"{rel}:{lineno}: {label} breaks seeded "
                            f"reproducibility of the test/example "
                            f"layers; draw from common/random (or "
                            f"steady_clock for bench wall-timing) "
                            f"instead"
                        )


# --- check 7: stable PAnnn diagnostic IDs in the plan analyzer --------------

PA_LITERAL = re.compile(r'"(PA[0-9A-Za-z_]*)"')
PA_WELL_FORMED = re.compile(r"PA[0-9]{3}$")


def check_analyzer_diag_ids(violations):
    analyzer_files = sorted(
        (ROOT / "src" / "runtime").glob("plan_analyzer.*"))
    seen_ids = {}
    emitter_pushes = 0
    for path in analyzer_files:
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            for pa in PA_LITERAL.findall(code):
                if not PA_WELL_FORMED.match(pa):
                    violations.append(
                        f"{rel}:{lineno}: diagnostic ID '{pa}' is not "
                        f"a well-formed PAnnn ID"
                    )
                elif pa in seen_ids:
                    violations.append(
                        f"{rel}:{lineno}: diagnostic ID '{pa}' already "
                        f"declared at {seen_ids[pa]}; IDs are stable "
                        f"and unique"
                    )
                else:
                    seen_ids[pa] = f"{rel}:{lineno}"
            if path.suffix == ".cc" and "findings.push_back" in code:
                emitter_pushes += 1
    if analyzer_files:
        if not seen_ids:
            violations.append(
                "src/runtime/plan_analyzer.cc: no PAnnn diagnostic IDs "
                "found; analyzer diagnostics must carry stable IDs"
            )
        if emitter_pushes != 1:
            violations.append(
                f"src/runtime/plan_analyzer.cc: {emitter_pushes} "
                f"findings.push_back sites (expected exactly 1); every "
                f"finding must flow through the single ID-stamping "
                f"emitter"
            )
    # No ad-hoc PlanFinding construction anywhere in src/: the emitter
    # is the only place a finding is born, so no diagnostic can ship
    # without a stable ID.
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("//")[0]
            if re.search(r"\bPlanFinding\s*\{", code) and not re.search(
                    r"\bstruct\s+PlanFinding\b", code):
                violations.append(
                    f"{rel}:{lineno}: ad-hoc PlanFinding construction; "
                    f"emit diagnostics through the plan analyzer's "
                    f"ID-stamping emitter"
                )


def main():
    violations = []
    check_quantity_types(violations)
    check_golden_format(violations)
    check_determinism(violations)
    check_serving_latency_types(violations)
    check_prefill_fractions(violations)
    check_external_determinism(violations)
    check_analyzer_diag_ids(violations)
    if violations:
        print(f"lint_hilos: {len(violations)} violation(s)")
        for v in violations:
            print(f"  {v}")
        return 1
    print("lint_hilos: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
