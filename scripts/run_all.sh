#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" --output-on-failure

echo
echo "=== regenerating every table and figure ==="
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    "$b"
done
