#include "storage/ftl.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace hilos {

std::uint64_t
FtlConfig::logicalPages() const
{
    const auto physical = physicalPages();
    const auto hidden = static_cast<std::uint64_t>(
        overprovision * static_cast<double>(physical));
    HILOS_ASSERT(hidden < physical, "overprovision too large");
    return physical - hidden;
}

double
FtlStats::writeAmplification() const
{
    if (host_writes_pages == 0)
        return 1.0;
    return static_cast<double>(nand_programs) /
           static_cast<double>(host_writes_pages);
}

double
FtlStats::writeAmplificationBytes(std::uint64_t page_bytes) const
{
    if (host_bytes_written == 0)
        return 1.0;
    return static_cast<double>(nand_programs * page_bytes) /
           static_cast<double>(host_bytes_written);
}

Ftl::Ftl(const FtlConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.blocks >= 4, "FTL needs at least 4 blocks");
    HILOS_ASSERT(cfg_.gc_high_watermark > cfg_.gc_low_watermark,
                 "GC watermarks inverted");
    HILOS_ASSERT(cfg_.gc_low_watermark >= 1,
                 "GC needs at least one spare block");
    HILOS_ASSERT(cfg_.gc_high_watermark < cfg_.blocks,
                 "GC high watermark exceeds block count");

    map_.assign(cfg_.logicalPages(),
                std::numeric_limits<std::uint64_t>::max());
    blocks_.resize(cfg_.blocks);
    for (auto &b : blocks_)
        b.owner.assign(cfg_.pages_per_block, kUnmapped);
    free_blocks_.reserve(cfg_.blocks);
    for (std::uint64_t i = cfg_.blocks; i > 0; i--)
        free_blocks_.push_back(static_cast<std::uint32_t>(i - 1));
}

std::uint64_t
Ftl::freeBlocks() const
{
    return free_blocks_.size();
}

std::uint64_t
Ftl::maxEraseCount() const
{
    std::uint64_t best = 0;
    for (const auto &b : blocks_)
        best = std::max(best, b.erase_count);
    return best;
}

double
Ftl::meanEraseCount() const
{
    std::uint64_t total = 0;
    for (const auto &b : blocks_)
        total += b.erase_count;
    return static_cast<double>(total) / static_cast<double>(blocks_.size());
}

void
Ftl::openNewBlock()
{
    HILOS_ASSERT(!free_blocks_.empty(), "FTL out of free blocks");
    active_block_ = free_blocks_.back();
    free_blocks_.pop_back();
}

std::uint64_t
Ftl::allocSlot()
{
    if (!in_gc_ && free_blocks_.size() <= cfg_.gc_low_watermark)
        garbageCollect();

    if (active_block_ == kUnmapped ||
        blocks_[active_block_].next_page >= cfg_.pages_per_block) {
        openNewBlock();
    }
    Block &b = blocks_[active_block_];
    const std::uint64_t slot =
        static_cast<std::uint64_t>(active_block_) * cfg_.pages_per_block +
        b.next_page;
    b.next_page++;
    return slot;
}

void
Ftl::programPage(std::uint64_t lpn)
{
    // Invalidate any existing mapping.
    const std::uint64_t old = map_[lpn];
    if (old != std::numeric_limits<std::uint64_t>::max()) {
        const auto blk = static_cast<std::uint32_t>(
            old / cfg_.pages_per_block);
        const auto page = static_cast<std::uint32_t>(
            old % cfg_.pages_per_block);
        HILOS_ASSERT(blocks_[blk].valid > 0, "double invalidate");
        blocks_[blk].valid--;
        blocks_[blk].owner[page] = kUnmapped;
    } else {
        mapped_count_++;
    }

    const std::uint64_t slot = allocSlot();
    const auto blk = static_cast<std::uint32_t>(slot / cfg_.pages_per_block);
    const auto page = static_cast<std::uint32_t>(slot % cfg_.pages_per_block);
    blocks_[blk].owner[page] = static_cast<std::uint32_t>(lpn);
    blocks_[blk].valid++;
    map_[lpn] = slot;
    stats_.nand_programs++;
}

void
Ftl::garbageCollect()
{
    in_gc_ = true;
    std::uint64_t min_erase = 0;
    if (cfg_.gc_policy == GcPolicy::WearAware) {
        min_erase = blocks_.front().erase_count;
        for (const Block &b : blocks_)
            min_erase = std::min(min_erase, b.erase_count);
    }
    while (free_blocks_.size() < cfg_.gc_high_watermark) {
        // Victim selection: fewest valid pages (greedy), optionally
        // penalised by wear above the fleet minimum (wear-aware).
        std::uint32_t victim = kUnmapped;
        std::uint32_t victim_valid = 0;
        double best_score = 1e18;
        for (std::uint32_t i = 0; i < blocks_.size(); i++) {
            const Block &b = blocks_[i];
            if (i == active_block_ || b.next_page == 0)
                continue;  // active or free/open-empty block
            if (b.next_page < cfg_.pages_per_block && b.valid > 0)
                continue;  // still open for writes, skip
            // Greedy on valid pages for both policies (picking fuller
            // victims only multiplies relocation traffic); WearAware
            // uses the wear delta purely as a tie-breaker so equally
            // empty blocks rotate instead of ping-ponging.
            double score = static_cast<double>(b.valid) * 1024.0;
            if (cfg_.gc_policy == GcPolicy::WearAware) {
                score += std::min<double>(
                    1023.0, cfg_.wear_weight *
                                static_cast<double>(b.erase_count -
                                                    min_erase));
            }
            if (score < best_score) {
                best_score = score;
                victim = i;
                victim_valid = b.valid;
            }
        }
        if (victim == kUnmapped ||
            victim_valid >= cfg_.pages_per_block) {
            break;  // nothing reclaimable; avoid GC livelock
        }

        Block &v = blocks_[victim];
        // Relocate valid pages.
        for (std::uint32_t p = 0; p < cfg_.pages_per_block; p++) {
            const std::uint32_t lpn = v.owner[p];
            if (lpn == kUnmapped)
                continue;
            stats_.nand_reads++;
            stats_.gc_moves++;
            programPage(lpn);
        }
        // Erase and free.
        v.next_page = 0;
        v.valid = 0;
        v.erase_count++;
        std::fill(v.owner.begin(), v.owner.end(), kUnmapped);
        stats_.gc_erases++;
        free_blocks_.push_back(victim);
    }
    // Static levelling is rate-limited: migrating cold data costs a
    // whole block of relocations, so it runs once per batch of erases.
    if (cfg_.gc_policy == GcPolicy::WearAware &&
        free_blocks_.size() >= cfg_.gc_high_watermark &&
        stats_.gc_erases >= last_level_erases_ + 32) {
        last_level_erases_ = stats_.gc_erases;
        staticWearLevel();
    }
    in_gc_ = false;
}

void
Ftl::staticWearLevel()
{
    // Cold data parks in blocks that never empty, so they never get
    // erased and the hot pool absorbs all the wear. When the spread
    // grows past the threshold, migrate the coldest (least-worn, still
    // valid) block's contents; the freed block rejoins the hot rotation.
    for (int round = 0; round < 2; round++) {
        std::uint64_t max_erase = 0;
        std::uint32_t coldest = kUnmapped;
        std::uint64_t coldest_erase = ~0ull;
        for (std::uint32_t i = 0; i < blocks_.size(); i++) {
            const Block &b = blocks_[i];
            max_erase = std::max(max_erase, b.erase_count);
            if (i == active_block_ || b.next_page == 0 || b.valid == 0)
                continue;
            if (b.erase_count < coldest_erase) {
                coldest_erase = b.erase_count;
                coldest = i;
            }
        }
        if (coldest == kUnmapped ||
            max_erase - coldest_erase <= cfg_.wear_threshold) {
            return;
        }
        Block &v = blocks_[coldest];
        for (std::uint32_t p = 0; p < cfg_.pages_per_block; p++) {
            const std::uint32_t lpn = v.owner[p];
            if (lpn == kUnmapped)
                continue;
            stats_.nand_reads++;
            stats_.gc_moves++;
            programPage(lpn);
        }
        v.next_page = 0;
        v.valid = 0;
        v.erase_count++;
        std::fill(v.owner.begin(), v.owner.end(), kUnmapped);
        stats_.gc_erases++;
        free_blocks_.push_back(coldest);
        if (free_blocks_.size() < 3)
            return;  // keep slack for regular writes
    }
}

std::uint64_t
Ftl::write(std::uint64_t addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    const std::uint64_t page = cfg_.logical_page_bytes;
    const std::uint64_t first = addr / page;
    const std::uint64_t last = (addr + bytes - 1) / page;
    HILOS_ASSERT(last < map_.size(), "write beyond logical capacity: page ",
                 last, " >= ", map_.size());

    const std::uint64_t programs_before = stats_.nand_programs;
    stats_.host_bytes_written += bytes;
    if (bytes < page)
        stats_.host_subpage_writes++;

    for (std::uint64_t lpn = first; lpn <= last; lpn++) {
        stats_.host_writes_pages++;
        const std::uint64_t lo = std::max(addr, lpn * page);
        const std::uint64_t hi = std::min(addr + bytes, (lpn + 1) * page);
        const bool partial = (hi - lo) < page;
        if (partial &&
            map_[lpn] != std::numeric_limits<std::uint64_t>::max()) {
            stats_.nand_reads++;  // read-modify-write of live data
        }
        programPage(lpn);
    }
    return stats_.nand_programs - programs_before;
}

std::uint64_t
Ftl::read(std::uint64_t addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0;
    const std::uint64_t page = cfg_.logical_page_bytes;
    const std::uint64_t first = addr / page;
    const std::uint64_t last = (addr + bytes - 1) / page;
    HILOS_ASSERT(last < map_.size(), "read beyond logical capacity");

    std::uint64_t reads = 0;
    for (std::uint64_t lpn = first; lpn <= last; lpn++) {
        if (map_[lpn] != std::numeric_limits<std::uint64_t>::max()) {
            reads++;
        }
    }
    stats_.nand_reads += reads;
    return reads;
}

void
Ftl::trim(std::uint64_t addr, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    const std::uint64_t page = cfg_.logical_page_bytes;
    // Only whole pages inside the range unmap.
    const std::uint64_t first = ceilDiv(addr, page);
    const std::uint64_t end = (addr + bytes) / page;
    for (std::uint64_t lpn = first; lpn < end && lpn < map_.size(); lpn++) {
        const std::uint64_t slot = map_[lpn];
        if (slot == std::numeric_limits<std::uint64_t>::max())
            continue;
        const auto blk = static_cast<std::uint32_t>(
            slot / cfg_.pages_per_block);
        const auto pg = static_cast<std::uint32_t>(
            slot % cfg_.pages_per_block);
        blocks_[blk].valid--;
        blocks_[blk].owner[pg] = kUnmapped;
        map_[lpn] = std::numeric_limits<std::uint64_t>::max();
        mapped_count_--;
    }
}

}  // namespace hilos
