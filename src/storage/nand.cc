#include "storage/nand.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

std::uint64_t
NandConfig::rawCapacity() const
{
    return totalPages() * page_bytes;
}

std::uint64_t
NandConfig::totalPages() const
{
    return pages_per_block * totalBlocks();
}

std::uint64_t
NandConfig::totalBlocks() const
{
    return blocks_per_plane * planes_per_die * dies_per_channel * channels;
}

std::uint64_t
NandConfig::blockBytes() const
{
    return pages_per_block * page_bytes;
}

Bandwidth
NandConfig::aggregateChannelRate() const
{
    return channel_rate * static_cast<double>(channels);
}

std::uint64_t
NandTiming::maxParallel() const
{
    return cfg_.channels * cfg_.dies_per_channel;
}

Seconds
NandTiming::readPages(std::uint64_t pages, std::uint64_t parallel) const
{
    if (pages == 0)
        return 0.0;
    parallel = std::clamp<std::uint64_t>(parallel, 1, maxParallel());
    // Waves of `parallel` array reads, pipelined with channel transfer.
    const std::uint64_t waves = ceilDiv(pages, parallel);
    const Seconds array_time =
        static_cast<double>(waves) * cfg_.read_latency;
    // Channel transfer: each channel moves its share of the page data.
    const std::uint64_t active_channels =
        std::min<std::uint64_t>(cfg_.channels, parallel);
    const Bytes bytes(static_cast<double>(pages * cfg_.page_bytes));
    const Seconds xfer_time =
        bytes / (cfg_.channel_rate * static_cast<double>(active_channels));
    // Array access and transfer pipeline; the longer one dominates, plus
    // one fill term of the shorter.
    const Seconds bottleneck = std::max(array_time, xfer_time);
    const Seconds fill = std::min(cfg_.read_latency,
                                  Bytes(cfg_.page_bytes) / cfg_.channel_rate);
    return bottleneck + fill;
}

Seconds
NandTiming::programPages(std::uint64_t pages, std::uint64_t parallel) const
{
    if (pages == 0)
        return 0.0;
    parallel = std::clamp<std::uint64_t>(parallel, 1, maxParallel());
    const std::uint64_t waves = ceilDiv(pages, parallel);
    const Seconds array_time =
        static_cast<double>(waves) * cfg_.program_latency;
    const std::uint64_t active_channels =
        std::min<std::uint64_t>(cfg_.channels, parallel);
    const Bytes bytes(static_cast<double>(pages * cfg_.page_bytes));
    const Seconds xfer_time =
        bytes / (cfg_.channel_rate * static_cast<double>(active_channels));
    const Seconds bottleneck = std::max(array_time, xfer_time);
    const Seconds fill = std::min(cfg_.program_latency,
                                  Bytes(cfg_.page_bytes) / cfg_.channel_rate);
    return bottleneck + fill;
}

Seconds
NandTiming::eraseBlocks(std::uint64_t blocks, std::uint64_t parallel) const
{
    if (blocks == 0)
        return 0.0;
    parallel = std::clamp<std::uint64_t>(parallel, 1, maxParallel());
    const std::uint64_t waves = ceilDiv(blocks, parallel);
    return static_cast<double>(waves) * cfg_.erase_latency;
}

Seconds
NandTiming::readRetryLatency(std::uint64_t steps) const
{
    return static_cast<double>(steps) *
           (cfg_.read_latency + cfg_.read_retry_step);
}

Seconds
NandTiming::readPagesWithRetries(std::uint64_t pages,
                                 std::uint64_t parallel,
                                 double error_prob, Rng &rng,
                                 std::uint64_t *errors) const
{
    const Seconds base = readPages(pages, parallel);
    if (errors != nullptr)
        *errors = 0;
    if (pages == 0 || error_prob <= 0.0)
        return base;
    HILOS_ASSERT(error_prob <= 1.0, "invalid error probability");
    std::binomial_distribution<std::uint64_t> err_dist(pages, error_prob);
    const std::uint64_t erroring = err_dist(rng.engine());
    if (errors != nullptr)
        *errors = erroring;
    // Retries serialise on the die that holds the page, so they do not
    // overlap the wave pipeline; sample each ladder depth.
    Seconds penalty = 0.0;
    for (std::uint64_t i = 0; i < erroring; i++) {
        const auto steps = static_cast<std::uint64_t>(rng.uniformInt(
            1, static_cast<std::int64_t>(cfg_.max_read_retry_steps)));
        penalty += readRetryLatency(steps);
    }
    return base + penalty;
}

}  // namespace hilos
