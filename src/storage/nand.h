/**
 * @file
 * NAND flash geometry and raw-operation timing.
 *
 * Models the flash array behind an SSD controller: channels, dies,
 * planes, blocks, and pages, with datasheet-style operation latencies
 * (tR/tPROG/tBERS) and per-channel transfer bandwidth. The FTL and SSD
 * models are layered on top.
 */

#ifndef HILOS_STORAGE_NAND_H_
#define HILOS_STORAGE_NAND_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/units.h"

namespace hilos {

/** Static NAND array geometry and timing parameters. */
struct NandConfig {
    std::uint64_t page_bytes = 16 * KiB;   ///< physical page size
    std::uint64_t pages_per_block = 256;
    std::uint64_t blocks_per_plane = 1024;
    std::uint64_t planes_per_die = 4;
    std::uint64_t dies_per_channel = 4;
    std::uint64_t channels = 8;

    Seconds read_latency = usec(50);     ///< tR, array -> page register
    Seconds program_latency = usec(500); ///< tPROG
    Seconds erase_latency = msec(3);     ///< tBERS
    Bandwidth channel_rate = mbps(1200); ///< ONFI channel, MT/s * 1B

    /** Settle time added to each ECC read-retry re-read. */
    Seconds read_retry_step = usec(70);
    /** Read-retry ladder depth (reference-voltage shifts). */
    std::uint64_t max_read_retry_steps = 8;

    /** Total raw capacity in bytes. */
    std::uint64_t rawCapacity() const;
    /** Total number of physical pages. */
    std::uint64_t totalPages() const;
    /** Total number of blocks. */
    std::uint64_t totalBlocks() const;
    /** Pages in one block times page size. */
    std::uint64_t blockBytes() const;
    /** Aggregate channel bandwidth. */
    Bandwidth aggregateChannelRate() const;
};

/**
 * Raw NAND timing oracle: the time to read / program / erase given the
 * amount of die-level parallelism actually achieved. Pure and stateless;
 * the FTL decides placement (and therefore parallelism).
 */
class NandTiming
{
  public:
    explicit NandTiming(const NandConfig &cfg) : cfg_(cfg) {}

    /**
     * Time to read `pages` physical pages spread over `parallel` units
     * (parallel <= channels * dies_per_channel). Array access across
     * units overlaps; channel transfer serialises per channel.
     */
    Seconds readPages(std::uint64_t pages, std::uint64_t parallel) const;

    /** Same for programming. */
    Seconds programPages(std::uint64_t pages, std::uint64_t parallel) const;

    /** Time to erase `blocks` blocks with `parallel` units. */
    Seconds eraseBlocks(std::uint64_t blocks, std::uint64_t parallel) const;

    /**
     * Latency of an ECC read-retry ladder of `steps` re-reads: each
     * step repeats the array access at a shifted reference voltage.
     */
    Seconds readRetryLatency(std::uint64_t steps) const;

    /**
     * readPages plus sampled ECC read-retry ladders: each page fails
     * its first read with probability `error_prob` and then walks a
     * ladder of 1..max_read_retry_steps re-reads. Deterministic for a
     * given `rng` state.
     * @param errors optional out-param: number of erroring pages
     */
    Seconds readPagesWithRetries(std::uint64_t pages,
                                 std::uint64_t parallel,
                                 double error_prob, Rng &rng,
                                 std::uint64_t *errors = nullptr) const;

    /** Maximum useful parallelism (channels x dies). */
    std::uint64_t maxParallel() const;

    const NandConfig &config() const { return cfg_; }

  private:
    NandConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_STORAGE_NAND_H_
