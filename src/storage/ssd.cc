#include "storage/ssd.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Ssd::Ssd(const SsdConfig &cfg, std::uint64_t capacity_scale)
    : cfg_(cfg), scale_(std::max<std::uint64_t>(1, capacity_scale)),
      stats_(cfg.name)
{
    HILOS_ASSERT(cfg_.capacity > 0 && cfg_.page_bytes > 0,
                 "invalid SSD geometry");
    FtlConfig fcfg;
    fcfg.logical_page_bytes = cfg_.page_bytes;
    fcfg.pages_per_block = 256;
    const std::uint64_t scaled_capacity =
        std::max<std::uint64_t>(cfg_.capacity / scale_,
                                64 * fcfg.pages_per_block *
                                    fcfg.logical_page_bytes);
    fcfg.blocks = ceilDiv(scaled_capacity,
                          fcfg.pages_per_block * fcfg.logical_page_bytes);
    // Keep ~7% OP like the real device.
    fcfg.blocks = static_cast<std::uint64_t>(
        static_cast<double>(fcfg.blocks) * 1.07) + 8;
    ftl_ = std::make_unique<Ftl>(fcfg);
}

Seconds
Ssd::readTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(health_ != SsdHealth::Failed,
                 "read from failed SSD '", cfg_.name, "'");
    if (bytes == 0)
        return 0.0;
    return read_slowdown_ *
           (cfg_.read_latency +
            Bytes(static_cast<double>(bytes)) / cfg_.seq_read_bw);
}

Seconds
Ssd::writeTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(health_ != SsdHealth::Failed,
                 "write to failed SSD '", cfg_.name, "'");
    if (bytes == 0)
        return 0.0;
    return cfg_.write_latency +
           Bytes(static_cast<double>(bytes)) / cfg_.seq_write_bw;
}

Seconds
Ssd::randomReadTime(std::uint64_t count, std::uint64_t bytes) const
{
    HILOS_ASSERT(health_ != SsdHealth::Failed,
                 "read from failed SSD '", cfg_.name, "'");
    if (count == 0)
        return 0.0;
    // IOPS-limited command overhead plus data movement, whichever binds.
    const Seconds iops_time =
        static_cast<double>(count) / cfg_.rand_read_iops;
    const Seconds bw_time =
        Bytes(static_cast<double>(count * roundUp(bytes, cfg_.page_bytes))) /
        cfg_.seq_read_bw;
    return read_slowdown_ *
           (cfg_.read_latency + std::max(iops_time, bw_time));
}

void
Ssd::degrade(double read_slowdown)
{
    HILOS_ASSERT(read_slowdown >= 1.0,
                 "read slowdown must be >= 1: ", read_slowdown);
    HILOS_ASSERT(health_ != SsdHealth::Failed,
                 "cannot degrade a failed SSD");
    health_ = SsdHealth::Degraded;
    read_slowdown_ *= read_slowdown;
}

Seconds
Ssd::randomWriteTime(std::uint64_t count, std::uint64_t bytes) const
{
    if (count == 0)
        return 0.0;
    const std::uint64_t padded = roundUp(std::max<std::uint64_t>(bytes, 1),
                                         cfg_.page_bytes);
    const Seconds iops_time =
        static_cast<double>(count) / cfg_.rand_write_iops;
    const Seconds bw_time =
        Bytes(static_cast<double>(count * padded)) / cfg_.seq_write_bw;
    return cfg_.write_latency + std::max(iops_time, bw_time);
}

void
Ssd::recordWrite(std::uint64_t bytes, bool sequential)
{
    host_bytes_written_ += static_cast<double>(bytes);
    stats_.counter("host_write_bytes").add(static_cast<double>(bytes));

    if (sequential) {
        padded_bytes_written_ +=
            static_cast<double>(roundUp(bytes, cfg_.page_bytes));
        // Stream through the scaled FTL to exercise GC/wear.
        const std::uint64_t scaled =
            std::max<std::uint64_t>(bytes / scale_, cfg_.page_bytes);
        const std::uint64_t logical_bytes =
            ftl_->config().logicalPages() * cfg_.page_bytes;
        if (seq_cursor_ + scaled > logical_bytes)
            seq_cursor_ = 0;  // wrap: overwrite oldest data
        ftl_->write(seq_cursor_, scaled);
        seq_cursor_ += roundUp(scaled, cfg_.page_bytes);
    } else {
        // Each small write consumes a whole page program.
        const std::uint64_t writes = std::max<std::uint64_t>(
            1, ceilDiv(bytes, cfg_.page_bytes));
        padded_bytes_written_ +=
            static_cast<double>(writes * cfg_.page_bytes);
        stats_.counter("subpage_writes").add(static_cast<double>(writes));
    }
}

void
Ssd::recordRead(std::uint64_t bytes)
{
    host_bytes_read_ += static_cast<double>(bytes);
    stats_.counter("host_read_bytes").add(static_cast<double>(bytes));
}

double
Ssd::nandBytesWritten() const
{
    // Padding overhead is exact; FTL GC amplification comes from the
    // scaled simulation's observed WA factor.
    const double ftl_wa = ftl_->stats().writeAmplification();
    return padded_bytes_written_ * std::max(1.0, ftl_wa);
}

double
Ssd::writeAmplification() const
{
    if (host_bytes_written_ == 0.0)
        return 1.0;
    return nandBytesWritten() / host_bytes_written_;
}

double
Ssd::enduranceConsumed() const
{
    return nandBytesWritten() / cfg_.enduranceBytes();
}

SsdConfig
pm9a3Config()
{
    SsdConfig cfg;
    cfg.name = "pm9a3";
    cfg.capacity = static_cast<std::uint64_t>(3.84 * TB);
    cfg.seq_read_bw = mbps(6900);
    cfg.seq_write_bw = mbps(4100);
    cfg.rand_read_iops = 1.1e6;
    cfg.rand_write_iops = 200e3;
    cfg.active_power = 13.0;
    cfg.idle_power = 5.0;
    cfg.endurance_pbw = 7.008;
    return cfg;
}

SsdConfig
smartSsdNandConfig()
{
    SsdConfig cfg;
    cfg.name = "smartssd-nand";
    cfg.capacity = static_cast<std::uint64_t>(3.84 * TB);
    // Internal PCIe 3.0 x4 P2P path bounds the usable bandwidth.
    cfg.seq_read_bw = mbps(3000);
    cfg.seq_write_bw = mbps(2100);
    cfg.rand_read_iops = 800e3;
    cfg.rand_write_iops = 150e3;
    cfg.active_power = 9.0;  // SSD portion; FPGA power modelled apart
    cfg.idle_power = 3.0;
    cfg.endurance_pbw = 7.008;
    return cfg;
}

}  // namespace hilos
