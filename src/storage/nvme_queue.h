/**
 * @file
 * NVMe queue-depth model.
 *
 * Achieved SSD throughput depends on how many commands are in flight:
 * at low queue depth the per-command latency bounds IOPS (Little's
 * law), saturating toward the device limit as QD grows. This is one of
 * the mechanisms behind the host-managed KV I/O path's low achieved
 * efficiency (synchronous direct I/O runs at QD ~ 1-4 per worker) while
 * the NSP P2P path streams at full rate — quantifying the
 * `host_kv_io_efficiency` calibration constant.
 */

#ifndef HILOS_STORAGE_NVME_QUEUE_H_
#define HILOS_STORAGE_NVME_QUEUE_H_

#include <cstdint>

#include "common/units.h"
#include "sim/fault.h"

namespace hilos {

/** Queue/command parameters of one NVMe device. */
struct NvmeQueueConfig {
    Seconds command_latency = usec(80);   ///< device-internal per-command
    Seconds submission_overhead = usec(6); ///< host doorbell + completion
    double max_read_iops = 1.0e6;
    Bandwidth max_read_bw = mbps(6900);
    std::uint64_t max_queue_depth = 1024;
};

/**
 * Little's-law throughput model for one device.
 */
class NvmeQueueModel
{
  public:
    explicit NvmeQueueModel(const NvmeQueueConfig &cfg);

    /**
     * Sustained IOPS at queue depth `qd` with `io_bytes` requests:
     * min(QD / effective latency, device IOPS, bandwidth / size).
     */
    double iops(std::uint64_t qd, std::uint64_t io_bytes) const;

    /** Sustained bandwidth at queue depth `qd`. */
    Bandwidth bandwidth(std::uint64_t qd, std::uint64_t io_bytes) const;

    /** Fraction of max bandwidth achieved at this operating point. */
    double efficiency(std::uint64_t qd, std::uint64_t io_bytes) const;

    /** Smallest queue depth achieving `target` of max bandwidth. */
    std::uint64_t queueDepthFor(double target,
                                std::uint64_t io_bytes) const;

    /**
     * Mean per-command latency including timeout recovery: the ideal
     * effective latency plus the expected timeout + bounded-backoff
     * penalty at per-command timeout probability `timeout_prob`.
     */
    Seconds commandLatencyWithRetries(std::uint64_t io_bytes,
                                      double timeout_prob,
                                      const RetryPolicy &retry) const;

    /**
     * Little's-law sustained bandwidth with the retry-inflated command
     * latency; equals bandwidth() exactly when `timeout_prob` is 0.
     */
    Bandwidth degradedBandwidth(std::uint64_t qd, std::uint64_t io_bytes,
                                double timeout_prob,
                                const RetryPolicy &retry) const;

    const NvmeQueueConfig &config() const { return cfg_; }

  private:
    NvmeQueueConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_STORAGE_NVME_QUEUE_H_
