#include "storage/nvme_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

NvmeQueueModel::NvmeQueueModel(const NvmeQueueConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.command_latency > 0 && cfg_.max_read_iops > 0 &&
                     cfg_.max_read_bw > 0,
                 "invalid NVMe queue config");
}

double
NvmeQueueModel::iops(std::uint64_t qd, std::uint64_t io_bytes) const
{
    HILOS_ASSERT(qd >= 1, "queue depth must be >= 1");
    HILOS_ASSERT(io_bytes >= 1, "request size must be >= 1");
    const std::uint64_t depth =
        std::min(qd, cfg_.max_queue_depth);
    // Little's law: concurrency / per-command latency, including the
    // transfer time of the request itself.
    const Seconds effective_latency =
        cfg_.command_latency + cfg_.submission_overhead +
        Bytes(static_cast<double>(io_bytes)) / cfg_.max_read_bw;
    const double little = static_cast<double>(depth) / effective_latency;
    const double bw_limit =
        cfg_.max_read_bw / static_cast<double>(io_bytes);
    return std::min({little, cfg_.max_read_iops, bw_limit});
}

Bandwidth
NvmeQueueModel::bandwidth(std::uint64_t qd, std::uint64_t io_bytes) const
{
    return iops(qd, io_bytes) * static_cast<double>(io_bytes);
}

double
NvmeQueueModel::efficiency(std::uint64_t qd, std::uint64_t io_bytes) const
{
    return bandwidth(qd, io_bytes) / cfg_.max_read_bw;
}

Seconds
NvmeQueueModel::commandLatencyWithRetries(std::uint64_t io_bytes,
                                          double timeout_prob,
                                          const RetryPolicy &retry) const
{
    HILOS_ASSERT(io_bytes >= 1, "request size must be >= 1");
    const Seconds ideal =
        cfg_.command_latency + cfg_.submission_overhead +
        Bytes(static_cast<double>(io_bytes)) / cfg_.max_read_bw;
    return ideal + retry.expectedNvmePenalty(timeout_prob);
}

Bandwidth
NvmeQueueModel::degradedBandwidth(std::uint64_t qd,
                                  std::uint64_t io_bytes,
                                  double timeout_prob,
                                  const RetryPolicy &retry) const
{
    HILOS_ASSERT(qd >= 1, "queue depth must be >= 1");
    const std::uint64_t depth = std::min(qd, cfg_.max_queue_depth);
    const Seconds effective_latency =
        commandLatencyWithRetries(io_bytes, timeout_prob, retry);
    const double little =
        static_cast<double>(depth) / effective_latency;
    const double bw_limit =
        cfg_.max_read_bw / static_cast<double>(io_bytes);
    return std::min({little, cfg_.max_read_iops, bw_limit}) *
           static_cast<double>(io_bytes);
}

std::uint64_t
NvmeQueueModel::queueDepthFor(double target,
                              std::uint64_t io_bytes) const
{
    HILOS_ASSERT(target > 0.0 && target <= 1.0, "invalid target");
    for (std::uint64_t qd = 1; qd <= cfg_.max_queue_depth; qd *= 2) {
        if (efficiency(qd, io_bytes) >= target)
            return qd;
    }
    return cfg_.max_queue_depth;
}

}  // namespace hilos
