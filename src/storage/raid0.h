/**
 * @file
 * Software RAID-0 (mdadm-style striping) over homogeneous SSDs.
 *
 * The paper's baselines run four PM9A3 SSDs (or sixteen SmartSSD NVMe
 * devices with FPGAs disabled) in a software RAID-0. Striping scales
 * sequential bandwidth with the member count until the shared host link
 * saturates; that saturation is modelled in the interconnect layer, not
 * here.
 */

#ifndef HILOS_STORAGE_RAID0_H_
#define HILOS_STORAGE_RAID0_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "storage/ssd.h"

namespace hilos {

/**
 * Stripe set over N identical SSDs with a fixed chunk size.
 */
class Raid0
{
  public:
    /**
     * @param cfg per-member SSD configuration
     * @param members number of member devices (>= 1)
     * @param chunk_bytes stripe chunk size (mdadm default 512 KiB)
     */
    Raid0(const SsdConfig &cfg, std::size_t members,
          std::uint64_t chunk_bytes = 512 * KiB);

    /** Aggregate capacity. */
    std::uint64_t capacity() const;

    /** Aggregate sequential read bandwidth (member sum). */
    Bandwidth seqReadBandwidth() const;
    /** Aggregate sequential write bandwidth (member sum). */
    Bandwidth seqWriteBandwidth() const;

    /**
     * Time to read `bytes` spread across the stripe: members work in
     * parallel on their chunks; small reads that fit in fewer chunks
     * than members see proportionally less speedup.
     */
    Seconds readTime(std::uint64_t bytes) const;

    /** Striped write time (same distribution logic as reads). */
    Seconds writeTime(std::uint64_t bytes) const;

    /** Record a write across the stripe for endurance accounting. */
    void recordWrite(std::uint64_t bytes, bool sequential);

    /** Aggregate NAND bytes programmed over all members. */
    double nandBytesWritten() const;

    /** Worst member endurance consumption fraction. */
    double enduranceConsumed() const;

    /**
     * Mark member `i` degraded: its reads slow down by `read_slowdown`
     * (>= 1). Striped reads still fan out over all members, so the
     * degraded member becomes the stripe's critical path.
     */
    void degradeMember(std::size_t i, double read_slowdown);

    /**
     * Fail member `i`. RAID-0 has no redundancy, so the whole stripe
     * set becomes unreadable (failed() turns true) and further
     * readTime/writeTime calls are a caller error.
     */
    void failMember(std::size_t i);

    /** Number of degraded (still readable) members. */
    std::size_t degradedMembers() const;

    /** True when any member has failed (stripe set lost). */
    bool failed() const;

    std::size_t members() const { return ssds_.size(); }
    const Ssd &member(std::size_t i) const { return *ssds_.at(i); }
    std::uint64_t chunkBytes() const { return chunk_bytes_; }

  private:
    /** Number of members active for an access of `bytes`. */
    std::size_t activeMembers(std::uint64_t bytes) const;

    std::vector<std::unique_ptr<Ssd>> ssds_;
    std::uint64_t chunk_bytes_;
};

}  // namespace hilos

#endif  // HILOS_STORAGE_RAID0_H_
