#include "storage/raid0.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Raid0::Raid0(const SsdConfig &cfg, std::size_t members,
             std::uint64_t chunk_bytes)
    : chunk_bytes_(chunk_bytes)
{
    HILOS_ASSERT(members >= 1, "RAID-0 needs at least one member");
    HILOS_ASSERT(chunk_bytes_ > 0, "chunk size must be positive");
    ssds_.reserve(members);
    for (std::size_t i = 0; i < members; i++)
        ssds_.push_back(std::make_unique<Ssd>(cfg));
}

std::uint64_t
Raid0::capacity() const
{
    return ssds_.size() * ssds_.front()->config().capacity;
}

Bandwidth
Raid0::seqReadBandwidth() const
{
    return static_cast<double>(ssds_.size()) *
           ssds_.front()->config().seq_read_bw;
}

Bandwidth
Raid0::seqWriteBandwidth() const
{
    return static_cast<double>(ssds_.size()) *
           ssds_.front()->config().seq_write_bw;
}

std::size_t
Raid0::activeMembers(std::uint64_t bytes) const
{
    const std::uint64_t chunks = ceilDiv(std::max<std::uint64_t>(bytes, 1),
                                         chunk_bytes_);
    return std::min<std::size_t>(ssds_.size(),
                                 static_cast<std::size_t>(chunks));
}

Seconds
Raid0::readTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(!failed(),
                 "read from RAID-0 stripe set with a failed member");
    if (bytes == 0)
        return 0.0;
    const std::size_t active = activeMembers(bytes);
    // The slowest member handles ceil(bytes / active); a degraded
    // member on the stripe becomes the critical path.
    const std::uint64_t share = ceilDiv(bytes, active);
    Seconds worst = 0.0;
    for (std::size_t i = 0; i < active; i++)
        worst = std::max(worst, ssds_[i]->readTime(share));
    return worst;
}

Seconds
Raid0::writeTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(!failed(),
                 "write to RAID-0 stripe set with a failed member");
    if (bytes == 0)
        return 0.0;
    const std::size_t active = activeMembers(bytes);
    const std::uint64_t share = ceilDiv(bytes, active);
    return ssds_.front()->writeTime(share);
}

void
Raid0::degradeMember(std::size_t i, double read_slowdown)
{
    ssds_.at(i)->degrade(read_slowdown);
}

void
Raid0::failMember(std::size_t i)
{
    ssds_.at(i)->fail();
}

std::size_t
Raid0::degradedMembers() const
{
    std::size_t n = 0;
    for (const auto &s : ssds_) {
        if (s->health() == SsdHealth::Degraded)
            n++;
    }
    return n;
}

bool
Raid0::failed() const
{
    for (const auto &s : ssds_) {
        if (s->health() == SsdHealth::Failed)
            return true;
    }
    return false;
}

void
Raid0::recordWrite(std::uint64_t bytes, bool sequential)
{
    const std::size_t active = activeMembers(bytes);
    const std::uint64_t share = ceilDiv(bytes, active);
    for (std::size_t i = 0; i < active; i++)
        ssds_[i]->recordWrite(share, sequential);
}

double
Raid0::nandBytesWritten() const
{
    double total = 0.0;
    for (const auto &s : ssds_)
        total += s->nandBytesWritten();
    return total;
}

double
Raid0::enduranceConsumed() const
{
    double worst = 0.0;
    for (const auto &s : ssds_)
        worst = std::max(worst, s->enduranceConsumed());
    return worst;
}

}  // namespace hilos
