#include "storage/raid0.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Raid0::Raid0(const SsdConfig &cfg, std::size_t members,
             std::uint64_t chunk_bytes)
    : chunk_bytes_(chunk_bytes)
{
    HILOS_ASSERT(members >= 1, "RAID-0 needs at least one member");
    HILOS_ASSERT(chunk_bytes_ > 0, "chunk size must be positive");
    ssds_.reserve(members);
    for (std::size_t i = 0; i < members; i++)
        ssds_.push_back(std::make_unique<Ssd>(cfg));
}

std::uint64_t
Raid0::capacity() const
{
    return ssds_.size() * ssds_.front()->config().capacity;
}

Bandwidth
Raid0::seqReadBandwidth() const
{
    return static_cast<double>(ssds_.size()) *
           ssds_.front()->config().seq_read_bw;
}

Bandwidth
Raid0::seqWriteBandwidth() const
{
    return static_cast<double>(ssds_.size()) *
           ssds_.front()->config().seq_write_bw;
}

std::size_t
Raid0::activeMembers(std::uint64_t bytes) const
{
    const std::uint64_t chunks = ceilDiv(std::max<std::uint64_t>(bytes, 1),
                                         chunk_bytes_);
    return std::min<std::size_t>(ssds_.size(),
                                 static_cast<std::size_t>(chunks));
}

Seconds
Raid0::readTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    const std::size_t active = activeMembers(bytes);
    // The slowest member handles ceil(bytes / active).
    const std::uint64_t share = ceilDiv(bytes, active);
    return ssds_.front()->readTime(share);
}

Seconds
Raid0::writeTime(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    const std::size_t active = activeMembers(bytes);
    const std::uint64_t share = ceilDiv(bytes, active);
    return ssds_.front()->writeTime(share);
}

void
Raid0::recordWrite(std::uint64_t bytes, bool sequential)
{
    const std::size_t active = activeMembers(bytes);
    const std::uint64_t share = ceilDiv(bytes, active);
    for (std::size_t i = 0; i < active; i++)
        ssds_[i]->recordWrite(share, sequential);
}

double
Raid0::nandBytesWritten() const
{
    double total = 0.0;
    for (const auto &s : ssds_)
        total += s->nandBytesWritten();
    return total;
}

double
Raid0::enduranceConsumed() const
{
    double worst = 0.0;
    for (const auto &s : ssds_)
        worst = std::max(worst, s->enduranceConsumed());
    return worst;
}

}  // namespace hilos
