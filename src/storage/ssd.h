/**
 * @file
 * NVMe SSD device model.
 *
 * Combines datasheet-style analytic timing (sequential bandwidth,
 * random IOPS, sub-page write penalty) with a functional FTL for wear
 * and write-amplification accounting. Presets model the two devices in
 * the paper's testbed: the Samsung PM9A3 (baseline PCIe 4.0 SSD) and the
 * NVMe SSD inside a SmartSSD (PCIe 3.0 x4 internal P2P path).
 */

#ifndef HILOS_STORAGE_SSD_H_
#define HILOS_STORAGE_SSD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/units.h"
#include "storage/ftl.h"

namespace hilos {

/** Datasheet-style SSD parameters. */
struct SsdConfig {
    std::string name = "generic-ssd";
    std::uint64_t capacity = 3840ull * 1000 * 1000 * 1000;  ///< 3.84 TB
    std::uint64_t page_bytes = 4 * KiB;  ///< host-visible write granularity
    Bandwidth seq_read_bw = mbps(6900);
    Bandwidth seq_write_bw = mbps(4100);
    double rand_read_iops = 1.0e6;   ///< 4 KiB random read IOPS
    double rand_write_iops = 180e3;  ///< 4 KiB random write IOPS
    Seconds read_latency = usec(80);
    Seconds write_latency = usec(20);  ///< to device cache
    Watts active_power = 13.0;
    Watts idle_power = 5.0;
    /** Endurance: total petabytes written the device is rated for. */
    double endurance_pbw = 7.008;

    /** Rated endurance in bytes. */
    double enduranceBytes() const { return endurance_pbw * 1e15; }
};

/** Device health for degraded-mode execution. */
enum class SsdHealth {
    Healthy,
    Degraded,  ///< readable, but reads pay a slowdown factor
    Failed,    ///< unreadable; accesses are a caller error
};

/**
 * An NVMe SSD: analytic timing plus FTL-backed wear accounting.
 *
 * Timing model:
 *  - sequential reads/writes stream at the datasheet bandwidth with a
 *    fixed command latency,
 *  - random (page-granular) accesses pay the IOPS limit,
 *  - sub-page writes cost a full page program (read-modify-write),
 *    which is the inefficiency delayed KV writeback removes.
 *
 * Wear accounting runs through a scaled FTL: the FTL geometry is
 * reduced (capacity_scale) so multi-terabyte devices don't need
 * billion-entry maps, while write amplification factors remain
 * representative; byte totals are tracked at full scale.
 */
class Ssd
{
  public:
    /**
     * @param cfg datasheet parameters
     * @param capacity_scale divide the FTL-backed capacity by this
     *        factor for wear simulation (timing is unaffected)
     */
    explicit Ssd(const SsdConfig &cfg, std::uint64_t capacity_scale = 4096);

    /** Time to read `bytes` sequentially. */
    Seconds readTime(std::uint64_t bytes) const;
    /** Time to write `bytes` sequentially. */
    Seconds writeTime(std::uint64_t bytes) const;
    /** Time for `count` random reads of `bytes` each. */
    Seconds randomReadTime(std::uint64_t count, std::uint64_t bytes) const;
    /**
     * Time for `count` random writes of `bytes` each. Writes smaller
     * than a page are padded to page granularity (RMW), so a 256 B KV
     * entry write costs a full 4 KiB program slot.
     */
    Seconds randomWriteTime(std::uint64_t count, std::uint64_t bytes) const;

    /**
     * Record a host write for endurance accounting (does not advance
     * any clock). Sub-page writes inflate NAND traffic per the page
     * granularity.
     * @param sequential whether the write is sequential (page-aligned
     *        streaming) or small/random
     */
    void recordWrite(std::uint64_t bytes, bool sequential);

    /** Record a host read (for traffic stats only). */
    void recordRead(std::uint64_t bytes);

    /** Total NAND bytes programmed so far (endurance consumption). */
    double nandBytesWritten() const;

    /** Total host bytes written. */
    double hostBytesWritten() const { return host_bytes_written_; }

    /** Effective write amplification observed so far. */
    double writeAmplification() const;

    /** Fraction of rated endurance consumed. */
    double enduranceConsumed() const;

    /** Current health state (Healthy on construction). */
    SsdHealth health() const { return health_; }

    /**
     * Mark the device degraded: reads slow down by `read_slowdown`
     * (>= 1; ECC stress, media retention issues). Repeated calls
     * compound.
     */
    void degrade(double read_slowdown);

    /** Mark the device failed; further reads/writes are a panic. */
    void fail() { health_ = SsdHealth::Failed; }

    /** Current read slowdown factor (1 when healthy). */
    double readSlowdown() const { return read_slowdown_; }

    const SsdConfig &config() const { return cfg_; }
    const Ftl &ftl() const { return *ftl_; }
    StatRegistry &stats() { return stats_; }

  private:
    SsdConfig cfg_;
    std::unique_ptr<Ftl> ftl_;
    std::uint64_t scale_;
    double host_bytes_written_ = 0.0;
    double host_bytes_read_ = 0.0;
    /** Sub-page padding overhead counted analytically (full scale). */
    double padded_bytes_written_ = 0.0;
    /** Next sequential-write cursor in scaled FTL space. */
    std::uint64_t seq_cursor_ = 0;
    SsdHealth health_ = SsdHealth::Healthy;
    double read_slowdown_ = 1.0;
    StatRegistry stats_;
};

/** Samsung PM9A3 3.84 TB (baseline PCIe 4.0 x4 SSD). */
SsdConfig pm9a3Config();

/**
 * The NVMe SSD inside a Samsung SmartSSD: 3.84 TB behind an internal
 * PCIe 3.0 x4 P2P path (~3.2 GB/s raw, ~3.0 GB/s effective).
 */
SsdConfig smartSsdNandConfig();

}  // namespace hilos

#endif  // HILOS_STORAGE_SSD_H_
