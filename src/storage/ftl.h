/**
 * @file
 * Page-level flash translation layer.
 *
 * A functional FTL: logical pages map to physical (block, page) slots,
 * writes are out-of-place, stale pages accumulate until a greedy
 * garbage collector reclaims the emptiest blocks. The FTL is the source
 * of truth for write amplification and wear (erase counts / bytes
 * programmed), which drive the endurance analysis (Fig. 16b) and the
 * sub-page-write penalty that motivates delayed KV writeback (§4.3).
 */

#ifndef HILOS_STORAGE_FTL_H_
#define HILOS_STORAGE_FTL_H_

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace hilos {

/** Garbage-collection victim-selection policy. */
enum class GcPolicy {
    /** Fewest valid pages wins (max immediate space reclaimed). */
    Greedy,
    /**
     * Cost-benefit with wear awareness: prefers empty blocks but
     * penalises already-worn blocks, narrowing the erase-count spread
     * under skewed (hot/cold) workloads.
     */
    WearAware,
};

/** FTL configuration: geometry in logical pages plus GC policy knobs. */
struct FtlConfig {
    std::uint64_t logical_page_bytes = 4 * KiB;
    std::uint64_t pages_per_block = 256;
    std::uint64_t blocks = 1024;
    /** Over-provisioning fraction of raw space hidden from the host. */
    double overprovision = 0.07;
    /** GC kicks in when free blocks drop below this count. */
    std::uint64_t gc_low_watermark = 4;
    /** GC reclaims until free blocks reach this count. */
    std::uint64_t gc_high_watermark = 8;
    GcPolicy gc_policy = GcPolicy::Greedy;
    /** Wear weight for WearAware: valid-page-equivalents per erase. */
    double wear_weight = 2.0;
    /**
     * WearAware static levelling triggers when the erase-count spread
     * exceeds this: the coldest block's data migrates so the worn-least
     * block rejoins the hot rotation.
     */
    std::uint64_t wear_threshold = 8;

    /** Logical pages exported to the host. */
    std::uint64_t logicalPages() const;
    /** Total physical pages. */
    std::uint64_t physicalPages() const { return blocks * pages_per_block; }
};

/** Cumulative FTL wear/traffic statistics. */
struct FtlStats {
    std::uint64_t host_writes_pages = 0;   ///< pages the host touched
    std::uint64_t host_bytes_written = 0;  ///< bytes the host asked to write
    std::uint64_t host_subpage_writes = 0; ///< writes smaller than a page
    std::uint64_t nand_programs = 0;       ///< pages actually programmed
    std::uint64_t nand_reads = 0;          ///< pages read (incl. GC + RMW)
    std::uint64_t gc_erases = 0;           ///< blocks erased by GC
    std::uint64_t gc_moves = 0;            ///< valid pages relocated by GC

    /** Write amplification: NAND programs per host page written. */
    double writeAmplification() const;

    /**
     * Byte-granular write amplification: NAND bytes programmed per host
     * byte written. Captures the sub-page (256 B KV entry vs 4 KiB page)
     * penalty that motivates delayed KV writeback.
     */
    double writeAmplificationBytes(std::uint64_t page_bytes) const;
};

/**
 * Page-mapping FTL with greedy garbage collection.
 *
 * Not thread-safe; one FTL per simulated SSD.
 */
class Ftl
{
  public:
    explicit Ftl(const FtlConfig &cfg);

    /**
     * Write `bytes` starting at logical byte address `addr`. Partial-page
     * writes trigger read-modify-write of the enclosing page(s).
     * @return number of NAND page programs incurred (including GC moves
     *         triggered by this write).
     */
    std::uint64_t write(std::uint64_t addr, std::uint64_t bytes);

    /**
     * Read `bytes` at logical byte address `addr`.
     * @return number of NAND page reads incurred. Unmapped pages read as
     *         zero and cost nothing.
     */
    std::uint64_t read(std::uint64_t addr, std::uint64_t bytes);

    /** Discard (TRIM) a logical byte range; unmaps whole pages inside. */
    void trim(std::uint64_t addr, std::uint64_t bytes);

    /** Number of currently free (erased, unwritten) blocks. */
    std::uint64_t freeBlocks() const;

    /** Number of mapped logical pages. */
    std::uint64_t mappedPages() const { return mapped_count_; }

    /** Max erase count over all blocks (wear peak). */
    std::uint64_t maxEraseCount() const;
    /** Mean erase count over all blocks. */
    double meanEraseCount() const;

    const FtlStats &stats() const { return stats_; }
    const FtlConfig &config() const { return cfg_; }

  private:
    static constexpr std::uint32_t kUnmapped = 0xffffffffu;

    struct Block {
        std::uint32_t next_page = 0;   ///< next free page slot
        std::uint32_t valid = 0;       ///< count of valid pages
        std::uint64_t erase_count = 0;
        std::vector<std::uint32_t> owner;  ///< logical page per slot
    };

    /** Allocate a physical slot, running GC if needed. */
    std::uint64_t allocSlot();
    /** Program one logical page out-of-place. */
    void programPage(std::uint64_t lpn);
    /** Greedy GC: reclaim emptiest blocks until high watermark. */
    void garbageCollect();
    /** WearAware: migrate cold data out of the least-worn blocks. */
    void staticWearLevel();
    /** Open a fresh block for writing. */
    void openNewBlock();

    FtlConfig cfg_;
    FtlStats stats_;
    /** lpn -> packed physical slot (block * pages_per_block + page). */
    std::vector<std::uint64_t> map_;
    std::vector<Block> blocks_;
    std::vector<std::uint32_t> free_blocks_;
    std::uint32_t active_block_ = kUnmapped;
    std::uint64_t mapped_count_ = 0;
    std::uint64_t last_level_erases_ = 0;
    bool in_gc_ = false;
};

}  // namespace hilos

#endif  // HILOS_STORAGE_FTL_H_
