/**
 * @file
 * System-level hardware configuration (Table 1) and the price list used
 * by the cost-effectiveness analysis (Fig. 16(a)).
 */

#ifndef HILOS_RUNTIME_SYSTEM_CONFIG_H_
#define HILOS_RUNTIME_SYSTEM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "device/cpu.h"
#include "device/dram.h"
#include "device/gpu.h"
#include "device/smartssd.h"
#include "storage/ssd.h"

namespace hilos {

/** Component prices from §6.6. */
struct PriceList {
    double host_server_usd = 15000.0;  ///< chassis, CPU, 512 GB DRAM
    double pcie_expansion_usd = 10000.0;
    double smartssd_usd = 2400.0;
    double pcie4_ssd_usd = 400.0;
};

/**
 * The testbed: GPU + CPU + host DRAM + storage tiers + the effective
 * interconnect bandwidths the engines' analytic models consume.
 *
 * The link bandwidths are *achieved* figures, not raw lane rates:
 * `gds_effective_bw` in particular reflects GPUDirect Storage + XRT
 * overheads through the chassis — the paper profiles
 * B_SSD / B_PCI ~ 3 with eight SmartSSDs (24 GB/s internal vs ~8 GB/s
 * host path), which is what makes alpha = 50% optimal (§4.2, Fig. 13).
 */
struct SystemConfig {
    GpuConfig gpu;
    CpuConfig cpu;
    DramConfig dram;
    SsdConfig baseline_ssd;
    SmartSsdConfig smartssd;

    unsigned num_baseline_ssds = 4;
    unsigned num_smartssds = 8;
    /**
     * NSP devices physically installed in the chassis (weights stripe
     * across all of them even when fewer run attention kernels).
     */
    unsigned installed_smartssds = 16;

    /** Effective host <-> GPU PCIe 4.0 x16 payload bandwidth. */
    Bandwidth host_pcie_bw = 26.8 * GB;
    /** Effective chassis-uplink bandwidth (switch + gen4 x16). */
    Bandwidth chassis_uplink_bw = 22.0 * GB;
    /** Achieved GDS path bandwidth, storage -> GPU (X-cache loads). */
    Bandwidth gds_effective_bw = 8.0 * GB;
    /** UVM page-fault slowdown factor on host I/O (DS+UVM baseline). */
    double uvm_io_penalty = 6.0;
    /**
     * Fraction of the host link the baseline frameworks' weight staging
     * achieves (imperfect overlap and staging copies); HILOS's
     * dedicated Weights Prefetcher (§5.2) runs a pinned double-buffered
     * pipeline at the full effective rate.
     */
    double baseline_weight_efficiency = 0.65;
    /**
     * Fraction of raw storage bandwidth the host-managed KV I/O path
     * achieves (synchronous direct I/O, per-slice scatter, read/write
     * interleaving; calibrated so FLEX(SSD)'s KV share matches the >60%
     * of Fig. 2(b)). The NSP P2P path avoids this stack entirely.
     */
    double host_kv_io_efficiency = 0.28;
    /**
     * Effective multiplier on KV bytes for the FLEX(DRAM) tier (pinned
     * double-buffered allocations); reproduces the paper's observed
     * max batch (e.g. bs=2 for OPT-66B in Fig. 11(a)).
     */
    double dram_kv_overhead = 1.8;
    /** XRT DMA migrate+wait cost per staged 4 KiB granule (§7.3). */
    Seconds xrt_sync_base = msec(1.2);

    PriceList prices;

    SystemConfig();
};

/** The default A100 testbed of Table 1. */
SystemConfig defaultSystem();

/** Same testbed with the H100 GPU swap of Fig. 16(a). */
SystemConfig h100System();

/**
 * The envisioned ISP testbed of §7.1: the SmartSSD fleet replaced by
 * ispDeviceConfig() units (16 GB/s internal flash path, LPDDR5X); one
 * unit is argued to match four SmartSSDs.
 */
SystemConfig ispSystem(unsigned devices = 1);

}  // namespace hilos

#endif  // HILOS_RUNTIME_SYSTEM_CONFIG_H_
