#include "runtime/step_plan.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "sim/pipeline.h"

namespace hilos {

const char *
planResourceName(PlanResource r)
{
    switch (r) {
      case PlanResource::None:
        return "none";
      case PlanResource::HostPcie:
        return "host_pcie";
      case PlanResource::Uplink:
        return "uplink";
      case PlanResource::Gds:
        return "gds";
      case PlanResource::P2p:
        return "p2p";
      case PlanResource::Storage:
        return "storage";
      case PlanResource::DramBus:
        return "dram_bus";
      case PlanResource::IntraNode:
        return "intra_node";
      case PlanResource::InterNode:
        return "inter_node";
    }
    HILOS_PANIC("unknown plan resource");
}

const char *
computeUnitName(ComputeUnit u)
{
    switch (u) {
      case ComputeUnit::None:
        return "none";
      case ComputeUnit::Gpu:
        return "gpu";
      case ComputeUnit::Cpu:
        return "cpu";
      case ComputeUnit::Fpga:
        return "fpga";
    }
    HILOS_PANIC("unknown compute unit");
}

const char *
trafficFieldName(TrafficField f)
{
    switch (f) {
      case TrafficField::HostRead:
        return "host_read";
      case TrafficField::HostWrite:
        return "host_write";
      case TrafficField::AttnHostRead:
        return "attn_host_read";
      case TrafficField::AttnHostWrite:
        return "attn_host_write";
      case TrafficField::Internal:
        return "internal";
      case TrafficField::StorageWrite:
        return "storage_write";
    }
    HILOS_PANIC("unknown traffic field");
}

StepOp &
StepOp::dep(std::size_t id)
{
    deps.push_back(id);
    return *this;
}

StepOp &
StepOp::stageTag(std::string name)
{
    stage = std::move(name);
    return *this;
}

StepOp &
StepOp::busyTag(unsigned mask)
{
    busy |= mask;
    return *this;
}

StepOp &
StepOp::share(TrafficField field, double bytes_contributed)
{
    traffic.push_back(TrafficShare{field, bytes_contributed});
    return *this;
}

StepOp &
StepOp::withFanout(std::uint64_t n)
{
    fanout = n;
    return *this;
}

StepOp &
StepOp::asPrefetch()
{
    prefetch = true;
    return *this;
}

StepOp &
StepOp::asShadow()
{
    shadow = true;
    return *this;
}

StepOp &
StepOp::asOffline()
{
    offline = true;
    return *this;
}

StepOp
transferOp(PlanResource resource, std::string label, Seconds seconds,
           double bytes)
{
    StepOp op;
    op.op_kind = StepOp::Kind::Transfer;
    op.resource = resource;
    op.label = std::move(label);
    op.seconds = seconds;
    op.bytes = bytes;
    return op;
}

StepOp
computeOp(ComputeUnit unit, std::string label, Seconds seconds)
{
    StepOp op;
    op.op_kind = StepOp::Kind::Compute;
    op.unit = unit;
    op.label = std::move(label);
    op.seconds = seconds;
    return op;
}

void
StepPlan::declareStage(const std::string &name)
{
    for (const std::string &s : stage_order)
        HILOS_ASSERT(s != name, "stage declared twice: ", name);
    stage_order.push_back(name);
}

void
StepPlan::declareResource(PlanResource kind, unsigned instances)
{
    HILOS_ASSERT(instances >= 1, "resource needs >= 1 instance");
    for (const PlanResourceDecl &d : resources)
        HILOS_ASSERT(d.kind != kind, "resource declared twice: ",
                     planResourceName(kind));
    resources.push_back(PlanResourceDecl{kind, instances});
}

unsigned
StepPlan::instancesOf(PlanResource kind) const
{
    for (const PlanResourceDecl &d : resources)
        if (d.kind == kind)
            return d.instances;
    return 1;
}

namespace {

void
validateOp(const StepOp &op, std::size_t id)
{
    HILOS_ASSERT(std::isfinite(op.seconds) && op.seconds >= 0.0,
                 "op duration must be finite and non-negative: ", op.label);
    HILOS_ASSERT(op.fanout >= 1, "op fanout must be >= 1: ", op.label);
    HILOS_ASSERT(!(op.shadow && op.offline),
                 "an op cannot be both shadow and offline: ", op.label);
    HILOS_ASSERT(!op.offline || op.deps.empty(),
                 "offline ops are dependency-free: ", op.label);
    HILOS_ASSERT(op.op_kind != StepOp::Kind::Transfer ||
                     op.resource != PlanResource::None,
                 "transfer op needs a resource: ", op.label);
    for (const TrafficShare &s : op.traffic)
        HILOS_ASSERT(std::isfinite(s.bytes) && s.bytes >= 0.0,
                     "traffic share must be finite and non-negative: ",
                     op.label);
    for (const std::size_t d : op.deps)
        HILOS_ASSERT(d < id, "op deps must reference earlier ops: ",
                     op.label);
}

bool
stageDeclared(const StepPlan &plan, const std::string &name)
{
    for (const std::string &s : plan.stage_order)
        if (s == name)
            return true;
    return false;
}

}  // namespace

std::size_t
StepPlan::addOp(StepOp op)
{
    const std::size_t id = layer_ops.size();
    validateOp(op, id);
    HILOS_ASSERT(op.stage.empty() || stageDeclared(*this, op.stage),
                 "op stage not declared: ", op.stage);
    layer_ops.push_back(std::move(op));
    return id;
}

std::size_t
StepPlan::addTailOp(StepOp op)
{
    const std::size_t id = tail_ops.size();
    HILOS_ASSERT(op.deps.empty(), "tail ops are a serial chain: ",
                 op.label);
    validateOp(op, 0);
    HILOS_ASSERT(op.stage.empty() || stageDeclared(*this, op.stage),
                 "op stage not declared: ", op.stage);
    HILOS_ASSERT(!op.prefetch && !op.shadow && !op.offline,
                 "tail ops carry no role flags: ", op.label);
    tail_ops.push_back(std::move(op));
    return id;
}

PlanEvaluation
evaluatePlan(const StepPlan &plan)
{
    HILOS_ASSERT(plan.layers >= 1, "plan needs >= 1 layer");
    HILOS_ASSERT(plan.layer_time_divisor > 0.0,
                 "layer_time_divisor must be positive");
    const double L = static_cast<double>(plan.layers);

    PlanEvaluation ev;

    // Critical path over the layer DAG: finish = max(dep finishes) +
    // seconds, so serial chains accumulate left-to-right and parallel
    // branches take an exact max — reproducing the engines' historical
    // max/sum compositions bit-for-bit. Offline ops never gate it.
    ev.op_finish.assign(plan.layer_ops.size(), 0.0);
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i) {
        const StepOp &op = plan.layer_ops[i];
        if (op.offline)
            continue;
        Seconds ready = 0.0;
        for (const std::size_t d : op.deps)
            ready = std::max(ready, ev.op_finish[d]);
        ev.op_finish[i] = ready + op.seconds;
    }
    ev.layer_critical_path = overlapMax(ev.op_finish);

    Seconds step =
        L * ev.layer_critical_path / plan.layer_time_divisor;
    for (const StepOp &op : plan.tail_ops)
        step += op.seconds;
    ev.decode_step_time = step;

    // Stage breakdown: per-layer sums accumulate in op-insertion order
    // (the order engines historically summed their terms), scale by the
    // layer count, and land in declared-stage order.
    std::unordered_map<std::string, Seconds> layer_stage, tail_stage;
    for (const StepOp &op : plan.layer_ops) {
        if (op.shadow || op.stage.empty())
            continue;
        layer_stage[op.stage] += op.seconds;
    }
    for (const StepOp &op : plan.tail_ops) {
        if (op.stage.empty())
            continue;
        tail_stage[op.stage] += op.seconds;
    }
    for (const std::string &name : plan.stage_order) {
        const auto lit = layer_stage.find(name);
        const auto tit = tail_stage.find(name);
        const Seconds lsum = lit == layer_stage.end() ? 0.0 : lit->second;
        const Seconds tsum = tit == tail_stage.end() ? 0.0 : tit->second;
        ev.breakdown.add(name, L * lsum + tsum);
    }

    // Traffic counters: per-field sums in op-insertion order, per-layer
    // shares scaled by the layer count, tail shares once.
    constexpr std::size_t kFields = 6;
    double layer_bytes[kFields] = {0, 0, 0, 0, 0, 0};
    double tail_bytes[kFields] = {0, 0, 0, 0, 0, 0};
    for (const StepOp &op : plan.layer_ops) {
        if (op.shadow)
            continue;
        for (const TrafficShare &s : op.traffic)
            layer_bytes[static_cast<std::size_t>(s.field)] += s.bytes;
    }
    for (const StepOp &op : plan.tail_ops)
        for (const TrafficShare &s : op.traffic)
            tail_bytes[static_cast<std::size_t>(s.field)] += s.bytes;
    const auto field_total = [&](TrafficField f) {
        const auto i = static_cast<std::size_t>(f);
        return L * layer_bytes[i] + tail_bytes[i];
    };
    ev.traffic.host_read_bytes = field_total(TrafficField::HostRead);
    ev.traffic.host_write_bytes = field_total(TrafficField::HostWrite);
    ev.traffic.attn_host_read_bytes =
        field_total(TrafficField::AttnHostRead);
    ev.traffic.attn_host_write_bytes =
        field_total(TrafficField::AttnHostWrite);
    ev.traffic.internal_bytes = field_total(TrafficField::Internal);
    ev.traffic.storage_write_bytes =
        field_total(TrafficField::StorageWrite);

    // Busy time per component: the longest tagged path through the DAG
    // (untagged ops on a path pass through without contributing), so a
    // serial tagged chain sums and parallel tagged branches max — the
    // same composition the engines hand-rolled. The per-step fraction
    // adds orchestration overhead proportional to the final step time.
    const struct {
        unsigned mask;
        Seconds ComponentBusy::*comp;
        double PlanBusyFractions::*frac;
    } kComponents[] = {
        {kBusyGpu, &ComponentBusy::gpu, &PlanBusyFractions::gpu},
        {kBusyCpu, &ComponentBusy::cpu, &PlanBusyFractions::cpu},
        {kBusyDram, &ComponentBusy::dram, &PlanBusyFractions::dram},
        {kBusyStorage, &ComponentBusy::storage,
         &PlanBusyFractions::storage},
        {kBusyFpga, &ComponentBusy::fpga, &PlanBusyFractions::fpga},
    };
    std::vector<Seconds> path(plan.layer_ops.size(), 0.0);
    for (const auto &c : kComponents) {
        std::fill(path.begin(), path.end(), 0.0);
        Seconds best = 0.0;
        for (std::size_t i = 0; i < plan.layer_ops.size(); ++i) {
            const StepOp &op = plan.layer_ops[i];
            Seconds pre = 0.0;
            for (const std::size_t d : op.deps)
                pre = std::max(pre, path[d]);
            const bool counts = !op.shadow && (op.busy & c.mask) != 0;
            path[i] = counts ? pre + op.seconds : pre;
            best = std::max(best, path[i]);
        }
        ev.busy.*(c.comp) =
            L * best + plan.busy_step_fraction.*(c.frac) * step;
    }
    return ev;
}

void
applyPlan(const StepPlan &plan, const RunConfig &cfg, RunResult &res)
{
    HILOS_ASSERT(plan.feasible, "applyPlan on an infeasible plan");
    const PlanEvaluation ev = evaluatePlan(plan);
    res.decode_step_time = ev.decode_step_time;
    res.breakdown = ev.breakdown;
    res.traffic = ev.traffic;
    res.busy = ev.busy;
    res.total_time = res.prefill_time +
                     static_cast<double>(cfg.output_len) *
                         res.decode_step_time;
    if (!plan.energy.enabled)
        return;
    const PlanEnergySpec &e = plan.energy;
    const double steps = static_cast<double>(cfg.output_len);
    ComponentBusy rb;
    rb.gpu = res.busy.gpu * steps +
             res.prefill_time * e.prefill_fraction.gpu;
    rb.cpu = res.busy.cpu * steps +
             res.prefill_time * e.prefill_fraction.cpu;
    rb.dram = res.busy.dram * steps +
              res.prefill_time * e.prefill_fraction.dram;
    rb.storage = res.busy.storage * steps +
                 res.prefill_time * e.prefill_fraction.storage +
                 e.storage_prefill_extra;
    rb.fpga = res.busy.fpga * steps +
              res.prefill_time * e.prefill_fraction.fpga;
    res.energy = computeEnergy(e.sys, e.kind, e.devices, res.total_time,
                               rb, e.fpga_power);
}

void
accumulateWeighted(RunResult &acc, const RunResult &r, double w)
{
    acc.decode_step_time += w * r.decode_step_time;
    for (const auto &[stage, secs] : r.breakdown.stages())
        acc.breakdown.add(stage, w * secs);
    acc.traffic.host_read_bytes += w * r.traffic.host_read_bytes;
    acc.traffic.host_write_bytes += w * r.traffic.host_write_bytes;
    acc.traffic.attn_host_read_bytes +=
        w * r.traffic.attn_host_read_bytes;
    acc.traffic.attn_host_write_bytes +=
        w * r.traffic.attn_host_write_bytes;
    acc.traffic.internal_bytes += w * r.traffic.internal_bytes;
    acc.traffic.storage_write_bytes +=
        w * r.traffic.storage_write_bytes;
    acc.busy.gpu += w * r.busy.gpu;
    acc.busy.cpu += w * r.busy.cpu;
    acc.busy.dram += w * r.busy.dram;
    acc.busy.storage += w * r.busy.storage;
    acc.busy.fpga += w * r.busy.fpga;
}

}  // namespace hilos
