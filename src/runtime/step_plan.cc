#include "runtime/step_plan.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "runtime/plan_analyzer.h"
#include "sim/pipeline.h"

namespace hilos {

const char *
planResourceName(PlanResource r)
{
    switch (r) {
      case PlanResource::None:
        return "none";
      case PlanResource::HostPcie:
        return "host_pcie";
      case PlanResource::Uplink:
        return "uplink";
      case PlanResource::Gds:
        return "gds";
      case PlanResource::P2p:
        return "p2p";
      case PlanResource::Storage:
        return "storage";
      case PlanResource::DramBus:
        return "dram_bus";
      case PlanResource::IntraNode:
        return "intra_node";
      case PlanResource::InterNode:
        return "inter_node";
    }
    HILOS_PANIC("unknown plan resource");
}

const char *
computeUnitName(ComputeUnit u)
{
    switch (u) {
      case ComputeUnit::None:
        return "none";
      case ComputeUnit::Gpu:
        return "gpu";
      case ComputeUnit::Cpu:
        return "cpu";
      case ComputeUnit::Fpga:
        return "fpga";
    }
    HILOS_PANIC("unknown compute unit");
}

const char *
trafficFieldName(TrafficField f)
{
    switch (f) {
      case TrafficField::HostRead:
        return "host_read";
      case TrafficField::HostWrite:
        return "host_write";
      case TrafficField::AttnHostRead:
        return "attn_host_read";
      case TrafficField::AttnHostWrite:
        return "attn_host_write";
      case TrafficField::Internal:
        return "internal";
      case TrafficField::StorageWrite:
        return "storage_write";
    }
    HILOS_PANIC("unknown traffic field");
}

const char *
planPhaseName(PlanPhase p)
{
    switch (p) {
      case PlanPhase::Decode:
        return "decode";
      case PlanPhase::Prefill:
        return "prefill";
    }
    HILOS_PANIC("unknown plan phase");
}

std::pair<std::uint64_t, std::uint64_t>
prefillChunkRange(std::uint64_t context, std::uint64_t index,
                  std::uint64_t count)
{
    HILOS_ASSERT(count >= 1, "prefill needs at least one chunk");
    HILOS_ASSERT(index < count, "prefill chunk index out of range");
    // index * context cannot overflow for any realistic prompt/chunking
    // (both well below 2^32).
    return {index * context / count, (index + 1) * context / count};
}

StepOp &
StepOp::dep(std::size_t id)
{
    deps.push_back(id);
    return *this;
}

StepOp &
StepOp::stageTag(std::string name)
{
    stage = std::move(name);
    return *this;
}

StepOp &
StepOp::busyTag(unsigned mask)
{
    busy |= mask;
    return *this;
}

StepOp &
StepOp::share(TrafficField field, Bytes bytes_contributed)
{
    traffic.push_back(TrafficShare{field, bytes_contributed});
    return *this;
}

StepOp &
StepOp::withFanout(std::uint64_t n)
{
    fanout = n;
    return *this;
}

StepOp &
StepOp::asPrefetch()
{
    prefetch = true;
    return *this;
}

StepOp &
StepOp::asShadow()
{
    shadow = true;
    return *this;
}

StepOp &
StepOp::asOffline()
{
    offline = true;
    return *this;
}

StepOp
transferOp(PlanResource resource, std::string label, Seconds seconds,
           Bytes bytes)
{
    StepOp op;
    op.op_kind = StepOp::Kind::Transfer;
    op.resource = resource;
    op.label = std::move(label);
    op.seconds = seconds;
    op.bytes = bytes;
    return op;
}

StepOp
computeOp(ComputeUnit unit, std::string label, Seconds seconds)
{
    StepOp op;
    op.op_kind = StepOp::Kind::Compute;
    op.unit = unit;
    op.label = std::move(label);
    op.seconds = seconds;
    return op;
}

// --- StepOpArray -------------------------------------------------------

namespace {

constexpr std::uint8_t kFlagPrefetch = 1u << 0;
constexpr std::uint8_t kFlagShadow = 1u << 1;
constexpr std::uint8_t kFlagOffline = 1u << 2;

std::uint8_t
packFlags(const StepOp &op)
{
    return static_cast<std::uint8_t>((op.prefetch ? kFlagPrefetch : 0u) |
                                     (op.shadow ? kFlagShadow : 0u) |
                                     (op.offline ? kFlagOffline : 0u));
}

}  // namespace

StepOpArray::Span
StepOpArray::intern(std::string_view s)
{
    HILOS_ASSERT(arena_.size() + s.size() <= UINT32_MAX,
                 "step-op string arena overflow");
    const Span out{static_cast<std::uint32_t>(arena_.size()),
                   static_cast<std::uint32_t>(s.size())};
    arena_.append(s);
    return out;
}

StepOpView
StepOpArray::operator[](std::size_t i) const
{
    HILOS_ASSERT(i < size(), "step-op index out of range: ", i);
    StepOpView v;
    v.op_kind = static_cast<StepOp::Kind>(kind_[i]);
    v.resource = static_cast<PlanResource>(resource_[i]);
    v.unit = static_cast<ComputeUnit>(unit_[i]);
    v.seconds = seconds_[i];
    v.bytes = bytes_[i];
    v.fanout = fanout_[i];
    v.label = arenaView(label_[i]);
    v.stage = arenaView(stage_[i]);
    v.busy = busy_[i];
    v.prefetch = (flags_[i] & kFlagPrefetch) != 0;
    v.shadow = (flags_[i] & kFlagShadow) != 0;
    v.offline = (flags_[i] & kFlagOffline) != 0;
    v.deps = std::span<const std::uint32_t>(
        dep_pool_.data() + deps_[i].pos, deps_[i].len);
    v.traffic = std::span<const TrafficShare>(
        traffic_pool_.data() + traffic_[i].pos, traffic_[i].len);
    return v;
}

StepOp
StepOpArray::get(std::size_t i) const
{
    const StepOpView v = (*this)[i];
    StepOp op;
    op.op_kind = v.op_kind;
    op.resource = v.resource;
    op.unit = v.unit;
    op.seconds = v.seconds;
    op.bytes = v.bytes;
    op.fanout = v.fanout;
    op.label = std::string(v.label);
    op.stage = std::string(v.stage);
    op.busy = v.busy;
    op.prefetch = v.prefetch;
    op.shadow = v.shadow;
    op.offline = v.offline;
    op.traffic.assign(v.traffic.begin(), v.traffic.end());
    op.deps.assign(v.deps.begin(), v.deps.end());
    return op;
}

void
StepOpArray::push(const StepOp &op)
{
    kind_.push_back(static_cast<std::uint8_t>(op.op_kind));
    resource_.push_back(static_cast<std::uint8_t>(op.resource));
    unit_.push_back(static_cast<std::uint8_t>(op.unit));
    flags_.push_back(packFlags(op));
    busy_.push_back(op.busy);
    seconds_.push_back(op.seconds);
    bytes_.push_back(op.bytes);
    fanout_.push_back(op.fanout);
    label_.push_back(intern(op.label));
    stage_.push_back(intern(op.stage));
    Span d{static_cast<std::uint32_t>(dep_pool_.size()),
           static_cast<std::uint32_t>(op.deps.size())};
    for (const std::size_t dep : op.deps)
        dep_pool_.push_back(static_cast<std::uint32_t>(dep));
    deps_.push_back(d);
    Span t{static_cast<std::uint32_t>(traffic_pool_.size()),
           static_cast<std::uint32_t>(op.traffic.size())};
    for (const TrafficShare &s : op.traffic)
        traffic_pool_.push_back(s);
    traffic_.push_back(t);
}

void
StepOpArray::set(std::size_t i, const StepOp &op)
{
    HILOS_ASSERT(i < size(), "step-op index out of range: ", i);
    kind_[i] = static_cast<std::uint8_t>(op.op_kind);
    resource_[i] = static_cast<std::uint8_t>(op.resource);
    unit_[i] = static_cast<std::uint8_t>(op.unit);
    flags_[i] = packFlags(op);
    busy_[i] = op.busy;
    seconds_[i] = op.seconds;
    bytes_[i] = op.bytes;
    fanout_[i] = op.fanout;
    if (arenaView(label_[i]) != op.label)
        label_[i] = intern(op.label);
    if (arenaView(stage_[i]) != op.stage)
        stage_[i] = intern(op.stage);
    if (deps_[i].len == op.deps.size()) {
        for (std::size_t k = 0; k < op.deps.size(); ++k)
            dep_pool_[deps_[i].pos + k] =
                static_cast<std::uint32_t>(op.deps[k]);
    } else {
        Span d{static_cast<std::uint32_t>(dep_pool_.size()),
               static_cast<std::uint32_t>(op.deps.size())};
        for (const std::size_t dep : op.deps)
            dep_pool_.push_back(static_cast<std::uint32_t>(dep));
        deps_[i] = d;
    }
    if (traffic_[i].len == op.traffic.size()) {
        for (std::size_t k = 0; k < op.traffic.size(); ++k)
            traffic_pool_[traffic_[i].pos + k] = op.traffic[k];
    } else {
        Span t{static_cast<std::uint32_t>(traffic_pool_.size()),
               static_cast<std::uint32_t>(op.traffic.size())};
        for (const TrafficShare &s : op.traffic)
            traffic_pool_.push_back(s);
        traffic_[i] = t;
    }
}

void
StepOpArray::annotate(std::size_t i, const StepOp &op)
{
    HILOS_ASSERT(i < size(), "step-op index out of range: ", i);
    HILOS_ASSERT(traffic_[i].len == op.traffic.size(),
                 "annotate with mismatched traffic shape: ", op.label);
    seconds_[i] = op.seconds;
    bytes_[i] = op.bytes;
    fanout_[i] = op.fanout;
    for (std::size_t k = 0; k < op.traffic.size(); ++k)
        traffic_pool_[traffic_[i].pos + k].bytes = op.traffic[k].bytes;
}

bool
StepOpArray::structureMatches(std::size_t i, const StepOp &op) const
{
    if (i >= size())
        return false;
    if (kind_[i] != static_cast<std::uint8_t>(op.op_kind) ||
        resource_[i] != static_cast<std::uint8_t>(op.resource) ||
        unit_[i] != static_cast<std::uint8_t>(op.unit) ||
        flags_[i] != packFlags(op) || busy_[i] != op.busy)
        return false;
    if (arenaView(label_[i]) != op.label ||
        arenaView(stage_[i]) != op.stage)
        return false;
    if (deps_[i].len != op.deps.size() ||
        traffic_[i].len != op.traffic.size())
        return false;
    for (std::size_t k = 0; k < op.deps.size(); ++k)
        if (dep_pool_[deps_[i].pos + k] != op.deps[k])
            return false;
    for (std::size_t k = 0; k < op.traffic.size(); ++k)
        if (traffic_pool_[traffic_[i].pos + k].field !=
            op.traffic[k].field)
            return false;
    return true;
}

void
StepOpArray::clear()
{
    kind_.clear();
    resource_.clear();
    unit_.clear();
    flags_.clear();
    busy_.clear();
    seconds_.clear();
    bytes_.clear();
    fanout_.clear();
    label_.clear();
    stage_.clear();
    deps_.clear();
    traffic_.clear();
    arena_.clear();
    dep_pool_.clear();
    traffic_pool_.clear();
}

// --- StepPlan builder --------------------------------------------------

void
StepPlan::declareStage(const std::string &name)
{
    if (mode_ == BuildMode::Rebuild) {
        if (mismatch_)
            return;
        if (stage_cursor_ >= stage_order.size() ||
            stage_order[stage_cursor_] != name) {
            mismatch_ = true;
            return;
        }
        stage_cursor_++;
        return;
    }
    for (const std::string &s : stage_order)
        HILOS_ASSERT(s != name, "stage declared twice: ", name);
    stage_order.push_back(name);
}

void
StepPlan::declareResource(PlanResource kind, unsigned instances)
{
    HILOS_ASSERT(instances >= 1, "resource needs >= 1 instance");
    if (mode_ == BuildMode::Rebuild) {
        if (mismatch_)
            return;
        if (resource_cursor_ >= resources.size() ||
            resources[resource_cursor_].kind != kind) {
            mismatch_ = true;
            return;
        }
        resources[resource_cursor_].instances = instances;
        resource_cursor_++;
        return;
    }
    for (const PlanResourceDecl &d : resources)
        HILOS_ASSERT(d.kind != kind, "resource declared twice: ",
                     planResourceName(kind));
    resources.push_back(PlanResourceDecl{kind, instances});
}

unsigned
StepPlan::instancesOf(PlanResource kind) const
{
    for (const PlanResourceDecl &d : resources)
        if (d.kind == kind)
            return d.instances;
    return 1;
}

namespace {

void
validateOp(const StepOp &op, std::size_t id)
{
    HILOS_ASSERT(std::isfinite(op.seconds) && op.seconds >= 0.0,
                 "op duration must be finite and non-negative: ", op.label);
    HILOS_ASSERT(op.fanout >= 1, "op fanout must be >= 1: ", op.label);
    HILOS_ASSERT(!(op.shadow && op.offline),
                 "an op cannot be both shadow and offline: ", op.label);
    HILOS_ASSERT(!op.offline || op.deps.empty(),
                 "offline ops are dependency-free: ", op.label);
    HILOS_ASSERT(op.op_kind != StepOp::Kind::Transfer ||
                     op.resource != PlanResource::None,
                 "transfer op needs a resource: ", op.label);
    for (const TrafficShare &s : op.traffic)
        HILOS_ASSERT(std::isfinite(s.bytes) && s.bytes >= 0.0,
                     "traffic share must be finite and non-negative: ",
                     op.label);
    for (const std::size_t d : op.deps)
        HILOS_ASSERT(d < id, "op deps must reference earlier ops: ",
                     op.label);
}

bool
stageDeclared(const StepPlan &plan, const std::string &name)
{
    for (const std::string &s : plan.stage_order)
        if (s == name)
            return true;
    return false;
}

}  // namespace

std::size_t
StepPlan::addOp(StepOp op)
{
    if (mode_ == BuildMode::Rebuild) {
        const std::size_t id = op_cursor_++;
        if (mismatch_)
            return id;
        validateOp(op, id);
        HILOS_ASSERT(std::isfinite(op.bytes) && op.bytes >= 0.0,
                     "op payload must be finite and non-negative: ",
                     op.label);
        if (!layer_ops.structureMatches(id, op)) {
            mismatch_ = true;
            return id;
        }
        layer_ops.annotate(id, op);
        return id;
    }
    const std::size_t id = layer_ops.size();
    validateOp(op, id);
    HILOS_ASSERT(op.stage.empty() || stageDeclared(*this, op.stage),
                 "op stage not declared: ", op.stage);
    layer_ops.push(op);
    return id;
}

std::size_t
StepPlan::addTailOp(StepOp op)
{
    HILOS_ASSERT(op.deps.empty(), "tail ops are a serial chain: ",
                 op.label);
    validateOp(op, 0);
    HILOS_ASSERT(!op.prefetch && !op.shadow && !op.offline,
                 "tail ops carry no role flags: ", op.label);
    if (mode_ == BuildMode::Rebuild) {
        const std::size_t id = tail_cursor_++;
        if (mismatch_)
            return id;
        HILOS_ASSERT(std::isfinite(op.bytes) && op.bytes >= 0.0,
                     "op payload must be finite and non-negative: ",
                     op.label);
        if (!tail_ops.structureMatches(id, op)) {
            mismatch_ = true;
            return id;
        }
        tail_ops.annotate(id, op);
        return id;
    }
    const std::size_t id = tail_ops.size();
    HILOS_ASSERT(op.stage.empty() || stageDeclared(*this, op.stage),
                 "op stage not declared: ", op.stage);
    tail_ops.push(op);
    return id;
}

void
StepPlan::clear()
{
    phase = PlanPhase::Decode;
    chunk_index = 0;
    chunk_count = 1;
    chunk_tokens = 0;
    layers = 1;
    layer_time_divisor = 1.0;
    feasible = true;
    note.clear();
    stage_order.clear();
    resources.clear();
    layer_ops.clear();
    tail_ops.clear();
    busy_step_fraction = PlanBusyFractions{};
    energy = PlanEnergySpec{};
    structure_validated = false;
    mode_ = BuildMode::Append;
    mismatch_ = false;
    stage_cursor_ = resource_cursor_ = op_cursor_ = tail_cursor_ = 0;
}

void
StepPlan::beginRebuild()
{
    // Scalar state re-derives from the builder; reset to construction
    // defaults so stale values from the previous grid point can never
    // leak into a rebuilt plan.
    phase = PlanPhase::Decode;
    chunk_index = 0;
    chunk_count = 1;
    chunk_tokens = 0;
    layers = 1;
    layer_time_divisor = 1.0;
    feasible = true;
    note.clear();
    busy_step_fraction = PlanBusyFractions{};
    energy = PlanEnergySpec{};
    structure_validated = false;
    mode_ = BuildMode::Rebuild;
    mismatch_ = false;
    stage_cursor_ = resource_cursor_ = op_cursor_ = tail_cursor_ = 0;
}

bool
StepPlan::finishRebuild()
{
    HILOS_ASSERT(mode_ == BuildMode::Rebuild,
                 "finishRebuild without beginRebuild");
    const bool ok = !mismatch_ && stage_cursor_ == stage_order.size() &&
                    resource_cursor_ == resources.size() &&
                    op_cursor_ == layer_ops.size() &&
                    tail_cursor_ == tail_ops.size();
    mode_ = BuildMode::Append;
    mismatch_ = false;
    return ok;
}

namespace {

/** "layer op #3 'kv_fetch'" — the prefix every diagnostic starts with. */
std::string
opRef(const char *kind, std::size_t id, std::string_view label)
{
    std::string s = std::string(kind) + " op #" + std::to_string(id);
    if (!label.empty())
        s += " '" + std::string(label) + "'";
    return s;
}

constexpr unsigned kBusyAll =
    kBusyGpu | kBusyCpu | kBusyDram | kBusyStorage | kBusyFpga;

/** Shared per-op checks; dependency checks differ per op class. */
void
validateOpStatic(const StepPlan &plan, const char *kind, std::size_t id,
                 const StepOpView &op, std::vector<std::string> &out)
{
    const std::string ref = opRef(kind, id, op.label);
    if (!(std::isfinite(op.seconds) && op.seconds >= Seconds(0.0)))
        out.push_back(ref + ": duration " + std::to_string(op.seconds) +
                      "s is not finite and non-negative");
    if (!(std::isfinite(op.bytes) && op.bytes >= Bytes(0.0)))
        out.push_back(ref + ": payload " + std::to_string(op.bytes) +
                      " bytes is not finite and non-negative");
    if (op.fanout < 1)
        out.push_back(ref + ": fanout must be >= 1");
    const auto res_raw = static_cast<unsigned>(op.resource);
    if (res_raw > static_cast<unsigned>(PlanResource::InterNode))
        out.push_back(ref + ": resource index " + std::to_string(res_raw) +
                      " names no known resource kind");
    const auto unit_raw = static_cast<unsigned>(op.unit);
    if (unit_raw > static_cast<unsigned>(ComputeUnit::Fpga))
        out.push_back(ref + ": compute-unit index " +
                      std::to_string(unit_raw) + " names no known unit");
    if (op.op_kind == StepOp::Kind::Transfer &&
        op.resource == PlanResource::None)
        out.push_back(ref + ": transfer op occupies no resource");
    if (op.op_kind == StepOp::Kind::Compute &&
        op.unit == ComputeUnit::None)
        out.push_back(ref + ": compute op runs on no unit");
    if ((op.busy & ~kBusyAll) != 0)
        out.push_back(ref + ": busy mask " + std::to_string(op.busy) +
                      " sets bits beyond the declared kBusy* tags");
    if (!op.stage.empty() && !stageDeclared(plan, std::string(op.stage)))
        out.push_back(ref + ": stage '" + std::string(op.stage) +
                      "' is not declared");
    for (const TrafficShare &s : op.traffic) {
        if (static_cast<unsigned>(s.field) >
            static_cast<unsigned>(TrafficField::StorageWrite))
            out.push_back(ref + ": traffic share names no known field");
        if (!(std::isfinite(s.bytes) && s.bytes >= Bytes(0.0)))
            out.push_back(ref + ": traffic share of " +
                          std::to_string(s.bytes) +
                          " bytes is not finite and non-negative");
    }
    if (op.shadow && op.offline)
        out.push_back(ref + ": an op cannot be both shadow and offline");
    if (op.offline && !op.deps.empty())
        out.push_back(ref + ": offline ops are dependency-free");
}

}  // namespace

std::vector<std::string>
StepPlan::validate() const
{
    std::vector<std::string> out;
    if (static_cast<unsigned>(phase) >
        static_cast<unsigned>(PlanPhase::Prefill))
        out.push_back("phase index " +
                      std::to_string(static_cast<unsigned>(phase)) +
                      " names no known plan phase");
    if (chunk_count < 1)
        out.push_back("plan declares zero prefill chunks");
    if (chunk_count >= 1 && chunk_index >= chunk_count)
        out.push_back("chunk_index " + std::to_string(chunk_index) +
                      " is out of range for chunk_count " +
                      std::to_string(chunk_count));
    if (phase == PlanPhase::Decode &&
        (chunk_index != 0 || chunk_count != 1 || chunk_tokens != 0))
        out.push_back("decode plans carry no prefill chunking");
    if (layers < 1)
        out.push_back("plan declares zero layers");
    if (!(std::isfinite(layer_time_divisor) && layer_time_divisor > 0.0))
        out.push_back("layer_time_divisor must be finite and positive");
    for (std::size_t i = 0; i < stage_order.size(); ++i)
        for (std::size_t j = i + 1; j < stage_order.size(); ++j)
            if (stage_order[i] == stage_order[j])
                out.push_back("stage '" + stage_order[i] +
                              "' declared twice");
    for (std::size_t i = 0; i < resources.size(); ++i) {
        if (resources[i].instances < 1)
            out.push_back(std::string("resource ") +
                          planResourceName(resources[i].kind) +
                          " declares zero instances");
        for (std::size_t j = i + 1; j < resources.size(); ++j)
            if (resources[i].kind == resources[j].kind)
                out.push_back(std::string("resource ") +
                              planResourceName(resources[i].kind) +
                              " declared twice");
    }

    for (std::size_t i = 0; i < layer_ops.size(); ++i) {
        const StepOpView op = layer_ops[i];
        validateOpStatic(*this, "layer", i, op, out);
        for (const std::size_t d : op.deps) {
            if (d >= layer_ops.size())
                out.push_back(opRef("layer", i, op.label) + ": dep #" +
                              std::to_string(d) +
                              " references no op in the plan");
            else if (d >= i)
                out.push_back(opRef("layer", i, op.label) + ": dep #" +
                              std::to_string(d) +
                              " references a later op (the evaluator "
                              "requires topological order)");
        }
    }

    // Cycle detection over the in-range edges (Kahn's algorithm): every
    // op left unprocessed sits on or downstream of a dependency cycle.
    // The forward-reference check above already rejects cyclic plans,
    // but a cycle is a distinct defect and gets its own diagnostic.
    std::vector<std::size_t> indegree(layer_ops.size(), 0);
    std::vector<std::vector<std::size_t>> dependents(layer_ops.size());
    for (std::size_t i = 0; i < layer_ops.size(); ++i)
        for (const std::size_t d : layer_ops[i].deps)
            if (d < layer_ops.size() && d != i) {
                indegree[i]++;
                dependents[d].push_back(i);
            } else if (d == i) {
                indegree[i]++;  // self-loop: never becomes ready
            }
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < layer_ops.size(); ++i)
        if (indegree[i] == 0)
            ready.push_back(i);
    std::size_t processed = 0;
    while (!ready.empty()) {
        const std::size_t i = ready.back();
        ready.pop_back();
        processed++;
        for (const std::size_t j : dependents[i])
            if (--indegree[j] == 0)
                ready.push_back(j);
    }
    if (processed < layer_ops.size())
        for (std::size_t i = 0; i < layer_ops.size(); ++i)
            if (indegree[i] != 0)
                out.push_back(opRef("layer", i, layer_ops[i].label) +
                              ": sits on a dependency cycle");

    for (std::size_t i = 0; i < tail_ops.size(); ++i) {
        const StepOpView op = tail_ops[i];
        validateOpStatic(*this, "tail", i, op, out);
        if (!op.deps.empty())
            out.push_back(opRef("tail", i, op.label) +
                          ": tail ops form a serial chain and carry no "
                          "dependency edges");
        if (op.prefetch || op.shadow || op.offline)
            out.push_back(opRef("tail", i, op.label) +
                          ": tail ops carry no role flags");
    }
    return out;
}

PlanEvaluation
evaluatePlan(const StepPlan &plan)
{
    HILOS_ASSERT(plan.layers >= 1, "plan needs >= 1 layer");
    HILOS_ASSERT(plan.layer_time_divisor > 0.0,
                 "layer_time_divisor must be positive");
    const double L = static_cast<double>(plan.layers);

    PlanEvaluation ev;

    const std::size_t n = plan.layer_ops.size();
    const std::size_t n_stages = plan.stage_order.size();

    // The evaluator runs twice per grid point on the cached sweep hot
    // path (once per phase), so it fuses every consumer — critical
    // path, per-stage sums, traffic totals, and all five busy
    // components — into one traversal that materialises each op's SoA
    // view exactly once. Every accumulator still sees the historical
    // multi-pass addition/max sequence (per stage, per traffic field,
    // and per busy lane the values arrive in op-insertion order), so
    // the fusion is bit-identical.
    //
    // Stage sums index by declared position, which assigns an op to the
    // first entry matching its name. A plan declaring the same stage
    // twice (validate() rejects it, but evaluatePlan must not depend on
    // that) takes the per-stage scan below instead, where a twice-
    // declared name still collects the op into both entries.
    bool stage_dup = false;
    for (std::size_t i = 0; i + 1 < n_stages && !stage_dup; ++i)
        for (std::size_t j = i + 1; j < n_stages; ++j)
            if (plan.stage_order[i] == plan.stage_order[j]) {
                stage_dup = true;
                break;
            }
    const auto stageIndex = [&](std::string_view stage) {
        std::size_t s = 0;
        while (s < n_stages && plan.stage_order[s] != stage)
            ++s;
        return s;  // == n_stages when undeclared: contributes nowhere
    };

    constexpr std::size_t kLanes = 5;
    constexpr unsigned kLaneMask[kLanes] = {kBusyGpu, kBusyCpu, kBusyDram,
                                            kBusyStorage, kBusyFpga};
    constexpr std::size_t kFields = 6;

    ev.op_finish.assign(n, 0.0);
    std::vector<Seconds> stage_layer(n_stages, 0.0);
    std::vector<Seconds> stage_tail(n_stages, 0.0);
    double layer_bytes[kFields] = {0, 0, 0, 0, 0, 0};
    double tail_bytes[kFields] = {0, 0, 0, 0, 0, 0};
    std::vector<Seconds> path(n * kLanes, 0.0);
    Seconds lane_best[kLanes] = {0.0, 0.0, 0.0, 0.0, 0.0};

    for (std::size_t i = 0; i < n; ++i) {
        const StepOpView op = plan.layer_ops[i];

        // Critical path over the layer DAG: finish = max(dep finishes)
        // + seconds, so serial chains accumulate left-to-right and
        // parallel branches take an exact max — reproducing the
        // engines' historical max/sum compositions bit-for-bit.
        // Offline ops never gate it (their finish stays 0).
        if (!op.offline) {
            Seconds ready = 0.0;
            for (const std::size_t d : op.deps)
                ready = std::max(ready, ev.op_finish[d]);
            ev.op_finish[i] = ready + op.seconds;
        }

        // Stage and traffic accounting skip shadow ops.
        if (!op.shadow) {
            if (!stage_dup && !op.stage.empty()) {
                const std::size_t s = stageIndex(op.stage);
                if (s < n_stages)
                    stage_layer[s] += op.seconds;
            }
            for (const TrafficShare &t : op.traffic)
                layer_bytes[static_cast<std::size_t>(t.field)] +=
                    t.bytes;
        }

        // Busy time per component: the longest tagged path through the
        // DAG (untagged ops on a path pass through without
        // contributing), so a serial tagged chain sums and parallel
        // tagged branches max — the same composition the engines
        // hand-rolled.
        Seconds pre[kLanes] = {0.0, 0.0, 0.0, 0.0, 0.0};
        for (const std::size_t d : op.deps) {
            const Seconds *dp = &path[d * kLanes];
            for (std::size_t c = 0; c < kLanes; ++c)
                pre[c] = std::max(pre[c], dp[c]);
        }
        Seconds *pp = &path[i * kLanes];
        for (std::size_t c = 0; c < kLanes; ++c) {
            const bool counts =
                !op.shadow && (op.busy & kLaneMask[c]) != 0;
            pp[c] = counts ? pre[c] + op.seconds : pre[c];
            lane_best[c] = std::max(lane_best[c], pp[c]);
        }
    }
    ev.layer_critical_path = overlapMax(ev.op_finish);

    Seconds step =
        L * ev.layer_critical_path / plan.layer_time_divisor;
    for (const StepOpView op : plan.tail_ops) {
        step += op.seconds;
        if (!stage_dup && !op.stage.empty()) {
            const std::size_t s = stageIndex(op.stage);
            if (s < n_stages)
                stage_tail[s] += op.seconds;
        }
        for (const TrafficShare &t : op.traffic)
            tail_bytes[static_cast<std::size_t>(t.field)] += t.bytes;
    }
    ev.decode_step_time = step;

    // Stage breakdown: per-layer sums accumulated in op-insertion order
    // (the order engines historically summed their terms), scaled by
    // the layer count, landing in declared-stage order.
    if (stage_dup) {
        for (const std::string &name : plan.stage_order) {
            Seconds lsum = 0.0;
            Seconds tsum = 0.0;
            for (const StepOpView op : plan.layer_ops) {
                if (op.shadow || op.stage.empty())
                    continue;
                if (op.stage == name)
                    lsum += op.seconds;
            }
            for (const StepOpView op : plan.tail_ops) {
                if (!op.stage.empty() && op.stage == name)
                    tsum += op.seconds;
            }
            ev.breakdown.add(name, L * lsum + tsum);
        }
    } else {
        for (std::size_t s = 0; s < n_stages; ++s)
            ev.breakdown.add(plan.stage_order[s],
                             L * stage_layer[s] + stage_tail[s]);
    }

    // Traffic counters: per-field sums in op-insertion order, per-layer
    // shares scaled by the layer count, tail shares once.
    const auto field_total = [&](TrafficField f) {
        const auto i = static_cast<std::size_t>(f);
        return L * layer_bytes[i] + tail_bytes[i];
    };
    ev.traffic.host_read_bytes = field_total(TrafficField::HostRead);
    ev.traffic.host_write_bytes = field_total(TrafficField::HostWrite);
    ev.traffic.attn_host_read_bytes =
        field_total(TrafficField::AttnHostRead);
    ev.traffic.attn_host_write_bytes =
        field_total(TrafficField::AttnHostWrite);
    ev.traffic.internal_bytes = field_total(TrafficField::Internal);
    ev.traffic.storage_write_bytes =
        field_total(TrafficField::StorageWrite);

    // The per-step busy fraction adds orchestration overhead
    // proportional to the final step time.
    const struct {
        std::size_t lane;
        Seconds ComponentBusy::*comp;
        double PlanBusyFractions::*frac;
    } kComponents[] = {
        {0, &ComponentBusy::gpu, &PlanBusyFractions::gpu},
        {1, &ComponentBusy::cpu, &PlanBusyFractions::cpu},
        {2, &ComponentBusy::dram, &PlanBusyFractions::dram},
        {3, &ComponentBusy::storage, &PlanBusyFractions::storage},
        {4, &ComponentBusy::fpga, &PlanBusyFractions::fpga},
    };
    for (const auto &c : kComponents)
        ev.busy.*(c.comp) = L * lane_best[c.lane] +
                            plan.busy_step_fraction.*(c.frac) * step;
    return ev;
}

void
applyPlan(const StepPlan &plan, const RunConfig &cfg, RunResult &res)
{
    HILOS_ASSERT(plan.feasible, "applyPlan on an infeasible plan");
    HILOS_ASSERT(plan.phase == PlanPhase::Decode,
                 "applyPlan consumes Decode-phase plans (fold Prefill "
                 "plans with applyPrefillPlan)");
    if (!plan.structure_validated) {
        const std::vector<std::string> problems = plan.validate();
        HILOS_ASSERT(problems.empty(), "invalid step plan: ",
                     problems.empty() ? std::string() : problems.front());
    }
    if (analyzePlansEnabled()) {
        const PlanAnalysis analysis = analyzePlan(plan);
        HILOS_ASSERT(!hasUnwaivedErrors(analysis),
                     "plan analysis (HILOS_ANALYZE_PLANS) ",
                     firstUnwaivedError(analysis));
    }
    const PlanEvaluation ev = evaluatePlan(plan);
    res.decode_step_time = ev.decode_step_time;
    res.breakdown = ev.breakdown;
    res.traffic = ev.traffic;
    res.busy = ev.busy;
    res.total_time = res.prefill_time +
                     static_cast<double>(cfg.output_len) *
                         res.decode_step_time;
    if (!plan.energy.enabled)
        return;
    // Run-level busy = decode busy integrated over the generated tokens
    // plus the prefill phase's own plan-derived busy (already folded
    // into res.prefill_busy by applyPrefillPlan).
    const PlanEnergySpec &e = plan.energy;
    const double steps = static_cast<double>(cfg.output_len);
    ComponentBusy rb;
    rb.gpu = res.busy.gpu * steps + res.prefill_busy.gpu;
    rb.cpu = res.busy.cpu * steps + res.prefill_busy.cpu;
    rb.dram = res.busy.dram * steps + res.prefill_busy.dram;
    rb.storage = res.busy.storage * steps + res.prefill_busy.storage;
    rb.fpga = res.busy.fpga * steps + res.prefill_busy.fpga;
    res.energy = computeEnergy(e.sys, e.kind, e.devices, res.total_time,
                               rb, e.fpga_power);
}

bool
applyPrefillPlan(const StepPlan &plan, RunResult &res)
{
    HILOS_ASSERT(plan.phase == PlanPhase::Prefill,
                 "applyPrefillPlan consumes Prefill-phase plans");
    if (!plan.feasible) {
        res.feasible = false;
        res.note = plan.note;
        return false;
    }
    if (!plan.structure_validated) {
        const std::vector<std::string> problems = plan.validate();
        HILOS_ASSERT(problems.empty(), "invalid prefill plan: ",
                     problems.empty() ? std::string() : problems.front());
    }
    if (analyzePlansEnabled()) {
        const PlanAnalysis analysis = analyzePlan(plan);
        HILOS_ASSERT(!hasUnwaivedErrors(analysis),
                     "prefill plan analysis (HILOS_ANALYZE_PLANS) ",
                     firstUnwaivedError(analysis));
    }
    const PlanEvaluation ev = evaluatePlan(plan);
    res.prefill_time += ev.decode_step_time;
    res.prefill_busy.gpu += ev.busy.gpu;
    res.prefill_busy.cpu += ev.busy.cpu;
    res.prefill_busy.dram += ev.busy.dram;
    res.prefill_busy.storage += ev.busy.storage;
    res.prefill_busy.fpga += ev.busy.fpga;
    return true;
}

void
propagatePrefill(const RunResult &from, RunResult &res)
{
    res.prefill_time = from.prefill_time;
    res.prefill_busy = from.prefill_busy;
}

bool
applyPrefillPhase(const StepPlanSource &source, const RunConfig &cfg,
                  RunResult &res)
{
    HILOS_ASSERT(cfg.prefill_chunks >= 1,
                 "a run needs at least one prefill chunk");
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        if (!applyPrefillPlan(
                source.prefillStepPlan(cfg, i, cfg.prefill_chunks), res))
            return false;
    }
    return true;
}

void
accumulateWeighted(RunResult &acc, const RunResult &r, double w)
{
    acc.decode_step_time += w * r.decode_step_time;
    for (const auto &[stage, secs] : r.breakdown.stages())
        acc.breakdown.add(stage, w * secs);
    acc.traffic.host_read_bytes += w * r.traffic.host_read_bytes;
    acc.traffic.host_write_bytes += w * r.traffic.host_write_bytes;
    acc.traffic.attn_host_read_bytes +=
        w * r.traffic.attn_host_read_bytes;
    acc.traffic.attn_host_write_bytes +=
        w * r.traffic.attn_host_write_bytes;
    acc.traffic.internal_bytes += w * r.traffic.internal_bytes;
    acc.traffic.storage_write_bytes +=
        w * r.traffic.storage_write_bytes;
    acc.busy.gpu += w * r.busy.gpu;
    acc.busy.cpu += w * r.busy.cpu;
    acc.busy.dram += w * r.busy.dram;
    acc.busy.storage += w * r.busy.storage;
    acc.busy.fpga += w * r.busy.fpga;
}

}  // namespace hilos
