/**
 * @file
 * The inference-engine interface all systems implement (FLEX variants,
 * DS+UVM, vLLM multi-GPU, HILOS) and the shared result types benches
 * consume: per-stage breakdowns, interconnect-traffic counters, energy.
 */

#ifndef HILOS_RUNTIME_ENGINE_H_
#define HILOS_RUNTIME_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "llm/model_config.h"
#include "runtime/energy.h"

namespace hilos {

/** One offline-inference run request. */
struct RunConfig {
    ModelConfig model;
    std::uint64_t batch = 16;
    std::uint64_t context_len = 32768;  ///< prompt tokens s
    std::uint64_t output_len = 64;      ///< generated tokens n
    /**
     * Number of chunks the prefill phase is split into. 1 (the
     * default) is the monolithic prefill and reproduces the closed-form
     * numbers bit-for-bit; larger values pay the per-chunk weight
     * re-streaming, so chunked prefill is never faster offline — its
     * payoff is serving-side preemptability (see runtime/serving.h).
     */
    std::uint64_t prefill_chunks = 1;
};

/** Interconnect/storage traffic per decoding step (all layers). */
struct TrafficCounters {
    /** Bytes crossing the shared host interconnect, reads into compute. */
    Bytes host_read_bytes = 0;
    /** Bytes crossing the shared host interconnect, writes out. */
    Bytes host_write_bytes = 0;
    /** Attention-related subset of host reads (for the Eq. 3 ratio). */
    Bytes attn_host_read_bytes = 0;
    /** Attention-related subset of host writes. */
    Bytes attn_host_write_bytes = 0;
    /** Bytes moved on NSP-internal P2P paths (never on the host bus). */
    Bytes internal_bytes = 0;
    /** Host bytes written toward NAND (endurance-relevant). */
    Bytes storage_write_bytes = 0;
};

/**
 * Availability/retry/slowdown accounting of one run under an injected
 * FaultPlan. All-zero (any() == false) for zero-fault runs.
 */
struct FaultSummary {
    std::uint64_t nand_read_errors = 0;
    std::uint64_t nand_retry_steps = 0;
    std::uint64_t nvme_timeouts = 0;
    std::uint64_t nvme_retries = 0;
    std::uint64_t redispatched_slices = 0;
    /**
     * Requests whose tokens were delayed by recovery (shard rebuild,
     * host-stall retry) but still completed. Disjoint from
     * requests_failed, so availability is derivable rather than
     * inferred: degraded requests finished late, failed ones never did.
     */
    std::uint64_t requests_degraded = 0;
    /** Requests dropped outright (no surviving capacity to serve them). */
    std::uint64_t requests_failed = 0;
    unsigned devices_failed = 0;
    unsigned devices_surviving = 0;  ///< at end of run (0 = unset)
    Seconds retry_time = 0;          ///< time lost to retry recovery
    Seconds rebuild_time = 0;        ///< shard re-dispatch after failures
    /** Decode step time on the final surviving fleet. */
    Seconds degraded_step_time = 0;
    /** Time-weighted fraction of the fleet that stayed available. */
    double availability = 1.0;
    /** Mean decode-step slowdown vs the zero-fault prediction. */
    double slowdown = 1.0;

    /** True when any fault perturbed the run. */
    bool any() const;
};

/**
 * One constant-condition interval of a fleet run: the placement and
 * step time in force between two host-scope fault events.
 */
struct FleetEpoch {
    Seconds start = 0;            ///< absolute run time the epoch begins
    unsigned hosts_serving = 0;   ///< hosts with placed load
    unsigned hosts_stalled = 0;   ///< hosts paused in a retry window
    unsigned hosts_failed = 0;    ///< cumulative failed hosts so far
    std::uint64_t placed_batch = 0;  ///< requests actively decoding
    Seconds step_time = 0;        ///< fleet decode step during the epoch
    std::uint64_t tokens = 0;     ///< decode tokens generated in the epoch
};

/**
 * Cluster-granularity accounting of one FleetEngine run: per-epoch
 * placement, rebuild traffic, and availability. `hosts == 0` (any() ==
 * false) for single-host runs, so non-fleet results are unchanged.
 */
struct FleetSummary {
    unsigned hosts = 0;             ///< fleet size (0 = not a fleet run)
    unsigned devices_per_host = 0;  ///< SmartSSDs per host
    std::string policy;             ///< placement policy name
    unsigned hosts_failed = 0;      ///< permanently lost (incl. escalated)
    unsigned host_stalls = 0;       ///< transient stalls that recovered
    unsigned spares_activated = 0;  ///< spare hosts promoted to serving
    Bytes rebuild_bytes = 0;        ///< KV/X shards re-homed after losses
    Seconds rebuild_time = 0;       ///< decode paused for shard rebuild
    Seconds stall_time = 0;         ///< retry-ladder time lost to stalls
    /** Token-weighted fraction of the host fleet that stayed serving. */
    double availability = 1.0;
    /** Fleet decode step on the final surviving placement. */
    Seconds degraded_step_time = 0;
    /** Mean fleet decode-step slowdown vs the healthy-fleet prediction. */
    double slowdown = 1.0;
    std::vector<FleetEpoch> epochs;

    /** True when the result came from a fleet run. */
    bool any() const { return hosts > 0; }
};

/** Named per-decoding-step stage times (summed across layers). */
class StageBreakdown
{
  public:
    /** Add (or accumulate into) a named stage. */
    void add(const std::string &name, Seconds t);

    /** Seconds recorded for a stage (0 if absent). */
    Seconds get(const std::string &name) const;

    /** Sum of all stages (>= the critical-path step time with overlap). */
    Seconds sum() const;

    const std::vector<std::pair<std::string, Seconds>> &stages() const
    {
        return stages_;
    }

  private:
    /** Insertion-ordered entries. Breakdowns hold a handful of stages
     *  (4-9 across every engine), so a linear scan beats hashing each
     *  name on the sweep hot path and drops the side index entirely. */
    std::vector<std::pair<std::string, Seconds>> stages_;
};

/** Result of one engine run. */
struct RunResult {
    bool feasible = true;
    std::string note;  ///< infeasibility reason or batch-shrink note

    std::uint64_t effective_batch = 0;  ///< after capacity shrinking
    Seconds prefill_time = 0;
    Seconds decode_step_time = 0;  ///< one step across all layers
    Seconds total_time = 0;        ///< prefill + output_len * decode step

    /** Decoding throughput: batch / decode_step_time (the Fig. 10 metric). */
    double decodeThroughput() const;
    /** End-to-end generation throughput incl. prefill amortisation. */
    double endToEndThroughput(std::uint64_t output_len) const;

    StageBreakdown breakdown;  ///< per decode step
    TrafficCounters traffic;   ///< per decode step
    ComponentBusy busy;        ///< per decode step
    /**
     * Busy seconds of the whole prefill phase (all chunks), accumulated
     * from the prefill plans' own busy accounting by applyPrefillPlan().
     * Feeds the run-level energy integral in applyPlan(); not part of
     * the canonical serialization (the per-step `busy` and whole-run
     * `energy` fields remain the golden-pinned surface).
     */
    ComponentBusy prefill_busy;
    EnergyBreakdown energy;    ///< whole run
    Watts fpga_power_watts = 0;   ///< per-device, HILOS only
    FaultSummary faults;       ///< availability/retry accounting
    FleetSummary fleet;        ///< cluster accounting, FleetEngine only
};

class PlanCache;

/**
 * Abstract offline-inference engine.
 */
class InferenceEngine
{
  public:
    virtual ~InferenceEngine() = default;

    /** Display name used in bench tables. */
    virtual std::string name() const = 0;

    /** Model the full run analytically. */
    virtual RunResult run(const RunConfig &cfg) const = 0;

    /**
     * run() with plan-structure reuse: plan-emitting engines rebuild
     * only the priced annotations when `cache` already holds their
     * topology (see runtime/plan_cache.h). Results are bit-identical
     * to run() for every engine and cache state; the base
     * implementation ignores the cache.
     */
    virtual RunResult runCached(const RunConfig &cfg, PlanCache &cache) const;
};

/**
 * Largest batch size (<= requested) whose KV cache plus resident bytes
 * fit a capacity; 0 when even batch 1 does not fit.
 */
std::uint64_t maxFittingBatch(const ModelConfig &model,
                              std::uint64_t requested_batch,
                              std::uint64_t total_seq,
                              Bytes capacity_bytes,
                              Bytes resident_bytes);

}  // namespace hilos

#endif  // HILOS_RUNTIME_ENGINE_H_
