#include "runtime/serving.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "common/stats.h"
#include "runtime/step_plan.h"
#include "sim/event_queue.h"

namespace hilos {

namespace {

/**
 * Cached per-step cost oracle over one engine. Decode steps are costed
 * through the StepPlan IR when the engine emits plans (all single-host
 * engines); capacity and prefill — which the IR does not describe —
 * and plan-less engines (the fleet) fall back to cached whole-engine
 * run() results. Context keys are already bucket-padded by the caller,
 * so the caches stay small even for long generations.
 */
class StepCostModel
{
  public:
    StepCostModel(const InferenceEngine &engine, const ServingConfig &cfg)
        : engine_(engine),
          plans_(dynamic_cast<const StepPlanSource *>(&engine)), cfg_(cfg)
    {
    }

    /** Engine batch capacity at a padded context (0 = unserveable). */
    std::uint64_t
    capacity(std::uint64_t context)
    {
        const RunResult &r = cachedRun(cfg_.max_batch, context);
        return r.feasible ? r.effective_batch : 0;
    }

    /** One decode step of `batch` requests at a padded context. */
    Seconds
    stepTime(std::uint64_t batch, std::uint64_t context)
    {
        const auto key = std::make_pair(batch, context);
        auto it = step_cache_.find(key);
        if (it != step_cache_.end()) {
            hits++;
            return it->second;
        }
        misses++;
        Seconds t = 0.0;
        if (plans_ != nullptr) {
            const StepPlan plan =
                plans_->decodeStepPlan(runConfig(batch, context));
            HILOS_ASSERT(plan.feasible,
                         "decode plan infeasible at admitted batch ",
                         batch, " context ", context, ": ", plan.note);
            t = evaluatePlan(plan).decode_step_time;
        } else {
            const RunResult &r = cachedRun(batch, context);
            HILOS_ASSERT(r.feasible, "engine infeasible at admitted batch ",
                         batch, " context ", context, ": ", r.note);
            t = r.decode_step_time;
        }
        step_cache_.emplace(key, t);
        return t;
    }

    /** Batched prefill of `batch` prompts at a padded prompt length. */
    Seconds
    prefillTime(std::uint64_t batch, std::uint64_t context)
    {
        const RunResult &r = cachedRun(batch, context);
        HILOS_ASSERT(r.feasible, "prefill infeasible at admitted batch ",
                     batch, " context ", context, ": ", r.note);
        return r.prefill_time;
    }

    /**
     * One prefill chunk (`index` of `count`) of a group of `batch`
     * prompts at a padded prompt length. Monolithic groups charge the
     * engine's whole-run prefill (bit-identical to the historical
     * path); chunked groups evaluate the engine's Prefill-phase plans,
     * with a proportional split for plan-less engines (the fleet).
     */
    Seconds
    prefillChunkTime(std::uint64_t batch, std::uint64_t context,
                     std::uint64_t index, std::uint64_t count)
    {
        if (count == 1)
            return prefillTime(batch, context);
        if (plans_ == nullptr)
            return prefillTime(batch, context) /
                   static_cast<double>(count);
        const auto key = std::make_tuple(batch, context, index, count);
        auto it = chunk_cache_.find(key);
        if (it != chunk_cache_.end()) {
            hits++;
            return it->second;
        }
        misses++;
        RunConfig run = runConfig(batch, context);
        run.prefill_chunks = count;
        const StepPlan plan = plans_->prefillStepPlan(run, index, count);
        HILOS_ASSERT(plan.feasible,
                     "prefill plan infeasible at admitted batch ", batch,
                     " context ", context, ": ", plan.note);
        const Seconds t = evaluatePlan(plan).decode_step_time;
        chunk_cache_.emplace(key, t);
        return t;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    RunConfig
    runConfig(std::uint64_t batch, std::uint64_t context) const
    {
        RunConfig run;
        run.model = cfg_.model;
        run.batch = batch;
        run.context_len = context;
        run.output_len = 1;  // cost one step, not a whole generation
        return run;
    }

    const RunResult &
    cachedRun(std::uint64_t batch, std::uint64_t context)
    {
        const auto key = std::make_pair(batch, context);
        auto it = run_cache_.find(key);
        if (it != run_cache_.end()) {
            hits++;
            return it->second;
        }
        misses++;
        return run_cache_
            .emplace(key, engine_.run(runConfig(batch, context)))
            .first->second;
    }

    const InferenceEngine &engine_;
    const StepPlanSource *plans_;
    const ServingConfig &cfg_;
    std::map<std::pair<std::uint64_t, std::uint64_t>, Seconds> step_cache_;
    std::map<std::pair<std::uint64_t, std::uint64_t>, RunResult> run_cache_;
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                        std::uint64_t>,
             Seconds>
        chunk_cache_;
};

/** Queue-depth curve from per-request (arrival, admitted) intervals. */
void
fillQueueDepth(const std::vector<RequestRecord> &records,
               ServingResult &res)
{
    // +1 at arrival, -1 at admission; arrivals first at equal times so
    // a request admitted the instant it arrives still counts toward
    // the peak (it was pending when the admission decision ran).
    struct Edge {
        double when;
        int delta;
    };
    std::vector<Edge> edges;
    edges.reserve(records.size() * 2);
    for (const RequestRecord &r : records) {
        edges.push_back(Edge{r.arrival.value(), +1});
        edges.push_back(Edge{r.admitted.value(), -1});
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge &a, const Edge &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.delta > b.delta;
                     });
    std::uint64_t depth = 0;
    for (std::size_t i = 0; i < edges.size(); i++) {
        depth = static_cast<std::uint64_t>(static_cast<std::int64_t>(depth) +
                                           edges[i].delta);
        res.peak_queue_depth = std::max(res.peak_queue_depth, depth);
        const bool last_at_time =
            i + 1 == edges.size() || edges[i + 1].when != edges[i].when;
        if (last_at_time)
            res.queue_depth.push_back(
                QueueDepthSample{Seconds(edges[i].when), depth});
    }
}

}  // namespace

ServingSimulator::ServingSimulator(const InferenceEngine &engine,
                                   ServingConfig cfg)
    : engine_(engine), cfg_(std::move(cfg))
{
    HILOS_ASSERT(cfg_.max_batch >= 1, "batch capacity must be >= 1");
    HILOS_ASSERT(cfg_.bucket_quantum >= 1, "bucket quantum must be >= 1");
    HILOS_ASSERT(cfg_.slo >= 0.0, "negative SLO: ", cfg_.slo);
    HILOS_ASSERT(cfg_.prefill_chunks >= 1, "prefill chunks must be >= 1");
}

ServingResult
ServingSimulator::run(const std::vector<Request> &requests) const
{
    HILOS_ASSERT(!requests.empty(), "nothing to serve");
    ServingResult res;
    res.requests = requests.size();
    StepCostModel cost(engine_, cfg_);

    res.records.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); i++) {
        const Request &r = requests[i];
        HILOS_ASSERT(r.output_tokens >= 1, "request ", i,
                     " generates no tokens");
        HILOS_ASSERT(r.arrival >= 0.0, "request ", i,
                     " arrives in the past: ", r.arrival);
        RequestRecord rec;
        rec.id = i;
        rec.cls = r.cls;
        rec.input_tokens = std::max<std::uint64_t>(r.input_tokens, 1);
        rec.output_tokens = r.output_tokens;
        rec.arrival = r.arrival;
        res.records.push_back(rec);
    }

    // A request's context grows to input + output tokens over its
    // lifetime; admission reserves capacity at that padded peak so the
    // in-flight batch never outgrows the engine mid-generation.
    const auto lifetimeCtx = [&](const RequestRecord &rec) {
        return roundUp(rec.input_tokens + rec.output_tokens,
                       cfg_.bucket_quantum);
    };
    for (const RequestRecord &rec : res.records) {
        if (cost.capacity(lifetimeCtx(rec)) == 0) {
            std::ostringstream oss;
            oss << "request " << rec.id << " (context "
                << rec.input_tokens + rec.output_tokens
                << ") does not fit " << engine_.name() << " even alone";
            res.feasible = false;
            res.note = oss.str();
            return res;
        }
    }

    EventQueue eq;
    std::vector<std::size_t> pending;  // record ids, arrival order
    for (const RequestRecord &rec : res.records) {
        const std::size_t id = rec.id;
        eq.scheduleAt(rec.arrival, [&pending, id] { pending.push_back(id); });
    }

    struct InFlight {
        std::size_t id = 0;
        std::uint64_t generated = 0;
    };
    std::vector<InFlight> flight;
    // Admitted groups whose prefill has not finished: the first chunk
    // was charged at admission; later chunks run one per loop turn,
    // yielding to (and overlapping) the decode batch. Requests join
    // the decode flight only after the last chunk.
    struct PrefillGroup {
        std::vector<std::size_t> ids;
        std::uint64_t prompt_ctx = 0;   ///< padded longest prompt
        std::uint64_t next_chunk = 1;   ///< chunk 0 ran at admission
    };
    std::deque<PrefillGroup> prefilling;
    const auto prefillingCount = [&prefilling] {
        std::size_t n = 0;
        for (const PrefillGroup &g : prefilling)
            n += g.ids.size();
        return n;
    };
    std::uint64_t completed = 0;

    while (completed < res.requests) {
        if (flight.empty() && pending.empty() && prefilling.empty()) {
            // Idle: jump straight to the next arrival.
            eq.runUntil(eq.peekNext());
            continue;
        }

        // Admission at the step boundary: order the pending queue by
        // policy, then admit greedily without leapfrogging — the first
        // request that does not fit blocks the rest, so FCFS cannot
        // starve anyone. Requests still mid-prefill hold their batch
        // and capacity reservations (their KV is materializing).
        if (!pending.empty() &&
            flight.size() + prefillingCount() < cfg_.max_batch) {
            std::vector<AdmissionCandidate> cands;
            cands.reserve(pending.size());
            for (std::size_t id : pending) {
                const RequestRecord &rec = res.records[id];
                AdmissionCandidate c;
                c.id = id;
                c.arrival = rec.arrival;
                c.input_tokens = rec.input_tokens;
                c.output_tokens = rec.output_tokens;
                c.deadline = rec.arrival + cfg_.slo;
                cands.push_back(c);
            }
            orderForAdmission(cfg_.policy, cands);

            std::uint64_t flight_ctx = 0;
            for (const InFlight &f : flight)
                flight_ctx =
                    std::max(flight_ctx, lifetimeCtx(res.records[f.id]));
            for (const PrefillGroup &g : prefilling)
                for (const std::size_t id : g.ids)
                    flight_ctx = std::max(flight_ctx,
                                          lifetimeCtx(res.records[id]));

            std::vector<std::size_t> admitted;
            for (const AdmissionCandidate &c : cands) {
                const std::size_t committed =
                    flight.size() + prefillingCount() + admitted.size();
                if (committed >= cfg_.max_batch)
                    break;
                const std::uint64_t ctx = std::max(
                    flight_ctx, lifetimeCtx(res.records[c.id]));
                if (cost.capacity(ctx) < committed + 1)
                    break;
                flight_ctx = ctx;
                res.records[c.id].admitted = eq.now();
                admitted.push_back(c.id);
            }
            if (!admitted.empty()) {
                pending.erase(
                    std::remove_if(pending.begin(), pending.end(),
                                   [&](std::size_t id) {
                                       return std::find(admitted.begin(),
                                                        admitted.end(),
                                                        id) !=
                                              admitted.end();
                                   }),
                    pending.end());
                // The newly admitted group's first prefill chunk runs
                // at admission, padded to its longest prompt; at
                // prefill_chunks == 1 that is the whole prefill and
                // the group enters the decode flight immediately.
                std::uint64_t prompt = 0;
                for (std::size_t id : admitted)
                    prompt =
                        std::max(prompt, res.records[id].input_tokens);
                PrefillGroup g;
                g.ids = admitted;
                g.prompt_ctx = roundUp(prompt, cfg_.bucket_quantum);
                const Seconds chunk0 = cost.prefillChunkTime(
                    g.ids.size(), g.prompt_ctx, 0, cfg_.prefill_chunks);
                eq.runUntil(eq.now() + chunk0);
                res.prefill_batches++;
                res.prefill_chunks_run++;
                if (cfg_.prefill_chunks == 1) {
                    for (const std::size_t id : g.ids)
                        flight.push_back(InFlight{id, 0});
                } else {
                    prefilling.push_back(std::move(g));
                }
            }
        }
        if (flight.empty() && prefilling.empty())
            continue;

        // One decode step for the whole in-flight batch, costed at the
        // padded longest current context. Decode runs at priority:
        // when a group is mid-prefill, its next chunk is preempted
        // onto the host GPU under this step (decode attention is
        // fleet-bound, prefill compute host-bound), so the loop turn
        // costs the slower of the two.
        Seconds step = 0.0;
        if (!flight.empty()) {
            res.peak_in_flight = std::max<std::uint64_t>(
                res.peak_in_flight, flight.size());
            std::uint64_t ctx_now = 0;
            for (const InFlight &f : flight) {
                const RequestRecord &rec = res.records[f.id];
                ctx_now =
                    std::max(ctx_now, rec.input_tokens + f.generated);
            }
            step = cost.stepTime(flight.size(),
                                 roundUp(ctx_now, cfg_.bucket_quantum));
            res.decode_steps++;
        }
        Seconds chunk = 0.0;
        if (!prefilling.empty()) {
            PrefillGroup &g = prefilling.front();
            chunk = cost.prefillChunkTime(g.ids.size(), g.prompt_ctx,
                                          g.next_chunk,
                                          cfg_.prefill_chunks);
            g.next_chunk++;
            res.prefill_chunks_run++;
            if (!flight.empty())
                res.prefill_preemptions++;
        }
        eq.runUntil(eq.now() + std::max(step, chunk));

        if (!flight.empty()) {
            for (InFlight &f : flight) {
                f.generated++;
                if (f.generated == 1)
                    res.records[f.id].first_token = eq.now();
            }
            for (const InFlight &f : flight) {
                if (f.generated >= res.records[f.id].output_tokens) {
                    res.records[f.id].completed = eq.now();
                    completed++;
                }
            }
            flight.erase(
                std::remove_if(flight.begin(), flight.end(),
                               [&](const InFlight &f) {
                                   return f.generated >=
                                          res.records[f.id].output_tokens;
                               }),
                flight.end());
        }
        if (!prefilling.empty() &&
            prefilling.front().next_chunk >= cfg_.prefill_chunks) {
            for (const std::size_t id : prefilling.front().ids)
                flight.push_back(InFlight{id, 0});
            prefilling.pop_front();
        }
    }

    // --- metrics ---------------------------------------------------
    double real_generated = 0;
    double residency = 0;  // in-flight request-seconds
    double wait = 0;       // pending-queue request-seconds
    std::vector<double> ttft;
    std::vector<double> e2e;
    ttft.reserve(res.records.size());
    e2e.reserve(res.records.size());
    for (RequestRecord &rec : res.records) {
        res.makespan = std::max(res.makespan, rec.completed);
        real_generated += static_cast<double>(rec.output_tokens);
        residency += rec.completed - rec.admitted;
        wait += rec.queueWait();
        ttft.push_back(rec.ttft().value());
        e2e.push_back(rec.latency().value());
        rec.met_slo = cfg_.slo <= 0.0 || rec.latency() <= cfg_.slo;
        if (rec.met_slo)
            res.slo_met++;
    }
    res.ttft_p50 = Seconds(exactQuantile(ttft, 0.50));
    res.ttft_p99 = Seconds(exactQuantile(ttft, 0.99));
    res.ttft_p999 = Seconds(exactQuantile(ttft, 0.999));
    res.latency_p50 = Seconds(exactQuantile(e2e, 0.50));
    res.latency_p99 = Seconds(exactQuantile(e2e, 0.99));
    res.latency_p999 = Seconds(exactQuantile(e2e, 0.999));
    res.mean_queue_wait =
        Seconds(wait / static_cast<double>(res.requests));
    res.slo_attainment = static_cast<double>(res.slo_met) /
                         static_cast<double>(res.requests);
    res.goodput_rps =
        static_cast<double>(res.slo_met) / res.makespan;
    res.tokens_per_second = real_generated / res.makespan;
    res.mean_in_flight = residency / res.makespan;
    res.mean_queue_depth = wait / res.makespan;
    fillQueueDepth(res.records, res);
    res.cost_cache_hits = cost.hits;
    res.cost_cache_misses = cost.misses;
    return res;
}

}  // namespace hilos
