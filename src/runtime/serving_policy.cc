#include "runtime/serving_policy.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace hilos {

std::string
servingPolicyName(ServingPolicy policy)
{
    switch (policy) {
    case ServingPolicy::Fcfs:
        return "fcfs";
    case ServingPolicy::Sjf:
        return "sjf";
    case ServingPolicy::SloAware:
        return "slo";
    }
    HILOS_ASSERT(false, "unknown serving policy");
    return "";
}

bool
parseServingPolicy(const std::string &name, ServingPolicy *out)
{
    if (name == "fcfs")
        *out = ServingPolicy::Fcfs;
    else if (name == "sjf")
        *out = ServingPolicy::Sjf;
    else if (name == "slo")
        *out = ServingPolicy::SloAware;
    else
        return false;
    return true;
}

void
orderForAdmission(ServingPolicy policy,
                  std::vector<AdmissionCandidate> &pending)
{
    const auto fcfs = [](const AdmissionCandidate &a,
                         const AdmissionCandidate &b) {
        return std::make_tuple(a.arrival.value(), a.id) <
               std::make_tuple(b.arrival.value(), b.id);
    };
    switch (policy) {
    case ServingPolicy::Fcfs:
        std::sort(pending.begin(), pending.end(), fcfs);
        return;
    case ServingPolicy::Sjf:
        // Remaining decode work is the output length; prompt length
        // breaks ties (a shorter prompt prefills faster).
        std::sort(pending.begin(), pending.end(),
                  [&](const AdmissionCandidate &a,
                      const AdmissionCandidate &b) {
                      if (a.output_tokens != b.output_tokens)
                          return a.output_tokens < b.output_tokens;
                      if (a.input_tokens != b.input_tokens)
                          return a.input_tokens < b.input_tokens;
                      return fcfs(a, b);
                  });
        return;
    case ServingPolicy::SloAware:
        // Earliest deadline first; deadline = arrival + slo.
        std::sort(pending.begin(), pending.end(),
                  [&](const AdmissionCandidate &a,
                      const AdmissionCandidate &b) {
                      if (a.deadline != b.deadline)
                          return a.deadline < b.deadline;
                      return fcfs(a, b);
                  });
        return;
    }
    HILOS_ASSERT(false, "unknown serving policy");
}

}  // namespace hilos
