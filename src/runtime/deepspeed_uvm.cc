#include "runtime/deepspeed_uvm.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/plan_cache.h"

namespace hilos {

DeepSpeedUvmEngine::DeepSpeedUvmEngine(const SystemConfig &sys)
    : sys_(sys)
{
}

void
DeepSpeedUvmEngine::makePlan(const RunConfig &cfg, RunResult &res,
                             StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;

    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double weight_bytes = static_cast<double>(m.weightBytesTotal());
    const double resident =
        (home == WeightHome::HostDram ? weight_bytes : 0.0) +
        0.05 * static_cast<double>(sys_.dram.capacity);
    res.effective_batch =
        maxFittingBatch(m, cfg.batch, total_seq,
                        static_cast<double>(sys_.dram.capacity), resident);
    if (res.effective_batch == 0) {
        res.feasible = false;
        res.note = "host DRAM exhausted even at batch 1";
        plan.feasible = false;
        plan.note = res.note;
        return;
    }
    const std::uint64_t b = res.effective_batch;
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);
    const double L = static_cast<double>(m.layers);

    // UVM page faults throttle the migrated-page path.
    const Bandwidth uvm_bw = sys_.host_pcie_bw / sys_.uvm_io_penalty;

    // ZeRO-Inference stages weights with a pinned prefetch pipeline.
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        sys_.dram.bandwidth);
    const Seconds gpu_compute =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    // Attention runs on the GPU: the whole KV cache of the layer is
    // touched through UVM every step and migrates at the fault-
    // amortised rate.
    const Bytes kv_bytes = kvLayerBytes(m, b, s_mid);
    const Seconds kv_stream = kv_bytes / uvm_bw;
    // Intermediate activations spill through UVM both directions each
    // layer (the extension that keeps long-context decoding from
    // OOMing GPU memory).
    const Bytes act_bytes =
        2.0 * static_cast<double>(b) *
        static_cast<double>(m.hidden + m.intermediate) *
        static_cast<double>(m.dtype_bytes);
    const Seconds act_uvm = act_bytes / uvm_bw;

    // --- The decode-step plan: three overlapped roots, serial UVM
    // activation spill behind them ---
    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("kv_stream");
    plan.declareStage("gpu_compute");
    plan.declareStage("uvm_activations");
    plan.declareResource(PlanResource::HostPcie, 1);

    const double loaded_weight = m.loadedWeightBytesPerLayer(b);
    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::HostPcie, "weight_stage", weight,
                   loaded_weight)
            .stageTag("load_weight")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, loaded_weight)
            .asPrefetch());
    const std::size_t op_kv = plan.addOp(
        transferOp(PlanResource::HostPcie, "kv_uvm_stream", kv_stream,
                   kv_bytes)
            .stageTag("kv_stream")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, kv_bytes)
            .share(TrafficField::AttnHostRead, kv_bytes)
            .share(TrafficField::AttnHostWrite, kvStepBytes(m, b))
            .asPrefetch());
    const std::size_t op_gpu = plan.addOp(
        computeOp(ComputeUnit::Gpu, "gpu_compute", gpu_compute)
            .stageTag("gpu_compute")
            .busyTag(kBusyGpu));
    plan.addOp(
        transferOp(PlanResource::HostPcie, "uvm_activation_spill",
                   act_uvm, act_bytes)
            .stageTag("uvm_activations")
            .share(TrafficField::HostRead, act_bytes / 2.0)
            .share(TrafficField::HostWrite, act_bytes / 2.0)
            .dep(op_weight)
            .dep(op_kv)
            .dep(op_gpu));
    // UVM fault servicing keeps a CPU core partially busy all step.
    plan.busy_step_fraction.cpu = 0.05;

    // --- Prefill ---
    const Seconds prefill_compute =
        prefillComputeTime(gpu, m, b, cfg.context_len);
    res.prefill_time =
        L * (std::max(weight, prefill_compute) + act_uvm);

    // --- Energy spec ---
    plan.energy.enabled = true;
    plan.energy.sys = sys_;
    plan.energy.prefill_fraction.gpu = 0.9;
    plan.energy.prefill_fraction.dram = 0.5;
}

RunResult
DeepSpeedUvmEngine::run(const RunConfig &cfg) const
{
    RunResult res;
    StepPlan plan;
    makePlan(cfg, res, plan);
    if (!plan.feasible)
        return res;
    applyPlan(plan, cfg, res);
    return res;
}

RunResult
DeepSpeedUvmEngine::runCached(const RunConfig &cfg, PlanCache &cache) const
{
    RunResult res;
    const StepPlan &plan = cache.build(
        PlanCache::keyOf(name(), cfg.model.name), [&](StepPlan &p) {
            res = RunResult{};
            makePlan(cfg, res, p);
        });
    if (!plan.feasible)
        return res;
    applyPlan(plan, cfg, res);
    return res;
}

StepPlan
DeepSpeedUvmEngine::decodeStepPlan(const RunConfig &cfg) const
{
    RunResult scratch;
    StepPlan plan;
    makePlan(cfg, scratch, plan);
    return plan;
}

}  // namespace hilos
