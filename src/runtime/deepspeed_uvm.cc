#include "runtime/deepspeed_uvm.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/plan_cache.h"
#include "runtime/prefill_constants.h"

namespace hilos {

DeepSpeedUvmEngine::DeepSpeedUvmEngine(const SystemConfig &sys)
    : sys_(sys)
{
}

std::uint64_t
DeepSpeedUvmEngine::effectiveBatch(const RunConfig &cfg,
                                   std::string *note) const
{
    const ModelConfig &m = cfg.model;
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double weight_bytes = static_cast<double>(m.weightBytesTotal());
    const double resident =
        (home == WeightHome::HostDram ? weight_bytes : 0.0) +
        0.05 * static_cast<double>(sys_.dram.capacity);
    const std::uint64_t b =
        maxFittingBatch(m, cfg.batch, total_seq,
                        static_cast<double>(sys_.dram.capacity), resident);
    if (b == 0)
        *note = "host DRAM exhausted even at batch 1";
    return b;
}

void
DeepSpeedUvmEngine::makePlan(const RunConfig &cfg, RunResult &res,
                             StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);

    std::string cap_note;
    res.effective_batch = effectiveBatch(cfg, &cap_note);
    if (res.effective_batch == 0) {
        res.feasible = false;
        res.note = cap_note;
        plan.feasible = false;
        plan.note = res.note;
        return;
    }
    const std::uint64_t b = res.effective_batch;
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);

    // UVM page faults throttle the migrated-page path.
    const Bandwidth uvm_bw = sys_.host_pcie_bw / sys_.uvm_io_penalty;

    // ZeRO-Inference stages weights with a pinned prefetch pipeline.
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        sys_.dram.bandwidth);
    const Seconds gpu_compute =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    // Attention runs on the GPU: the whole KV cache of the layer is
    // touched through UVM every step and migrates at the fault-
    // amortised rate.
    const Bytes kv_bytes = kvLayerBytes(m, b, s_mid);
    const Seconds kv_stream = kv_bytes / uvm_bw;
    // Intermediate activations spill through UVM both directions each
    // layer (the extension that keeps long-context decoding from
    // OOMing GPU memory).
    const Bytes act_bytes =
        2.0 * static_cast<double>(b) *
        static_cast<double>(m.hidden + m.intermediate) *
        static_cast<double>(m.dtype_bytes);
    const Seconds act_uvm = act_bytes / uvm_bw;

    // --- The decode-step plan: three overlapped roots, serial UVM
    // activation spill behind them ---
    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("kv_stream");
    plan.declareStage("gpu_compute");
    plan.declareStage("uvm_activations");
    plan.declareResource(PlanResource::HostPcie, 1);

    const double loaded_weight = m.loadedWeightBytesPerLayer(b);
    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::HostPcie, "weight_stage", weight,
                   loaded_weight)
            .stageTag("load_weight")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, loaded_weight)
            .asPrefetch());
    const std::size_t op_kv = plan.addOp(
        transferOp(PlanResource::HostPcie, "kv_uvm_stream", kv_stream,
                   kv_bytes)
            .stageTag("kv_stream")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, kv_bytes)
            .share(TrafficField::AttnHostRead, kv_bytes)
            // The new token's KV entries migrate back through UVM: a
            // host write, of which the attention share is a subset
            // (plan-analyzer PA005 conservation).
            .share(TrafficField::HostWrite, kvStepBytes(m, b))
            .share(TrafficField::AttnHostWrite, kvStepBytes(m, b))
            .asPrefetch());
    const std::size_t op_gpu = plan.addOp(
        computeOp(ComputeUnit::Gpu, "gpu_compute", gpu_compute)
            .stageTag("gpu_compute")
            .busyTag(kBusyGpu));
    plan.addOp(
        transferOp(PlanResource::HostPcie, "uvm_activation_spill",
                   act_uvm, act_bytes)
            .stageTag("uvm_activations")
            .share(TrafficField::HostRead, act_bytes / 2.0)
            .share(TrafficField::HostWrite, act_bytes / 2.0)
            .dep(op_weight)
            .dep(op_kv)
            .dep(op_gpu));
    // UVM fault servicing keeps a CPU core partially busy all step.
    plan.busy_step_fraction.cpu = 0.05;

    // --- Energy spec ---
    plan.energy.enabled = true;
    plan.energy.sys = sys_;
}

void
DeepSpeedUvmEngine::makePrefillPlan(const RunConfig &cfg,
                                    std::uint64_t chunk_index,
                                    std::uint64_t chunk_count,
                                    StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);

    plan.phase = PlanPhase::Prefill;
    plan.chunk_index = chunk_index;
    plan.chunk_count = chunk_count;

    std::string cap_note;
    const std::uint64_t b = effectiveBatch(cfg, &cap_note);
    if (b == 0) {
        plan.feasible = false;
        plan.note = cap_note;
        return;
    }

    const auto [start, end] =
        prefillChunkRange(cfg.context_len, chunk_index, chunk_count);
    plan.chunk_tokens = end - start;

    const Bandwidth uvm_bw = sys_.host_pcie_bw / sys_.uvm_io_penalty;
    const Seconds weight = weightLoadTime(
        m, b, chooseWeightHome(m, sys_.dram.capacity),
        sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        sys_.dram.bandwidth);
    const Seconds prefill_compute =
        prefillChunkComputeTime(gpu, m, b, start, end);
    // The activation working set spills through UVM once per layer of
    // every chunk pass, at the decode-step spill size.
    const Bytes act_bytes =
        2.0 * static_cast<double>(b) *
        static_cast<double>(m.hidden + m.intermediate) *
        static_cast<double>(m.dtype_bytes);
    const Seconds act_uvm = act_bytes / uvm_bw;

    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("prefill_compute");
    plan.declareStage("uvm_activations");
    plan.declareResource(PlanResource::HostPcie, 1);

    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::HostPcie, "weight_stage", weight,
                   m.loadedWeightBytesPerLayer(b))
            .stageTag("load_weight"));
    const std::size_t op_compute = plan.addOp(
        computeOp(ComputeUnit::Gpu, "prefill_compute", prefill_compute)
            .stageTag("prefill_compute"));
    plan.addOp(transferOp(PlanResource::HostPcie, "uvm_activation_spill",
                          act_uvm, act_bytes)
                   .stageTag("uvm_activations")
                   .dep(op_weight)
                   .dep(op_compute));

    plan.busy_step_fraction.gpu = kPrefillGpuBusyFraction;
    plan.busy_step_fraction.dram = kPrefillDramBusyFractionOffload;
}

RunResult
DeepSpeedUvmEngine::run(const RunConfig &cfg) const
{
    RunResult res;
    StepPlan plan;
    makePlan(cfg, res, plan);
    if (!plan.feasible)
        return res;
    if (!applyPrefillPhase(*this, cfg, res))
        return res;
    applyPlan(plan, cfg, res);
    return res;
}

RunResult
DeepSpeedUvmEngine::runCached(const RunConfig &cfg, PlanCache &cache) const
{
    RunResult res;
    const StepPlan &plan = cache.build(
        PlanCache::keyOf(name(), cfg.model.name), [&](StepPlan &p) {
            res = RunResult{};
            makePlan(cfg, res, p);
        });
    if (!plan.feasible)
        return res;
    const std::uint64_t prefill_key =
        PlanCache::keyOf(name(), cfg.model.name, PlanPhase::Prefill);
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        const StepPlan &pre = cache.build(
            prefill_key,
            [&](StepPlan &p) {
                makePrefillPlan(cfg, i, cfg.prefill_chunks, p);
            });
        if (!applyPrefillPlan(pre, res))
            return res;
    }
    applyPlan(plan, cfg, res);
    return res;
}

StepPlan
DeepSpeedUvmEngine::decodeStepPlan(const RunConfig &cfg) const
{
    RunResult scratch;
    StepPlan plan;
    makePlan(cfg, scratch, plan);
    return plan;
}

StepPlan
DeepSpeedUvmEngine::prefillStepPlan(const RunConfig &cfg,
                                    std::uint64_t chunk_index,
                                    std::uint64_t chunk_count) const
{
    StepPlan plan;
    makePrefillPlan(cfg, chunk_index, chunk_count, plan);
    return plan;
}

}  // namespace hilos
