#include "runtime/deepspeed_uvm.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"

namespace hilos {

DeepSpeedUvmEngine::DeepSpeedUvmEngine(const SystemConfig &sys)
    : sys_(sys)
{
}

RunResult
DeepSpeedUvmEngine::run(const RunConfig &cfg) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const Cpu cpu(sys_.cpu);
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;

    RunResult res;
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double weight_bytes = static_cast<double>(m.weightBytesTotal());
    const double resident =
        (home == WeightHome::HostDram ? weight_bytes : 0.0) +
        0.05 * static_cast<double>(sys_.dram.capacity);
    res.effective_batch =
        maxFittingBatch(m, cfg.batch, total_seq,
                        static_cast<double>(sys_.dram.capacity), resident);
    if (res.effective_batch == 0) {
        res.feasible = false;
        res.note = "host DRAM exhausted even at batch 1";
        return res;
    }
    const std::uint64_t b = res.effective_batch;
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);
    const double L = static_cast<double>(m.layers);

    (void)cpu;
    // UVM page faults throttle the migrated-page path.
    const Bandwidth uvm_bw = sys_.host_pcie_bw / sys_.uvm_io_penalty;

    // ZeRO-Inference stages weights with a pinned prefetch pipeline.
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        sys_.dram.bandwidth);
    const Seconds gpu_compute =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    // Attention runs on the GPU: the whole KV cache of the layer is
    // touched through UVM every step and migrates at the fault-
    // amortised rate.
    const double kv_bytes = kvLayerBytes(m, b, s_mid);
    const Seconds kv_stream = kv_bytes / uvm_bw;
    // Intermediate activations spill through UVM both directions each
    // layer (the extension that keeps long-context decoding from
    // OOMing GPU memory).
    const double act_bytes =
        2.0 * static_cast<double>(b) *
        static_cast<double>(m.hidden + m.intermediate) *
        static_cast<double>(m.dtype_bytes);
    const Seconds act_uvm = act_bytes / uvm_bw;

    const Seconds t_layer =
        std::max({weight, kv_stream, gpu_compute}) + act_uvm;
    res.decode_step_time = L * t_layer;

    res.breakdown.add("load_weight", L * weight);
    res.breakdown.add("kv_stream", L * kv_stream);
    res.breakdown.add("gpu_compute", L * gpu_compute);
    res.breakdown.add("uvm_activations", L * act_uvm);

    const Seconds prefill_compute =
        prefillComputeTime(gpu, m, b, cfg.context_len);
    res.prefill_time =
        L * (std::max(weight, prefill_compute) + act_uvm);
    res.total_time = res.prefill_time +
                     static_cast<double>(cfg.output_len) *
                         res.decode_step_time;

    res.traffic.host_read_bytes =
        L * (m.loadedWeightBytesPerLayer(b) + kv_bytes +
             act_bytes / 2.0);
    res.traffic.host_write_bytes = L * act_bytes / 2.0;
    res.traffic.attn_host_read_bytes = L * kv_bytes;
    res.traffic.attn_host_write_bytes = L * kvStepBytes(m, b);

    res.busy.gpu = L * gpu_compute;
    res.busy.cpu = 0.05 * res.decode_step_time;  // UVM fault servicing
    res.busy.dram = L * std::max(weight, kv_stream);

    const double steps = static_cast<double>(cfg.output_len);
    ComponentBusy run_busy;
    run_busy.gpu = res.busy.gpu * steps + res.prefill_time * 0.9;
    run_busy.cpu = res.busy.cpu * steps;
    run_busy.dram = res.busy.dram * steps + res.prefill_time * 0.5;
    res.energy = computeEnergy(sys_, StorageKind::None, 0, res.total_time,
                               run_busy, 0.0);
    return res;
}

}  // namespace hilos
