#include "runtime/system_config.h"

namespace hilos {

SystemConfig::SystemConfig()
    : gpu(a100Config()), cpu(xeon6342Config()), dram(hostDramConfig()),
      baseline_ssd(pm9a3Config()), smartssd(smartSsdConfig())
{
}

SystemConfig
defaultSystem()
{
    return SystemConfig{};
}

SystemConfig
h100System()
{
    SystemConfig cfg;
    cfg.gpu = h100Config();
    return cfg;
}

SystemConfig
ispSystem(unsigned devices)
{
    SystemConfig cfg;
    cfg.smartssd = ispDeviceConfig();
    cfg.num_smartssds = devices;
    cfg.installed_smartssds = devices;
    return cfg;
}

}  // namespace hilos
