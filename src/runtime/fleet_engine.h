/**
 * @file
 * Fleet-scale NSP scale-out: N hosts of M SmartSSDs each, data-parallel
 * over the request batch, coordinated over an inter-host interconnect
 * (the vLLM baseline's InfiniBand model generalized to N nodes). The
 * FleetEngine executes a FleetScheduler placement and reuses the
 * single-host epoch machinery at cluster granularity: a host loss
 * triggers deterministic re-placement and shard rebuild, a host stall
 * runs the retry/backoff ladder, and throughput degrades gracefully
 * instead of erroring.
 */

#ifndef HILOS_RUNTIME_FLEET_ENGINE_H_
#define HILOS_RUNTIME_FLEET_ENGINE_H_

#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/fleet_scheduler.h"
#include "runtime/hilos_engine.h"
#include "runtime/system_config.h"
#include "sim/fault.h"

namespace hilos {

/** Cluster shape of a SmartSSD fleet. */
struct FleetConfig {
    unsigned hosts = 2;
    unsigned devices_per_host = 8;  ///< SmartSSDs per host (1..16)
    PlacementPolicy policy = PlacementPolicy::Spread;
    /** Hosts FaultAware holds in reserve (ignored by other policies). */
    unsigned spare_hosts = 1;
    /** Inter-host interconnect (InfiniBand EDR, as the vLLM baseline). */
    Bandwidth inter_host_bw = 12.5 * GB;
    /** One-way inter-host message latency (per-step coordination). */
    Seconds inter_host_latency = usec(15);
    /**
     * Fault schedule for the whole fleet: host-scope events drive the
     * cluster epochs here; device-scope events fan out to every host's
     * own injector. Empty = the zero-fault fast path.
     */
    FaultPlan fault_plan;

    /**
     * Shape and plan checks, one named diagnostic per violation (empty
     * = valid). FleetEngine construction is gated on it.
     */
    std::vector<std::string> validate() const;
};

/**
 * Data-parallel fleet of single-host HILOS engines under one scheduler.
 *
 * A fleet decode step is the slowest serving host's step plus the
 * per-step coordination exchange; with one host and no faults the
 * result is bit-identical to the underlying HilosEngine. Host-scope
 * fault events partition the run into epochs; every boundary re-places
 * the batch deterministically, charges shard-rebuild traffic over the
 * (possibly degraded) inter-host link, and the run completes with
 * availability < 1 rather than failing, as long as any host survives.
 */
class FleetEngine : public InferenceEngine
{
  public:
    FleetEngine(const SystemConfig &sys, const FleetConfig &fleet,
                const HilosOptions &host_opts = HilosOptions{});

    std::string name() const override;
    RunResult run(const RunConfig &cfg) const override;

    /**
     * Event-sim backend of the fleet decode step: each serving host's
     * step replayed at transfer granularity (HilosEventSimulator) with
     * fleet conditions sampled at `now`, plus the same coordination
     * term as the analytic model. Agreement between the two backends
     * is an oracle invariant.
     */
    Seconds simulatedDecodeStep(const RunConfig &cfg,
                                Seconds now = 0.0) const;

    const FleetConfig &fleet() const { return fleet_; }
    const FleetScheduler &scheduler() const { return sched_; }
    /** The per-host engine options after fleet fan-out. */
    const HilosOptions &hostOptions() const { return host_opts_; }

  private:
    /** Per-step token/coordination exchange (0 for a one-host fleet). */
    Seconds coordinationTime(std::uint64_t placed_batch,
                             double derate) const;

    /** Serving mask at `now`: alive and not inside a stall window. */
    std::vector<bool> servingMask(const HostFaultView &view,
                                  Seconds now) const;

    SystemConfig sys_;
    FleetConfig fleet_;
    HilosOptions host_opts_;
    FleetScheduler sched_;
    HilosEngine host_engine_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_FLEET_ENGINE_H_
