/**
 * @file
 * Energy, cost-effectiveness, and endurance models (§6.6).
 *
 * Energy: per-component accounting (GPU via NVML-style busy power, CPU
 * and DRAM via RAPL-style, SSD/SmartSSD from datasheet/expansion-board
 * telemetry): E = active_power * busy + idle_power * (wall - busy).
 *
 * Cost: tokens/sec/$ with the paper's price list.
 *
 * Endurance: serviceable requests before the SSD fleet exhausts its
 * rated PBW, given per-request write volume (prefill KV/X writes plus
 * decode spills with their write amplification).
 */

#ifndef HILOS_RUNTIME_ENERGY_H_
#define HILOS_RUNTIME_ENERGY_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "runtime/system_config.h"

namespace hilos {

/** Busy seconds per component over some interval. */
struct ComponentBusy {
    Seconds gpu = 0;
    Seconds cpu = 0;
    Seconds dram = 0;
    Seconds storage = 0;  ///< SSD/NAND activity (per device)
    Seconds fpga = 0;     ///< NSP accelerator activity (per device)
};

/** Joules per component over a run. */
struct EnergyBreakdown {
    Joules gpu = 0;
    Joules cpu = 0;
    Joules dram = 0;
    Joules storage = 0;  ///< SSDs or SmartSSDs (incl. FPGA power)

    Joules total() const { return gpu + cpu + dram + storage; }
};

/** Which storage fleet a configuration runs on. */
enum class StorageKind {
    BaselineSsds,  ///< N x PM9A3
    SmartSsds,     ///< N x SmartSSD (FPGA active)
    None,          ///< KV in DRAM only
};

/**
 * Energy accounting for one run.
 *
 * @param sys system configuration
 * @param kind which storage fleet is powered
 * @param devices storage device count
 * @param wall wall-clock seconds of the run
 * @param busy per-component busy seconds (storage/fpga are per device)
 * @param fpga_power per-device FPGA power when busy (from the resource
 *        model; ignored unless kind == SmartSsds)
 */
EnergyBreakdown computeEnergy(const SystemConfig &sys, StorageKind kind,
                              unsigned devices, Seconds wall,
                              const ComponentBusy &busy,
                              Watts fpga_power = 0.0);

/** Total system price for a configuration (Fig. 16(a)). */
double systemPriceUsd(const SystemConfig &sys, StorageKind kind,
                      unsigned devices);

/** tokens/sec/$ cost-effectiveness metric. */
double costEffectiveness(double tokens_per_sec, double price_usd);

/** Inputs to the endurance estimate for one request class. */
struct EnduranceInputs {
    /** Bytes written to the fleet per request (prefill + spills). */
    Bytes bytes_per_request = 0;
    /** Effective write amplification on those bytes. */
    double write_amplification = 1.0;
    /** Fleet size. */
    unsigned devices = 16;
    /** Per-device rated endurance in bytes (7.008 PBW default). */
    Bytes per_device_endurance_bytes = 7.008e15;
};

/** Serviceable requests before the fleet's rated PBW is exhausted. */
double serviceableRequests(const EnduranceInputs &in);

}  // namespace hilos

#endif  // HILOS_RUNTIME_ENERGY_H_
