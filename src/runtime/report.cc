#include "runtime/report.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "core/hilos.h"
#include "sim/parallel.h"

namespace hilos {

namespace {

ReportEntry
makeEntry(const std::string &model, std::uint64_t context,
          const std::string &engine, const RunResult &r, double price,
          double base_tput)
{
    ReportEntry e;
    e.model = model;
    e.context = context;
    e.engine = engine;
    e.feasible = r.feasible;
    if (!r.feasible)
        return e;
    e.tokens_per_sec = r.decodeThroughput();
    e.speedup_vs_flex_ssd =
        base_tput > 0 ? e.tokens_per_sec / base_tput : 0.0;
    e.energy_kj = r.energy.total() / 1e3;
    e.cost_effectiveness = costEffectiveness(e.tokens_per_sec, price);
    return e;
}

}  // namespace

namespace {

/** Everything one (model, context) cell contributes to the report. */
struct CellResult {
    std::vector<ReportEntry> entries;
    double max_speedup = 0;
    double max_energy_saving = 0;
};

CellResult
evaluateCell(const SystemConfig &sys, const ReportConfig &cfg,
             const std::string &model_name, std::uint64_t context)
{
    CellResult cell;
    RunConfig run;
    run.model = modelByName(model_name);
    run.batch = cfg.batch;
    run.context_len = context;
    run.output_len = cfg.output_len;

    const RunResult base = makeEngine(EngineKind::FlexSsd, sys)->run(run);
    const double base_tput = base.decodeThroughput();
    const double base_price = systemPriceUsd(
        sys, StorageKind::BaselineSsds, sys.num_baseline_ssds);
    cell.entries.push_back(makeEntry(model_name, context, "FLEX(SSD)",
                                     base, base_price, base_tput));

    const RunResult dram = makeEngine(EngineKind::FlexDram, sys)->run(run);
    cell.entries.push_back(
        makeEntry(model_name, context, "FLEX(DRAM)", dram,
                  systemPriceUsd(sys, StorageKind::None, 0), base_tput));

    for (unsigned n : cfg.device_counts) {
        HilosOptions opts;
        opts.num_devices = n;
        opts.fault_plan = cfg.fault_plan;
        const RunResult hil =
            makeEngine(EngineKind::Hilos, sys, opts)->run(run);
        ReportEntry e = makeEntry(model_name, context,
                                  "HILOS(" + std::to_string(n) + ")",
                                  hil,
                                  systemPriceUsd(
                                      sys, StorageKind::SmartSsds, n),
                                  base_tput);
        if (!cfg.fault_plan.empty()) {
            e.faulted = true;
            e.availability = hil.faults.availability;
            e.slowdown = hil.faults.slowdown;
            e.devices_failed = hil.faults.devices_failed;
            e.retry_time = hil.faults.retry_time;
        }
        cell.entries.push_back(e);
        if (e.feasible) {
            cell.max_speedup =
                std::max(cell.max_speedup, e.speedup_vs_flex_ssd);
            if (base.feasible && base.energy.total() > 0) {
                cell.max_energy_saving = std::max(
                    cell.max_energy_saving,
                    1.0 - hil.energy.total() / base.energy.total());
            }
        }
    }

    // Fleet entries: the same workload scaled out to `hosts` nodes.
    // Host-scope fault events only bite here; single-host entries
    // above see the device-scope subset.
    if (cfg.hosts > 1) {
        for (unsigned n : cfg.device_counts) {
            FleetConfig fc;
            fc.hosts = cfg.hosts;
            fc.devices_per_host = n;
            fc.policy = cfg.fleet_policy;
            fc.fault_plan = cfg.fault_plan;
            const FleetEngine fe(sys, fc);
            const RunResult r = fe.run(run);
            ReportEntry e = makeEntry(
                model_name, context, fe.name(), r,
                static_cast<double>(cfg.hosts) *
                    systemPriceUsd(sys, StorageKind::SmartSsds, n),
                base_tput);
            if (!cfg.fault_plan.empty()) {
                e.faulted = true;
                e.availability = r.fleet.any() ? r.fleet.availability
                                               : r.faults.availability;
                e.slowdown = r.fleet.any() ? r.fleet.slowdown
                                           : r.faults.slowdown;
                e.devices_failed =
                    r.faults.devices_failed + r.fleet.hosts_failed * n;
                e.retry_time = r.faults.retry_time;
            }
            cell.entries.push_back(e);
        }
    }
    return cell;
}

}  // namespace

EvaluationReport
runEvaluation(const SystemConfig &sys, const ReportConfig &cfg)
{
    HILOS_ASSERT(!cfg.models.empty() && !cfg.contexts.empty(),
                 "empty report grid");

    // Each (model, context) cell is independent; fan them across the
    // sweep driver and merge in grid order so the rendered report is
    // bit-identical to the serial path at any job count.
    struct Cell {
        std::string model;
        std::uint64_t context;
    };
    std::vector<Cell> grid;
    for (const std::string &model_name : cfg.models)
        for (std::uint64_t context : cfg.contexts)
            grid.push_back(Cell{model_name, context});

    SweepDriver driver(cfg.jobs);
    const std::vector<CellResult> cells =
        driver.map(grid, [&](const Cell &c) {
            return evaluateCell(sys, cfg, c.model, c.context);
        });

    EvaluationReport report;
    for (const CellResult &cell : cells) {
        report.entries.insert(report.entries.end(), cell.entries.begin(),
                              cell.entries.end());
        report.max_speedup =
            std::max(report.max_speedup, cell.max_speedup);
        report.max_energy_saving =
            std::max(report.max_energy_saving, cell.max_energy_saving);
    }
    return report;
}

std::string
EvaluationReport::toMarkdown() const
{
    std::ostringstream oss;
    oss << "# HILOS evaluation report\n\n"
        << "Peak HILOS speedup over FLEX(SSD): **"
        << static_cast<int>(max_speedup * 100) / 100.0 << "x**; peak "
        << "energy saving: **"
        << static_cast<int>(max_energy_saving * 1000) / 10.0
        << "%**.\n\n"
        << "| model | context | engine | tokens/s | vs FLEX(SSD) | "
           "energy kJ | tokens/s/$ |\n"
        << "|---|---|---|---|---|---|---|\n";
    for (const ReportEntry &e : entries) {
        oss << "| " << e.model << " | " << e.context / 1024 << "K | "
            << e.engine << " | ";
        if (!e.feasible) {
            oss << "OOM | - | - | - |\n";
            continue;
        }
        oss << e.tokens_per_sec << " | " << e.speedup_vs_flex_ssd
            << "x | " << e.energy_kj << " | " << e.cost_effectiveness
            << " |\n";
    }

    // Fault-resilience section: only rendered when the grid ran under
    // a FaultPlan, so fault-free reports stay unchanged.
    bool any_faulted = false;
    for (const ReportEntry &e : entries)
        any_faulted = any_faulted || e.faulted;
    if (any_faulted) {
        oss << "\n## Fault resilience\n\n"
            << "| model | context | engine | availability | slowdown | "
               "devices failed | retry time (s) |\n"
            << "|---|---|---|---|---|---|---|\n";
        for (const ReportEntry &e : entries) {
            if (!e.faulted)
                continue;
            oss << "| " << e.model << " | " << e.context / 1024
                << "K | " << e.engine << " | ";
            if (!e.feasible) {
                oss << "unavailable | - | - | - |\n";
                continue;
            }
            oss << e.availability << " | " << e.slowdown << "x | "
                << e.devices_failed << " | " << e.retry_time << " |\n";
        }
    }
    return oss.str();
}

}  // namespace hilos
