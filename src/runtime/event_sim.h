/**
 * @file
 * Transfer-granularity simulation of a HILOS decoding step.
 *
 * The analytic engine (hilos_engine.*) composes closed-form stage times
 * with max/sum rules; this simulator replays the same decoding step as
 * individual slice-sized transfers over contended resources — the
 * chassis uplink, the GDS path, each SmartSSD's internal P2P link and
 * accelerator, and the GPU — with cross-layer weight prefetching. It
 * exists to validate the analytic model (the two must agree within
 * tens of percent; see bench_crossval_eventsim and the tests) and to
 * expose per-resource utilisation at finer granularity.
 */

#ifndef HILOS_RUNTIME_EVENT_SIM_H_
#define HILOS_RUNTIME_EVENT_SIM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/engine.h"
#include "runtime/hilos_engine.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"
#include "sim/bandwidth.h"
#include "sim/trace.h"

namespace hilos {

/** Per-resource outcome of one simulated decoding step. */
struct EventSimResult {
    Seconds decode_step_time = 0;
    double uplink_utilization = 0;
    double gds_utilization = 0;
    double internal_utilization = 0;  ///< mean over devices
    double gpu_utilization = 0;
    Seconds mean_layer_time = 0;
    std::vector<Seconds> layer_times;

    // Fault-injection outcome (all zero / true without a FaultPlan).
    bool completed = true;  ///< false: no surviving device could serve
    std::string note;       ///< failure reason when !completed
    unsigned devices_failed = 0;
    std::uint64_t redispatched_slices = 0;
    std::uint64_t nand_read_errors = 0;
    std::uint64_t nvme_timeouts = 0;
    std::uint64_t nvme_retries = 0;
    Seconds retry_time = 0;  ///< latency added by retry recovery
};

/**
 * Slice-level simulator of the HILOS decode pipeline.
 */
class HilosEventSimulator
{
  public:
    HilosEventSimulator(const SystemConfig &sys, const HilosOptions &opts);

    /**
     * Simulate one full decoding step (all layers).
     *
     * When the options carry a FaultPlan, fault conditions (failed
     * devices, link derates) are sampled at `start_time`; slices homed
     * on failed devices re-dispatch round-robin onto survivors, and
     * per-slice NAND/NVMe recovery penalties are drawn from the plan's
     * seeded per-device RNG streams, so the same (seed, plan,
     * start_time) always reproduces an identical result.
     *
     * @param trace optional recorder; when supplied every transfer and
     *        compute interval lands on its own track (exportable to
     *        chrome://tracing via TraceRecorder::writeChromeTrace)
     * @param start_time absolute run time at which this step begins
     *        (used to evaluate timed fault events)
     */
    EventSimResult simulateDecodeStep(const RunConfig &cfg,
                                      TraceRecorder *trace = nullptr,
                                      Seconds start_time = 0.0) const;

    /**
     * Simulate the prefill phase: the prompt processes in fixed token
     * chunks; each chunk's FlashAttention compute overlaps the previous
     * chunk's KV/X writes to the devices (the same batch-and-head
     * partitioning as decode, §4.1).
     * Under a FaultPlan the surviving fleet and derates at
     * `start_time` apply; a fully failed fleet raises a fatal error.
     * @return total prefill time
     */
    Seconds simulatePrefill(const RunConfig &cfg,
                            std::size_t chunk_tokens = 4096,
                            TraceRecorder *trace = nullptr,
                            Seconds start_time = 0.0) const;

  private:
    SystemConfig sys_;
    HilosOptions opts_;
};

/** Outcome of replaying one StepPlan over contended resources. */
struct PlanSimResult {
    Seconds decode_step_time = 0;
    /** Pre-divisor end of the layered phase (step start = 0). */
    Seconds layered_end = 0;
    std::vector<Seconds> layer_times;
    /**
     * Completion time of each layer-0 op (indexed like
     * StepPlan::layer_ops, relative to step start). Shadow ops hold
     * their dependency-propagated finish; offline ops hold 0. Under
     * contention each entry is >= the analytic PlanEvaluation's
     * op_finish for the same op — the structural agreement invariant
     * the oracles check.
     */
    std::vector<Seconds> first_layer_finish;
    /** Mean utilisation per referenced resource, by planResourceName. */
    std::vector<std::pair<std::string, double>> resource_utilization;
    /** Utilisation per referenced compute unit, by computeUnitName. */
    std::vector<std::pair<std::string, double>> unit_utilization;
};

/**
 * Replay a StepPlan over contended BandwidthPools: every transfer op
 * occupies one pool instance per fanout replica (round-robin striped),
 * compute ops occupy a single-instance pool per unit, prefetch ops
 * become ready with the previous layer's start, shadow ops contribute
 * timing only, offline ops are skipped. The layered timeline divided by
 * `layer_time_divisor` plus the serial tail gives the decode step —
 * under an uncontended plan this reproduces the analytic evaluator;
 * contention (several ops sharing one pool instance) can only delay it.
 */
PlanSimResult simulatePlan(const StepPlan &plan,
                           TraceRecorder *trace = nullptr);

/**
 * Adapt a plan replay to the EventSimResult shape the agreement
 * checkers consume. Utilisations map by name (uplink or host_pcie ->
 * uplink; gds -> gds; mean of p2p/storage/intra_node -> internal; gpu
 * unit -> gpu); absent resources report 0.
 */
EventSimResult toEventSimResult(const PlanSimResult &r);

}  // namespace hilos

#endif  // HILOS_RUNTIME_EVENT_SIM_H_
