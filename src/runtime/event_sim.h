/**
 * @file
 * Transfer-granularity simulation of a HILOS decoding step.
 *
 * The analytic engine (hilos_engine.*) composes closed-form stage times
 * with max/sum rules; this simulator replays the same decoding step as
 * individual slice-sized transfers over contended resources — the
 * chassis uplink, the GDS path, each SmartSSD's internal P2P link and
 * accelerator, and the GPU — with cross-layer weight prefetching. It
 * exists to validate the analytic model (the two must agree within
 * tens of percent; see bench_crossval_eventsim and the tests) and to
 * expose per-resource utilisation at finer granularity.
 */

#ifndef HILOS_RUNTIME_EVENT_SIM_H_
#define HILOS_RUNTIME_EVENT_SIM_H_

#include <vector>

#include "runtime/engine.h"
#include "runtime/hilos_engine.h"
#include "runtime/system_config.h"
#include "sim/bandwidth.h"
#include "sim/trace.h"

namespace hilos {

/** Per-resource outcome of one simulated decoding step. */
struct EventSimResult {
    Seconds decode_step_time = 0;
    double uplink_utilization = 0;
    double gds_utilization = 0;
    double internal_utilization = 0;  ///< mean over devices
    double gpu_utilization = 0;
    Seconds mean_layer_time = 0;
    std::vector<Seconds> layer_times;
};

/**
 * Slice-level simulator of the HILOS decode pipeline.
 */
class HilosEventSimulator
{
  public:
    HilosEventSimulator(const SystemConfig &sys, const HilosOptions &opts);

    /**
     * Simulate one full decoding step (all layers).
     * @param trace optional recorder; when supplied every transfer and
     *        compute interval lands on its own track (exportable to
     *        chrome://tracing via TraceRecorder::writeChromeTrace)
     */
    EventSimResult simulateDecodeStep(const RunConfig &cfg,
                                      TraceRecorder *trace = nullptr) const;

    /**
     * Simulate the prefill phase: the prompt processes in fixed token
     * chunks; each chunk's FlashAttention compute overlaps the previous
     * chunk's KV/X writes to the devices (the same batch-and-head
     * partitioning as decode, §4.1).
     * @return total prefill time
     */
    Seconds simulatePrefill(const RunConfig &cfg,
                            std::size_t chunk_tokens = 4096,
                            TraceRecorder *trace = nullptr) const;

  private:
    SystemConfig sys_;
    HilosOptions opts_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_EVENT_SIM_H_
