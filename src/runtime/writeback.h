/**
 * @file
 * Delayed KV cache writeback (§4.3): the Writeback Manager.
 *
 * Newly generated KV entries are staged in host-memory buffers instead
 * of being committed to storage immediately. Per decoding step the CPU
 * precomputes the partial QK^T scores for the buffered keys and ships
 * only those scalars (plus the buffered V vectors) to the accelerator;
 * buffers spill to storage in page-sized chunks every `spill_interval`
 * steps. This keeps SSD writes off the critical path and removes the
 * sub-page write penalty (a 256 B KV entry vs the 4 KiB page).
 *
 * The module has a functional side (actual buffers + partial-score
 * computation feeding AttentionKernel) and an analytic side (per-step
 * transfer/spill costs for the engines).
 */

#ifndef HILOS_RUNTIME_WRITEBACK_H_
#define HILOS_RUNTIME_WRITEBACK_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "llm/kv_staging.h"

namespace hilos {

/** Analytic per-step costs of the writeback scheme for the engines. */
struct WritebackCosts {
    /** Redundant V transfer + score upload per step (critical path). */
    Seconds transfer_time = 0;
    /** XRT DMA orchestration/sync overhead per step (critical path). */
    Seconds sync_time = 0;
    /** Amortised spill write time per step (off the critical path). */
    Seconds spill_time = 0;
    /** Effective write amplification of the spills. */
    double write_amplification = 1.0;

    Seconds criticalPath() const { return transfer_time + sync_time; }
};

/** Parameters of the analytic writeback cost model. */
struct WritebackCostInputs {
    std::uint64_t slices = 0;        ///< b x kv_heads across the fleet
    std::uint64_t head_dim = 128;
    std::uint64_t d_group = 1;
    std::uint64_t spill_interval = 16;
    std::uint64_t devices = 8;
    Bandwidth host_link_bw = 22.0 * GB;   ///< host -> device path
    Bandwidth device_write_bw = 2.1 * GB; ///< per-device NAND write
    Seconds xrt_sync_base = msec(1.2);    ///< per 4 KiB granule per step
    std::uint64_t page_bytes = 4096;
    /**
     * CXL.mem mode (§7.3): a coherent unified address space removes the
     * explicit migrate-and-wait orchestration and the per-spill command
     * issue; only the data movement itself remains.
     */
    bool cxl_coherent = false;
};

/**
 * Analytic per-step writeback costs at steady state (buffers half full
 * on average).
 */
WritebackCosts writebackCosts(const WritebackCostInputs &in);

/**
 * Per-step cost of the naive scheme (Fig. 6(a)): every new KV entry is
 * committed via direct I/O before attention can proceed, paying
 * sub-page read-modify-write latency on the critical path.
 *
 * @param entry_bytes one KV entry (K+V) in bytes
 * @param write_latency per-command device latency
 * @param rmw_penalty additional sub-page program time per entry
 */
Seconds naiveWritebackTime(std::uint64_t slices, std::uint64_t devices,
                           std::uint64_t entry_bytes,
                           Seconds write_latency, Seconds rmw_penalty);

}  // namespace hilos

#endif  // HILOS_RUNTIME_WRITEBACK_H_
