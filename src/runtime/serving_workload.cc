#include "runtime/serving_workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace hilos {

namespace {

/** Scale a canonical length by a jitter factor in [1-j, 1+j], >= 1. */
std::uint64_t
jittered(std::uint64_t base, double jitter, Rng &rng)
{
    if (jitter <= 0.0)
        return std::max<std::uint64_t>(base, 1);
    const double factor = rng.uniform(1.0 - jitter, 1.0 + jitter);
    const double scaled =
        std::floor(static_cast<double>(base) * factor + 0.5);
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(scaled), 1);
}

RequestClass
drawClass(const PoissonStreamConfig &cfg, Rng &rng)
{
    const double total =
        cfg.small_weight + cfg.medium_weight + cfg.long_weight;
    if (total <= 0.0)
        return RequestClass::Small;
    const double u = rng.uniform(0.0, total);
    if (u < cfg.small_weight)
        return RequestClass::Small;
    if (u < cfg.small_weight + cfg.medium_weight)
        return RequestClass::Medium;
    return RequestClass::Long;
}

}  // namespace

std::vector<Request>
makePoissonArrivals(const PoissonStreamConfig &cfg, Rng &rng)
{
    HILOS_ASSERT(cfg.arrival_rate > 0.0,
                 "arrival rate must be positive: ", cfg.arrival_rate);
    HILOS_ASSERT(cfg.length_jitter >= 0.0 && cfg.length_jitter < 1.0,
                 "length jitter must be in [0, 1): ", cfg.length_jitter);
    std::vector<Request> out;
    out.reserve(cfg.count);
    Seconds clock = 0.0;
    for (std::size_t i = 0; i < cfg.count; i++) {
        // Exponential inter-arrival gap via inverse transform; the
        // uniform draw is in [0, 1) so 1-u is in (0, 1] and the log is
        // finite.
        const double u = rng.uniform(0.0, 1.0);
        clock += Seconds(-std::log(1.0 - u) / cfg.arrival_rate);
        Request r = makeRequest(drawClass(cfg, rng));
        r.input_tokens = jittered(r.input_tokens, cfg.length_jitter, rng);
        r.output_tokens = jittered(r.output_tokens, cfg.length_jitter, rng);
        r.arrival = clock;
        out.push_back(r);
    }
    return out;
}

RequestClass
classifyByInputLength(std::uint64_t input_tokens)
{
    // Midpoints of the canonical class lengths (256 / 1024 / 8192).
    if (input_tokens < 640)
        return RequestClass::Small;
    if (input_tokens < 4608)
        return RequestClass::Medium;
    return RequestClass::Long;
}

std::vector<Request>
parseArrivalTrace(const std::string &text)
{
    std::vector<Request> out;
    std::istringstream lines(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(lines, line)) {
        lineno++;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;  // blank or comment-only line
        std::istringstream fields(line);
        double arrival = 0.0;
        std::uint64_t input = 0;
        std::uint64_t output = 0;
        std::string trailing;
        const bool parsed =
            static_cast<bool>(fields >> arrival >> input >> output) &&
            !(fields >> trailing);
        HILOS_ASSERT(parsed,
                     "arrival trace line ", lineno,
                     ": expected `<arrival_seconds> <input> <output>`");
        HILOS_ASSERT(arrival >= 0.0, "arrival trace line ", lineno,
                     ": negative arrival time ", arrival);
        HILOS_ASSERT(input >= 1 && output >= 1, "arrival trace line ",
                     lineno, ": token counts must be >= 1");
        Request r;
        r.cls = classifyByInputLength(input);
        r.input_tokens = input;
        r.output_tokens = output;
        r.arrival = arrival;
        out.push_back(r);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrival < b.arrival;
                     });
    return out;
}

std::string
formatArrivalTrace(const std::vector<Request> &requests)
{
    std::ostringstream oss;
    oss << "# arrival_seconds input_tokens output_tokens\n";
    for (const Request &r : requests) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", r.arrival.value());
        oss << buf << " " << r.input_tokens << " " << r.output_tokens
            << "\n";
    }
    return oss.str();
}

}  // namespace hilos
