/**
 * @file
 * The StepPlan IR: one declarative description of a model pass that
 * every engine emits and every backend consumes. Plans are phase-tagged
 * (PlanPhase): a Decode plan describes one steady-state decoding step,
 * a Prefill plan describes one chunk of the prompt phase (chunk_count
 * == 1 being the monolithic prefill). Both phases share the same op
 * vocabulary, builders, validator, evaluator, and replay backend.
 *
 * A plan is a per-layer DAG of typed ops — Transfer{resource, bytes} on
 * named resources (host PCIe, chassis uplink, GDS, per-device P2P,
 * storage fleet) and Compute{unit, seconds} — with explicit dependency
 * edges, plus a serial tail of once-per-step ops (e.g. pipeline-hop
 * communication). Engines *build* plans by pricing each op with the
 * shared cost_model primitives; the backends then derive everything
 * else mechanically:
 *
 *  - the analytic evaluator (evaluatePlan/applyPlan below) computes the
 *    layer critical path and the StageBreakdown / TrafficCounters /
 *    ComponentBusy / EnergyBreakdown of a RunResult from op
 *    annotations, replacing the per-engine accounting copies;
 *
 *  - the event-simulator backend (simulatePlan in runtime/event_sim.h)
 *    replays the same ops over contended per-resource timelines, giving
 *    any plan-emitting engine a contention-aware cross-check.
 *
 * Evaluation rules are chosen so the analytic backend reproduces the
 * engines' historical closed forms bit-for-bit: op finish times fold
 * dependencies as max(dep finishes) + seconds (so serial chains sum
 * left-to-right and parallel branches max, both exactly); stage/traffic
 * sums accumulate in op-insertion order; per-component busy time is the
 * longest tagged path through the DAG. Three op roles keep the timing
 * and accounting surfaces from contaminating each other:
 *
 *  - normal ops: timed, accounted, replayed;
 *  - shadow ops: timed only — duplicates that re-state work already
 *    accounted elsewhere so an overlap branch can race it (e.g. the
 *    HILOS attention stage racing the GPU's X-cache portion, or the
 *    shared-uplink occupancy check); the replay skips them;
 *  - offline ops: accounted only — background occupancy that never
 *    gates the critical path (e.g. the CPU driving synchronous I/O).
 *
 * Storage layout: plans sit on the sweep driver's hottest path (one
 * build → validate → apply per grid point), so ops live in a
 * structure-of-arrays StepOpArray — parallel flat vectors for the
 * scalar fields, one shared string arena for labels/stages, and flat
 * pools for dependency edges and traffic shares addressed by (pos, len)
 * spans. StepOp remains the addressable builder value (engines still
 * emit transferOp()/computeOp() chains); reads go through the
 * StepOpView proxy, which exposes the same field names over the flat
 * storage without materialising per-op heap allocations.
 */

#ifndef HILOS_RUNTIME_STEP_PLAN_H_
#define HILOS_RUNTIME_STEP_PLAN_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.h"
#include "runtime/energy.h"
#include "runtime/engine.h"
#include "runtime/system_config.h"

namespace hilos {

/** Named resource classes a Transfer op occupies. */
enum class PlanResource : std::uint8_t {
    None,       ///< not a transfer
    HostPcie,   ///< host <-> GPU PCIe link
    Uplink,     ///< chassis uplink (switch to the device fleet)
    Gds,        ///< GPUDirect-Storage path
    P2p,        ///< SmartSSD-internal P2P path (per device)
    Storage,    ///< storage fleet NAND channel (per device)
    DramBus,    ///< host DRAM interface
    IntraNode,  ///< intra-node collective fabric (NVLink/PCIe)
    InterNode,  ///< cross-node network
};

/** Stable lower-case name for serialisation and replay tracks. */
const char *planResourceName(PlanResource r);

/** Compute units a Compute op runs on. */
enum class ComputeUnit : std::uint8_t { None, Gpu, Cpu, Fpga };

/** Stable lower-case name for serialisation and replay tracks. */
const char *computeUnitName(ComputeUnit u);

/** Busy-component tags (bitmask on StepOp::busy). */
constexpr unsigned kBusyGpu = 1u << 0;
constexpr unsigned kBusyCpu = 1u << 1;
constexpr unsigned kBusyDram = 1u << 2;
constexpr unsigned kBusyStorage = 1u << 3;
constexpr unsigned kBusyFpga = 1u << 4;

/** TrafficCounters fields an op can contribute to. */
enum class TrafficField : std::uint8_t {
    HostRead,
    HostWrite,
    AttnHostRead,
    AttnHostWrite,
    Internal,
    StorageWrite,
};

/** Stable field name for serialisation. */
const char *trafficFieldName(TrafficField f);

/** Which phase of a run a plan describes. */
enum class PlanPhase : std::uint8_t {
    Decode,   ///< one steady-state decoding step (repeated output_len times)
    Prefill,  ///< one chunk of the prompt phase (run once per chunk)
};

/** Stable lower-case name for serialisation. */
const char *planPhaseName(PlanPhase p);

/**
 * Token range [start, end) prefill chunk `index` of `count` covers in a
 * `context`-token prompt: an even integer division with the remainder
 * spread over the leading chunks. `index == 0, count == 1` yields the
 * whole prompt.
 */
std::pair<std::uint64_t, std::uint64_t>
prefillChunkRange(std::uint64_t context, std::uint64_t index,
                  std::uint64_t count);

/** One op's contribution to a traffic counter (per layer or per step). */
struct TrafficShare {
    TrafficField field = TrafficField::HostRead;
    Bytes bytes = 0;
};

/**
 * One typed op of a step plan, as an addressable builder value. Build
 * with transferOp()/computeOp() and the fluent setters; add to a plan
 * with StepPlan::addOp (which flattens it into the plan's SoA storage).
 */
struct StepOp {
    enum class Kind : std::uint8_t { Transfer, Compute };

    Kind op_kind = Kind::Compute;
    PlanResource resource = PlanResource::None;  ///< Transfer only
    ComputeUnit unit = ComputeUnit::None;        ///< Compute only
    Seconds seconds = 0;  ///< engine-priced duration of the whole op
    Bytes bytes = 0;      ///< payload bytes (Transfer; replay/metadata)
    /**
     * Concurrent per-instance replicas the replay issues, each lasting
     * the full `seconds` (the engine's pricing already divides the work
     * across instances, so replica k occupies instance k for the
     * per-device duration; the op finishes when the slowest replica
     * does).
     */
    std::uint64_t fanout = 1;

    std::string label;  ///< trace/serialisation name
    std::string stage;  ///< breakdown stage ("" = unattributed)
    unsigned busy = 0;  ///< kBusy* component mask

    bool prefetch = false;  ///< replay issues it one layer ahead
    bool shadow = false;    ///< timed only (no accounting, no replay)
    bool offline = false;   ///< accounted only (off the critical path)

    std::vector<TrafficShare> traffic;
    std::vector<std::size_t> deps;  ///< earlier op ids this op waits on

    // Fluent builder setters.
    StepOp &dep(std::size_t id);
    StepOp &stageTag(std::string name);
    StepOp &busyTag(unsigned mask);
    StepOp &share(TrafficField field, Bytes bytes_contributed);
    StepOp &withFanout(std::uint64_t n);
    StepOp &asPrefetch();
    StepOp &asShadow();
    StepOp &asOffline();
};

/** A priced transfer op on a named resource. */
StepOp transferOp(PlanResource resource, std::string label, Seconds seconds,
                  Bytes bytes);

/** A priced compute op on a unit. */
StepOp computeOp(ComputeUnit unit, std::string label, Seconds seconds);

/**
 * Read-only proxy over one op of a StepOpArray: the same field names as
 * StepOp, but labels/stages are views into the shared arena and
 * deps/traffic are spans into the flat pools — no per-access
 * allocation. Cheap to copy; valid until the owning array mutates.
 */
struct StepOpView {
    StepOp::Kind op_kind = StepOp::Kind::Compute;
    PlanResource resource = PlanResource::None;
    ComputeUnit unit = ComputeUnit::None;
    Seconds seconds = 0;
    Bytes bytes = 0;
    std::uint64_t fanout = 1;
    std::string_view label;
    std::string_view stage;
    unsigned busy = 0;
    bool prefetch = false;
    bool shadow = false;
    bool offline = false;
    std::span<const std::uint32_t> deps;
    std::span<const TrafficShare> traffic;
};

/**
 * Structure-of-arrays op storage: parallel vectors per scalar field,
 * one string arena for labels/stages, and flat dependency/traffic pools
 * addressed by (pos, len) spans. Appending an op performs at most a few
 * amortised vector growths instead of three per-op heap allocations,
 * and iterating touches contiguous memory.
 */
class StepOpArray
{
  public:
    std::size_t size() const { return kind_.size(); }
    bool empty() const { return kind_.empty(); }

    /** Proxy view of op `i`. */
    StepOpView operator[](std::size_t i) const;

    /** Materialise op `i` back into an addressable StepOp (for tests
     *  and targeted mutation via set()). */
    StepOp get(std::size_t i) const;

    /**
     * Overwrite op `i` with `op`, unchecked: no dependency or stage
     * validation runs (tests use this to assemble deliberately broken
     * plans for validate()). Variable-length fields that grow are
     * re-appended to the pools; the abandoned spans stay as slack.
     */
    void set(std::size_t i, const StepOp &op);

    /** Append `op`, flattening it into the parallel arrays. */
    void push(const StepOp &op);

    /** Overwrite only the priced annotations of op `i` (seconds, bytes,
     *  fanout, traffic-share bytes). Traffic length must match. */
    void annotate(std::size_t i, const StepOp &op);

    /** True when `op` matches op `i` on every structural field (kind,
     *  resource, unit, label, stage, busy, roles, dep sequence, traffic
     *  field sequence). Annotations are not compared. */
    bool structureMatches(std::size_t i, const StepOp &op) const;

    /** Drop all ops; keeps capacity. */
    void clear();

    // Iteration yields StepOpView proxies by value.
    class const_iterator
    {
      public:
        const_iterator(const StepOpArray *a, std::size_t i)
            : array_(a), index_(i)
        {
        }
        StepOpView operator*() const { return (*array_)[index_]; }
        const_iterator &operator++()
        {
            ++index_;
            return *this;
        }
        bool operator==(const const_iterator &o) const
        {
            return index_ == o.index_;
        }
        bool operator!=(const const_iterator &o) const
        {
            return index_ != o.index_;
        }

      private:
        const StepOpArray *array_;
        std::size_t index_;
    };
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size()); }

  private:
    struct Span {
        std::uint32_t pos = 0;
        std::uint32_t len = 0;
    };

    std::string_view arenaView(Span s) const
    {
        return std::string_view(arena_).substr(s.pos, s.len);
    }
    Span intern(std::string_view s);

    std::vector<std::uint8_t> kind_;
    std::vector<std::uint8_t> resource_;
    std::vector<std::uint8_t> unit_;
    std::vector<std::uint8_t> flags_;  // bit 0 prefetch, 1 shadow, 2 offline
    std::vector<unsigned> busy_;
    std::vector<Seconds> seconds_;
    std::vector<Bytes> bytes_;
    std::vector<std::uint64_t> fanout_;
    std::vector<Span> label_;
    std::vector<Span> stage_;
    std::vector<Span> deps_;
    std::vector<Span> traffic_;
    std::string arena_;
    std::vector<std::uint32_t> dep_pool_;
    std::vector<TrafficShare> traffic_pool_;
};

/** Resource instances available to the replay backend. */
struct PlanResourceDecl {
    PlanResource kind = PlanResource::None;
    unsigned instances = 1;
};

/** Fractions of a reference interval each component stays busy. */
struct PlanBusyFractions {
    double gpu = 0;
    double cpu = 0;
    double dram = 0;
    double storage = 0;
    double fpga = 0;
};

/**
 * Whole-run energy specification carried by the decode plan: applyPlan
 * turns per-step busy seconds into run-level busy via
 *   run_busy = busy * steps + res.prefill_busy
 * and calls computeEnergy. The prefill term is ordinary per-op (and
 * busy-fraction) accounting folded from the Prefill-phase plans by
 * applyPrefillPlan — there is no prefill side-channel in the spec
 * itself. `sys` is a copy because some engines price energy against a
 * modified system (the vLLM cluster scales GPU TDP by the fleet size).
 */
struct PlanEnergySpec {
    bool enabled = false;
    SystemConfig sys;
    StorageKind kind = StorageKind::None;
    unsigned devices = 0;
    Watts fpga_power = 0;
};

/**
 * A complete decoding-step plan: `layers` repetitions of the layer-op
 * DAG, divided by `layer_time_divisor` (pipeline efficiency), plus the
 * serial tail ops. Declared stage names fix the StageBreakdown entry
 * order independent of op order (engines keep their historical
 * presentation); every tagged stage must be declared.
 *
 * Two build protocols share the declareStage/declareResource/addOp
 * surface:
 *
 *  - append (default): calls append fresh entries, as engines always
 *    built plans;
 *  - rebuild (between beginRebuild()/finishRebuild(), driven by
 *    PlanCache): calls *verify* each structural field against the entry
 *    already at the cursor and overwrite only the priced annotations.
 *    Any structural divergence flips an internal mismatch flag (the
 *    remaining builder calls become no-ops) and finishRebuild() returns
 *    false, telling the cache to fall back to a cold build. A verified
 *    rebuild therefore yields a plan bit-identical to the cold build it
 *    shadows without re-validating or re-allocating its topology.
 */
struct StepPlan {
    PlanPhase phase = PlanPhase::Decode;
    /**
     * Prefill chunking (Prefill phase only; Decode plans keep the
     * defaults). A prefill of `chunk_count` chunks is `chunk_count`
     * plans, chunk_index 0..chunk_count-1, each covering `chunk_tokens`
     * prompt tokens; chunk_count == 1 is the monolithic prefill and
     * reproduces the historical closed forms bit-for-bit.
     */
    std::uint64_t chunk_index = 0;
    std::uint64_t chunk_count = 1;
    std::uint64_t chunk_tokens = 0;  ///< prompt tokens this chunk covers

    std::uint64_t layers = 1;
    double layer_time_divisor = 1.0;

    bool feasible = true;
    std::string note;  ///< infeasibility reason when !feasible

    std::vector<std::string> stage_order;
    std::vector<PlanResourceDecl> resources;
    StepOpArray layer_ops;
    StepOpArray tail_ops;

    /** Per-step busy overhead as a fraction of the final step time. */
    PlanBusyFractions busy_step_fraction;
    PlanEnergySpec energy;

    /**
     * Set only by PlanCache after a cold validate() passes; lets
     * applyPlan skip static validation on verified cache hits. Plain
     * field mutation or StepOpArray::set never set it, so hand-built
     * and fuzz-assembled plans always take the validated path.
     */
    bool structure_validated = false;

    /** Register a breakdown stage; entry order = declaration order. */
    void declareStage(const std::string &name);
    /** Register replay instances for a resource kind. */
    void declareResource(PlanResource kind, unsigned instances);
    /** Declared instance count for a resource kind (default 1). */
    unsigned instancesOf(PlanResource kind) const;

    /** Append a per-layer op; validates deps; returns its id. */
    std::size_t addOp(StepOp op);
    /** Append a once-per-step tail op (serial, dependency-free). */
    std::size_t addTailOp(StepOp op);

    /** Reset to an empty plan, keeping allocated capacity. */
    void clear();

    /**
     * Enter rebuild mode: scalar fields reset to their defaults (the
     * builder re-derives them) and the builder cursors rewind to the
     * start of the cached topology. Annotations are overwritten in
     * place as the builder re-runs; see the class comment.
     */
    void beginRebuild();

    /**
     * Leave rebuild mode. True iff the builder re-traced the cached
     * topology exactly (no structural mismatch, every cursor consumed).
     */
    bool finishRebuild();

    /**
     * Statically check the assembled plan and return one diagnostic per
     * violation, each naming the offending op; an empty list means the
     * plan is well-formed. The builder methods above enforce most of
     * this incrementally, but plans can also be assembled field-by-field
     * (tests, fuzzers, future deserialisers), so the evaluator trusts
     * nothing: validate() re-checks that the dependency graph is
     * acyclic and topologically ordered with in-range references, that
     * every stage tag, resource kind, traffic field, and busy bit names
     * a declared entity, that byte/seconds annotations are finite and
     * non-negative, and that role flags are consistent. applyPlan() and
     * the fuzz oracles reject plans with diagnostics.
     */
    std::vector<std::string> validate() const;

  private:
    enum class BuildMode : std::uint8_t { Append, Rebuild };

    BuildMode mode_ = BuildMode::Append;
    bool mismatch_ = false;
    std::size_t stage_cursor_ = 0;
    std::size_t resource_cursor_ = 0;
    std::size_t op_cursor_ = 0;
    std::size_t tail_cursor_ = 0;
};

/** Everything the analytic backend derives from a plan. */
struct PlanEvaluation {
    Seconds layer_critical_path = 0;
    /** Wall clock of one pass over the plan: the decode step for
     *  Decode-phase plans, the chunk's phase time for Prefill plans. */
    Seconds decode_step_time = 0;
    StageBreakdown breakdown;
    TrafficCounters traffic;
    ComponentBusy busy;
    /** Per layer-op finish time within one steady-state layer (0 for
     *  offline ops, which never gate the critical path). */
    std::vector<Seconds> op_finish;
};

/**
 * Analytic backend: critical path over the layer DAG, breakdown and
 * traffic sums in op-insertion order, busy time as the longest tagged
 * path per component. Deterministic and bit-stable: evaluating the
 * same plan twice yields identical doubles.
 */
PlanEvaluation evaluatePlan(const StepPlan &plan);

/**
 * Fill the decode-step fields of `res` from a Decode-phase plan (decode
 * step, breakdown, traffic, busy), then derive total_time and — when
 * the plan's energy spec is enabled — the whole-run EnergyBreakdown as
 *   run_busy = busy * output_len + res.prefill_busy.
 * The prefill phase must already be folded into `res` (prefill_time and
 * prefill_busy) via applyPrefillPlan, and `res.effective_batch` set by
 * the engine.
 */
void applyPlan(const StepPlan &plan, const RunConfig &cfg, RunResult &res);

/**
 * Fold one Prefill-phase plan (one chunk) into `res`: the evaluated
 * phase time adds to `res.prefill_time` and the plan's busy accounting
 * (longest tagged paths plus busy_step_fraction of the chunk time) adds
 * to `res.prefill_busy`. Returns false — marking `res` infeasible with
 * the plan's note — when the plan is infeasible.
 */
bool applyPrefillPlan(const StepPlan &plan, RunResult &res);

/**
 * Copy the prefill-phase accounting (prefill_time, prefill_busy) of
 * `from` into `res` — used by wrapper engines (FleetEngine) that adopt
 * a host engine's plan-built prefill rather than building their own.
 */
void propagatePrefill(const RunResult &from, RunResult &res);

/**
 * Accumulate `w`-weighted decode-step accounting of `r` into `acc`
 * (decode step time, breakdown stages, traffic counters, busy time) —
 * the epoch-blending primitive of degraded-mode execution.
 */
void accumulateWeighted(RunResult &acc, const RunResult &r, double w);

/**
 * Interface of every engine that can emit its phases as StepPlans (all
 * engines implement it alongside InferenceEngine). Plans reflect the
 * same capacity/batch-shrink decisions as run(); infeasible
 * configurations yield a plan with feasible == false.
 */
class StepPlanSource
{
  public:
    virtual ~StepPlanSource() = default;

    /** Emit the decode-step plan for one run configuration. */
    virtual StepPlan decodeStepPlan(const RunConfig &cfg) const = 0;

    /**
     * Emit the Prefill-phase plan for chunk `chunk_index` of
     * `chunk_count`. The defaults emit the monolithic prefill, whose
     * evaluation is bit-identical to the engine's historical
     * closed-form prefill_time.
     */
    virtual StepPlan prefillStepPlan(const RunConfig &cfg,
                                     std::uint64_t chunk_index = 0,
                                     std::uint64_t chunk_count = 1) const = 0;
};

/**
 * Build every prefill chunk of `cfg` (cfg.prefill_chunks of them) via
 * `source` and fold them into `res` with applyPrefillPlan. Returns
 * false as soon as a chunk is infeasible.
 */
bool applyPrefillPhase(const StepPlanSource &source, const RunConfig &cfg,
                       RunResult &res);

}  // namespace hilos

#endif  // HILOS_RUNTIME_STEP_PLAN_H_
