#include "runtime/energy.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

namespace {

Joules
componentEnergy(Watts active, Watts idle, Seconds busy, Seconds wall)
{
    const Seconds clamped = std::min(busy, wall);
    return active * clamped + idle * (wall - clamped);
}

}  // namespace

EnergyBreakdown
computeEnergy(const SystemConfig &sys, StorageKind kind, unsigned devices,
              Seconds wall, const ComponentBusy &busy, Watts fpga_power)
{
    HILOS_ASSERT(wall >= 0.0, "negative wall time");
    EnergyBreakdown e;
    e.gpu = componentEnergy(sys.gpu.tdp, sys.gpu.idle_power, busy.gpu, wall);
    e.cpu = componentEnergy(sys.cpu.tdp, sys.cpu.idle_power, busy.cpu, wall);
    e.dram = componentEnergy(sys.dram.active_power, sys.dram.idle_power,
                             busy.dram, wall);

    switch (kind) {
      case StorageKind::None:
        e.storage = 0.0;
        break;
      case StorageKind::BaselineSsds: {
        const auto &ssd = sys.baseline_ssd;
        e.storage = static_cast<double>(devices) *
                    componentEnergy(ssd.active_power, ssd.idle_power,
                                    busy.storage, wall);
        break;
      }
      case StorageKind::SmartSsds: {
        const auto &sdev = sys.smartssd;
        const Joules ssd_part =
            componentEnergy(sdev.nand.active_power, sdev.nand.idle_power,
                            busy.storage, wall);
        const Joules fpga_part = componentEnergy(
            std::max(fpga_power, sdev.fpga_idle_power),
            sdev.fpga_idle_power, busy.fpga, wall);
        e.storage = static_cast<double>(devices) * (ssd_part + fpga_part);
        break;
      }
    }
    return e;
}

double
systemPriceUsd(const SystemConfig &sys, StorageKind kind, unsigned devices)
{
    double price = sys.prices.host_server_usd + sys.gpu.price_usd;
    switch (kind) {
      case StorageKind::None:
        break;
      case StorageKind::BaselineSsds:
        price += devices * sys.prices.pcie4_ssd_usd;
        break;
      case StorageKind::SmartSsds:
        price += sys.prices.pcie_expansion_usd +
                 devices * sys.prices.smartssd_usd;
        break;
    }
    return price;
}

double
costEffectiveness(double tokens_per_sec, double price_usd)
{
    HILOS_ASSERT(price_usd > 0.0, "non-positive system price");
    return tokens_per_sec / price_usd;
}

double
serviceableRequests(const EnduranceInputs &in)
{
    HILOS_ASSERT(in.bytes_per_request > 0.0,
                 "per-request write volume must be positive");
    HILOS_ASSERT(in.write_amplification >= 1.0, "WA below 1");
    const double fleet_endurance =
        static_cast<double>(in.devices) * in.per_device_endurance_bytes;
    return fleet_endurance /
           (in.bytes_per_request * in.write_amplification);
}

}  // namespace hilos
