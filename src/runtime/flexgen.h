/**
 * @file
 * FlexGen-style offloading-based batched inference baselines (§2.2,
 * §6.1): KV cache on host DRAM, on a four-SSD RAID-0, or on the sixteen
 * SmartSSD NVMe devices with their FPGAs disabled. Decode attention is
 * offloaded to the CPU; weight staging overlaps with compute and I/O.
 */

#ifndef HILOS_RUNTIME_FLEXGEN_H_
#define HILOS_RUNTIME_FLEXGEN_H_

#include <optional>
#include <string>

#include "runtime/engine.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"
#include "storage/ssd.h"

namespace hilos {

/** Which tier holds the KV cache. */
enum class FlexTier {
    HostDram,         ///< FLEX(DRAM)
    BaselineSsds,     ///< FLEX(SSD): 4 x PM9A3 RAID-0
    SmartSsdsNoFpga,  ///< FLEX(16 PCIe 3.0 SSDs): FPGAs disabled
};

/**
 * FlexGen baseline engine.
 */
class FlexGenEngine : public InferenceEngine, public StepPlanSource
{
  public:
    FlexGenEngine(const SystemConfig &sys, FlexTier tier);

    std::string name() const override;
    RunResult run(const RunConfig &cfg) const override;
    RunResult runCached(const RunConfig &cfg,
                        PlanCache &cache) const override;
    StepPlan decodeStepPlan(const RunConfig &cfg) const override;
    StepPlan prefillStepPlan(const RunConfig &cfg,
                             std::uint64_t chunk_index = 0,
                             std::uint64_t chunk_count = 1) const override;

    /** Aggregate storage read bandwidth of this tier's fleet. */
    Bandwidth storageReadBw() const;
    /** Aggregate storage write bandwidth of this tier's fleet. */
    Bandwidth storageWriteBw() const;

    FlexTier tier() const { return tier_; }

  private:
    /** Capacity decisions into `res`, decode step into `plan`. */
    void makePlan(const RunConfig &cfg, RunResult &res,
                  StepPlan &plan) const;

    /** Prefill-phase plan for one chunk (shares makePlan's capacity
     *  decision via effectiveBatch). */
    void makePrefillPlan(const RunConfig &cfg, std::uint64_t chunk_index,
                         std::uint64_t chunk_count, StepPlan &plan) const;

    /** The capacity-shrunk batch (0 = infeasible); sets `note` when the
     *  batch shrank or the config does not fit. */
    std::uint64_t effectiveBatch(const RunConfig &cfg,
                                 std::string *note) const;

    SystemConfig sys_;
    FlexTier tier_;
    /**
     * This tier's KV device model, constructed once: the Ssd
     * constructor builds a scaled FTL for wear accounting, which
     * dominated makePlan when rebuilt per grid point. Empty for the
     * DRAM tier (no device on the KV path).
     */
    std::optional<Ssd> kv_ssd_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_FLEXGEN_H_
