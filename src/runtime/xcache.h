/**
 * @file
 * Cooperative X-cache scheduler (§4.2).
 *
 * The Cache Scheduler picks the fraction alpha of the batch whose
 * attention runs on the host: their pre-projection activations X are
 * read via GDS, K/V are regenerated on the GPU, and host attention runs
 * concurrently with the NSP devices handling the remaining 1 - alpha.
 *
 * The analytic optimum balances the host-path and internal-path times:
 *     alpha* = 2 B_PCI / (B_SSD + B_PCI),
 * then snaps to the nearest power-of-two fraction for even batch/head
 * partitioning.
 */

#ifndef HILOS_RUNTIME_XCACHE_H_
#define HILOS_RUNTIME_XCACHE_H_

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace hilos {

/** The first-order per-layer timing terms of §4.2's I/O analysis. */
struct XCacheTimes {
    Seconds t_pci = 0;  ///< X transfer over the host interconnect
    Seconds t_gpu = 0;  ///< K/V regeneration on the GPU
    Seconds t_ssd = 0;  ///< internal storage reads (X + KV portions)

    /** Pipelined effective time: max of the three. */
    Seconds effective() const;
};

/**
 * Analytic alpha selection and timing for the cooperative schedule.
 */
class XCacheScheduler
{
  public:
    /**
     * @param ssd_bw aggregate internal storage read bandwidth (scales
     *        with the number of NSP devices)
     * @param pci_bw achieved host-interconnect bandwidth for GDS loads
     * @param gpu_flops GPU compute capability for the regeneration GEMM
     */
    XCacheScheduler(Bandwidth ssd_bw, Bandwidth pci_bw, FlopRate gpu_flops);

    /** Continuous optimum alpha* = 2 B_PCI / (B_SSD + B_PCI). */
    double analyticAlpha() const;

    /**
     * alpha* snapped to the nearest candidate fraction
     * {0, 1/8, 1/4, 1/2, 1}; ties resolve to the larger fraction.
     */
    double selectAlpha() const;

    /**
     * Workload-aware selection: the candidate fraction minimising the
     * pipelined effective time for the given shapes (what the Cache
     * Scheduler actually deploys; robust when the analytic optimum
     * falls between candidates or T_GPU is not negligible).
     */
    double bestAlpha(std::uint64_t batch, std::uint64_t s,
                     std::uint64_t h, std::uint64_t kv) const;

    /**
     * Per-layer timing terms at a given alpha for a workload with
     * context s, hidden width h, KV width kv (bytes are FP16).
     *
     * @param batch sequences in the batch
     */
    XCacheTimes times(double alpha, std::uint64_t batch, std::uint64_t s,
                      std::uint64_t h, std::uint64_t kv) const;

    Bandwidth ssdBandwidth() const { return ssd_bw_; }
    Bandwidth pciBandwidth() const { return pci_bw_; }

    /** Candidate fractions considered by selectAlpha. */
    static const std::vector<double> &candidateAlphas();

  private:
    Bandwidth ssd_bw_;
    Bandwidth pci_bw_;
    FlopRate gpu_flops_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_XCACHE_H_
