#include "runtime/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hilos {

std::uint64_t
midGenerationContext(std::uint64_t context_len, std::uint64_t output_len)
{
    return context_len + output_len / 2;
}

WeightHome
chooseWeightHome(const ModelConfig &model, std::uint64_t dram_capacity)
{
    // §6.1: weights reside in CPU memory when capacity permits; models
    // exceeding 100B parameters are offloaded to storage.
    if (model.paramCount() > 100ull * 1000 * 1000 * 1000)
        return WeightHome::Storage;
    const double margin = 0.75;  // leave room for KV/buffers
    if (static_cast<double>(model.weightBytesTotal()) >
        margin * static_cast<double>(dram_capacity)) {
        return WeightHome::Storage;
    }
    return WeightHome::HostDram;
}

Seconds
weightLoadTime(const ModelConfig &model, std::uint64_t batch,
               WeightHome home, Bandwidth pci_bw, Bandwidth storage_bw)
{
    HILOS_ASSERT(pci_bw > 0, "invalid PCIe bandwidth");
    const Bytes bytes = model.loadedWeightBytesPerLayer(batch);
    if (home == WeightHome::HostDram)
        return bytes / pci_bw;
    HILOS_ASSERT(storage_bw > 0, "invalid storage bandwidth");
    // Storage -> host -> GPU: hops pipeline, the slower one binds.
    return bytes / std::min(pci_bw, storage_bw);
}

Seconds
qkvProjTime(const Gpu &gpu, const ModelConfig &model, std::uint64_t batch)
{
    const double params = static_cast<double>(
        model.attnWeightBytesPerLayer() / model.dtype_bytes);
    const double flops = 2.0 * static_cast<double>(batch) * params;
    // The projection streams the attention weights from HBM once.
    const double bytes = static_cast<double>(model.attnWeightBytesPerLayer());
    return gpu.kernelTime(flops, bytes);
}

Seconds
mlpTime(const Gpu &gpu, const ModelConfig &model, std::uint64_t batch)
{
    const double loaded =
        model.loadedWeightBytesPerLayer(batch) -
        static_cast<double>(model.attnWeightBytesPerLayer());
    const double flops = static_cast<double>(batch) *
                         (model.denseFlopsPerTokenPerLayer() -
                          2.0 * static_cast<double>(
                                    model.attnWeightBytesPerLayer() /
                                    model.dtype_bytes));
    return gpu.kernelTime(std::max(flops, 0.0), std::max(loaded, 0.0));
}

Seconds
cpuAttentionTime(const Cpu &cpu, const ModelConfig &model,
                 std::uint64_t batch, std::uint64_t context)
{
    const double kv_bytes = kvLayerBytes(model, batch, context);
    const double flops = static_cast<double>(batch) *
                         model.attentionFlopsPerToken(context);
    // CPU attention parallelises over (batch, kv-head) slices; with few
    // slices (small batches, GQA's few KV heads) the cores starve and
    // the achieved bandwidth drops further below peak.
    const double slices =
        static_cast<double>(batch) * static_cast<double>(model.kv_heads);
    const double parallel_scale =
        std::min(1.0, std::sqrt(slices / 512.0));
    return cpu.kernelTime(flops, kv_bytes) / std::max(parallel_scale,
                                                      0.05);
}

Seconds
gpuAttentionTime(const Gpu &gpu, const ModelConfig &model,
                 std::uint64_t batch, std::uint64_t context)
{
    const double kv_bytes = kvLayerBytes(model, batch, context);
    const double flops = static_cast<double>(batch) *
                         model.attentionFlopsPerToken(context);
    return gpu.kernelTime(flops, kv_bytes);
}

namespace {

/** Total prefill flops of one layer over a `context`-token prefix. */
double
prefillFlopsAt(const ModelConfig &model, std::uint64_t batch,
               std::uint64_t context)
{
    const double tokens =
        static_cast<double>(batch) * static_cast<double>(context);
    const double gemm_flops = tokens * model.denseFlopsPerTokenPerLayer();
    // FlashAttention over the prompt: O(s^2) score/value work per head.
    const double attn_flops =
        static_cast<double>(batch) *
        model.attentionFlopsPerToken(context) *
        static_cast<double>(context) / 2.0;  // causal: half the pairs
    return gemm_flops + attn_flops;
}

}  // namespace

Seconds
prefillComputeTime(const Gpu &gpu, const ModelConfig &model,
                   std::uint64_t batch, std::uint64_t context)
{
    const double weight_bytes =
        static_cast<double>(model.weightBytesPerLayer());
    return gpu.kernelTime(prefillFlopsAt(model, batch, context),
                          weight_bytes);
}

Seconds
prefillChunkComputeTime(const Gpu &gpu, const ModelConfig &model,
                        std::uint64_t batch, std::uint64_t start,
                        std::uint64_t end)
{
    HILOS_ASSERT(start <= end, "prefill chunk range inverted");
    // Causal attention means the [start, end) tokens attend to the whole
    // 0..end prefix, so the chunk's work is the prefix difference; the
    // layer weights stream again for every chunk's pass.
    const double flops = prefillFlopsAt(model, batch, end) -
                         prefillFlopsAt(model, batch, start);
    const double weight_bytes =
        static_cast<double>(model.weightBytesPerLayer());
    return gpu.kernelTime(flops, weight_bytes);
}

Bytes
kvLayerBytes(const ModelConfig &model, std::uint64_t batch,
             std::uint64_t context)
{
    return static_cast<double>(model.kvBytesPerTokenPerLayer()) *
           static_cast<double>(batch) * static_cast<double>(context);
}

Bytes
kvStepBytes(const ModelConfig &model, std::uint64_t batch)
{
    return static_cast<double>(model.kvBytesPerTokenPerLayer()) *
           static_cast<double>(batch);
}

MemoryFootprint
memoryFootprint(const ModelConfig &model, std::uint64_t batch,
                std::uint64_t total_seq)
{
    MemoryFootprint fp;
    fp.weights_bytes = static_cast<double>(model.weightBytesTotal());
    fp.kv_bytes = model.kvBytesTotal(batch, total_seq);
    // Peak activations: a few hidden-state buffers per sequence plus
    // the intermediate FFN expansion for the active chunk.
    fp.activation_bytes =
        static_cast<double>(batch) *
        static_cast<double>(model.hidden + model.intermediate) *
        static_cast<double>(model.dtype_bytes) * 4.0;
    return fp;
}

}  // namespace hilos
