/**
 * @file
 * Shared per-layer cost primitives used by every inference engine:
 * weight staging, GPU projection/MLP kernels, CPU attention, prefill
 * compute, and memory-footprint arithmetic (Fig. 2(a)).
 *
 * All quantities are for one transformer layer of one decoding step
 * unless stated otherwise; engines compose them (overlapped vs serial)
 * according to their execution schedule.
 */

#ifndef HILOS_RUNTIME_COST_MODEL_H_
#define HILOS_RUNTIME_COST_MODEL_H_

#include <cstdint>

#include "common/units.h"
#include "device/cpu.h"
#include "device/gpu.h"
#include "llm/model_config.h"

namespace hilos {

/**
 * The representative context length of a decode step, halfway through
 * generation: `context_len + output_len / 2` (integer halving, so odd
 * output lengths round down). Every engine prices its decode-step
 * costs at this mid-generation point; sharing the helper keeps the
 * engines agreeing by construction instead of by copy-paste.
 */
std::uint64_t midGenerationContext(std::uint64_t context_len,
                                   std::uint64_t output_len);

/** Where model weights reside between uses. */
enum class WeightHome {
    HostDram,  ///< staged host DRAM -> GPU over PCIe each layer
    Storage,   ///< streamed storage -> host -> GPU each layer
};

/**
 * Weight placement policy from §6.1: weights live in host DRAM when
 * they fit alongside a working margin; >100B-parameter models spill to
 * storage.
 */
WeightHome chooseWeightHome(const ModelConfig &model,
                            std::uint64_t dram_capacity);

/**
 * Time to stage one layer's weights to the GPU.
 *
 * @param pci_bw host->GPU link bandwidth
 * @param storage_bw storage read bandwidth (used when home == Storage;
 *        the slower of the two hops binds)
 */
Seconds weightLoadTime(const ModelConfig &model, std::uint64_t batch,
                       WeightHome home, Bandwidth pci_bw,
                       Bandwidth storage_bw);

/** GPU time of the QKV projection for `batch` decode tokens. */
Seconds qkvProjTime(const Gpu &gpu, const ModelConfig &model,
                    std::uint64_t batch);

/** GPU time of the MLP (+output projection) for `batch` decode tokens. */
Seconds mlpTime(const Gpu &gpu, const ModelConfig &model,
                std::uint64_t batch);

/**
 * CPU attention over the full KV cache of one layer: `batch` sequences
 * of `context` tokens (the baselines' decode-attention placement).
 */
Seconds cpuAttentionTime(const Cpu &cpu, const ModelConfig &model,
                         std::uint64_t batch, std::uint64_t context);

/**
 * GPU attention over one layer's KV held in device memory (vLLM-style
 * or the X-cache regenerated portion); memory-bound.
 */
Seconds gpuAttentionTime(const Gpu &gpu, const ModelConfig &model,
                         std::uint64_t batch, std::uint64_t context);

/**
 * GPU compute time of prefilling one layer: projections/MLP GEMMs over
 * `context` tokens plus FlashAttention over the prompt.
 */
Seconds prefillComputeTime(const Gpu &gpu, const ModelConfig &model,
                           std::uint64_t batch, std::uint64_t context);

/**
 * GPU compute time of prefilling prompt tokens [start, end) of one
 * layer: the incremental GEMM + causal-attention flops between the two
 * prefix lengths, re-streaming the layer weights once (each chunk makes
 * its own pass over the model). `start == 0, end == context` reproduces
 * prefillComputeTime() bit-for-bit, so a single chunk is the monolithic
 * prefill.
 */
Seconds prefillChunkComputeTime(const Gpu &gpu, const ModelConfig &model,
                                std::uint64_t batch, std::uint64_t start,
                                std::uint64_t end);

/** KV bytes of one layer's full cache (batch x context). */
Bytes kvLayerBytes(const ModelConfig &model, std::uint64_t batch,
                    std::uint64_t context);

/** New KV bytes appended per decode step for one layer. */
Bytes kvStepBytes(const ModelConfig &model, std::uint64_t batch);

/** Memory-footprint summary behind Fig. 2(a). */
struct MemoryFootprint {
    Bytes weights_bytes = 0;
    Bytes kv_bytes = 0;          ///< at full context + output
    Bytes activation_bytes = 0;  ///< peak decode activations
    Bytes total() const
    {
        return weights_bytes + kv_bytes + activation_bytes;
    }
};

/** Footprint of a run at sequence length `total_seq`. */
MemoryFootprint memoryFootprint(const ModelConfig &model,
                                std::uint64_t batch,
                                std::uint64_t total_seq);

}  // namespace hilos

#endif  // HILOS_RUNTIME_COST_MODEL_H_
