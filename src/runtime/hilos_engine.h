/**
 * @file
 * The HILOS inference engine (§4): attention near storage on a fleet of
 * SmartSSDs, optionally composed with cooperative X-cache (§4.2) and
 * delayed KV cache writeback (§4.3). Flags expose the Fig. 15 ablation
 * points (ANS, ANS+WB, ANS+X, full HILOS).
 */

#ifndef HILOS_RUNTIME_HILOS_ENGINE_H_
#define HILOS_RUNTIME_HILOS_ENGINE_H_

#include <string>

#include "runtime/engine.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"
#include "runtime/xcache.h"
#include "sim/fault.h"

namespace hilos {

/** HILOS feature configuration. */
struct HilosOptions {
    unsigned num_devices = 8;        ///< SmartSSD count (4/8/16 in §6.3)
    bool delayed_writeback = true;   ///< §4.3; false = naive commits
    bool xcache = true;              ///< §4.2 cooperative X-cache
    /** X-cache ratio; negative selects the scheduler's analytic alpha. */
    double alpha_override = -1.0;
    unsigned spill_interval = 16;    ///< writeback spill interval c
    /**
     * Model a CXL.mem-attached accelerator (§7.3): coherent access to
     * the staging buffers removes the XRT DMA-orchestration overhead.
     */
    bool cxl_mode = false;
    /**
     * Sliding-window attention (§5.1 attention variants): each step
     * attends only the most recent `attention_window` tokens (0 = full
     * attention). Bounds KV reads and the cache footprint; the kernel
     * honours it via AttentionRequest::window_start.
     */
    std::uint64_t attention_window = 0;
    /**
     * Injected fault schedule. An empty plan takes the zero-fault fast
     * path, which is byte-identical to the engine without this field;
     * a non-empty plan switches run() to epoch-based degraded-mode
     * execution (closed-form fault expectations, alpha re-selected per
     * surviving fleet, shard rebuild on device failure).
     */
    FaultPlan fault_plan;
};

/**
 * HILOS engine: analytic end-to-end model mirroring the real system's
 * execution schedule.
 */
class HilosEngine : public InferenceEngine, public StepPlanSource
{
  public:
    HilosEngine(const SystemConfig &sys, const HilosOptions &opts);

    std::string name() const override;
    RunResult run(const RunConfig &cfg) const override;
    /** Plan-structure-cached run(); fault plans bypass the cache (the
     *  degraded-mode epochs rebuild plans under varying conditions). */
    RunResult runCached(const RunConfig &cfg,
                        PlanCache &cache) const override;
    /** The zero-fault (ideal-fleet) decode-step plan. */
    StepPlan decodeStepPlan(const RunConfig &cfg) const override;
    /** The zero-fault (ideal-fleet) prefill plan for one chunk. */
    StepPlan prefillStepPlan(const RunConfig &cfg,
                             std::uint64_t chunk_index = 0,
                             std::uint64_t chunk_count = 1) const override;

    /** Aggregate internal P2P read bandwidth of the fleet. */
    Bandwidth internalReadBw() const;
    /** Effective host-path (GDS) bandwidth for X-cache loads. */
    Bandwidth gdsBw() const;

    /** The scheduler-selected alpha for a given workload shape. */
    double selectedAlpha(const RunConfig &cfg) const;

    const HilosOptions &options() const { return opts_; }

  private:
    /**
     * Operating conditions of one fleet epoch: the surviving device
     * count plus the fault-derived derates and per-read expected retry
     * probabilities in force during that epoch. The defaults describe a
     * healthy fleet (identity derates, zero probabilities), under which
     * runConditioned() reproduces the zero-fault engine bit-for-bit.
     */
    struct FleetConditions {
        unsigned devices = 0;          ///< surviving SmartSSDs
        unsigned failed_devices = 0;   ///< removed from the fleet
        double p2p_derate = 1.0;       ///< internal-path multiplier
        double uplink_derate = 1.0;    ///< chassis-uplink multiplier
        double nand_error_prob = 0.0;  ///< per-read ECC error prob
        double nvme_timeout_prob = 0.0;  ///< per-command timeout prob
        RetryPolicy retry;             ///< recovery-cost knobs
    };

    FleetConditions idealConditions() const;

    /** Scheduler alpha for a given fleet/GDS bandwidth pair. */
    double alphaFor(const RunConfig &cfg, Bandwidth fleet_read,
                    Bandwidth gds) const;

    /** The analytic model evaluated under fixed fleet conditions. */
    RunResult runConditioned(const RunConfig &cfg,
                             const FleetConditions &cond) const;

    /**
     * Capacity checks, prefill, fault accounting and fpga power into
     * `res`; the decode step itself built into `plan` (fresh, or in
     * rebuild mode under a PlanCache).
     */
    void makePlan(const RunConfig &cfg, const FleetConditions &cond,
                  RunResult &res, StepPlan &plan) const;

    /**
     * Prefill-phase plan for one chunk under the given fleet
     * conditions: GPU prefill compute races the weight stream, then the
     * chunk's KV/X cache commits to the fleet over the narrower of the
     * uplink and the aggregate P2P write path.
     */
    void makePrefillPlan(const RunConfig &cfg, const FleetConditions &cond,
                         std::uint64_t chunk_index,
                         std::uint64_t chunk_count, StepPlan &plan) const;

    /** Epoch-based degraded-mode execution of a non-empty FaultPlan. */
    RunResult runWithFaults(const RunConfig &cfg) const;

    SystemConfig sys_;
    HilosOptions opts_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_HILOS_ENGINE_H_
