#include "runtime/event_sim.h"

#include <algorithm>
#include <map>

#include "accel/cycle_model.h"
#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/writeback.h"

namespace hilos {

HilosEventSimulator::HilosEventSimulator(const SystemConfig &sys,
                                         const HilosOptions &opts)
    : sys_(sys), opts_(opts)
{
}

EventSimResult
HilosEventSimulator::simulateDecodeStep(const RunConfig &cfg,
                                        TraceRecorder *trace,
                                        Seconds start_time) const
{
    auto note = [&](const std::string &track, const std::string &name,
                    Seconds begin, Seconds end) {
        if (trace != nullptr)
            trace->record(track, name, begin, end);
    };
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const unsigned N = opts_.num_devices;
    const std::uint64_t b = cfg.batch;
    // Sliding-window variants attend (and keep) only the window — the
    // same cap the analytic engine applies to its mid-generation
    // context, so every slice/X-load size below stays comparable.
    std::uint64_t s = midGenerationContext(cfg.context_len, cfg.output_len);
    if (opts_.attention_window > 0)
        s = std::min(s, opts_.attention_window);
    const std::uint64_t d = m.headDim();
    const std::uint64_t d_group = m.dGroup();
    const std::uint64_t L = m.layers;

    // Fault conditions freeze at the step's start time: failed devices
    // drop out of the slice rotation, link derates scale the resource
    // rates, and per-slice recovery penalties are drawn from the
    // plan's seeded per-device streams in deterministic loop order.
    // An empty plan allocates no RNG state and all derates are exactly
    // 1.0, keeping this path bit-identical to the fault-free build.
    FaultInjector inj(opts_.fault_plan, N);
    std::vector<unsigned> alive;
    std::vector<std::size_t> alive_idx(N, 0);
    double min_derate = 1.0;
    for (unsigned i = 0; i < N; i++) {
        if (inj.active() && inj.deviceFailed(i, start_time))
            continue;
        alive_idx[i] = alive.size();
        alive.push_back(i);
        if (inj.active())
            min_derate = std::min(min_derate,
                                  inj.linkDerate(i, start_time));
    }
    EventSimResult res;
    if (alive.empty()) {
        res.completed = false;
        res.note = "all SmartSSDs failed; no surviving device to serve "
                   "attention slices";
        res.devices_failed = N;
        return res;
    }
    const auto n_alive = static_cast<unsigned>(alive.size());
    const double up_derate =
        inj.active() ? inj.uplinkDerate(start_time) : 1.0;

    // Alpha re-selects for the surviving fleet.
    HilosOptions eff = opts_;
    eff.fault_plan = FaultPlan{};
    eff.num_devices = n_alive;
    const HilosEngine analytic(sys_, eff);
    const double alpha = analytic.selectedAlpha(cfg);
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);

    // --- Resources ---
    BandwidthResource uplink("uplink",
                             sys_.chassis_uplink_bw * up_derate, usec(1));
    BandwidthResource gds("gds", analytic.gdsBw() * min_derate, usec(5));
    BandwidthResource host_link("host-pcie", sys_.host_pcie_bw, usec(1));
    std::vector<BandwidthResource> internal;
    std::vector<BandwidthResource> fpga;
    const CycleModel cm{CycleModelConfig{}};
    const Bandwidth kernel_rate = cm.kvBytesPerSec(s, d, d_group);
    for (unsigned i = 0; i < N; i++) {
        const double derate =
            inj.active() ? inj.linkDerate(i, start_time) : 1.0;
        internal.emplace_back("p2p" + std::to_string(i),
                              sys_.smartssd.p2p_read_bw * derate,
                              usec(80));
        fpga.emplace_back("fpga" + std::to_string(i), kernel_rate,
                          usec(10));
    }

    // --- Static per-layer quantities ---
    const double weight_bytes = m.loadedWeightBytesPerLayer(b);
    const std::uint64_t slice_bytes = 2ull * s * d * m.dtype_bytes;
    const std::uint64_t nsp_batches = static_cast<std::uint64_t>(
        (1.0 - alpha) * static_cast<double>(b) + 0.5);
    const std::uint64_t x_batches = b - nsp_batches;
    const std::uint64_t slices = nsp_batches * m.kv_heads;
    const std::uint64_t x_bytes =
        s * m.hidden * m.dtype_bytes;  // per sequence per layer
    const Seconds gpu_base =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    const Seconds regen_per_seq =
        Flops(2.0 * static_cast<double>(s) *
              static_cast<double>(m.hidden) *
              static_cast<double>(m.kv_heads * d)) /
        (sys_.gpu.fp16_peak * sys_.gpu.gemm_efficiency);
    const Seconds gpu_xattn_per_seq =
        gpuAttentionTime(gpu, m, 1, s);
    const double qkv_up_bytes =
        static_cast<double>(b) *
        (static_cast<double>(m.hidden) +
         2.0 * static_cast<double>(m.kv_heads * d)) *
        static_cast<double>(m.dtype_bytes);
    const double out_ret_bytes =
        static_cast<double>(b * m.hidden * m.dtype_bytes);

    Seconds wb_crit = 0.0;
    if (opts_.delayed_writeback) {
        WritebackCostInputs win;
        win.slices = b * m.kv_heads;
        win.head_dim = d;
        win.d_group = d_group;
        win.spill_interval = opts_.spill_interval;
        win.devices = n_alive;
        win.host_link_bw = sys_.chassis_uplink_bw * up_derate;
        win.device_write_bw = sys_.smartssd.p2p_write_bw * min_derate;
        win.xrt_sync_base = sys_.xrt_sync_base;
        wb_crit = writebackCosts(win).criticalPath();
    } else {
        wb_crit = naiveWritebackTime(b * m.kv_heads, n_alive,
                                     2 * d * m.dtype_bytes,
                                     sys_.smartssd.nand.write_latency,
                                     usec(230));
    }

    // --- Simulate the layer pipeline ---
    res.layer_times.reserve(L);
    Seconds prev_done = 0.0;
    Seconds gpu_free = 0.0;
    Seconds gpu_busy = 0.0;
    std::vector<Seconds> weight_ready(L, 0.0);

    // Layer 0's weights stage before the step begins (steady state).
    weight_ready[0] = 0.0;

    for (std::uint64_t l = 0; l < L; l++) {
        const Seconds layer_start =
            std::max(prev_done, weight_ready[l]);

        // Prefetch the next layer's weights as soon as this layer
        // starts (the Weights Prefetcher's double buffering).
        if (l + 1 < L) {
            BandwidthResource &wres =
                home == WeightHome::Storage ? uplink : host_link;
            weight_ready[l + 1] = wres.transfer(
                layer_start, static_cast<std::uint64_t>(weight_bytes));
            note(wres.name(), "weights/L" + std::to_string(l + 1),
                 weight_ready[l + 1] -
                     wres.serviceTime(
                         static_cast<std::uint64_t>(weight_bytes)),
                 weight_ready[l + 1]);
        }

        // QKV upload to the devices.
        const Seconds qkv_done = uplink.transfer(
            layer_start, static_cast<std::uint64_t>(qkv_up_bytes));
        note("uplink", "qkv/L" + std::to_string(l),
             qkv_done - uplink.serviceTime(
                            static_cast<std::uint64_t>(qkv_up_bytes)),
             qkv_done);

        // NSP portion: slices stream through each device's internal
        // path into its accelerator. Slices homed on a failed device
        // re-dispatch round-robin onto the survivors.
        Seconds nsp_done = layer_start;
        for (std::uint64_t sl = 0; sl < slices; sl++) {
            const auto orig = static_cast<unsigned>(sl % N);
            unsigned dev = orig;
            if (inj.active() && inj.deviceFailed(orig, start_time)) {
                dev = alive[sl % n_alive];
                inj.noteRedispatch();
            }
            Seconds read_done =
                internal[dev].transfer(std::max(layer_start, qkv_done),
                                       slice_bytes);
            if (inj.active()) {
                // ECC read-retry ladder on the NAND read, then the
                // NVMe command's timeout/backoff outcome; an exhausted
                // command re-issues the read on the next survivor.
                const Seconds nand_pen = inj.nandReadPenalty(dev);
                if (nand_pen > 0.0)
                    read_done = internal[dev].occupy(read_done, nand_pen);
                const FaultInjector::NvmeOutcome nvme =
                    inj.nvmeCommand(dev);
                if (nvme.extra_latency > 0.0)
                    read_done =
                        internal[dev].occupy(read_done,
                                             nvme.extra_latency);
                if (nvme.failed) {
                    const unsigned alt =
                        alive[(alive_idx[dev] + 1) % n_alive];
                    inj.noteRedispatch();
                    read_done =
                        internal[alt].transfer(read_done, slice_bytes);
                    dev = alt;
                }
            }
            const Seconds kernel_done =
                fpga[dev].transfer(read_done, slice_bytes);
            note(internal[dev].name(),
                 "read/L" + std::to_string(l) + "/s" +
                     std::to_string(sl),
                 read_done - internal[dev].serviceTime(slice_bytes),
                 read_done);
            note(fpga[dev].name(),
                 "attn/L" + std::to_string(l) + "/s" +
                     std::to_string(sl),
                 kernel_done - fpga[dev].serviceTime(slice_bytes),
                 kernel_done);
            nsp_done = std::max(nsp_done, kernel_done);
        }

        // X-cache portion: per-sequence GDS load (also occupying the
        // shared uplink), then GPU regeneration + attention.
        Seconds x_done = layer_start;
        for (std::uint64_t seq = 0; seq < x_batches; seq++) {
            const Seconds loaded = gds.transfer(layer_start, x_bytes);
            uplink.transfer(layer_start, x_bytes);
            note("gds", "xload/L" + std::to_string(l),
                 loaded - gds.serviceTime(x_bytes), loaded);
            const Seconds gpu_begin = std::max(gpu_free, loaded);
            gpu_free = gpu_begin + regen_per_seq + gpu_xattn_per_seq;
            note("gpu", "regen/L" + std::to_string(l), gpu_begin,
                 gpu_free);
            gpu_busy += regen_per_seq + gpu_xattn_per_seq;
            x_done = std::max(x_done, gpu_free);
        }

        // Host-side projections and MLP on the GPU.
        const Seconds base_begin = std::max(gpu_free, layer_start);
        gpu_free = base_begin + gpu_base;
        note("gpu", "proj+mlp/L" + std::to_string(l), base_begin,
             gpu_free);
        gpu_busy += gpu_base;

        const Seconds out_done = uplink.transfer(
            std::max(nsp_done, x_done),
            static_cast<std::uint64_t>(out_ret_bytes));
        const Seconds layer_done =
            std::max({out_done, gpu_free, qkv_done}) + wb_crit;

        note("layers", "L" + std::to_string(l), layer_start,
             layer_done);
        res.layer_times.push_back(layer_done - layer_start);
        prev_done = layer_done;
    }

    res.decode_step_time = prev_done;
    res.mean_layer_time = prev_done / static_cast<double>(L);
    res.uplink_utilization = uplink.utilization(prev_done);
    res.gds_utilization = gds.utilization(prev_done);
    // GPU busy spans all lie within [0, prev_done]; report the true
    // ratio (utilization() would assert if accounting ever drifted).
    res.gpu_utilization = gpu_busy / prev_done;
    double internal_busy = 0.0;
    for (const auto &r : internal)
        internal_busy += r.utilization(prev_done);
    res.internal_utilization = internal_busy / static_cast<double>(N);
    if (inj.active()) {
        const FaultStats &st = inj.stats();
        res.devices_failed = N - n_alive;
        res.redispatched_slices = st.redispatched_slices;
        res.nand_read_errors = st.nand_read_errors;
        res.nvme_timeouts = st.nvme_timeouts;
        res.nvme_retries = st.nvme_retries;
        res.retry_time = st.retry_time;
    }
    return res;
}

Seconds
HilosEventSimulator::simulatePrefill(const RunConfig &cfg,
                                     std::size_t chunk_tokens,
                                     TraceRecorder *trace,
                                     Seconds start_time) const
{
    HILOS_ASSERT(chunk_tokens >= 1, "chunk size must be >= 1");
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const unsigned N = opts_.num_devices;
    const std::uint64_t b = cfg.batch;
    const std::uint64_t s = cfg.context_len;
    const std::uint64_t L = m.layers;

    // Prefill under faults: the surviving fleet and derates at
    // `start_time` scale the write fan-out and the uplink.
    const FaultInjector inj(opts_.fault_plan, N);
    unsigned n_alive = N;
    double min_derate = 1.0;
    double up_derate = 1.0;
    if (inj.active()) {
        n_alive = inj.survivingDevices(start_time);
        if (n_alive == 0) {
            HILOS_FATAL("all SmartSSDs failed before prefill; no "
                        "surviving fleet to receive the KV/X cache");
        }
        for (unsigned i = 0; i < N; i++) {
            if (!inj.deviceFailed(i, start_time))
                min_derate = std::min(min_derate,
                                      inj.linkDerate(i, start_time));
        }
        up_derate = inj.uplinkDerate(start_time);
    }

    HilosOptions eff = opts_;
    eff.fault_plan = FaultPlan{};
    eff.num_devices = n_alive;
    const HilosEngine analytic(sys_, eff);
    const double alpha = analytic.selectedAlpha(cfg);
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);

    BandwidthResource uplink("uplink",
                             sys_.chassis_uplink_bw * up_derate, usec(1));
    BandwidthResource host_link("host-pcie", sys_.host_pcie_bw, usec(1));
    BandwidthResource device_write(
        "device-write",
        static_cast<double>(n_alive) * sys_.smartssd.p2p_write_bw *
            min_derate,
        usec(50));

    const double weight_bytes = m.loadedWeightBytesPerLayer(b);
    // Cache bytes per prompt token per layer across the batch: X for
    // the alpha portion, K+V for the rest.
    const double cache_tok =
        static_cast<double>(b) *
        (alpha * static_cast<double>(m.xBytesPerTokenPerLayer()) +
         (1.0 - alpha) * 2.0 *
             static_cast<double>(m.kv_heads * m.headDim() *
                                 m.dtype_bytes));

    const std::uint64_t chunks = ceilDiv(s, chunk_tokens);
    Seconds prev_done = 0.0;
    Seconds gpu_free = 0.0;
    Seconds weight_ready = 0.0;

    for (std::uint64_t l = 0; l < L; l++) {
        const Seconds layer_start = std::max(prev_done, weight_ready);
        // Prefetch the next layer's weights.
        if (l + 1 < L) {
            BandwidthResource &wres =
                home == WeightHome::Storage ? uplink : host_link;
            weight_ready = wres.transfer(
                layer_start, static_cast<std::uint64_t>(weight_bytes));
        }

        Seconds layer_done = layer_start;
        for (std::uint64_t c = 0; c < chunks; c++) {
            const std::uint64_t tokens =
                std::min<std::uint64_t>(chunk_tokens,
                                        s - c * chunk_tokens);
            // Chunk compute: GEMMs plus causal attention over the
            // prefix processed so far (prefix midpoint of the chunk).
            const double prefix = static_cast<double>(c * chunk_tokens) +
                                  static_cast<double>(tokens) / 2.0;
            const double gemm_flops =
                static_cast<double>(b * tokens) *
                m.denseFlopsPerTokenPerLayer();
            const double attn_flops =
                static_cast<double>(b * tokens) *
                m.attentionFlopsPerToken(
                    static_cast<std::uint64_t>(prefix));
            const Seconds compute = gpu.kernelTime(
                gemm_flops + attn_flops,
                static_cast<double>(m.weightBytesPerLayer()) /
                    static_cast<double>(chunks));
            const Seconds compute_begin =
                std::max(gpu_free, layer_start);
            gpu_free = compute_begin + compute;
            if (trace != nullptr) {
                trace->record("gpu",
                              "prefill/L" + std::to_string(l) + "/c" +
                                  std::to_string(c),
                              compute_begin, gpu_free);
            }

            // The chunk's cache writes ship to the devices and commit
            // to NAND, overlapping the next chunk's compute.
            const auto bytes = static_cast<std::uint64_t>(
                cache_tok * static_cast<double>(tokens));
            const Seconds shipped = uplink.transfer(gpu_free, bytes);
            const Seconds committed =
                device_write.transfer(shipped, bytes);
            if (trace != nullptr) {
                trace->record("device-write",
                              "commit/L" + std::to_string(l) + "/c" +
                                  std::to_string(c),
                              committed - device_write.serviceTime(bytes),
                              committed);
            }
            layer_done = std::max(layer_done, committed);
        }
        prev_done = std::max(layer_done, gpu_free);
    }
    return prev_done;
}

namespace {

/**
 * The pools a plan replay runs over: one BandwidthPool per referenced
 * transfer resource (with the plan's declared instance count) and one
 * single-instance pool per referenced compute unit. Rates are dummies
 * — replay uses occupy(), whose durations are already engine-priced.
 */
class PlanPools
{
  public:
    explicit PlanPools(const StepPlan &plan)
    {
        auto visit = [&](const StepOpView &op) {
            if (op.offline)
                return;
            if (op.op_kind == StepOp::Kind::Transfer &&
                op.resource != PlanResource::None) {
                const int key = static_cast<int>(op.resource);
                if (resources_.find(key) == resources_.end())
                    resources_.emplace(
                        key, BandwidthPool(planResourceName(op.resource),
                                           plan.instancesOf(op.resource),
                                           1.0));
            } else if (op.op_kind == StepOp::Kind::Compute &&
                       op.unit != ComputeUnit::None) {
                const int key = static_cast<int>(op.unit);
                if (units_.find(key) == units_.end())
                    units_.emplace(
                        key, BandwidthPool(computeUnitName(op.unit), 1, 1.0));
            }
        };
        for (const StepOpView op : plan.layer_ops)
            visit(op);
        for (const StepOpView op : plan.tail_ops)
            visit(op);
    }

    /** The pool `op` occupies, or nullptr for a pure delay. */
    BandwidthPool *poolFor(const StepOpView &op)
    {
        if (op.op_kind == StepOp::Kind::Transfer) {
            if (op.resource == PlanResource::None)
                return nullptr;
            return &resources_.at(static_cast<int>(op.resource));
        }
        if (op.unit == ComputeUnit::None)
            return nullptr;
        return &units_.at(static_cast<int>(op.unit));
    }

    Seconds maxBusyUntil() const
    {
        Seconds latest = 0.0;
        for (const auto &kv : resources_)
            latest = std::max(latest, kv.second.maxBusyUntil());
        for (const auto &kv : units_)
            latest = std::max(latest, kv.second.maxBusyUntil());
        return latest;
    }

    const std::map<int, BandwidthPool> &resources() const
    {
        return resources_;
    }
    const std::map<int, BandwidthPool> &units() const { return units_; }

  private:
    std::map<int, BandwidthPool> resources_;
    std::map<int, BandwidthPool> units_;
};

}  // namespace

PlanSimResult
simulatePlan(const StepPlan &plan, TraceRecorder *trace)
{
    HILOS_ASSERT(plan.feasible, "cannot replay an infeasible plan: ",
                 plan.note);
    HILOS_ASSERT(plan.layers >= 1, "plan has no layers");
    PlanPools pools(plan);
    PlanSimResult out;
    out.layer_times.reserve(plan.layers);

    const std::size_t n = plan.layer_ops.size();
    std::vector<Seconds> finish(n, 0.0);
    Seconds layer_start = 0.0;
    Seconds prev_layer_start = 0.0;
    for (std::uint64_t l = 0; l < plan.layers; ++l) {
        Seconds layer_end = layer_start;
        for (std::size_t i = 0; i < n; ++i) {
            const StepOpView op = plan.layer_ops[i];
            if (op.offline) {
                finish[i] = 0.0;
                continue;
            }
            Seconds ready = op.prefetch ? prev_layer_start : layer_start;
            for (const std::size_t d : op.deps)
                ready = std::max(ready, finish[d]);
            if (op.shadow) {
                // Timing-only: bounds the layer but occupies nothing.
                finish[i] = ready + op.seconds;
                layer_end = std::max(layer_end, finish[i]);
                continue;
            }
            BandwidthPool *pool = pools.poolFor(op);
            Seconds done = ready + op.seconds;
            if (pool != nullptr) {
                done = ready;
                for (std::uint64_t k = 0; k < op.fanout; ++k) {
                    const Seconds end = pool->occupyOn(k, ready, op.seconds);
                    done = std::max(done, end);
                    if (trace != nullptr)
                        trace->record(
                            pool->instance(static_cast<unsigned>(
                                               k % pool->size()))
                                .name(),
                            "layer" + std::to_string(l) + "/" +
                                std::string(op.label),
                            end - op.seconds, end);
                }
            }
            finish[i] = done;
            layer_end = std::max(layer_end, done);
        }
        if (l == 0)
            out.first_layer_finish = finish;
        out.layer_times.push_back(layer_end - layer_start);
        prev_layer_start = layer_start;
        layer_start = layer_end;
    }
    out.layered_end = layer_start;

    Seconds tail_end = out.layered_end;
    for (const StepOpView op : plan.tail_ops) {
        BandwidthPool *pool = pools.poolFor(op);
        const Seconds begin = tail_end;
        tail_end = pool != nullptr ? pool->occupyOn(0, tail_end, op.seconds)
                                   : tail_end + op.seconds;
        if (trace != nullptr)
            trace->record(pool != nullptr ? pool->instance(0).name()
                                          : "delay",
                          "tail/" + std::string(op.label), begin, tail_end);
    }

    HILOS_ASSERT(plan.layer_time_divisor > 0.0,
                 "non-positive layer_time_divisor");
    out.decode_step_time = out.layered_end / plan.layer_time_divisor +
                           (tail_end - out.layered_end);

    // Utilisations over the pre-divisor timeline; the horizon covers
    // every pool's busy span so BandwidthResource's >1 check holds.
    const Seconds horizon =
        std::max(tail_end, pools.maxBusyUntil());
    for (const auto &kv : pools.resources())
        out.resource_utilization.emplace_back(
            kv.second.name(), kv.second.meanUtilization(horizon));
    for (const auto &kv : pools.units())
        out.unit_utilization.emplace_back(
            kv.second.name(), kv.second.meanUtilization(horizon));
    return out;
}

EventSimResult
toEventSimResult(const PlanSimResult &r)
{
    auto named = [](const std::vector<std::pair<std::string, double>> &v,
                    const char *name, bool *found) -> double {
        for (const auto &kv : v) {
            if (kv.first == name) {
                if (found != nullptr)
                    *found = true;
                return kv.second;
            }
        }
        return 0.0;
    };
    EventSimResult out;
    out.decode_step_time = r.decode_step_time;
    out.layer_times = r.layer_times;
    out.mean_layer_time =
        r.layer_times.empty()
            ? Seconds(0.0)
            : r.decode_step_time /
                  static_cast<double>(r.layer_times.size());
    bool has_uplink = false;
    out.uplink_utilization =
        named(r.resource_utilization, "uplink", &has_uplink);
    if (!has_uplink)
        out.uplink_utilization =
            named(r.resource_utilization, "host_pcie", nullptr);
    out.gds_utilization = named(r.resource_utilization, "gds", nullptr);
    double internal_sum = 0.0;
    unsigned internal_n = 0;
    for (const char *name : {"p2p", "storage", "intra_node"}) {
        bool found = false;
        const double u = named(r.resource_utilization, name, &found);
        if (found) {
            internal_sum += u;
            ++internal_n;
        }
    }
    out.internal_utilization =
        internal_n > 0 ? internal_sum / internal_n : 0.0;
    out.gpu_utilization = named(r.unit_utilization, "gpu", nullptr);
    return out;
}

}  // namespace hilos
