#include "runtime/writeback.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

WritebackCosts
writebackCosts(const WritebackCostInputs &in)
{
    HILOS_ASSERT(in.slices > 0 && in.devices > 0, "invalid inputs");
    HILOS_ASSERT(in.spill_interval > 0, "invalid spill interval");

    WritebackCosts out;
    const double slices = static_cast<double>(in.slices);
    const double d = static_cast<double>(in.head_dim);
    const double dg = static_cast<double>(in.d_group);
    const double c = static_cast<double>(in.spill_interval);

    // Steady state: buffers average c/2 entries. Per step the host
    // ships, per slice: the buffered V vectors (redundant until the
    // spill) plus d_group partial-score scalars per buffered entry.
    const double per_slice_bytes = (c / 2.0) * (d * 2.0 + dg * 4.0);
    out.transfer_time = Bytes(slices * per_slice_bytes) / in.host_link_bw;

    // XRT DMA orchestration (explicit migrate + wait per staged
    // granule) scales with the chunk size: larger spill intervals stage
    // more 4 KiB granules per step and pay proportionally more
    // synchronisation (§7.3: throughput drops moving from 4 KiB to
    // 16 KiB chunks). Devices sync concurrently, so the cost is per
    // granule, not per device.
    const double chunk_bytes = c * d * 2.0 * 2.0;  // K+V per slice
    if (!in.cxl_coherent) {
        const double granules = std::max(
            1.0, chunk_bytes / static_cast<double>(in.page_bytes));
        out.sync_time = in.xrt_sync_base * granules;

        // Issuing the spill commands costs host time per spill
        // operation; sub-page chunks additionally pay the
        // read-modify-write path.
        const bool page_aligned =
            chunk_bytes >= static_cast<double>(in.page_bytes) &&
            static_cast<std::uint64_t>(chunk_bytes) % in.page_bytes == 0;
        const double spill_ops_per_device =
            slices / (c * static_cast<double>(in.devices));
        const Seconds per_op = page_aligned ? usec(30) : usec(100);
        out.sync_time += spill_ops_per_device * per_op;
    } else {
        // CXL.mem: loads/stores land coherently; no migrate/wait and no
        // per-spill submission path.
        out.sync_time = 0.0;
    }

    // Spill: every c steps each slice writes c entries (K+V) padded to
    // page granularity; amortised per step and spread over devices.
    const double spill_bytes_per_slice = c * d * 2.0 * 2.0;
    const double padded = std::max(
        spill_bytes_per_slice, static_cast<double>(in.page_bytes));
    out.write_amplification = padded / spill_bytes_per_slice;
    const double per_step_bytes = slices * padded / c;
    out.spill_time = Bytes(per_step_bytes) /
                     (static_cast<double>(in.devices) * in.device_write_bw);
    return out;
}

Seconds
naiveWritebackTime(std::uint64_t slices, std::uint64_t devices,
                   std::uint64_t entry_bytes, Seconds write_latency,
                   Seconds rmw_penalty)
{
    HILOS_ASSERT(devices > 0, "invalid device count");
    (void)entry_bytes;  // every sub-page entry pays a full page program
    const double per_device =
        static_cast<double>(ceilDiv(slices, devices));
    // Direct I/O commits serialise per device: command latency plus the
    // sub-page read-modify-write for each entry.
    return per_device * (write_latency + rmw_penalty);
}

}  // namespace hilos
