/**
 * @file
 * Evaluation-report generation.
 *
 * Runs the headline evaluation grid programmatically and renders a
 * markdown report (engine comparison, speedups vs FLEX(SSD), energy
 * and cost-effectiveness) — the automation a downstream user points at
 * their own configuration instead of re-deriving the paper's tables by
 * hand.
 */

#ifndef HILOS_RUNTIME_REPORT_H_
#define HILOS_RUNTIME_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/fleet_engine.h"
#include "runtime/hilos_engine.h"
#include "runtime/system_config.h"

namespace hilos {

/** What to sweep in the report. */
struct ReportConfig {
    std::vector<std::string> models = {"OPT-66B", "OPT-175B"};
    std::vector<std::uint64_t> contexts = {16384, 65536};
    std::uint64_t batch = 16;
    std::uint64_t output_len = 64;
    std::vector<unsigned> device_counts = {8, 16};
    /**
     * Fault schedule applied to the HILOS entries (FLEX baselines have
     * no SmartSSD fleet to fault). Empty = the fault-free grid.
     */
    FaultPlan fault_plan;
    /**
     * Hosts for additional Fleet(hosts x devices) entries per cell;
     * 1 keeps the single-host grid unchanged. The fault plan's
     * host-scope events only take effect on these entries.
     */
    unsigned hosts = 1;
    /** Placement policy of the fleet entries. */
    PlacementPolicy fleet_policy = PlacementPolicy::Spread;
    /**
     * Worker threads to fan the (model, context) grid cells across
     * (0 = hardware concurrency). The report is bit-identical for
     * every value: cells are independent and results are merged in
     * grid order, not completion order.
     */
    unsigned jobs = 1;
};

/** One evaluated grid point. */
struct ReportEntry {
    std::string model;
    std::uint64_t context = 0;
    std::string engine;
    bool feasible = false;
    double tokens_per_sec = 0;
    double speedup_vs_flex_ssd = 0;
    double energy_kj = 0;
    double cost_effectiveness = 0;  ///< tokens/s/$
    // Fault-resilience columns (identity values without a FaultPlan).
    double availability = 1.0;
    double slowdown = 1.0;
    unsigned devices_failed = 0;
    Seconds retry_time = 0;
    bool faulted = false;  ///< entry ran under a non-empty FaultPlan
};

/** The evaluated grid plus aggregate headlines. */
struct EvaluationReport {
    std::vector<ReportEntry> entries;
    double max_speedup = 0;       ///< best HILOS vs FLEX(SSD)
    double max_energy_saving = 0; ///< 1 - (HILOS J / FLEX(SSD) J), best

    /** Render as a markdown document. */
    std::string toMarkdown() const;
};

/**
 * Run the grid on a system configuration.
 */
EvaluationReport runEvaluation(const SystemConfig &sys,
                               const ReportConfig &cfg);

}  // namespace hilos

#endif  // HILOS_RUNTIME_REPORT_H_
