#include "runtime/plan_cache.h"

namespace hilos {

std::uint64_t
PlanCache::keyOf(std::string_view engine_name, std::string_view model_name,
                 PlanPhase phase)
{
    // FNV-1a, 64-bit. Collisions only cost a rebuild mismatch.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::string_view s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    };
    mix(engine_name);
    mix("|");
    mix(model_name);
    mix("|");
    mix(planPhaseName(phase));
    return h;
}

}  // namespace hilos
