#include "runtime/engine.h"

#include "common/logging.h"

namespace hilos {

void
StageBreakdown::add(const std::string &name, Seconds t)
{
    HILOS_ASSERT(t >= 0.0, "negative stage time for ", name);
    for (auto &entry : stages_) {
        if (entry.first == name) {
            entry.second += t;
            return;
        }
    }
    stages_.emplace_back(name, t);
}

Seconds
StageBreakdown::get(const std::string &name) const
{
    for (const auto &entry : stages_)
        if (entry.first == name)
            return entry.second;
    return Seconds(0.0);
}

Seconds
StageBreakdown::sum() const
{
    Seconds total = 0.0;
    for (const auto &[n, v] : stages_)
        total += v;
    return total;
}

RunResult
InferenceEngine::runCached(const RunConfig &cfg, PlanCache &) const
{
    return run(cfg);
}

bool
FaultSummary::any() const
{
    return nand_read_errors > 0 || nvme_timeouts > 0 ||
           redispatched_slices > 0 || devices_failed > 0 ||
           requests_degraded > 0 || requests_failed > 0 ||
           retry_time > 0.0 || rebuild_time > 0.0 || slowdown > 1.0;
}

double
RunResult::decodeThroughput() const
{
    if (!feasible || decode_step_time <= 0.0)
        return 0.0;
    return static_cast<double>(effective_batch) / decode_step_time;
}

double
RunResult::endToEndThroughput(std::uint64_t output_len) const
{
    if (!feasible)
        return 0.0;
    const Seconds total =
        prefill_time +
        static_cast<double>(output_len) * decode_step_time;
    if (total <= 0.0)
        return 0.0;
    return static_cast<double>(effective_batch * output_len) / total;
}

std::uint64_t
maxFittingBatch(const ModelConfig &model, std::uint64_t requested_batch,
                std::uint64_t total_seq, Bytes capacity_bytes,
                Bytes resident_bytes)
{
    const double per_seq = model.kvBytesTotal(1, total_seq);
    const double budget = capacity_bytes - resident_bytes;
    if (budget < per_seq)
        return 0;
    const auto fit = static_cast<std::uint64_t>(budget / per_seq);
    return std::min(requested_batch, fit);
}

}  // namespace hilos
