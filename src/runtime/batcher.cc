#include "runtime/batcher.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace hilos {

OfflineBatcher::OfflineBatcher(std::uint64_t max_batch,
                               std::uint64_t bucket_quantum)
    : max_batch_(max_batch), bucket_quantum_(bucket_quantum)
{
    HILOS_ASSERT(max_batch_ >= 1, "batch capacity must be >= 1");
    HILOS_ASSERT(bucket_quantum_ >= 1, "bucket quantum must be >= 1");
}

std::vector<ScheduledBatch>
OfflineBatcher::plan(const std::vector<Request> &requests) const
{
    // Bucket by padded context length; keep per-bucket max output.
    struct Bucket {
        std::uint64_t count = 0;
        std::uint64_t max_output = 0;
    };
    std::map<std::uint64_t, Bucket> buckets;
    for (const Request &r : requests) {
        const std::uint64_t padded =
            roundUp(std::max<std::uint64_t>(r.input_tokens, 1),
                    bucket_quantum_);
        Bucket &b = buckets[padded];
        b.count++;
        b.max_output = std::max(b.max_output, r.output_tokens);
    }

    std::vector<ScheduledBatch> out;
    for (const auto &[context, bucket] : buckets) {
        std::uint64_t remaining = bucket.count;
        while (remaining > 0) {
            ScheduledBatch batch;
            batch.context_len = context;
            batch.output_len = bucket.max_output;
            batch.count = std::min(remaining, max_batch_);
            out.push_back(batch);
            remaining -= batch.count;
        }
    }
    return out;
}

BatchPlanResult
OfflineBatcher::serve(const InferenceEngine &engine,
                      const ModelConfig &model,
                      const std::vector<Request> &requests) const
{
    HILOS_ASSERT(!requests.empty(), "nothing to serve");
    BatchPlanResult res;
    res.batches = plan(requests);

    double real_prompt_tokens = 0;
    double real_generated = 0;
    for (const Request &r : requests) {
        real_prompt_tokens += static_cast<double>(r.input_tokens);
        real_generated += static_cast<double>(r.output_tokens);
    }
    double padded_prompt_tokens = 0;
    double padded_generated = 0;

    for (const ScheduledBatch &batch : res.batches) {
        RunConfig run;
        run.model = model;
        run.batch = batch.count;
        run.context_len = batch.context_len;
        run.output_len = batch.output_len;
        const RunResult r = engine.run(run);
        HILOS_ASSERT(r.feasible, "batch infeasible on ", engine.name(),
                     " at context ", batch.context_len);
        // The engine may shrink the batch; the remainder re-queues as
        // extra full passes of the same batch shape.
        const std::uint64_t eff =
            std::max<std::uint64_t>(r.effective_batch, 1);
        const std::uint64_t passes = ceilDiv(batch.count, eff);
        res.makespan += static_cast<double>(passes) * r.total_time;
        padded_prompt_tokens += static_cast<double>(batch.count) *
                                static_cast<double>(batch.context_len);
        padded_generated += static_cast<double>(batch.count) *
                            static_cast<double>(batch.output_len);
    }

    res.requests_per_hour =
        static_cast<double>(requests.size()) / res.makespan * 3600.0;
    // Throughput counts tokens the requests actually asked for; decode
    // steps spent padding shorter requests to the bucket's max output
    // are waste, reported separately below.
    res.tokens_per_second = real_generated / res.makespan;
    res.padding_overhead =
        padded_prompt_tokens / real_prompt_tokens - 1.0;
    res.output_padding_overhead =
        padded_generated / real_generated - 1.0;
    return res;
}

}  // namespace hilos
