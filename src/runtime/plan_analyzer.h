#ifndef HILOS_RUNTIME_PLAN_ANALYZER_H_
#define HILOS_RUNTIME_PLAN_ANALYZER_H_

/**
 * Semantic analysis over a validated StepPlan: a registry of
 * independent passes that walk the layer/tail op DAG and report
 * *meaning*-level defects validate() cannot see — dead ops, redundant
 * dependency edges, prefetches serialized behind timed work, traffic
 * invisible to the energy spec, accounting that violates conservation,
 * and ops whose role contradicts the plan's phase.
 *
 * Each finding carries a stable diagnostic ID (PA001..), a severity,
 * and the offending op's name, mirroring the one-diagnostic-per-
 * violation contract of StepPlan::validate(). Error-severity findings
 * are builder bugs; warnings are intentional modelling choices that a
 * waiver file (tests/plan_waivers.txt) pins by ID + op label so they
 * cannot drift silently.
 *
 * The analysis also annotates the layer DAG with per-op slack (how far
 * an op can slip without growing the layer critical path) and the
 * bottleneck chain realizing that critical path.
 *
 * Deterministic and bit-stable: analysing the same plan twice yields
 * byte-identical findings and serialisation.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/step_plan.h"

namespace hilos {

/** Severity of one analyzer finding. */
enum class FindingSeverity : std::uint8_t {
    Error,  ///< builder bug; gates ctest/fuzz lanes and CI
    Warn,   ///< intentional modelling choice; must be waived to pass CI
    Info,   ///< advisory only
};

/** Stable lower-case name for serialisation ("error", "warn", "info"). */
const char *findingSeverityName(FindingSeverity s);

/** One analyzer finding: a stable ID, the offending op, the message. */
struct PlanFinding {
    const char *id = "";  ///< stable "PAnnn" diagnostic ID
    FindingSeverity severity = FindingSeverity::Error;
    /** Label of the offending op ("" for plan-scoped findings); the
     *  waiver key alongside `id`. */
    std::string op;
    /** Full diagnostic, opRef-style: "layer op #3 'kv_fetch': ...". */
    std::string message;
    bool waived = false;  ///< set by applyPlanWaivers
};

/** Registry entry describing one analyzer pass (docs, tests, report). */
struct AnalyzerPassInfo {
    const char *id;            ///< the "PAnnn" ID its findings carry
    const char *name;          ///< short kebab-case pass name
    FindingSeverity severity;  ///< severity of every finding it emits
    const char *summary;       ///< one-line description
};

/** The pass catalog, in ID order. */
const std::vector<AnalyzerPassInfo> &analyzerPasses();

/** Everything one analysis produces. */
struct PlanAnalysis {
    /** Findings in pass order, then op order — deterministic. */
    std::vector<PlanFinding> findings;
    /** Critical path over one layer's op DAG (== evaluatePlan's). */
    Seconds layer_critical_path = 0;
    /** Per layer-op slack: how much the op can slip without growing
     *  the layer critical path. Offline ops (finish pinned at 0) get
     *  the full critical path as slack. */
    std::vector<Seconds> op_slack;
    /** Layer-op ids of the bottleneck chain realizing the critical
     *  path, source to sink (ties broken toward the lowest id). */
    std::vector<std::size_t> bottleneck_chain;
};

/**
 * Run every registered pass plus the slack annotator over `plan`.
 * The plan must already be structurally valid (validate() empty);
 * the analyzer checks semantics, not structure. Infeasible plans
 * yield an empty analysis — there is nothing to analyse.
 */
PlanAnalysis analyzePlan(const StepPlan &plan);

/** One waiver: finding `id` on op label `op` ("*" matches any op). */
struct PlanWaiver {
    std::string id;
    std::string op;
};

/**
 * Parse the waiver-file format: one `PAnnn <op-label|*>` per line,
 * `#` starts a comment, blank lines ignored. Malformed lines are
 * reported into `problems` (when non-null) and skipped.
 */
std::vector<PlanWaiver> parsePlanWaivers(const std::string &text,
                                         std::vector<std::string> *problems);

/** Canonical one-per-line rendering; parse(format(w)) round-trips. */
std::string formatPlanWaivers(const std::vector<PlanWaiver> &waivers);

/** Mark findings matched by a waiver (same ID, op label or "*"). */
void applyPlanWaivers(PlanAnalysis &analysis,
                      const std::vector<PlanWaiver> &waivers);

/** True when any error-severity finding is not waived. */
bool hasUnwaivedErrors(const PlanAnalysis &analysis);

/** Message of the first unwaived error ("" when none). */
std::string firstUnwaivedError(const PlanAnalysis &analysis);

/**
 * Canonical report serialisation (findings, slack table, bottleneck
 * chain), byte-stable and golden-comparable: floats render as %.9g
 * like tests/support/serialize.cc.
 */
std::string serializeAnalysis(const StepPlan &plan,
                              const PlanAnalysis &analysis);

/**
 * True when HILOS_ANALYZE_PLANS is set non-empty and not "0": the
 * opt-in gate under which applyPlan/applyPrefillPlan assert zero
 * error-severity findings on every plan they evaluate (the ctest and
 * nightly fuzz lanes run with it on). Cached on first call.
 */
bool analyzePlansEnabled();

}  // namespace hilos

#endif  // HILOS_RUNTIME_PLAN_ANALYZER_H_
