#include "runtime/hilos_engine.h"

#include <algorithm>

#include "accel/cycle_model.h"
#include "accel/resource_model.h"
#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/writeback.h"

namespace hilos {

HilosEngine::HilosEngine(const SystemConfig &sys, const HilosOptions &opts)
    : sys_(sys), opts_(opts)
{
    HILOS_ASSERT(opts_.num_devices >= 1 && opts_.num_devices <= 16,
                 "HILOS supports 1..16 SmartSSDs");
    HILOS_ASSERT(opts_.spill_interval >= 1, "invalid spill interval");
}

std::string
HilosEngine::name() const
{
    if (!opts_.xcache && !opts_.delayed_writeback)
        return "ANS(" + std::to_string(opts_.num_devices) + ")";
    if (!opts_.xcache)
        return "ANS+WB(" + std::to_string(opts_.num_devices) + ")";
    if (!opts_.delayed_writeback)
        return "ANS+X(" + std::to_string(opts_.num_devices) + ")";
    return "HILOS(" + std::to_string(opts_.num_devices) + " SmartSSDs)";
}

Bandwidth
HilosEngine::internalReadBw() const
{
    return static_cast<double>(opts_.num_devices) *
           sys_.smartssd.p2p_read_bw;
}

Bandwidth
HilosEngine::gdsBw() const
{
    // GDS loads are software-limited well below the uplink; with few
    // devices the source NAND read rate can bind instead.
    return std::min(sys_.gds_effective_bw, internalReadBw());
}

double
HilosEngine::selectedAlpha(const RunConfig &cfg) const
{
    if (!opts_.xcache)
        return 0.0;
    if (opts_.alpha_override >= 0.0)
        return opts_.alpha_override;
    const XCacheScheduler sched(internalReadBw(), gdsBw(),
                                sys_.gpu.fp16_peak *
                                    sys_.gpu.gemm_efficiency);
    return sched.bestAlpha(cfg.batch,
                           cfg.context_len + cfg.output_len / 2,
                           cfg.model.hidden,
                           cfg.model.kv_heads * cfg.model.headDim());
}

RunResult
HilosEngine::run(const RunConfig &cfg) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const Cpu cpu(sys_.cpu);
    const unsigned N = opts_.num_devices;
    const double L = static_cast<double>(m.layers);
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;
    const std::uint64_t d = m.headDim();
    const std::uint64_t d_group = m.dGroup();

    RunResult res;
    res.effective_batch = cfg.batch;
    const std::uint64_t b = cfg.batch;
    std::uint64_t s_mid = cfg.context_len + cfg.output_len / 2;
    // Sliding-window variants attend (and keep) only the window.
    if (opts_.attention_window > 0)
        s_mid = std::min(s_mid, opts_.attention_window);

    // Capacity: fleet NAND must hold weights (if storage-resident) plus
    // the full KV/X cache; always generous at <=16 x 3.84 TB but check.
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double alpha = selectedAlpha(cfg);
    const double kv_dim_bytes = static_cast<double>(
        m.kv_heads * d * m.dtype_bytes);  // one K or V row per token
    const double cache_bytes_per_tok_layer =
        alpha * static_cast<double>(m.xBytesPerTokenPerLayer()) +
        (1.0 - alpha) * 2.0 * kv_dim_bytes;
    const double fleet_capacity =
        static_cast<double>(N) *
        static_cast<double>(sys_.smartssd.nand.capacity);
    const std::uint64_t kept_seq =
        opts_.attention_window > 0
            ? std::min(total_seq, opts_.attention_window)
            : total_seq;
    const double cache_total = cache_bytes_per_tok_layer * L *
                               static_cast<double>(b) *
                               static_cast<double>(kept_seq);
    const double weights_on_fleet =
        home == WeightHome::Storage
            ? static_cast<double>(m.weightBytesTotal())
            : 0.0;
    if (cache_total + weights_on_fleet > fleet_capacity) {
        res.feasible = false;
        res.note = "SmartSSD fleet capacity exceeded";
        return res;
    }

    // --- Per-layer decode stages ---
    const Bandwidth fleet_read = internalReadBw();
    // Weights stripe across all installed SmartSSDs (16 in the chassis)
    // even when only N of them run attention kernels.
    const unsigned installed = std::max(sys_.installed_smartssds, N);
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw,
        std::min(sys_.chassis_uplink_bw,
                 static_cast<double>(installed) *
                     sys_.smartssd.nand.seq_read_bw));

    // Host GPU work: projections and MLP (always), plus the X-cache
    // portion's K/V regeneration and attention.
    const Seconds gpu_base = qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    const XCacheScheduler sched(fleet_read, gdsBw(),
                                sys_.gpu.fp16_peak *
                                    sys_.gpu.gemm_efficiency);
    const XCacheTimes xt =
        sched.times(alpha, b, s_mid, m.hidden, m.kv_heads * d);
    const Seconds gpu_xattn =
        alpha * gpuAttentionTime(gpu, m, b, s_mid);
    const Seconds gpu_stage = gpu_base + xt.t_gpu + gpu_xattn;

    // Query/key/value upload to the devices (the 6h-byte write of §4.1)
    // and the attention-output return (the 2h-byte read).
    const double qkv_up_bytes =
        static_cast<double>(b) *
        (static_cast<double>(m.hidden) + 2.0 * kv_dim_bytes /
                                             m.dtype_bytes) *
        static_cast<double>(m.dtype_bytes);
    const double out_ret_bytes =
        static_cast<double>(b * m.hidden * m.dtype_bytes);
    const Seconds qkv_up = qkv_up_bytes / sys_.chassis_uplink_bw;
    const Seconds out_ret = out_ret_bytes / sys_.chassis_uplink_bw;

    // For >100B models the weights live on the SmartSSD NAND and their
    // reads steal NAND bandwidth from the internal P2P feed.
    const Seconds weight_nand =
        home == WeightHome::Storage
            ? m.loadedWeightBytesPerLayer(b) /
                  (static_cast<double>(installed) *
                   sys_.smartssd.nand.seq_read_bw)
            : 0.0;

    // NSP attention: internal NAND reads (the xt.t_ssd term) race the
    // accelerator kernels; kernels consume from on-board DRAM far
    // faster than the 3 GB/s P2P feed, so storage I/O binds (§4.1).
    const CycleModelConfig cm_cfg;
    const CycleModel cm(cm_cfg);
    const double slices_total =
        (1.0 - alpha) * static_cast<double>(b * m.kv_heads);
    const double slices_per_dev =
        slices_total / static_cast<double>(N);
    const Seconds kernel_per_dev =
        slices_per_dev * cm.kernelTime(s_mid, d, d_group);

    // Delayed writeback / naive commit costs.
    Seconds wb_critical = 0.0;
    Seconds wb_spill = 0.0;
    double wb_wa = 1.0;
    double spill_bytes_step = 0.0;
    if (opts_.delayed_writeback) {
        WritebackCostInputs win;
        win.slices = b * m.kv_heads;
        win.head_dim = d;
        win.d_group = d_group;
        win.spill_interval = opts_.spill_interval;
        win.devices = N;
        win.host_link_bw = sys_.chassis_uplink_bw;
        win.device_write_bw = sys_.smartssd.p2p_write_bw;
        win.xrt_sync_base = sys_.xrt_sync_base;
        win.cxl_coherent = opts_.cxl_mode;
        const WritebackCosts wc = writebackCosts(win);
        wb_critical = wc.criticalPath();
        wb_spill = wc.spill_time;
        wb_wa = wc.write_amplification;
        spill_bytes_step = static_cast<double>(b * m.kv_heads) * 2.0 *
                           static_cast<double>(d * m.dtype_bytes) * wb_wa;
    } else {
        // Naive: every 256 B KV entry commits via direct I/O before the
        // attention can read it (Fig. 6(a)).
        wb_critical = naiveWritebackTime(
            b * m.kv_heads, N, 2 * d * m.dtype_bytes,
            sys_.smartssd.nand.write_latency, usec(230));
        wb_wa = static_cast<double>(sys_.smartssd.nand.page_bytes) /
                static_cast<double>(2 * d * m.dtype_bytes);
        spill_bytes_step = static_cast<double>(b * m.kv_heads) *
                           static_cast<double>(
                               sys_.smartssd.nand.page_bytes);
    }

    // Attention stage: internal reads, spills, kernels, X-cache loads
    // and host recompute all pipeline; the slowest binds.
    const Seconds attn_stage =
        std::max({xt.t_ssd + wb_spill + weight_nand, xt.t_pci,
                  kernel_per_dev, gpu_xattn + xt.t_gpu});

    // Shared-uplink occupancy check: weights (when storage-resident),
    // X loads, QKV uploads and returns all cross the chassis uplink.
    const double uplink_bytes =
        (home == WeightHome::Storage ? m.loadedWeightBytesPerLayer(b)
                                     : 0.0) +
        alpha * static_cast<double>(b) * static_cast<double>(s_mid) *
            static_cast<double>(m.hidden) * 2.0 +
        qkv_up_bytes + out_ret_bytes;
    const Seconds uplink_time = uplink_bytes / sys_.chassis_uplink_bw;

    const Seconds t_layer =
        std::max({weight, attn_stage, gpu_stage, uplink_time}) + qkv_up +
        out_ret + wb_critical;
    res.decode_step_time = L * t_layer;

    res.breakdown.add("load_weight", L * weight);
    res.breakdown.add("gpu_compute", L * gpu_stage);
    res.breakdown.add("internal_storage_io", L * (xt.t_ssd + wb_spill));
    res.breakdown.add("nsp_kernel", L * kernel_per_dev);
    res.breakdown.add("xcache_pci", L * xt.t_pci);
    res.breakdown.add("qkv_upload", L * qkv_up);
    res.breakdown.add("output_return", L * out_ret);
    res.breakdown.add("writeback", L * wb_critical);

    // --- Prefill ---
    const Seconds prefill_compute =
        prefillComputeTime(gpu, m, b, cfg.context_len);
    const double prefill_cache_bytes =
        cache_bytes_per_tok_layer * static_cast<double>(b) *
        static_cast<double>(cfg.context_len);
    const Bandwidth prefill_write_bw =
        std::min(sys_.chassis_uplink_bw,
                 static_cast<double>(N) * sys_.smartssd.p2p_write_bw);
    const Seconds prefill_write = prefill_cache_bytes / prefill_write_bw;
    res.prefill_time =
        L * (std::max(weight, prefill_compute) + prefill_write);
    res.total_time = res.prefill_time +
                     static_cast<double>(cfg.output_len) *
                         res.decode_step_time;

    // --- Traffic per decode step ---
    const double h_bytes =
        static_cast<double>(m.hidden * m.dtype_bytes);
    const double x_load_bytes = alpha * static_cast<double>(b) *
                                static_cast<double>(s_mid) * h_bytes;
    res.traffic.attn_host_read_bytes = L * (out_ret_bytes + x_load_bytes);
    res.traffic.attn_host_write_bytes = L * qkv_up_bytes;
    res.traffic.host_read_bytes =
        L * (m.loadedWeightBytesPerLayer(b) + out_ret_bytes +
             x_load_bytes);
    res.traffic.host_write_bytes = L * qkv_up_bytes;
    res.traffic.internal_bytes =
        L * (1.0 - alpha) * 2.0 * static_cast<double>(b) *
        static_cast<double>(s_mid) * kv_dim_bytes;
    res.traffic.storage_write_bytes = L * spill_bytes_step;

    // --- Busy time per decode step ---
    res.busy.gpu = L * gpu_stage;
    // CPU: partial-score precompute for buffered entries (tiny GEMV).
    const double partial_flops =
        static_cast<double>(b * m.heads) *
        (static_cast<double>(opts_.spill_interval) / 2.0) *
        static_cast<double>(d) * 2.0;
    res.busy.cpu = L * cpu.computeTime(partial_flops) +
                   0.02 * res.decode_step_time;  // orchestration
    res.busy.dram = L * std::max(weight, xt.t_pci);
    res.busy.storage = L * (xt.t_ssd + wb_spill);
    res.busy.fpga = L * std::max(kernel_per_dev, xt.t_ssd);

    const ResourceModel rm;
    res.fpga_power_watts = rm.powerWatts(d_group);

    const double steps = static_cast<double>(cfg.output_len);
    ComponentBusy run_busy;
    run_busy.gpu = res.busy.gpu * steps + res.prefill_time * 0.9;
    run_busy.cpu = res.busy.cpu * steps;
    run_busy.dram = res.busy.dram * steps + res.prefill_time * 0.3;
    run_busy.storage =
        res.busy.storage * steps + L * prefill_write;
    run_busy.fpga = res.busy.fpga * steps;
    res.energy = computeEnergy(sys_, StorageKind::SmartSsds, N,
                               res.total_time, run_busy,
                               res.fpga_power_watts);
    return res;
}

}  // namespace hilos
