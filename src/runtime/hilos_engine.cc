#include "runtime/hilos_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "accel/cycle_model.h"
#include "accel/resource_model.h"
#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/plan_cache.h"
#include "runtime/prefill_constants.h"
#include "runtime/writeback.h"

namespace hilos {

HilosEngine::HilosEngine(const SystemConfig &sys, const HilosOptions &opts)
    : sys_(sys), opts_(opts)
{
    HILOS_ASSERT(opts_.num_devices >= 1 && opts_.num_devices <= 16,
                 "HILOS supports 1..16 SmartSSDs");
    HILOS_ASSERT(opts_.spill_interval >= 1, "invalid spill interval");
}

std::string
HilosEngine::name() const
{
    if (!opts_.xcache && !opts_.delayed_writeback)
        return "ANS(" + std::to_string(opts_.num_devices) + ")";
    if (!opts_.xcache)
        return "ANS+WB(" + std::to_string(opts_.num_devices) + ")";
    if (!opts_.delayed_writeback)
        return "ANS+X(" + std::to_string(opts_.num_devices) + ")";
    return "HILOS(" + std::to_string(opts_.num_devices) + " SmartSSDs)";
}

Bandwidth
HilosEngine::internalReadBw() const
{
    return static_cast<double>(opts_.num_devices) *
           sys_.smartssd.p2p_read_bw;
}

Bandwidth
HilosEngine::gdsBw() const
{
    // GDS loads are software-limited well below the uplink; with few
    // devices the source NAND read rate can bind instead.
    return std::min(sys_.gds_effective_bw, internalReadBw());
}

double
HilosEngine::alphaFor(const RunConfig &cfg, Bandwidth fleet_read,
                      Bandwidth gds) const
{
    if (!opts_.xcache)
        return 0.0;
    if (opts_.alpha_override >= 0.0)
        return opts_.alpha_override;
    const XCacheScheduler sched(fleet_read, gds,
                                sys_.gpu.fp16_peak *
                                    sys_.gpu.gemm_efficiency);
    return sched.bestAlpha(cfg.batch,
                           midGenerationContext(cfg.context_len, cfg.output_len),
                           cfg.model.hidden,
                           cfg.model.kv_heads * cfg.model.headDim());
}

double
HilosEngine::selectedAlpha(const RunConfig &cfg) const
{
    return alphaFor(cfg, internalReadBw(), gdsBw());
}

HilosEngine::FleetConditions
HilosEngine::idealConditions() const
{
    FleetConditions cond;
    cond.devices = opts_.num_devices;
    cond.retry = opts_.fault_plan.retry;
    return cond;
}

RunResult
HilosEngine::run(const RunConfig &cfg) const
{
    if (opts_.fault_plan.empty())
        return runConditioned(cfg, idealConditions());
    return runWithFaults(cfg);
}

RunResult
HilosEngine::runCached(const RunConfig &cfg, PlanCache &cache) const
{
    if (!opts_.fault_plan.empty())
        return runWithFaults(cfg);
    const FleetConditions cond = idealConditions();
    RunResult res;
    const StepPlan &plan = cache.build(
        PlanCache::keyOf(name(), cfg.model.name), [&](StepPlan &p) {
            res = RunResult{};
            makePlan(cfg, cond, res, p);
        });
    if (!plan.feasible)
        return res;
    const std::uint64_t prefill_key =
        PlanCache::keyOf(name(), cfg.model.name, PlanPhase::Prefill);
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        const StepPlan &pre = cache.build(
            prefill_key,
            [&](StepPlan &p) {
                makePrefillPlan(cfg, cond, i, cfg.prefill_chunks, p);
            });
        if (!applyPrefillPlan(pre, res))
            return res;
    }
    applyPlan(plan, cfg, res);
    return res;
}

RunResult
HilosEngine::runConditioned(const RunConfig &cfg,
                            const FleetConditions &cond) const
{
    HILOS_ASSERT(cfg.prefill_chunks >= 1, "prefill_chunks must be >= 1");
    RunResult res;
    StepPlan plan;
    makePlan(cfg, cond, res, plan);
    if (!plan.feasible)
        return res;
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        StepPlan pre;
        makePrefillPlan(cfg, cond, i, cfg.prefill_chunks, pre);
        if (!applyPrefillPlan(pre, res))
            return res;
    }
    applyPlan(plan, cfg, res);
    return res;
}

StepPlan
HilosEngine::decodeStepPlan(const RunConfig &cfg) const
{
    RunResult scratch;
    StepPlan plan;
    makePlan(cfg, idealConditions(), scratch, plan);
    return plan;
}

StepPlan
HilosEngine::prefillStepPlan(const RunConfig &cfg,
                             std::uint64_t chunk_index,
                             std::uint64_t chunk_count) const
{
    StepPlan plan;
    makePrefillPlan(cfg, idealConditions(), chunk_index, chunk_count,
                    plan);
    return plan;
}

void
HilosEngine::makePlan(const RunConfig &cfg, const FleetConditions &cond,
                      RunResult &res, StepPlan &plan) const
{
    HILOS_ASSERT(cond.devices >= 1, "fleet conditions need >= 1 device");
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const Cpu cpu(sys_.cpu);
    const unsigned N = cond.devices;
    const double L = static_cast<double>(m.layers);
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;
    const std::uint64_t d = m.headDim();
    const std::uint64_t d_group = m.dGroup();

    // Fault-conditioned bandwidths. With identity derates every product
    // below multiplies by exactly 1.0, so the zero-fault path stays
    // bit-identical to the unconditioned engine.
    const Bandwidth p2p_read = sys_.smartssd.p2p_read_bw * cond.p2p_derate;
    const Bandwidth p2p_write =
        sys_.smartssd.p2p_write_bw * cond.p2p_derate;
    const Bandwidth uplink_bw =
        sys_.chassis_uplink_bw * cond.uplink_derate;
    const Bandwidth fleet_read = static_cast<double>(N) * p2p_read;
    const Bandwidth gds = std::min(sys_.gds_effective_bw, fleet_read);

    res.effective_batch = cfg.batch;
    const std::uint64_t b = cfg.batch;
    std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);
    // Sliding-window variants attend (and keep) only the window.
    if (opts_.attention_window > 0)
        s_mid = std::min(s_mid, opts_.attention_window);

    // Capacity: fleet NAND must hold weights (if storage-resident) plus
    // the full KV/X cache; always generous at <=16 x 3.84 TB but check.
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double alpha = alphaFor(cfg, fleet_read, gds);
    const double kv_dim_bytes = static_cast<double>(
        m.kv_heads * d * m.dtype_bytes);  // one K or V row per token
    const double cache_bytes_per_tok_layer =
        alpha * static_cast<double>(m.xBytesPerTokenPerLayer()) +
        (1.0 - alpha) * 2.0 * kv_dim_bytes;
    const double fleet_capacity =
        static_cast<double>(N) *
        static_cast<double>(sys_.smartssd.nand.capacity);
    const std::uint64_t kept_seq =
        opts_.attention_window > 0
            ? std::min(total_seq, opts_.attention_window)
            : total_seq;
    const double cache_total = cache_bytes_per_tok_layer * L *
                               static_cast<double>(b) *
                               static_cast<double>(kept_seq);
    const double weights_on_fleet =
        home == WeightHome::Storage
            ? static_cast<double>(m.weightBytesTotal())
            : 0.0;
    if (cache_total + weights_on_fleet > fleet_capacity) {
        res.feasible = false;
        res.note = "SmartSSD fleet capacity exceeded";
        plan.feasible = false;
        plan.note = res.note;
        return;
    }

    // --- Per-layer decode stages ---
    // Weights stripe across all installed SmartSSDs (16 in the chassis)
    // even when only N of them run attention kernels; failed devices
    // drop out of the stripe.
    const unsigned installed =
        std::max(sys_.installed_smartssds - cond.failed_devices, N);
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw,
        std::min(uplink_bw,
                 static_cast<double>(installed) *
                     sys_.smartssd.nand.seq_read_bw));

    // Host GPU work: projections and MLP (always), plus the X-cache
    // portion's K/V regeneration and attention.
    const Seconds gpu_base = qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    const XCacheScheduler sched(fleet_read, gds,
                                sys_.gpu.fp16_peak *
                                    sys_.gpu.gemm_efficiency);
    const XCacheTimes xt =
        sched.times(alpha, b, s_mid, m.hidden, m.kv_heads * d);
    const Seconds gpu_xattn =
        alpha * gpuAttentionTime(gpu, m, b, s_mid);
    const Seconds gpu_stage = gpu_base + xt.t_gpu + gpu_xattn;

    // Query/key/value upload to the devices (the 6h-byte write of §4.1)
    // and the attention-output return (the 2h-byte read).
    const Bytes qkv_up_bytes =
        static_cast<double>(b) *
        (static_cast<double>(m.hidden) + 2.0 * kv_dim_bytes /
                                             m.dtype_bytes) *
        static_cast<double>(m.dtype_bytes);
    const Bytes out_ret_bytes =
        static_cast<double>(b * m.hidden * m.dtype_bytes);
    const Seconds qkv_up = qkv_up_bytes / uplink_bw;
    const Seconds out_ret = out_ret_bytes / uplink_bw;

    // For >100B models the weights live on the SmartSSD NAND and their
    // reads steal NAND bandwidth from the internal P2P feed.
    const Seconds weight_nand =
        home == WeightHome::Storage
            ? m.loadedWeightBytesPerLayer(b) /
                  (static_cast<double>(installed) *
                   sys_.smartssd.nand.seq_read_bw)
            : Seconds(0.0);

    // NSP attention: internal NAND reads (the xt.t_ssd term) race the
    // accelerator kernels; kernels consume from on-board DRAM far
    // faster than the 3 GB/s P2P feed, so storage I/O binds (§4.1).
    const CycleModelConfig cm_cfg;
    const CycleModel cm(cm_cfg);
    const double slices_total =
        (1.0 - alpha) * static_cast<double>(b * m.kv_heads);
    const double slices_per_dev =
        slices_total / static_cast<double>(N);
    const Seconds kernel_per_dev =
        slices_per_dev * cm.kernelTime(s_mid, d, d_group);

    // Expected ECC read-retry and NVMe timeout/backoff recovery time
    // per layer: one KV-slice read per slice on each device's internal
    // path. Exactly 0 under zero fault probability.
    const Seconds retry_per_slice =
        cond.retry.expectedEccPenalty(cond.nand_error_prob) +
        cond.retry.expectedNvmePenalty(cond.nvme_timeout_prob);
    const Seconds retry_extra = slices_per_dev * retry_per_slice;

    // Delayed writeback / naive commit costs.
    Seconds wb_critical = 0.0;
    Seconds wb_spill = 0.0;
    double wb_wa = 1.0;
    double spill_bytes_step = 0.0;
    if (opts_.delayed_writeback) {
        WritebackCostInputs win;
        win.slices = b * m.kv_heads;
        win.head_dim = d;
        win.d_group = d_group;
        win.spill_interval = opts_.spill_interval;
        win.devices = N;
        win.host_link_bw = uplink_bw;
        win.device_write_bw = p2p_write;
        win.xrt_sync_base = sys_.xrt_sync_base;
        win.cxl_coherent = opts_.cxl_mode;
        const WritebackCosts wc = writebackCosts(win);
        wb_critical = wc.criticalPath();
        wb_spill = wc.spill_time;
        wb_wa = wc.write_amplification;
        spill_bytes_step = static_cast<double>(b * m.kv_heads) * 2.0 *
                           static_cast<double>(d * m.dtype_bytes) * wb_wa;
    } else {
        // Naive: every 256 B KV entry commits via direct I/O before the
        // attention can read it (Fig. 6(a)).
        wb_critical = naiveWritebackTime(
            b * m.kv_heads, N, 2 * d * m.dtype_bytes,
            sys_.smartssd.nand.write_latency, usec(230));
        wb_wa = static_cast<double>(sys_.smartssd.nand.page_bytes) /
                static_cast<double>(2 * d * m.dtype_bytes);
        spill_bytes_step = static_cast<double>(b * m.kv_heads) *
                           static_cast<double>(
                               sys_.smartssd.nand.page_bytes);
    }

    // Shared-uplink occupancy check: weights (when storage-resident),
    // X loads, QKV uploads and returns all cross the chassis uplink.
    const Bytes uplink_bytes =
        (home == WeightHome::Storage ? m.loadedWeightBytesPerLayer(b)
                                     : Bytes(0.0)) +
        Bytes(alpha * static_cast<double>(b) *
              static_cast<double>(s_mid) * static_cast<double>(m.hidden) *
              2.0) +
        qkv_up_bytes + out_ret_bytes;
    const Seconds uplink_time = uplink_bytes / uplink_bw;

    // --- The decode-step plan ---
    // Weight staging, the NSP attention branch (internal reads, spills,
    // NAND weight reads, retry recovery in series; kernels, X loads and
    // the racing GPU portion in parallel), host GPU work and the shared
    // uplink all pipeline; the slowest binds. The QKV upload, the
    // attention-output return and the writeback commit then serialise.
    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("gpu_compute");
    plan.declareStage("internal_storage_io");
    plan.declareStage("nsp_kernel");
    plan.declareStage("xcache_pci");
    plan.declareStage("qkv_upload");
    plan.declareStage("output_return");
    plan.declareStage("writeback");
    const bool has_retry = retry_extra > 0.0;
    if (has_retry)
        plan.declareStage("fault_retry");
    plan.declareResource(PlanResource::Uplink, 1);
    plan.declareResource(PlanResource::Gds, 1);
    plan.declareResource(PlanResource::P2p, N);
    plan.declareResource(PlanResource::Storage, N);

    const double h_bytes =
        static_cast<double>(m.hidden * m.dtype_bytes);
    const double x_load_bytes = alpha * static_cast<double>(b) *
                                static_cast<double>(s_mid) * h_bytes;
    const double internal_layer_bytes =
        (1.0 - alpha) * 2.0 * static_cast<double>(b) *
        static_cast<double>(s_mid) * kv_dim_bytes;
    const double loaded_weight = m.loadedWeightBytesPerLayer(b);

    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::Uplink, "weight_stage", weight,
                   loaded_weight)
            .stageTag("load_weight")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, loaded_weight)
            .asPrefetch());
    const std::size_t op_ssd = plan.addOp(
        transferOp(PlanResource::Storage, "internal_kv_read", xt.t_ssd,
                   internal_layer_bytes)
            .withFanout(N)
            .stageTag("internal_storage_io")
            .busyTag(kBusyStorage | kBusyFpga)
            .share(TrafficField::Internal, internal_layer_bytes));
    const std::size_t op_spill = plan.addOp(
        transferOp(PlanResource::Storage, "writeback_spill", wb_spill,
                   spill_bytes_step)
            .withFanout(N)
            .stageTag("internal_storage_io")
            .busyTag(kBusyStorage)
            .share(TrafficField::StorageWrite, spill_bytes_step)
            .dep(op_ssd));
    const std::size_t op_wnand = plan.addOp(
        transferOp(PlanResource::Storage, "weight_nand_read", weight_nand,
                   home == WeightHome::Storage ? loaded_weight : 0.0)
            .withFanout(N)
            .dep(op_spill));
    StepOp retry_op =
        transferOp(PlanResource::Storage, "fault_retry", retry_extra, 0.0)
            .busyTag(kBusyStorage)
            .dep(op_wnand);
    if (has_retry)
        retry_op.stageTag("fault_retry");
    const std::size_t op_retry = plan.addOp(retry_op);
    const std::size_t op_kernel = plan.addOp(
        computeOp(ComputeUnit::Fpga, "nsp_kernel", kernel_per_dev)
            .stageTag("nsp_kernel")
            .busyTag(kBusyFpga));
    const std::size_t op_xload = plan.addOp(
        transferOp(PlanResource::Gds, "xcache_load", xt.t_pci,
                   x_load_bytes)
            .stageTag("xcache_pci")
            .busyTag(kBusyDram)
            .asPrefetch());
    const std::size_t op_gpu = plan.addOp(
        computeOp(ComputeUnit::Gpu, "gpu_compute", gpu_stage)
            .stageTag("gpu_compute")
            .busyTag(kBusyGpu));
    // The attention stage races the same GPU X-cache portion that
    // gpu_compute already times and accounts: shadow (timed only).
    const std::size_t op_xrace = plan.addOp(
        computeOp(ComputeUnit::Gpu, "xattn_race", gpu_xattn + xt.t_gpu)
            .asShadow());
    const std::size_t op_uplink = plan.addOp(
        transferOp(PlanResource::Uplink, "uplink_occupancy", uplink_time,
                   uplink_bytes)
            .asShadow());
    const std::size_t op_qkv = plan.addOp(
        transferOp(PlanResource::Uplink, "qkv_upload", qkv_up,
                   qkv_up_bytes)
            .stageTag("qkv_upload")
            .share(TrafficField::HostWrite, qkv_up_bytes)
            .share(TrafficField::AttnHostWrite, qkv_up_bytes)
            .dep(op_weight)
            .dep(op_retry)
            .dep(op_kernel)
            .dep(op_xload)
            .dep(op_gpu)
            .dep(op_xrace)
            .dep(op_uplink));
    const std::size_t op_out = plan.addOp(
        transferOp(PlanResource::Uplink, "output_return", out_ret,
                   out_ret_bytes)
            .stageTag("output_return")
            .share(TrafficField::AttnHostRead, out_ret_bytes)
            .share(TrafficField::AttnHostRead, x_load_bytes)
            .share(TrafficField::HostRead, out_ret_bytes)
            .share(TrafficField::HostRead, x_load_bytes)
            .dep(op_qkv));
    plan.addOp(
        transferOp(PlanResource::Uplink, "writeback_commit", wb_critical,
                   spill_bytes_step)
            .stageTag("writeback")
            .dep(op_out));
    // CPU: partial-score precompute for buffered entries (tiny GEMV);
    // occupancy only, never on the critical path.
    const double partial_flops =
        static_cast<double>(b * m.heads) *
        (static_cast<double>(opts_.spill_interval) / 2.0) *
        static_cast<double>(d) * 2.0;
    plan.addOp(computeOp(ComputeUnit::Cpu, "cpu_partial_scores",
                         cpu.computeTime(partial_flops))
                   .busyTag(kBusyCpu)
                   .asOffline());
    plan.busy_step_fraction.cpu = 0.02;  // orchestration

    res.faults.retry_time = L * retry_extra;  // per decode step

    const ResourceModel rm;
    res.fpga_power_watts = rm.powerWatts(d_group);

    // --- Energy spec over the whole run ---
    plan.energy.enabled = true;
    plan.energy.sys = sys_;
    plan.energy.kind = StorageKind::SmartSsds;
    plan.energy.devices = N;
    plan.energy.fpga_power = res.fpga_power_watts;
}

void
HilosEngine::makePrefillPlan(const RunConfig &cfg,
                             const FleetConditions &cond,
                             std::uint64_t chunk_index,
                             std::uint64_t chunk_count,
                             StepPlan &plan) const
{
    HILOS_ASSERT(cond.devices >= 1, "fleet conditions need >= 1 device");
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const unsigned N = cond.devices;
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;
    const std::uint64_t d = m.headDim();
    const std::uint64_t b = cfg.batch;

    plan.phase = PlanPhase::Prefill;
    plan.chunk_index = chunk_index;
    plan.chunk_count = chunk_count;

    const Bandwidth p2p_read = sys_.smartssd.p2p_read_bw * cond.p2p_derate;
    const Bandwidth p2p_write =
        sys_.smartssd.p2p_write_bw * cond.p2p_derate;
    const Bandwidth uplink_bw =
        sys_.chassis_uplink_bw * cond.uplink_derate;
    const Bandwidth fleet_read = static_cast<double>(N) * p2p_read;
    const Bandwidth gds = std::min(sys_.gds_effective_bw, fleet_read);

    // Same fleet capacity check as the decode plan, so a standalone
    // prefill plan reports infeasibility in exactly the same configs.
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double alpha = alphaFor(cfg, fleet_read, gds);
    const double kv_dim_bytes = static_cast<double>(
        m.kv_heads * d * m.dtype_bytes);
    const double cache_bytes_per_tok_layer =
        alpha * static_cast<double>(m.xBytesPerTokenPerLayer()) +
        (1.0 - alpha) * 2.0 * kv_dim_bytes;
    const double fleet_capacity =
        static_cast<double>(N) *
        static_cast<double>(sys_.smartssd.nand.capacity);
    const std::uint64_t kept_seq =
        opts_.attention_window > 0
            ? std::min(total_seq, opts_.attention_window)
            : total_seq;
    const double cache_total = cache_bytes_per_tok_layer *
                               static_cast<double>(m.layers) *
                               static_cast<double>(b) *
                               static_cast<double>(kept_seq);
    const double weights_on_fleet =
        home == WeightHome::Storage
            ? static_cast<double>(m.weightBytesTotal())
            : 0.0;
    if (cache_total + weights_on_fleet > fleet_capacity) {
        plan.feasible = false;
        plan.note = "SmartSSD fleet capacity exceeded";
        return;
    }

    const auto [start, end] =
        prefillChunkRange(cfg.context_len, chunk_index, chunk_count);
    plan.chunk_tokens = end - start;

    // Weights stripe over the installed fleet exactly as in decode.
    const unsigned installed =
        std::max(sys_.installed_smartssds - cond.failed_devices, N);
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw,
        std::min(uplink_bw,
                 static_cast<double>(installed) *
                     sys_.smartssd.nand.seq_read_bw));
    const Seconds prefill_compute =
        prefillChunkComputeTime(gpu, m, b, start, end);
    // The chunk's share of the KV/X cache commits to the fleet over the
    // narrower of the chassis uplink and the aggregate P2P write path.
    const double chunk_cache_bytes =
        cache_bytes_per_tok_layer * static_cast<double>(b) *
        static_cast<double>(end - start);
    const Bandwidth prefill_write_bw =
        std::min(uplink_bw, static_cast<double>(N) * p2p_write);
    const Seconds prefill_write =
        Bytes(chunk_cache_bytes) / prefill_write_bw;

    // Per layer: the weight stream races the GPU prefill compute, then
    // the produced KV/X rows commit before the next layer starts.
    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("prefill_compute");
    plan.declareStage("kv_writeback");
    plan.declareResource(PlanResource::Uplink, 1);
    plan.declareResource(PlanResource::Storage, N);

    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::Uplink, "weight_stage", weight,
                   m.loadedWeightBytesPerLayer(b))
            .stageTag("load_weight"));
    const std::size_t op_compute = plan.addOp(
        computeOp(ComputeUnit::Gpu, "prefill_compute", prefill_compute)
            .stageTag("prefill_compute"));
    plan.addOp(transferOp(PlanResource::Storage, "prefill_kv_write",
                          prefill_write, chunk_cache_bytes)
                   .stageTag("kv_writeback")
                   .busyTag(kBusyStorage)
                   .dep(op_weight)
                   .dep(op_compute));

    plan.busy_step_fraction.gpu = kPrefillGpuBusyFraction;
    plan.busy_step_fraction.dram = kPrefillDramBusyFractionNsp;
}

RunResult
HilosEngine::runWithFaults(const RunConfig &cfg) const
{
    const ModelConfig &m = cfg.model;
    const unsigned N = opts_.num_devices;
    const double L = static_cast<double>(m.layers);
    const std::uint64_t b = cfg.batch;
    const std::uint64_t d = m.headDim();
    const FaultInjector inj(opts_.fault_plan, N);
    const RetryPolicy &rp = opts_.fault_plan.retry;

    // The analytic model uses only closed-form fault expectations, so a
    // plan's probabilistic events never consume RNG state here; timed
    // events partition the run into constant-condition epochs.
    const auto conditionsAt = [&](Seconds now) {
        FleetConditions c;
        c.retry = rp;
        c.devices = inj.survivingDevices(now);
        c.failed_devices = N - c.devices;
        // The slice pipeline is statically partitioned, so the slowest
        // surviving device binds each epoch: take the worst derate and
        // the worst fault probabilities across survivors.
        double derate = 1.0;
        double nand_p = 0.0;
        double nvme_p = 0.0;
        for (unsigned dev = 0; dev < N; ++dev) {
            if (inj.deviceFailed(dev, now))
                continue;
            derate = std::min(derate, inj.linkDerate(dev, now));
            nand_p = std::max(nand_p, inj.nandErrorProbability(dev));
            nvme_p = std::max(nvme_p, inj.nvmeTimeoutProbability(dev));
        }
        c.p2p_derate = derate;
        c.uplink_derate = inj.uplinkDerate(now);
        c.nand_error_prob = nand_p;
        c.nvme_timeout_prob = nvme_p;
        return c;
    };

    const RunResult ideal = runConditioned(cfg, idealConditions());

    const FleetConditions c0 = conditionsAt(0.0);
    if (c0.devices == 0) {
        RunResult res;
        res.feasible = false;
        res.note =
            "fault plan fails every SmartSSD at run start; no surviving "
            "fleet to serve attention shards";
        res.faults.devices_failed = N;
        res.faults.devices_surviving = 0;
        res.faults.availability = 0.0;
        res.faults.requests_failed = cfg.batch;
        return res;
    }

    RunResult first = runConditioned(cfg, c0);
    first.faults.devices_failed = c0.failed_devices;
    first.faults.devices_surviving = c0.devices;
    if (!first.feasible)
        return first;

    const double kv_dim_bytes =
        static_cast<double>(m.kv_heads * d * m.dtype_bytes);
    const auto epochAlpha = [&](const FleetConditions &c) {
        const Bandwidth fleet_read = static_cast<double>(c.devices) *
                                     sys_.smartssd.p2p_read_bw *
                                     c.p2p_derate;
        const Bandwidth gds = std::min(sys_.gds_effective_bw, fleet_read);
        return alphaFor(cfg, fleet_read, gds);
    };

    FaultSummary fs;
    fs.retry_time = 0.0;

    RunResult res = first;
    if (cfg.output_len == 0) {
        fs.devices_failed = c0.failed_devices;
        fs.devices_surviving = c0.devices;
        fs.availability =
            static_cast<double>(c0.devices) / static_cast<double>(N);
        fs.degraded_step_time = first.decode_step_time;
        fs.slowdown = ideal.decode_step_time > 0.0
                          ? first.decode_step_time / ideal.decode_step_time
                          : 1.0;
        res.faults = fs;
        return res;
    }

    // Blend per-epoch decode predictions weighted by tokens generated
    // in each epoch; a failure boundary additionally charges the shard
    // rebuild onto the surviving fleet.
    res.breakdown = StageBreakdown();
    res.traffic = TrafficCounters();
    res.busy = ComponentBusy();
    res.decode_step_time = 0.0;

    const std::vector<Seconds> events = inj.eventTimes();
    const double out_tokens = static_cast<double>(cfg.output_len);
    Seconds now = first.prefill_time;
    std::uint64_t remaining = cfg.output_len;
    unsigned prev_devices = c0.devices;
    unsigned last_devices = c0.devices;
    Seconds decode_time = 0.0;
    Seconds last_step = first.decode_step_time;
    double weighted_devices = 0.0;
    double exp_nand_errors = 0.0;
    double exp_nand_steps = 0.0;
    double exp_nvme_timeouts = 0.0;
    double exp_redispatch = 0.0;

    while (remaining > 0) {
        const FleetConditions c = conditionsAt(now);
        if (c.devices == 0) {
            res.feasible = false;
            res.note =
                "all SmartSSDs failed mid-run; no surviving fleet to "
                "re-dispatch attention shards";
            fs.devices_failed = N;
            fs.devices_surviving = 0;
            fs.availability =
                weighted_devices / (out_tokens * static_cast<double>(N));
            fs.requests_failed = res.effective_batch;
            res.faults = fs;
            return res;
        }
        const double alpha_k = epochAlpha(c);

        if (c.devices < prev_devices) {
            // KV/X shards of the newly failed devices rebuild onto the
            // survivors over the uplink/GDS write path before decoding
            // resumes (slices re-dispatched, cache re-sharded).
            const unsigned lost = prev_devices - c.devices;
            const std::uint64_t done = cfg.output_len - remaining;
            std::uint64_t seq_now = cfg.context_len + done;
            if (opts_.attention_window > 0)
                seq_now = std::min(seq_now, opts_.attention_window);
            const double cache_per_tok_layer =
                alpha_k *
                    static_cast<double>(m.xBytesPerTokenPerLayer()) +
                (1.0 - alpha_k) * 2.0 * kv_dim_bytes;
            const double cache_now = cache_per_tok_layer * L *
                                     static_cast<double>(b) *
                                     static_cast<double>(seq_now);
            const double lost_bytes =
                cache_now * static_cast<double>(lost) /
                static_cast<double>(prev_devices);
            const Bandwidth rebuild_bw = std::min(
                sys_.chassis_uplink_bw * c.uplink_derate,
                static_cast<double>(c.devices) *
                    sys_.smartssd.p2p_write_bw * c.p2p_derate);
            const Seconds rebuild = Bytes(lost_bytes) / rebuild_bw;
            fs.rebuild_time += rebuild;
            now += rebuild;
            exp_redispatch += (1.0 - alpha_k) *
                              static_cast<double>(b * m.kv_heads) *
                              static_cast<double>(lost) /
                              static_cast<double>(prev_devices);
        }

        const RunResult r = runConditioned(cfg, c);
        if (!r.feasible) {
            res.feasible = false;
            res.note = r.note + " on the surviving fleet (" +
                       std::to_string(c.devices) + " of " +
                       std::to_string(N) + " SmartSSDs)";
            fs.devices_failed = c.failed_devices;
            fs.devices_surviving = c.devices;
            fs.availability =
                weighted_devices / (out_tokens * static_cast<double>(N));
            fs.requests_failed = res.effective_batch;
            res.faults = fs;
            return res;
        }
        const Seconds step = r.decode_step_time;
        HILOS_ASSERT(step > 0.0, "degraded decode step must be positive");

        // Tokens until the next timed event flips conditions.
        Seconds next_ev = std::numeric_limits<Seconds>::infinity();
        for (const Seconds ev : events) {
            if (ev > now + 1e-12) {
                next_ev = ev;
                break;
            }
        }
        std::uint64_t tokens = remaining;
        if (std::isfinite(next_ev)) {
            const double span = (next_ev - now) / step;
            const auto fit = static_cast<std::uint64_t>(std::ceil(span));
            tokens = std::min(remaining,
                              std::max<std::uint64_t>(1, fit));
        }

        const double w = static_cast<double>(tokens) / out_tokens;
        accumulateWeighted(res, r, w);
        fs.retry_time += static_cast<double>(tokens) * r.faults.retry_time;

        // Expected discrete fault counts: one KV-slice read per slice
        // per layer per step.
        const double reads =
            static_cast<double>(tokens) * (1.0 - alpha_k) *
            static_cast<double>(b * m.kv_heads) * L;
        exp_nand_errors += reads * c.nand_error_prob;
        exp_nand_steps +=
            reads * c.nand_error_prob *
            (1.0 + static_cast<double>(rp.ecc_max_steps)) / 2.0;
        exp_nvme_timeouts += reads * c.nvme_timeout_prob;

        decode_time += static_cast<double>(tokens) * step;
        weighted_devices +=
            static_cast<double>(tokens) * static_cast<double>(c.devices);
        now += static_cast<double>(tokens) * step;
        remaining -= tokens;
        prev_devices = c.devices;
        last_devices = c.devices;
        last_step = step;
    }

    res.total_time = res.prefill_time + decode_time + fs.rebuild_time;

    fs.devices_failed = N - last_devices;
    fs.devices_surviving = last_devices;
    fs.availability =
        weighted_devices / (out_tokens * static_cast<double>(N));
    fs.degraded_step_time = last_step;
    fs.slowdown = ideal.decode_step_time > 0.0
                      ? res.decode_step_time / ideal.decode_step_time
                      : 1.0;
    fs.nand_read_errors =
        static_cast<std::uint64_t>(std::llround(exp_nand_errors));
    fs.nand_retry_steps =
        static_cast<std::uint64_t>(std::llround(exp_nand_steps));
    fs.nvme_timeouts =
        static_cast<std::uint64_t>(std::llround(exp_nvme_timeouts));
    fs.nvme_retries = fs.nvme_timeouts;
    fs.redispatched_slices =
        static_cast<std::uint64_t>(std::llround(exp_redispatch));
    // Every in-flight request that a rebuild or retry delayed still
    // completed — degraded, never failed, on this (feasible) path.
    if (fs.rebuild_time > 0.0 || fs.retry_time > 0.0)
        fs.requests_degraded = res.effective_batch;
    res.faults = fs;

    // Whole-run energy from the token-weighted busy profile plus the
    // prefill phase's plan-derived busy time; devices that failed
    // before the run started never power on. The storage term formerly
    // charged a flat 0.5 x prefill_time here while the zero-fault path
    // charged the actual per-layer KV commit time — both paths now
    // share the prefill plan's accounting.
    const double steps = out_tokens;
    ComponentBusy run_busy;
    run_busy.gpu = res.busy.gpu * steps + res.prefill_busy.gpu;
    run_busy.cpu = res.busy.cpu * steps + res.prefill_busy.cpu;
    run_busy.dram = res.busy.dram * steps + res.prefill_busy.dram;
    run_busy.storage = res.busy.storage * steps + res.prefill_busy.storage;
    run_busy.fpga = res.busy.fpga * steps + res.prefill_busy.fpga;
    res.energy = computeEnergy(sys_, StorageKind::SmartSsds, c0.devices,
                               res.total_time, run_busy,
                               res.fpga_power_watts);
    return res;
}

}  // namespace hilos
