#include "runtime/xcache.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hilos {

Seconds
XCacheTimes::effective() const
{
    return std::max({t_pci, t_gpu, t_ssd});
}

XCacheScheduler::XCacheScheduler(Bandwidth ssd_bw, Bandwidth pci_bw,
                                 FlopRate gpu_flops)
    : ssd_bw_(ssd_bw), pci_bw_(pci_bw), gpu_flops_(gpu_flops)
{
    HILOS_ASSERT(ssd_bw_ > 0 && pci_bw_ > 0 && gpu_flops_ > 0,
                 "invalid X-cache scheduler bandwidths");
}

double
XCacheScheduler::analyticAlpha() const
{
    return 2.0 * pci_bw_ / (ssd_bw_ + pci_bw_);
}

const std::vector<double> &
XCacheScheduler::candidateAlphas()
{
    // Power-of-two fractions (plus their complements) keep the
    // batch/head partition even across devices.
    static const std::vector<double> kCandidates = {0.0,  0.125, 0.25,
                                                    0.5,  0.75,  1.0};
    return kCandidates;
}

double
XCacheScheduler::selectAlpha() const
{
    const double target = std::min(1.0, analyticAlpha());
    double best = 0.0;
    double best_dist = 2.0;
    for (double c : candidateAlphas()) {
        const double dist = std::fabs(c - target);
        if (dist < best_dist || (dist == best_dist && c > best)) {
            best_dist = dist;
            best = c;
        }
    }
    return best;
}

double
XCacheScheduler::bestAlpha(std::uint64_t batch, std::uint64_t s,
                           std::uint64_t h, std::uint64_t kv) const
{
    double best = 0.0;
    Seconds best_time = times(0.0, batch, s, h, kv).effective();
    for (double c : candidateAlphas()) {
        const Seconds t = times(c, batch, s, h, kv).effective();
        if (t < best_time) {
            best_time = t;
            best = c;
        }
    }
    return best;
}

XCacheTimes
XCacheScheduler::times(double alpha, std::uint64_t batch, std::uint64_t s,
                       std::uint64_t h, std::uint64_t kv) const
{
    HILOS_ASSERT(alpha >= 0.0 && alpha <= 1.0, "alpha out of range: ",
                 alpha);
    const double b = static_cast<double>(batch);
    const double ss = static_cast<double>(s);
    const double hh = static_cast<double>(h);
    const double kvw = static_cast<double>(kv);

    XCacheTimes t;
    // X transfer: alpha portion of the batch, s x h halves each.
    t.t_pci = Bytes(alpha * b * ss * hh * 2.0) / pci_bw_;
    // K and V regeneration: X (s x h) times W_K and W_V (h x kv). The
    // paper's first-order model (§4.2) counts 2 s h^2 operations per
    // block; tensor cores retire the MACs at near-peak rate.
    t.t_gpu = Flops(alpha * b * 2.0 * ss * hh * kvw) / gpu_flops_;
    // Internal storage reads: X for the alpha portion (s x h halves),
    // K+V for the rest (2 x s x kv halves). With MHA (kv == h) this is
    // exactly the paper's alpha*S_X + (1-alpha)*2*S_X expression.
    t.t_ssd = Bytes(b *
                    (alpha * ss * hh * 2.0 +
                     (1.0 - alpha) * 2.0 * ss * kvw * 2.0)) /
              ssd_bw_;
    return t;
}

}  // namespace hilos
