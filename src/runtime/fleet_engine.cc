#include "runtime/fleet_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.h"
#include "runtime/event_sim.h"
#include "runtime/step_plan.h"

namespace hilos {

namespace {

/** Token id + metadata each request contributes to the per-step sync. */
constexpr double kSyncBytesPerRequest = 16.0;

/**
 * Per-host engine options after fleet fan-out: each host runs
 * `devices_per_host` SmartSSDs under the device-scope subset of the
 * fleet's fault plan. Also the construction gate on FleetConfig
 * validity (members initialize before the engine ctor body runs).
 */
HilosOptions
fleetHostOptions(const FleetConfig &fleet, const HilosOptions &base)
{
    const std::vector<std::string> diags = fleet.validate();
    if (!diags.empty())
        HILOS_FATAL("invalid fleet config: ", diags.front());
    HilosOptions opts = base;
    opts.num_devices = fleet.devices_per_host;
    opts.fault_plan = fleet.fault_plan.deviceScope();
    return opts;
}

void
scaleTraffic(TrafficCounters &t, double factor)
{
    t.host_read_bytes *= factor;
    t.host_write_bytes *= factor;
    t.attn_host_read_bytes *= factor;
    t.attn_host_write_bytes *= factor;
    t.internal_bytes *= factor;
    t.storage_write_bytes *= factor;
}

}  // namespace

std::vector<std::string>
FleetConfig::validate() const
{
    std::vector<std::string> out;
    if (hosts < 1 || hosts > 64) {
        out.push_back("fleet: " + std::to_string(hosts) +
                      " hosts is outside [1, 64]");
    }
    if (devices_per_host < 1 || devices_per_host > 16) {
        out.push_back("fleet: " + std::to_string(devices_per_host) +
                      " devices per host is outside [1, 16]");
    }
    if (policy == PlacementPolicy::FaultAware && spare_hosts >= hosts) {
        out.push_back("fleet: " + std::to_string(spare_hosts) +
                      " spare hosts leaves no server in a fleet of " +
                      std::to_string(hosts));
    }
    if (!(std::isfinite(inter_host_bw) && inter_host_bw > 0.0)) {
        out.push_back("fleet: inter-host bandwidth must be finite and "
                      "positive");
    }
    if (!(std::isfinite(inter_host_latency) &&
          inter_host_latency >= 0.0)) {
        out.push_back("fleet: inter-host latency must be finite and "
                      "non-negative");
    }
    for (const FaultEvent &ev : fault_plan.events) {
        if (isHostScope(ev.kind) && ev.device != kAllDevices &&
            ev.device < kMaxRealTarget && ev.device >= hosts) {
            out.push_back(std::string("fleet: ") +
                          faultKindName(ev.kind) + " targets host " +
                          std::to_string(ev.device) +
                          " but the fleet has " + std::to_string(hosts) +
                          " hosts");
        }
    }
    for (const std::string &d : fault_plan.validate())
        out.push_back(d);
    return out;
}

FleetEngine::FleetEngine(const SystemConfig &sys, const FleetConfig &fleet,
                         const HilosOptions &host_opts)
    : sys_(sys), fleet_(fleet),
      host_opts_(fleetHostOptions(fleet, host_opts)),
      sched_(sys, host_opts_, fleet.policy, fleet.spare_hosts),
      host_engine_(sys, host_opts_)
{
}

std::string
FleetEngine::name() const
{
    return "Fleet(" + std::to_string(fleet_.hosts) + "x" +
           std::to_string(fleet_.devices_per_host) + "," +
           placementPolicyName(fleet_.policy) + ")";
}

Seconds
FleetEngine::coordinationTime(std::uint64_t placed_batch,
                              double derate) const
{
    if (fleet_.hosts <= 1)
        return 0.0;
    const Bytes sync_bytes =
        static_cast<double>(placed_batch) * kSyncBytesPerRequest;
    return 2.0 * fleet_.inter_host_latency +
           sync_bytes / (fleet_.inter_host_bw * derate);
}

std::vector<bool>
FleetEngine::servingMask(const HostFaultView &view, Seconds now) const
{
    std::vector<bool> serving(fleet_.hosts, true);
    for (unsigned h = 0; h < fleet_.hosts; h++) {
        if (view.hostFailed(h, now) || view.hostStalled(h, now))
            serving[h] = false;
    }
    return serving;
}

RunResult
FleetEngine::run(const RunConfig &cfg) const
{
    const unsigned H = fleet_.hosts;
    const HostFaultView view(fleet_.fault_plan, H);
    const double out_tokens = static_cast<double>(cfg.output_len);

    // Per-host analytic runs keyed by per-host batch: every epoch whose
    // placement lands the same share reuses one evaluation.
    std::map<std::uint64_t, RunResult> host_cache;
    const auto hostRun = [&](std::uint64_t b) -> const RunResult & {
        auto it = host_cache.find(b);
        if (it == host_cache.end()) {
            RunConfig host_cfg = cfg;
            host_cfg.batch = b;
            it = host_cache.emplace(b, host_engine_.run(host_cfg)).first;
        }
        return it->second;
    };

    FleetSummary fl;
    fl.hosts = H;
    fl.devices_per_host = fleet_.devices_per_host;
    fl.policy = placementPolicyName(fleet_.policy);

    const std::vector<bool> all_alive(H, true);
    const FleetPlacement p0 = sched_.place(cfg, cfg.batch, all_alive);
    if (p0.placed_batch == 0) {
        RunResult res;
        res.feasible = false;
        res.note = "no host can serve a share of this workload";
        res.faults.requests_failed = cfg.batch;
        fl.availability = 0.0;
        res.fleet = fl;
        return res;
    }
    const RunResult &ideal_host = hostRun(p0.maxHostBatch());
    if (!ideal_host.feasible) {
        RunResult res = ideal_host;
        res.note += " (per-host share of the fleet placement)";
        res.faults.requests_failed = cfg.batch;
        fl.availability = 0.0;
        res.fleet = fl;
        return res;
    }
    const Seconds ideal_coord = coordinationTime(p0.placed_batch, 1.0);
    const Seconds ideal_step = ideal_host.decode_step_time + ideal_coord;

    if (!view.active() || cfg.output_len == 0) {
        // No host-scope events (or no decode): one healthy epoch. With
        // one host this path is bit-identical to the host engine.
        RunResult res = ideal_host;
        res.effective_batch = p0.placed_batch;
        res.decode_step_time = ideal_step;
        if (H > 1)
            res.breakdown.add("inter_host_sync", ideal_coord);
        scaleTraffic(res.traffic,
                     static_cast<double>(p0.serving_hosts));
        res.energy.gpu *= p0.serving_hosts;
        res.energy.cpu *= p0.serving_hosts;
        res.energy.dram *= p0.serving_hosts;
        res.energy.storage *= p0.serving_hosts;
        res.total_time = res.prefill_time + out_tokens * ideal_step;
        res.faults.requests_failed += p0.dropped_batch;
        FleetEpoch ep;
        ep.start = res.prefill_time;
        ep.hosts_serving = p0.serving_hosts;
        ep.placed_batch = p0.placed_batch;
        ep.step_time = ideal_step;
        ep.tokens = cfg.output_len;
        fl.epochs.push_back(ep);
        fl.degraded_step_time = ideal_step;
        res.fleet = fl;
        return res;
    }

    // Cluster epochs: constant fleet conditions between host-scope
    // events, re-placed deterministically at every boundary.
    RunResult res;
    res.effective_batch = p0.placed_batch;
    propagatePrefill(ideal_host, res);
    res.fpga_power_watts = ideal_host.fpga_power_watts;
    res.faults = ideal_host.faults;

    const std::vector<Seconds> events = view.eventTimes();
    const auto nextEventAfter = [&](Seconds t) -> Seconds {
        for (const Seconds ev : events) {
            if (ev > t + 1e-12)
                return ev;
        }
        return std::numeric_limits<Seconds>::infinity();
    };

    Seconds now = res.prefill_time;
    std::uint64_t remaining = cfg.output_len;
    std::uint64_t done = 0;
    std::uint64_t max_dropped = p0.dropped_batch;
    Seconds decode_time = 0.0;
    Seconds last_step = ideal_step;
    double weighted_serving = 0.0;
    unsigned charged_failures = 0;
    bool rebuilt = false;
    FleetPlacement prev_place = p0;

    const auto finish = [&](RunResult &r) {
        const Seconds run_end = now;
        for (const HostFaultView::StallWindow &w : view.stalls()) {
            if (w.escalated || w.begin >= run_end)
                continue;
            fl.host_stalls++;
            fl.stall_time += std::min(w.end, run_end) - w.begin;
        }
        unsigned failed_end = 0;
        for (unsigned h = 0; h < H; h++)
            failed_end += view.hostFailed(h, run_end) ? 1 : 0;
        fl.hosts_failed = failed_end;
        fl.availability =
            out_tokens > 0.0
                ? weighted_serving /
                      (out_tokens * static_cast<double>(H))
                : 0.0;
        fl.degraded_step_time = last_step;
        fl.slowdown = ideal_step > 0.0
                          ? r.decode_step_time / ideal_step
                          : 1.0;
        r.fleet = fl;
    };

    while (remaining > 0) {
        unsigned failed_now = 0;
        for (unsigned h = 0; h < H; h++)
            failed_now += view.hostFailed(h, now) ? 1 : 0;
        if (failed_now >= H) {
            res.feasible = false;
            res.note = "every host failed mid-run; no surviving fleet "
                       "to re-place requests";
            res.faults.requests_failed = prev_place.placed_batch;
            finish(res);
            return res;
        }
        if (failed_now > charged_failures) {
            // Shard rebuild: the KV cache of requests homed on the
            // newly failed hosts re-homes onto survivors over the
            // (possibly degraded) inter-host link; decode pauses. A
            // further failure inside the rebuild window is observed on
            // the next pass — a cascade charges cumulative rebuilds.
            std::uint64_t lost_batch = 0;
            for (const HostAssignment &a : prev_place.assignments) {
                if (view.hostFailed(a.host, now))
                    lost_batch += a.batch;
            }
            if (lost_batch > 0) {
                std::uint64_t seq_now = cfg.context_len + done;
                if (host_opts_.attention_window > 0) {
                    seq_now = std::min(seq_now,
                                       host_opts_.attention_window);
                }
                const Bytes lost_bytes =
                    cfg.model.kvBytesTotal(lost_batch, seq_now);
                const Bandwidth rebuild_bw =
                    fleet_.inter_host_bw * view.interHostDerate(now);
                const Seconds rebuild = lost_bytes / rebuild_bw;
                fl.rebuild_bytes += lost_bytes;
                fl.rebuild_time += rebuild;
                now += rebuild;
                rebuilt = true;
            }
            charged_failures = failed_now;
            continue;
        }

        const std::vector<bool> serving = servingMask(view, now);
        unsigned serving_alive = 0;
        for (unsigned h = 0; h < H; h++)
            serving_alive += serving[h] ? 1 : 0;
        const unsigned stalled_now = view.stalledHosts(now);
        if (serving_alive == 0) {
            // Every alive host is stalled: decode pauses until the
            // next fleet event (a stall window always ends).
            const Seconds next_ev = nextEventAfter(now);
            HILOS_ASSERT(std::isfinite(next_ev),
                         "stalled fleet with no recovery event");
            now = next_ev;
            continue;
        }

        const FleetPlacement place =
            sched_.place(cfg, cfg.batch, serving);
        if (place.placed_batch == 0) {
            res.feasible = false;
            res.note = "surviving hosts cannot serve any share of the "
                       "batch";
            res.faults.requests_failed = cfg.batch;
            finish(res);
            return res;
        }
        max_dropped = std::max(max_dropped, place.dropped_batch);
        for (const HostAssignment &a : place.assignments) {
            if (a.batch == 0)
                continue;
            for (const HostAssignment &p : prev_place.assignments) {
                if (p.host == a.host && p.spare)
                    fl.spares_activated++;
            }
        }

        const RunResult &hr = hostRun(place.maxHostBatch());
        if (!hr.feasible) {
            res.feasible = false;
            res.note = hr.note + " on the surviving hosts (" +
                       std::to_string(serving_alive) + " of " +
                       std::to_string(H) + ")";
            res.faults.requests_failed = cfg.batch;
            finish(res);
            return res;
        }
        const double derate = view.interHostDerate(now);
        const Seconds coord =
            coordinationTime(place.placed_batch, derate);
        const Seconds step = hr.decode_step_time + coord;
        HILOS_ASSERT(step > 0.0, "fleet decode step must be positive");

        const Seconds next_ev = nextEventAfter(now);
        std::uint64_t tokens = remaining;
        if (std::isfinite(next_ev)) {
            const double span = (next_ev - now) / step;
            const auto fit = static_cast<std::uint64_t>(std::ceil(span));
            tokens =
                std::min(remaining, std::max<std::uint64_t>(1, fit));
        }
        const double w = static_cast<double>(tokens) / out_tokens;

        RunResult er = hr;
        er.decode_step_time = step;
        scaleTraffic(er.traffic,
                     static_cast<double>(place.serving_hosts));
        accumulateWeighted(res, er, w);
        if (H > 1)
            res.breakdown.add("inter_host_sync", w * coord);
        res.energy.gpu += w * place.serving_hosts * hr.energy.gpu;
        res.energy.cpu += w * place.serving_hosts * hr.energy.cpu;
        res.energy.dram += w * place.serving_hosts * hr.energy.dram;
        res.energy.storage +=
            w * place.serving_hosts * hr.energy.storage;

        FleetEpoch ep;
        ep.start = now;
        ep.hosts_serving = place.serving_hosts;
        ep.hosts_stalled = stalled_now;
        ep.hosts_failed = failed_now;
        ep.placed_batch = place.placed_batch;
        ep.step_time = step;
        ep.tokens = tokens;
        fl.epochs.push_back(ep);

        weighted_serving += static_cast<double>(tokens) *
                            static_cast<double>(place.serving_hosts);
        decode_time += static_cast<double>(tokens) * step;
        now += static_cast<double>(tokens) * step;
        remaining -= tokens;
        last_step = step;
        prev_place = place;
    }

    finish(res);
    res.total_time = res.prefill_time + decode_time + fl.rebuild_time +
                     fl.stall_time;
    // Requests that rode out a rebuild, a stall, or a degraded link
    // finished late; requests beyond the worst epoch's capacity never
    // finished at all.
    if (rebuilt || fl.stall_time > 0.0 || fl.rebuild_time > 0.0) {
        res.faults.requests_degraded = std::max(
            res.faults.requests_degraded, prev_place.placed_batch);
    }
    res.faults.requests_failed += max_dropped;
    res.fleet = fl;  // finish() ran before total_time; re-store
    return res;
}

Seconds
FleetEngine::simulatedDecodeStep(const RunConfig &cfg, Seconds now) const
{
    const HostFaultView view(fleet_.fault_plan, fleet_.hosts);
    const std::vector<bool> serving = servingMask(view, now);
    const FleetPlacement place = sched_.place(cfg, cfg.batch, serving);
    if (place.placed_batch == 0)
        return 0.0;
    RunConfig host_cfg = cfg;
    host_cfg.batch = place.maxHostBatch();
    const HilosEventSimulator sim(sys_, host_opts_);
    const EventSimResult r =
        sim.simulateDecodeStep(host_cfg, nullptr, now);
    if (!r.completed)
        return 0.0;
    return r.decode_step_time +
           coordinationTime(place.placed_batch,
                            view.interHostDerate(now));
}

}  // namespace hilos
