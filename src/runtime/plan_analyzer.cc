#include "runtime/plan_analyzer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/logging.h"

namespace hilos {

const char *
findingSeverityName(FindingSeverity s)
{
    switch (s) {
        case FindingSeverity::Error: return "error";
        case FindingSeverity::Warn: return "warn";
        case FindingSeverity::Info: return "info";
    }
    return "unknown";
}

namespace {

/** Shortest round-trippable float rendering, matching the golden
 *  serialiser (tests/support/serialize.cc): %.9g with nan/inf/-0
 *  folded to stable spellings. */
std::string
fmt9(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    if (v == 0.0)
        v = 0.0;  // fold -0 into 0
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** "layer op #3 'kv_fetch'" — the prefix every diagnostic starts with
 *  (same shape as StepPlan::validate()). */
std::string
opRef(const char *kind, std::size_t id, std::string_view label)
{
    std::string s = std::string(kind) + " op #" + std::to_string(id);
    if (!label.empty())
        s += " '" + std::string(label) + "'";
    return s;
}

/**
 * The single construction point for findings: stamps the pass's
 * stable ID and severity so no diagnostic can ship without one
 * (scripts/lint_hilos.py check 7 pins this).
 */
void
emitFinding(PlanAnalysis &out, const AnalyzerPassInfo &pass,
            std::string_view op_label, std::string message)
{
    PlanFinding f;
    f.id = pass.id;
    f.severity = pass.severity;
    f.op = std::string(op_label);
    f.message = std::move(message);
    out.findings.push_back(std::move(f));
}

/** Derived DAG facts shared by the passes. */
struct PassContext {
    const PlanEvaluation &ev;
    /** Layer op i is a dep of some later layer op. */
    std::vector<char> has_dependents;
    /** reach[i][j]: layer op j is transitively reachable from i via
     *  dependency edges (j < i always, deps are topologically
     *  ordered). */
    std::vector<std::vector<char>> reach;
};

PassContext
buildContext(const StepPlan &plan, const PlanEvaluation &ev)
{
    const std::size_t n = plan.layer_ops.size();
    PassContext ctx{ev, std::vector<char>(n, 0),
                    std::vector<std::vector<char>>(n)};
    for (std::size_t i = 0; i < n; ++i) {
        const StepOpView op = plan.layer_ops[i];
        ctx.reach[i].assign(n, 0);
        for (const std::uint32_t d : op.deps) {
            ctx.has_dependents[d] = 1;
            ctx.reach[i][d] = 1;
            for (std::size_t j = 0; j < n; ++j)
                if (ctx.reach[d][j])
                    ctx.reach[i][j] = 1;
        }
    }
    return ctx;
}

bool
opAccounted(const StepOpView &op)
{
    return !op.shadow &&
           (!op.stage.empty() || !op.traffic.empty() || op.busy != 0);
}

// --- PA001: dead ops ------------------------------------------------------

void
passDeadOp(const StepPlan &plan, const PassContext &ctx,
           const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i) {
        const StepOpView op = plan.layer_ops[i];
        const std::string ref = opRef("layer", i, op.label);
        if (op.shadow) {
            if (op.seconds <= Seconds(0.0) && !ctx.has_dependents[i])
                emitFinding(out, pass, op.label,
                            ref + ": shadow op has zero duration and no "
                                  "dependents — shadow ops exist only to "
                                  "be timed");
        } else if (op.offline) {
            if (!opAccounted(op))
                emitFinding(out, pass, op.label,
                            ref + ": offline op contributes to no stage, "
                                  "traffic, or busy field — offline ops "
                                  "exist only to be accounted");
        } else {
            if (!opAccounted(op) && !ctx.has_dependents[i])
                emitFinding(out, pass, op.label,
                            ref + ": op contributes to no stage, "
                                  "traffic, or busy field and nothing "
                                  "depends on it");
        }
    }
    for (std::size_t i = 0; i < plan.tail_ops.size(); ++i) {
        const StepOpView op = plan.tail_ops[i];
        if (!opAccounted(op) && op.seconds <= Seconds(0.0))
            emitFinding(out, pass, op.label,
                        opRef("tail", i, op.label) +
                            ": tail op contributes no time, stage, "
                            "traffic, or busy");
    }
}

// --- PA002: redundant dependency edges ------------------------------------

void
passRedundantEdge(const StepPlan &plan, const PassContext &ctx,
                  const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i) {
        const StepOpView op = plan.layer_ops[i];
        if (op.deps.size() < 2)
            continue;
        for (const std::uint32_t d : op.deps) {
            for (const std::uint32_t other : op.deps) {
                if (other == d || !ctx.reach[other][d])
                    continue;
                const StepOpView dep_op = plan.layer_ops[d];
                const StepOpView other_op = plan.layer_ops[other];
                emitFinding(
                    out, pass, op.label,
                    opRef("layer", i, op.label) + ": dependency on " +
                        opRef("layer", d, dep_op.label) +
                        " is already implied by the dependency on " +
                        opRef("layer", other, other_op.label));
                break;
            }
        }
    }
}

// --- PA003: defeated prefetch/shadow overlap ------------------------------

void
passDefeatedPrefetch(const StepPlan &plan, const PassContext &ctx,
                     const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    const std::size_t n = plan.layer_ops.size();
    for (std::size_t i = 0; i < n; ++i) {
        const StepOpView op = plan.layer_ops[i];
        if (!op.prefetch && !op.shadow)
            continue;
        for (std::size_t j = 0; j < n; ++j) {
            if (!ctx.reach[i][j])
                continue;
            const StepOpView anchor = plan.layer_ops[j];
            if (anchor.prefetch || anchor.seconds <= Seconds(0.0))
                continue;
            const char *role = op.prefetch ? "prefetch" : "shadow";
            const char *why =
                op.prefetch
                    ? "the replay cannot issue it a layer ahead — it "
                      "overlaps nothing"
                    : "the race it models is serialized behind the work "
                      "it should overlap";
            emitFinding(out, pass, op.label,
                        opRef("layer", i, op.label) + ": " + role +
                            " op waits on timed " +
                            opRef("layer", j, anchor.label) + ", so " +
                            why);
            break;
        }
    }
}

// --- PA004: work invisible to the energy spec -----------------------------

void
passEnergyCoverage(const StepPlan &plan, const PassContext &,
                   const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    if (!plan.energy.enabled)
        return;
    const auto check = [&](const char *kind, std::size_t i,
                           const StepOpView &op) {
        if (op.shadow || op.busy != 0)
            return;
        if (op.seconds <= Seconds(0.0) && op.bytes <= Bytes(0.0))
            return;
        emitFinding(out, pass, op.label,
                    opRef(kind, i, op.label) + ": op carries " +
                        fmt9(op.seconds) + " s / " + fmt9(op.bytes) +
                        " bytes with no kBusy* tag; computeEnergy prices "
                        "busy lanes only, so this work is billed at idle "
                        "power");
    };
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i)
        check("layer", i, plan.layer_ops[i]);
    for (std::size_t i = 0; i < plan.tail_ops.size(); ++i)
        check("tail", i, plan.tail_ops[i]);
}

// --- PA005: attention traffic must be a subset of host traffic ------------

void
passAccountingConservation(const StepPlan &plan, const PassContext &,
                           const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    const auto check = [&](const char *kind, std::size_t i,
                           const StepOpView &op) {
        if (op.shadow)
            return;  // shadow traffic never reaches the counters
        double host_read = 0, host_write = 0;
        double attn_read = 0, attn_write = 0;
        for (const TrafficShare &s : op.traffic) {
            switch (s.field) {
                case TrafficField::HostRead: host_read += s.bytes; break;
                case TrafficField::HostWrite: host_write += s.bytes; break;
                case TrafficField::AttnHostRead:
                    attn_read += s.bytes;
                    break;
                case TrafficField::AttnHostWrite:
                    attn_write += s.bytes;
                    break;
                default: break;
            }
        }
        const auto exceeds = [](double attn, double host) {
            return attn > host + (1e-6 + 1e-9 * host);
        };
        if (exceeds(attn_read, host_read))
            emitFinding(out, pass, op.label,
                        opRef(kind, i, op.label) +
                            ": attention host-read share (" +
                            fmt9(attn_read) +
                            " bytes) exceeds the op's host-read share (" +
                            fmt9(host_read) +
                            " bytes); attention traffic must be a subset "
                            "of host traffic");
        if (exceeds(attn_write, host_write))
            emitFinding(out, pass, op.label,
                        opRef(kind, i, op.label) +
                            ": attention host-write share (" +
                            fmt9(attn_write) +
                            " bytes) exceeds the op's host-write share (" +
                            fmt9(host_write) +
                            " bytes); attention traffic must be a subset "
                            "of host traffic");
    };
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i)
        check("layer", i, plan.layer_ops[i]);
    for (std::size_t i = 0; i < plan.tail_ops.size(); ++i)
        check("tail", i, plan.tail_ops[i]);
}

// --- PA006: op/stage names must match the plan's phase --------------------

bool
containsWord(std::string_view haystack, std::string_view needle)
{
    return haystack.find(needle) != std::string_view::npos;
}

void
passPhaseMismatch(const StepPlan &plan, const PassContext &,
                  const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    const bool decode = plan.phase == PlanPhase::Decode;
    const std::string_view foreign = decode ? "prefill" : "decode";
    const char *own = planPhaseName(plan.phase);
    const auto check = [&](const char *kind, std::size_t i,
                           const StepOpView &op) {
        if (containsWord(op.label, foreign) ||
            containsWord(op.stage, foreign))
            emitFinding(out, pass, op.label,
                        opRef(kind, i, op.label) +
                            ": op named for the " + std::string(foreign) +
                            " phase inside a " + own + " plan");
    };
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i)
        check("layer", i, plan.layer_ops[i]);
    for (std::size_t i = 0; i < plan.tail_ops.size(); ++i)
        check("tail", i, plan.tail_ops[i]);
    for (const std::string &stage : plan.stage_order)
        if (containsWord(stage, foreign))
            emitFinding(out, pass, "",
                        "declared stage '" + stage + "' names the " +
                            std::string(foreign) + " phase inside a " +
                            own + " plan");
}

// --- PA007: prefill plans must not carry an enabled energy spec -----------

void
passPrefillEnergySpec(const StepPlan &plan, const PassContext &,
                      const AnalyzerPassInfo &pass, PlanAnalysis &out)
{
    if (plan.phase == PlanPhase::Prefill && plan.energy.enabled)
        emitFinding(out, pass, "",
                    "Prefill-phase plan enables the energy spec, which "
                    "only applyPlan consumes on Decode plans; prefill "
                    "energy folds through busy accounting "
                    "(applyPrefillPlan) and this spec is silently "
                    "ignored");
}

// --- registry -------------------------------------------------------------

using PassFn = void (*)(const StepPlan &, const PassContext &,
                        const AnalyzerPassInfo &, PlanAnalysis &);

struct Pass {
    AnalyzerPassInfo info;
    PassFn fn;
};

const std::vector<Pass> &
passRegistry()
{
    static const std::vector<Pass> registry = {
        {{"PA001", "dead-op", FindingSeverity::Error,
          "op contributes to no stage/traffic/busy field and nothing "
          "depends on it"},
         passDeadOp},
        {{"PA002", "redundant-edge", FindingSeverity::Warn,
          "dependency edge implied by the transitive closure of the "
          "op's other dependencies"},
         passRedundantEdge},
        {{"PA003", "defeated-prefetch", FindingSeverity::Warn,
          "prefetch/shadow op serialized behind timed work it should "
          "overlap"},
         passDefeatedPrefetch},
        {{"PA004", "energy-coverage", FindingSeverity::Warn,
          "timed or traffic-bearing op invisible to the enabled energy "
          "spec (no busy tag)"},
         passEnergyCoverage},
        {{"PA005", "accounting-conservation", FindingSeverity::Error,
          "attention traffic share exceeds the host traffic it must be "
          "a subset of"},
         passAccountingConservation},
        {{"PA006", "phase-mismatch", FindingSeverity::Error,
          "op or declared stage named for the opposite phase of its "
          "plan"},
         passPhaseMismatch},
        {{"PA007", "prefill-energy-spec", FindingSeverity::Error,
          "Prefill-phase plan carries an enabled energy spec nothing "
          "consumes"},
         passPrefillEnergySpec},
    };
    return registry;
}

// --- critical-path / slack annotator --------------------------------------

void
annotateSlack(const StepPlan &plan, const PlanEvaluation &ev,
              PlanAnalysis &out)
{
    const std::size_t n = plan.layer_ops.size();
    const double cp = ev.layer_critical_path;
    out.layer_critical_path = ev.layer_critical_path;
    out.op_slack.assign(n, Seconds(0.0));
    if (n == 0)
        return;

    // Backward pass: late_finish[i] = min over dependents c of
    // (late_finish[c] - seconds[c]); sinks finish at the critical path.
    std::vector<double> late(n, cp);
    for (std::size_t i = n; i-- > 0;) {
        const StepOpView op = plan.layer_ops[i];
        if (op.offline)
            continue;
        for (const std::uint32_t d : op.deps)
            late[d] = std::min(late[d],
                               late[i] - static_cast<double>(op.seconds));
    }
    for (std::size_t i = 0; i < n; ++i) {
        const StepOpView op = plan.layer_ops[i];
        // Offline ops never gate the critical path: full slack.
        out.op_slack[i] =
            op.offline ? Seconds(cp)
                       : Seconds(late[i] -
                                 static_cast<double>(ev.op_finish[i]));
    }

    // Bottleneck chain: walk back from the latest finisher through the
    // dependency with the maximal finish (ties toward the lowest id).
    if (cp <= 0.0)
        return;
    std::size_t cur = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (ev.op_finish[i] > ev.op_finish[cur])
            cur = i;
    std::vector<std::size_t> chain{cur};
    while (!plan.layer_ops[cur].deps.empty()) {
        const StepOpView op = plan.layer_ops[cur];
        std::size_t best = op.deps[0];
        for (const std::uint32_t d : op.deps)
            if (ev.op_finish[d] > ev.op_finish[best])
                best = d;
        chain.push_back(best);
        cur = best;
    }
    out.bottleneck_chain.assign(chain.rbegin(), chain.rend());
}

}  // namespace

const std::vector<AnalyzerPassInfo> &
analyzerPasses()
{
    static const std::vector<AnalyzerPassInfo> infos = [] {
        std::vector<AnalyzerPassInfo> v;
        for (const Pass &p : passRegistry())
            v.push_back(p.info);
        return v;
    }();
    return infos;
}

PlanAnalysis
analyzePlan(const StepPlan &plan)
{
    PlanAnalysis out;
    if (!plan.feasible)
        return out;
    const PlanEvaluation ev = evaluatePlan(plan);
    const PassContext ctx = buildContext(plan, ev);
    for (const Pass &p : passRegistry())
        p.fn(plan, ctx, p.info, out);
    annotateSlack(plan, ev, out);
    return out;
}

std::vector<PlanWaiver>
parsePlanWaivers(const std::string &text, std::vector<std::string> *problems)
{
    std::vector<PlanWaiver> waivers;
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    const auto problem = [&](const std::string &msg) {
        if (problems != nullptr)
            problems->push_back("line " + std::to_string(lineno) + ": " +
                                msg);
    };
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string id, op, extra;
        if (!(fields >> id))
            continue;  // blank or comment-only line
        if (id.size() != 5 || id[0] != 'P' || id[1] != 'A' ||
            !std::all_of(id.begin() + 2, id.end(), [](unsigned char c) {
                return std::isdigit(c) != 0;
            })) {
            problem("'" + id + "' is not a PAnnn diagnostic ID");
            continue;
        }
        if (!(fields >> op)) {
            problem("waiver for " + id + " names no op label (use '*' "
                                         "to match any op)");
            continue;
        }
        if (fields >> extra) {
            problem("trailing token '" + extra + "' after waiver");
            continue;
        }
        waivers.push_back(PlanWaiver{id, op});
    }
    return waivers;
}

std::string
formatPlanWaivers(const std::vector<PlanWaiver> &waivers)
{
    std::string out;
    for (const PlanWaiver &w : waivers)
        out += w.id + " " + w.op + "\n";
    return out;
}

void
applyPlanWaivers(PlanAnalysis &analysis,
                 const std::vector<PlanWaiver> &waivers)
{
    for (PlanFinding &f : analysis.findings)
        for (const PlanWaiver &w : waivers)
            if (w.id == f.id && (w.op == "*" || w.op == f.op)) {
                f.waived = true;
                break;
            }
}

bool
hasUnwaivedErrors(const PlanAnalysis &analysis)
{
    return std::any_of(analysis.findings.begin(), analysis.findings.end(),
                       [](const PlanFinding &f) {
                           return f.severity == FindingSeverity::Error &&
                                  !f.waived;
                       });
}

std::string
firstUnwaivedError(const PlanAnalysis &analysis)
{
    for (const PlanFinding &f : analysis.findings)
        if (f.severity == FindingSeverity::Error && !f.waived)
            return std::string(f.id) + ": " + f.message;
    return "";
}

std::string
serializeAnalysis(const StepPlan &plan, const PlanAnalysis &analysis)
{
    std::string out;
    out += std::string("phase = ") + planPhaseName(plan.phase) + "\n";
    if (!plan.feasible) {
        out += "infeasible = " + plan.note + "\n";
        return out;
    }
    out += "layer_critical_path = " +
           fmt9(analysis.layer_critical_path) + "\n";
    out += "bottleneck = ";
    if (analysis.bottleneck_chain.empty()) {
        out += "(none)";
    } else {
        for (std::size_t k = 0; k < analysis.bottleneck_chain.size(); ++k) {
            const std::size_t id = analysis.bottleneck_chain[k];
            if (k > 0)
                out += " -> ";
            out += "'" + std::string(plan.layer_ops[id].label) + "'";
        }
    }
    out += "\n";
    out += "ops = " + std::to_string(plan.layer_ops.size()) + "\n";
    for (std::size_t i = 0; i < plan.layer_ops.size(); ++i) {
        const StepOpView op = plan.layer_ops[i];
        out += "slack[" + std::to_string(i) + "] = '" +
               std::string(op.label) + "' ";
        if (op.offline) {
            out += "offline";
        } else {
            out += fmt9(analysis.op_slack[i]);
            if (analysis.op_slack[i] == Seconds(0.0))
                out += " (critical)";
        }
        out += "\n";
    }
    out += "findings = " + std::to_string(analysis.findings.size()) + "\n";
    for (std::size_t i = 0; i < analysis.findings.size(); ++i) {
        const PlanFinding &f = analysis.findings[i];
        out += "finding[" + std::to_string(i) + "] = " + f.id + " " +
               findingSeverityName(f.severity) +
               (f.waived ? " (waived): " : ": ") + f.message + "\n";
    }
    return out;
}

bool
analyzePlansEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("HILOS_ANALYZE_PLANS");
        return env != nullptr && env[0] != '\0' &&
               !(env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

}  // namespace hilos
