/**
 * @file
 * DeepSpeed ZeRO-Inference extended with Unified Virtual Memory
 * (DS+UVM(DRAM), §6.1): KV and activations live in host memory and the
 * GPU touches them through UVM page faults, paying a large effective
 * bandwidth penalty on every host-memory access (Fig. 10 shows >4x
 * slowdown versus FLEX(DRAM)).
 */

#ifndef HILOS_RUNTIME_DEEPSPEED_UVM_H_
#define HILOS_RUNTIME_DEEPSPEED_UVM_H_

#include <string>

#include "runtime/engine.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"

namespace hilos {

/** DS+UVM(DRAM) baseline engine. */
class DeepSpeedUvmEngine : public InferenceEngine, public StepPlanSource
{
  public:
    explicit DeepSpeedUvmEngine(const SystemConfig &sys);

    std::string name() const override { return "DS+UVM(DRAM)"; }
    RunResult run(const RunConfig &cfg) const override;
    RunResult runCached(const RunConfig &cfg,
                        PlanCache &cache) const override;
    StepPlan decodeStepPlan(const RunConfig &cfg) const override;
    StepPlan prefillStepPlan(const RunConfig &cfg,
                             std::uint64_t chunk_index = 0,
                             std::uint64_t chunk_count = 1) const override;

  private:
    /** Capacity decisions into `res`, decode step into `plan`. */
    void makePlan(const RunConfig &cfg, RunResult &res,
                  StepPlan &plan) const;

    /** Prefill-phase plan for one chunk. */
    void makePrefillPlan(const RunConfig &cfg, std::uint64_t chunk_index,
                         std::uint64_t chunk_count, StepPlan &plan) const;

    /** The capacity-shrunk batch (0 = infeasible, setting `note`). */
    std::uint64_t effectiveBatch(const RunConfig &cfg,
                                 std::string *note) const;

    SystemConfig sys_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_DEEPSPEED_UVM_H_
