#include "runtime/fleet_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "runtime/cost_model.h"

namespace hilos {

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::Spread:
        return "spread";
      case PlacementPolicy::Pack:
        return "pack";
      case PlacementPolicy::FaultAware:
        return "fault-aware";
    }
    return "unknown";
}

PlacementPolicy
parsePlacementPolicy(const std::string &name)
{
    if (name == "spread")
        return PlacementPolicy::Spread;
    if (name == "pack")
        return PlacementPolicy::Pack;
    if (name == "fault-aware")
        return PlacementPolicy::FaultAware;
    HILOS_FATAL("unknown placement policy '", name,
                "' (spread, pack, fault-aware)");
}

std::uint64_t
FleetPlacement::maxHostBatch() const
{
    std::uint64_t max_batch = 0;
    for (const HostAssignment &a : assignments)
        max_batch = std::max(max_batch, a.batch);
    return max_batch;
}

FleetScheduler::FleetScheduler(const SystemConfig &sys,
                               const HilosOptions &host_opts,
                               PlacementPolicy policy,
                               unsigned spare_hosts)
    : sys_(sys), host_opts_(host_opts), policy_(policy),
      spare_hosts_(spare_hosts)
{
}

std::uint64_t
FleetScheduler::hostCapacity(const RunConfig &cfg) const
{
    const ModelConfig &m = cfg.model;
    std::uint64_t kept_seq = cfg.context_len + cfg.output_len;
    if (host_opts_.attention_window > 0)
        kept_seq = std::min(kept_seq, host_opts_.attention_window);
    const Bytes fleet_capacity =
        static_cast<double>(host_opts_.num_devices) *
        static_cast<double>(sys_.smartssd.nand.capacity);
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const Bytes resident = home == WeightHome::Storage
                               ? static_cast<double>(m.weightBytesTotal())
                               : 0.0;
    return maxFittingBatch(
        m, std::numeric_limits<std::uint64_t>::max() / 2, kept_seq,
        fleet_capacity, resident);
}

FleetPlacement
FleetScheduler::place(const RunConfig &cfg, std::uint64_t batch,
                      const std::vector<bool> &alive) const
{
    FleetPlacement out;
    const std::uint64_t capacity = hostCapacity(cfg);

    std::vector<unsigned> alive_hosts;
    for (unsigned h = 0; h < alive.size(); h++) {
        if (alive[h])
            alive_hosts.push_back(h);
    }
    if (alive_hosts.empty() || capacity == 0) {
        out.dropped_batch = batch;
        return out;
    }

    // FaultAware holds spare capacity back so a later host loss can
    // promote a warm spare instead of re-packing the survivors; it
    // never reserves the whole alive set.
    unsigned spares = 0;
    if (policy_ == PlacementPolicy::FaultAware) {
        spares = std::min(spare_hosts_,
                          static_cast<unsigned>(alive_hosts.size()) - 1);
    }
    const auto servers =
        static_cast<unsigned>(alive_hosts.size()) - spares;

    std::vector<std::uint64_t> shares(alive_hosts.size(), 0);
    std::uint64_t placed = 0;
    if (policy_ == PlacementPolicy::Pack) {
        // Fill hosts in index order to capacity; later hosts stay idle
        // (implicit spares, but not counted as reserved).
        std::uint64_t left = batch;
        for (std::size_t i = 0; i < alive_hosts.size() && left > 0; i++) {
            shares[i] = std::min(left, capacity);
            left -= shares[i];
        }
        placed = batch - left;
    } else {
        // Spread / FaultAware: even split over the serving hosts, the
        // first `batch % servers` hosts taking one extra request.
        const std::uint64_t base = batch / servers;
        const std::uint64_t extra = batch % servers;
        for (unsigned i = 0; i < servers; i++) {
            const std::uint64_t want = base + (i < extra ? 1 : 0);
            shares[i] = std::min(want, capacity);
            placed += shares[i];
        }
    }

    out.placed_batch = placed;
    out.dropped_batch = batch - placed;
    for (std::size_t i = 0; i < alive_hosts.size(); i++) {
        HostAssignment a;
        a.host = alive_hosts[i];
        a.batch = shares[i];
        a.spare = policy_ == PlacementPolicy::FaultAware && i >= servers;
        if (a.batch > 0)
            out.serving_hosts++;
        if (a.spare)
            out.spare_hosts++;
        out.assignments.push_back(a);
    }
    return out;
}

}  // namespace hilos
