#include "runtime/vllm_multigpu.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/plan_cache.h"
#include "runtime/prefill_constants.h"

namespace hilos {

VllmMultiGpuEngine::VllmMultiGpuEngine(const SystemConfig &sys,
                                       const VllmClusterConfig &cluster)
    : sys_(sys), cluster_(cluster)
{
    HILOS_ASSERT(cluster_.nodes >= 1 && cluster_.gpus_per_node >= 1,
                 "invalid cluster shape");
}

double
VllmMultiGpuEngine::totalGpuMemory() const
{
    return static_cast<double>(cluster_.nodes) *
           static_cast<double>(cluster_.gpus_per_node) *
           static_cast<double>(cluster_.gpu.memory_capacity);
}

void
VllmMultiGpuEngine::makePlan(const RunConfig &cfg, RunResult &res,
                             StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(cluster_.gpu);
    const unsigned tp = cluster_.gpus_per_node;
    const unsigned pp = cluster_.nodes;
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;

    // Everything (weights + paged KV + runtime overhead) must fit the
    // aggregated GPU memory.
    // Weights plus per-GPU runtime state: CUDA context, activation
    // workspace, and paged-attention metadata.
    const double weight_bytes =
        static_cast<double>(m.weightBytesTotal()) * 1.12;
    const double capacity = totalGpuMemory() * 0.92;  // allocator headroom
    if (weight_bytes > capacity) {
        res.feasible = false;
        res.note = "model weights exceed aggregate GPU memory";
        plan.feasible = false;
        plan.note = res.note;
        return;
    }
    res.effective_batch = maxFittingBatch(m, cfg.batch, total_seq,
                                          capacity, weight_bytes);
    // When the paged KV cache exceeds aggregate GPU memory, vLLM falls
    // back to its CPU swap space: the overflow share of each layer's KV
    // streams over host PCIe every step (this is the regime the paper's
    // multi-node comparison lands in at long contexts).
    double swap_fraction = 0.0;
    if (res.effective_batch < cfg.batch) {
        const double kv_needed =
            m.kvBytesTotal(cfg.batch, total_seq);
        const double kv_budget =
            std::max(0.0, capacity - weight_bytes);
        swap_fraction = 1.0 - kv_budget / kv_needed;
        res.effective_batch = cfg.batch;
        res.note = "KV overflow swaps to host memory (" +
                   std::to_string(static_cast<int>(swap_fraction * 100)) +
                   "% of KV per step over PCIe)";
    }
    const std::uint64_t b = res.effective_batch;
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);

    // --- Per-layer decode time on one pipeline stage ---
    // Weights are resident and shard across the TP group: the GEMMs are
    // HBM-bandwidth bound on the per-GPU shard.
    const double layer_weight_shard =
        m.loadedWeightBytesPerLayer(b) / static_cast<double>(tp);
    const Seconds gemm = gpu.kernelTime(
        static_cast<double>(b) * m.denseFlopsPerTokenPerLayer() /
            static_cast<double>(tp),
        layer_weight_shard);
    // Paged attention over the sharded KV cache, HBM-bound.
    const Seconds attn =
        gpuAttentionTime(gpu, m, b, s_mid) / static_cast<double>(tp);
    // Two all-reduces per layer (attention output + MLP output) over the
    // intra-node fabric: ring all-reduce moves 2 (tp-1)/tp of the
    // activation per GPU.
    const Bytes act_bytes = static_cast<double>(b) *
                            static_cast<double>(m.hidden) *
                            static_cast<double>(m.dtype_bytes);
    const Seconds allreduce =
        2.0 * (2.0 * static_cast<double>(tp - 1) /
                   static_cast<double>(tp) * act_bytes /
                   cluster_.intra_node_bw +
               cluster_.allreduce_latency);
    // Swapped KV streams host -> GPU over each node's PCIe link.
    const Seconds swap_stream =
        swap_fraction * kvLayerBytes(m, b, s_mid) /
        (static_cast<double>(pp) * sys_.host_pcie_bw *
         cluster_.swap_efficiency);
    // --- Pipeline composition across nodes ---
    // Each stage owns L/pp layers; stages overlap on different
    // microbatches, but auto-regressive decoding with a small batch
    // leaves bubbles: efficiency b / (b + pp - 1).
    const double pp_eff =
        static_cast<double>(b) / static_cast<double>(b + pp - 1);
    const Seconds pp_comm =
        static_cast<double>(pp) *
        (act_bytes / cluster_.inter_node_bw + cluster_.pp_hop_latency);

    // --- The decode-step plan: a serial per-layer chain (GEMM, paged
    // attention, collectives, swap), divided by the bubble efficiency,
    // plus the once-per-token inter-node hops as the serial tail ---
    plan.layers = m.layers;
    plan.layer_time_divisor = pp_eff;
    plan.declareStage("gpu_gemm");
    plan.declareStage("gpu_attention");
    plan.declareStage("tp_allreduce");
    plan.declareStage("pp_comm");
    plan.declareStage("kv_swap");
    plan.declareResource(PlanResource::IntraNode, 1);
    plan.declareResource(PlanResource::InterNode, 1);
    plan.declareResource(PlanResource::HostPcie, 1);

    const std::size_t op_gemm = plan.addOp(
        computeOp(ComputeUnit::Gpu, "tp_gemm", gemm)
            .stageTag("gpu_gemm")
            .busyTag(kBusyGpu));
    const std::size_t op_attn = plan.addOp(
        computeOp(ComputeUnit::Gpu, "paged_attention", attn)
            .stageTag("gpu_attention")
            .busyTag(kBusyGpu)
            .dep(op_gemm));
    const std::size_t op_ar = plan.addOp(
        transferOp(PlanResource::IntraNode, "tp_allreduce", allreduce,
                   2.0 * act_bytes)
            .stageTag("tp_allreduce")
            .share(TrafficField::Internal, 2.0 * act_bytes)
            .dep(op_attn));
    plan.addOp(
        transferOp(PlanResource::HostPcie, "kv_swap_stream", swap_stream,
                   swap_fraction * kvLayerBytes(m, b, s_mid))
            .stageTag("kv_swap")
            .dep(op_ar));
    plan.addTailOp(
        transferOp(PlanResource::InterNode, "pp_hops", pp_comm,
                   static_cast<double>(pp) * act_bytes)
            .stageTag("pp_comm"));

    // --- Energy spec: all cluster GPUs, no storage fleet. Scale the
    // GPU busy power by the GPU count. ---
    const double gpus =
        static_cast<double>(cluster_.nodes * cluster_.gpus_per_node);
    SystemConfig cluster_sys = sys_;
    cluster_sys.gpu = cluster_.gpu;
    cluster_sys.gpu.tdp = cluster_.gpu.tdp * gpus;
    cluster_sys.gpu.idle_power = cluster_.gpu.idle_power * gpus;
    cluster_sys.cpu.tdp = sys_.cpu.tdp * cluster_.nodes;
    cluster_sys.cpu.idle_power = sys_.cpu.idle_power * cluster_.nodes;
    plan.energy.enabled = true;
    plan.energy.sys = cluster_sys;
}

void
VllmMultiGpuEngine::makePrefillPlan(const RunConfig &cfg,
                                    std::uint64_t chunk_index,
                                    std::uint64_t chunk_count,
                                    StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(cluster_.gpu);
    const unsigned tp = cluster_.gpus_per_node;
    const unsigned pp = cluster_.nodes;

    plan.phase = PlanPhase::Prefill;
    plan.chunk_index = chunk_index;
    plan.chunk_count = chunk_count;

    const double weight_bytes =
        static_cast<double>(m.weightBytesTotal()) * 1.12;
    const double capacity = totalGpuMemory() * 0.92;  // allocator headroom
    if (weight_bytes > capacity) {
        plan.feasible = false;
        plan.note = "model weights exceed aggregate GPU memory";
        return;
    }
    // Decode falls back to host swap rather than shrinking the batch
    // (see makePlan), so prefill always runs the requested batch.
    const std::uint64_t b = cfg.batch;

    const auto [start, end] =
        prefillChunkRange(cfg.context_len, chunk_index, chunk_count);
    plan.chunk_tokens = end - start;

    const Seconds prefill_compute =
        prefillChunkComputeTime(gpu, m, b, start, end) /
        static_cast<double>(tp);
    const Bytes act_bytes = static_cast<double>(b) *
                            static_cast<double>(m.hidden) *
                            static_cast<double>(m.dtype_bytes);
    // The same two per-layer all-reduces and once-per-pass pipeline
    // hops as decode, re-paid by every chunk's pass over the layers.
    const Seconds allreduce =
        2.0 * (2.0 * static_cast<double>(tp - 1) /
                   static_cast<double>(tp) * act_bytes /
                   cluster_.intra_node_bw +
               cluster_.allreduce_latency);
    const Seconds pp_comm =
        static_cast<double>(pp) *
        (act_bytes / cluster_.inter_node_bw + cluster_.pp_hop_latency);

    plan.layers = m.layers;
    plan.declareStage("prefill_compute");
    plan.declareStage("tp_allreduce");
    plan.declareStage("pp_comm");
    plan.declareResource(PlanResource::IntraNode, 1);
    plan.declareResource(PlanResource::InterNode, 1);

    const std::size_t op_compute = plan.addOp(
        computeOp(ComputeUnit::Gpu, "prefill_compute", prefill_compute)
            .stageTag("prefill_compute"));
    plan.addOp(transferOp(PlanResource::IntraNode, "tp_allreduce",
                          allreduce, 2.0 * act_bytes)
                   .stageTag("tp_allreduce")
                   .dep(op_compute));
    plan.addTailOp(transferOp(PlanResource::InterNode, "pp_hops", pp_comm,
                              static_cast<double>(pp) * act_bytes)
                       .stageTag("pp_comm"));

    plan.busy_step_fraction.gpu = kPrefillGpuBusyFraction;
}

RunResult
VllmMultiGpuEngine::run(const RunConfig &cfg) const
{
    RunResult res;
    StepPlan plan;
    makePlan(cfg, res, plan);
    if (!plan.feasible)
        return res;
    if (!applyPrefillPhase(*this, cfg, res))
        return res;
    applyPlan(plan, cfg, res);
    return res;
}

RunResult
VllmMultiGpuEngine::runCached(const RunConfig &cfg, PlanCache &cache) const
{
    RunResult res;
    const StepPlan &plan = cache.build(
        PlanCache::keyOf(name(), cfg.model.name), [&](StepPlan &p) {
            res = RunResult{};
            makePlan(cfg, res, p);
        });
    if (!plan.feasible)
        return res;
    const std::uint64_t prefill_key =
        PlanCache::keyOf(name(), cfg.model.name, PlanPhase::Prefill);
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        const StepPlan &pre = cache.build(
            prefill_key,
            [&](StepPlan &p) {
                makePrefillPlan(cfg, i, cfg.prefill_chunks, p);
            });
        if (!applyPrefillPlan(pre, res))
            return res;
    }
    applyPlan(plan, cfg, res);
    return res;
}

StepPlan
VllmMultiGpuEngine::decodeStepPlan(const RunConfig &cfg) const
{
    RunResult scratch;
    StepPlan plan;
    makePlan(cfg, scratch, plan);
    return plan;
}

StepPlan
VllmMultiGpuEngine::prefillStepPlan(const RunConfig &cfg,
                                    std::uint64_t chunk_index,
                                    std::uint64_t chunk_count) const
{
    StepPlan plan;
    makePrefillPlan(cfg, chunk_index, chunk_count, plan);
    return plan;
}

}  // namespace hilos
