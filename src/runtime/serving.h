/**
 * @file
 * Online serving simulation: continuous batching over an arrival stream.
 *
 * The offline engines answer "what does one steady-state decode step
 * cost"; this layer answers "what happens when traffic arrives over
 * time". A `ServingSimulator` drives any `InferenceEngine` (the five
 * single-host engines or the fleet) with a request stream from
 * `runtime/serving_workload`, admits pending requests under a
 * `ServingPolicy` at every step boundary, and grows/shrinks the
 * in-flight batch between decode steps. Each step is costed through the
 * engine's StepPlan IR (`StepPlanSource::decodeStepPlan` +
 * `evaluatePlan`) rather than re-running whole-engine `run()` calls;
 * engines that emit no plans (the fleet) fall back to cached `run()`
 * results. Time advances on a `sim/event_queue`, so arrivals interleave
 * with decode steps deterministically.
 *
 * Prefill is admitted as chunked steps (`ServingConfig::prefill_chunks`)
 * interleaved with decode: a newly admitted group's first chunk is
 * charged at admission (at prefill_chunks == 1 that is the whole
 * prefill, preserving the historical timeline bit-for-bit), and every
 * later chunk yields to the in-flight decode batch — the decode step
 * runs at priority and the chunk overlaps it, since decode attention is
 * fleet-bound while prefill compute is host-GPU-bound. Each decode step
 * taken while a group is mid-prefill counts as one prefill preemption.
 * Requests join the decode flight only after their last chunk, so TTFT
 * reflects the full (chunked) prefill honestly.
 *
 * Reported metrics follow the serving literature: exact (sorted-sample)
 * p50/p99/p999 time-to-first-token and end-to-end latency, goodput
 * under an SLO, queue depth over time, and saturation indicators
 * (time-weighted batch occupancy, peak queue depth).
 */

#ifndef HILOS_RUNTIME_SERVING_H_
#define HILOS_RUNTIME_SERVING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "llm/workload.h"
#include "runtime/engine.h"
#include "runtime/serving_policy.h"

namespace hilos {

/** Parameters of one serving simulation. */
struct ServingConfig {
    ModelConfig model;
    /** Scheduler-side cap on the in-flight batch (engine capacity may
     *  shrink it further at long contexts). */
    std::uint64_t max_batch = 16;
    /** Contexts round up to a multiple of this for step costing, like
     *  the offline batcher's bucket padding. */
    std::uint64_t bucket_quantum = 1024;
    ServingPolicy policy = ServingPolicy::Fcfs;
    /** End-to-end latency SLO; 0 disables SLO accounting. */
    Seconds slo = 0.0;
    /**
     * Prefill chunks per admitted group (>= 1). 1 charges one
     * monolithic prefill at admission (the historical behaviour);
     * larger values split each group's prefill into equal token ranges
     * whose later chunks run preemptably under the decode batch.
     */
    std::uint64_t prefill_chunks = 1;
};

/** Per-request lifecycle timestamps of one serving run. */
struct RequestRecord {
    std::size_t id = 0;  ///< submission index
    RequestClass cls = RequestClass::Small;
    std::uint64_t input_tokens = 0;
    std::uint64_t output_tokens = 0;
    Seconds arrival = 0.0;
    Seconds admitted = 0.0;     ///< left the pending queue
    Seconds first_token = 0.0;  ///< first decode step completed
    Seconds completed = 0.0;    ///< last output token produced
    bool met_slo = true;

    Seconds ttft() const { return first_token - arrival; }
    Seconds latency() const { return completed - arrival; }
    Seconds queueWait() const { return admitted - arrival; }
};

/** One point of the queue-depth-over-time curve. */
struct QueueDepthSample {
    Seconds when = 0.0;
    std::uint64_t depth = 0;
};

/** Outcome of one serving simulation. */
struct ServingResult {
    bool feasible = true;
    std::string note;  ///< infeasibility reason when !feasible

    std::uint64_t requests = 0;
    std::uint64_t slo_met = 0;  ///< == requests when no SLO is set
    Seconds makespan = 0.0;     ///< last completion time

    /** Exact (nearest-rank) latency percentiles, not interpolated. */
    Seconds ttft_p50 = 0.0;
    Seconds ttft_p99 = 0.0;
    Seconds ttft_p999 = 0.0;
    Seconds latency_p50 = 0.0;
    Seconds latency_p99 = 0.0;
    Seconds latency_p999 = 0.0;
    Seconds mean_queue_wait = 0.0;

    double slo_attainment = 1.0;  ///< slo_met / requests
    /** SLO-met requests per second of makespan (== throughput with no
     *  SLO set; collapses toward 0 past saturation). */
    double goodput_rps = 0.0;
    double tokens_per_second = 0.0;  ///< real generated tokens / makespan

    std::uint64_t decode_steps = 0;
    std::uint64_t prefill_batches = 0;
    /** Prefill chunks charged (== prefill_batches at prefill_chunks=1). */
    std::uint64_t prefill_chunks_run = 0;
    /** Decode steps taken at priority while a group was mid-prefill. */
    std::uint64_t prefill_preemptions = 0;
    /** Time-weighted mean in-flight batch (residency / makespan). */
    double mean_in_flight = 0.0;
    std::uint64_t peak_in_flight = 0;
    /** Time-weighted mean pending-queue depth (total wait / makespan). */
    double mean_queue_depth = 0.0;
    std::uint64_t peak_queue_depth = 0;

    /** Step-cost cache effectiveness (plan evaluations + engine runs). */
    std::uint64_t cost_cache_hits = 0;
    std::uint64_t cost_cache_misses = 0;

    std::vector<RequestRecord> records;  ///< per request, submission order
    std::vector<QueueDepthSample> queue_depth;  ///< depth after each change
};

/**
 * Continuous-batching serving simulator over one engine.
 *
 * Deterministic: identical (engine, config, request set) inputs yield
 * bit-identical results on any thread of any machine — the simulation
 * itself is single-threaded and draws no randomness.
 */
class ServingSimulator
{
  public:
    ServingSimulator(const InferenceEngine &engine, ServingConfig cfg);

    /**
     * Serve a request stream to completion. Requests may arrive in any
     * order; arrival times need not be sorted. Infeasible streams (a
     * request that cannot fit the engine even alone) come back with
     * `feasible == false` and the reason in `note`.
     */
    ServingResult run(const std::vector<Request> &requests) const;

    const ServingConfig &config() const { return cfg_; }

  private:
    const InferenceEngine &engine_;
    ServingConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_SERVING_H_
