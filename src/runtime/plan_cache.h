/**
 * @file
 * Plan-structure cache for the sweep hot path.
 *
 * Profiling the grid sweeps shows the engines spend most of a grid
 * point re-deriving a plan whose *topology* (stages, resources, op
 * kinds/labels/deps/traffic fields) is identical to the previous
 * point's — only the priced annotations (seconds, bytes, fanout,
 * traffic-share bytes) change with batch/context/output length. A
 * PlanCache keeps one StepPlan per structural key and replays the
 * engine's builder over it in rebuild mode (StepPlan::beginRebuild):
 * every builder call *verifies* the structural fields against the
 * cached entry at its cursor and overwrites only the annotations.
 *
 * Correctness never depends on the key: the key is a lookup hint, and
 * a key collision or a genuine topology change (a capacity decision
 * flipping a plan infeasible, a fault stage appearing) simply fails
 * the verified rebuild, and the cache falls back to a cold build of
 * the same entry — bit-identical to an uncached build by
 * construction. A verified rebuild also skips static re-validation:
 * the cold build ran validate() once, and the rebuild proved the
 * topology unchanged, so the cache republishes the plan with
 * `structure_validated` set and applyPlan takes its fast path.
 *
 * Not thread-safe: sweep workers each own a PlanCache (see
 * runGridCached in core/hilos.h).
 */

#ifndef HILOS_RUNTIME_PLAN_CACHE_H_
#define HILOS_RUNTIME_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/logging.h"
#include "runtime/step_plan.h"

namespace hilos {

/** Structural StepPlan cache keyed by a caller-chosen 64-bit hint. */
class PlanCache
{
  public:
    struct Stats {
        std::uint64_t hits = 0;        ///< verified in-place rebuilds
        std::uint64_t misses = 0;      ///< first build of a key
        std::uint64_t mismatches = 0;  ///< rebuilds that fell back cold
    };

    /**
     * Return the plan for `key`, built by `fn(plan)`. On the first
     * call for a key, `fn` populates a fresh plan (cold build); later
     * calls replay `fn` in rebuild mode and fall back to a cold build
     * if the topology diverged. `fn` must be a pure function of the
     * engine's configuration: it may run once or twice per call, so
     * any side output it produces (e.g. a RunResult) must be reset at
     * its entry, not accumulated.
     *
     * The returned reference stays valid until the entry is rebuilt
     * (the next build() with the same key) or the cache is cleared.
     */
    template <typename Fn>
    const StepPlan &build(std::uint64_t key, Fn &&fn)
    {
        Entry &entry = entries_[key];
        if (!entry.plan) {
            entry.plan = std::make_unique<StepPlan>();
            stats_.misses++;
            buildCold(entry, fn);
            return *entry.plan;
        }
        StepPlan &plan = *entry.plan;
        const bool was_validated = entry.validated;
        plan.beginRebuild();
        fn(plan);
        if (plan.finishRebuild()) {
            stats_.hits++;
            plan.structure_validated = was_validated && plan.feasible;
            return plan;
        }
        stats_.mismatches++;
        buildCold(entry, fn);
        return plan;
    }

    const Stats &stats() const { return stats_; }
    std::size_t size() const { return entries_.size(); }

    void clear()
    {
        entries_.clear();
        stats_ = Stats{};
    }

    /**
     * FNV-1a key over "<engine>|<model>|<phase>", the usual structural
     * hint. All chunks of a chunked prefill share the Prefill key: their
     * topology is identical, so later chunks rebuild annotations in
     * place just like later grid points do.
     */
    static std::uint64_t keyOf(std::string_view engine_name,
                               std::string_view model_name,
                               PlanPhase phase = PlanPhase::Decode);

  private:
    struct Entry {
        std::unique_ptr<StepPlan> plan;  ///< stable address across rehash
        bool validated = false;          ///< cold validate() passed
    };

    template <typename Fn>
    void buildCold(Entry &entry, Fn &fn)
    {
        StepPlan &plan = *entry.plan;
        plan.clear();
        fn(plan);
        entry.validated = false;
        plan.structure_validated = false;
        if (!plan.feasible)
            return;
        const std::vector<std::string> problems = plan.validate();
        HILOS_ASSERT(problems.empty(), "engine emitted an invalid plan: ",
                     problems.empty() ? "" : problems.front());
        entry.validated = true;
        plan.structure_validated = true;
    }

    std::unordered_map<std::uint64_t, Entry> entries_;
    Stats stats_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_PLAN_CACHE_H_
