/**
 * @file
 * Named prefill busy fractions shared by the engines' prefill-plan
 * builders. These model the fraction of the prefill-phase wall clock a
 * component is kept busy when no per-op accounting pins it down
 * (compute saturation during the prompt GEMMs, host-DRAM staging
 * traffic); they feed StepPlan::busy_step_fraction on Prefill-phase
 * plans and from there the run-level energy integral.
 *
 * This header is the ONLY place a bare prefill busy fraction may be
 * written: scripts/lint_hilos.py bans new bare fraction literals on
 * prefill-related lines elsewhere in src/runtime/ (the historic 0.9 /
 * 0.3 / 0.5 magic numbers were duplicated across engines and had
 * already drifted apart once — the faulted HILOS path charged storage
 * 0.5 while the zero-fault path charged the NAND-write integral).
 */

#ifndef HILOS_RUNTIME_PREFILL_CONSTANTS_H_
#define HILOS_RUNTIME_PREFILL_CONSTANTS_H_

namespace hilos {

/** GPU busy fraction of prefill: prompt GEMMs keep the GPU near-saturated. */
constexpr double kPrefillGpuBusyFraction = 0.9;

/**
 * Host-DRAM busy fraction of prefill for offload engines (FlexGen,
 * DS+UVM): weights and activations stage through host memory.
 */
constexpr double kPrefillDramBusyFractionOffload = 0.5;

/**
 * Host-DRAM busy fraction of prefill for HILOS: only activations hop
 * through the host; KV writes go over NSP-internal paths.
 */
constexpr double kPrefillDramBusyFractionNsp = 0.3;

}  // namespace hilos

#endif  // HILOS_RUNTIME_PREFILL_CONSTANTS_H_
