#include "runtime/flexgen.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"
#include "storage/ssd.h"

namespace hilos {

FlexGenEngine::FlexGenEngine(const SystemConfig &sys, FlexTier tier)
    : sys_(sys), tier_(tier)
{
}

std::string
FlexGenEngine::name() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return "FLEX(DRAM)";
      case FlexTier::BaselineSsds:
        return "FLEX(SSD)";
      case FlexTier::SmartSsdsNoFpga:
        return "FLEX(16 PCIe3.0 SSDs)";
    }
    HILOS_PANIC("unknown tier");
}

Bandwidth
FlexGenEngine::storageReadBw() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return sys_.dram.bandwidth;
      case FlexTier::BaselineSsds:
        // Dedicated x4 gen4 host links per SSD; the drives bind.
        return static_cast<double>(sys_.num_baseline_ssds) *
               sys_.baseline_ssd.seq_read_bw;
      case FlexTier::SmartSsdsNoFpga: {
        // 16 PCIe 3.0 devices behind one x16 gen4 uplink: the shared
        // chassis uplink saturates below the fleet's aggregate rate.
        const Bandwidth fleet =
            16.0 * sys_.smartssd.nand.seq_read_bw;
        return std::min(fleet, sys_.chassis_uplink_bw);
      }
    }
    HILOS_PANIC("unknown tier");
}

Bandwidth
FlexGenEngine::storageWriteBw() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return sys_.dram.bandwidth;
      case FlexTier::BaselineSsds:
        return static_cast<double>(sys_.num_baseline_ssds) *
               sys_.baseline_ssd.seq_write_bw;
      case FlexTier::SmartSsdsNoFpga: {
        const Bandwidth fleet =
            16.0 * sys_.smartssd.nand.seq_write_bw;
        return std::min(fleet, sys_.chassis_uplink_bw);
      }
    }
    HILOS_PANIC("unknown tier");
}

RunResult
FlexGenEngine::run(const RunConfig &cfg) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const Cpu cpu(sys_.cpu);
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;

    RunResult res;
    const WeightHome home =
        chooseWeightHome(m, sys_.dram.capacity);
    const double weight_bytes =
        static_cast<double>(m.weightBytesTotal());

    // Capacity: the DRAM tier must fit the whole KV cache (plus the
    // weights when they are DRAM-resident) in host memory.
    res.effective_batch = cfg.batch;
    if (tier_ == FlexTier::HostDram) {
        const double resident =
            (home == WeightHome::HostDram ? weight_bytes : 0.0) +
            0.08 * static_cast<double>(sys_.dram.capacity);
        // Pinned, double-buffered KV allocations inflate the effective
        // per-sequence footprint (dram_kv_overhead).
        const double budget =
            (static_cast<double>(sys_.dram.capacity) - resident) /
            sys_.dram_kv_overhead;
        res.effective_batch =
            maxFittingBatch(m, cfg.batch, total_seq, budget, 0.0);
        if (res.effective_batch == 0) {
            res.feasible = false;
            res.note = "host DRAM exhausted even at batch 1";
            return res;
        }
        if (res.effective_batch < cfg.batch)
            res.note = "batch shrunk to fit host DRAM";
    }
    const std::uint64_t b = res.effective_batch;
    // Mid-generation context length drives decode-step costs.
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);

    const bool on_ssd = tier_ != FlexTier::HostDram;
    const Bandwidth read_bw = storageReadBw();
    const Bandwidth write_bw = storageWriteBw();
    // Host-managed KV reads run far below raw sequential bandwidth.
    const Bandwidth kv_read_bw =
        on_ssd ? read_bw * sys_.host_kv_io_efficiency : read_bw;
    // Weight streaming (large sequential reads) stays near raw rate;
    // the DRAM tier still owns the baseline SSD fleet for >100B models.
    const Bandwidth weight_storage_bw =
        on_ssd ? read_bw
               : static_cast<double>(sys_.num_baseline_ssds) *
                     sys_.baseline_ssd.seq_read_bw;

    // --- Per-layer decode stages ---
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        weight_storage_bw);
    const Seconds gpu_compute =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    const double kv_bytes = kvLayerBytes(m, b, s_mid);
    // For >100B models the weights stream from the same SSD fleet the
    // KV cache lives on: the reads serialise on the shared devices.
    const Seconds fleet_weight =
        (on_ssd && home == WeightHome::Storage)
            ? m.loadedWeightBytesPerLayer(b) / read_bw
            : 0.0;
    const Seconds kv_io =
        on_ssd ? kv_bytes / kv_read_bw + fleet_weight : 0.0;
    const Seconds cpu_attn = cpuAttentionTime(cpu, m, b, s_mid);
    // Activation round trip GPU <-> CPU for the offloaded attention.
    const Seconds act_xfer =
        2.0 * static_cast<double>(b * m.hidden * m.dtype_bytes) /
        sys_.host_pcie_bw;
    // New KV entries commit each step; on SSD tiers every (batch, head)
    // entry is a 256 B sub-page write.
    Seconds kv_write = 0.0;
    if (on_ssd) {
        const std::uint64_t devices =
            tier_ == FlexTier::BaselineSsds ? sys_.num_baseline_ssds : 16;
        const std::uint64_t slices = b * m.kv_heads;
        const Ssd ssd(tier_ == FlexTier::BaselineSsds
                          ? sys_.baseline_ssd
                          : sys_.smartssd.nand);
        kv_write = ssd.randomWriteTime(
            ceilDiv(slices, devices),
            2 * m.headDim() * m.dtype_bytes);
    }

    // FlexGen overlaps weight staging, KV I/O, CPU attention, and GPU
    // compute across layers; the commit of new KV entries and the
    // activation hop are serial.
    const Seconds t_layer =
        std::max({weight, kv_io, cpu_attn, gpu_compute}) + kv_write +
        act_xfer;
    res.decode_step_time = static_cast<double>(m.layers) * t_layer;

    const double L = static_cast<double>(m.layers);
    res.breakdown.add("load_weight", L * weight);
    res.breakdown.add("kv_io", L * kv_io);
    res.breakdown.add("cpu_attention", L * cpu_attn);
    res.breakdown.add("gpu_compute", L * gpu_compute);
    res.breakdown.add("kv_writeback", L * kv_write);
    res.breakdown.add("activations", L * act_xfer);

    // --- Prefill ---
    const Seconds prefill_compute =
        prefillComputeTime(gpu, m, b, cfg.context_len);
    const double prefill_kv_bytes = kvLayerBytes(m, b, cfg.context_len);
    const Seconds prefill_kv_write =
        on_ssd ? prefill_kv_bytes / write_bw
               : prefill_kv_bytes / sys_.dram.bandwidth;
    res.prefill_time =
        L * (std::max({weight, prefill_compute}) + prefill_kv_write);

    res.total_time = res.prefill_time +
                     static_cast<double>(cfg.output_len) *
                         res.decode_step_time;

    // --- Traffic (per decode step) ---
    const double hidden_bytes =
        static_cast<double>(m.hidden * m.dtype_bytes);
    res.traffic.host_read_bytes =
        L * (m.loadedWeightBytesPerLayer(b) + (on_ssd ? kv_bytes : 0.0) +
             static_cast<double>(b) * hidden_bytes);
    res.traffic.attn_host_read_bytes = on_ssd ? L * kv_bytes : 0.0;
    res.traffic.host_write_bytes =
        L * (kvStepBytes(m, b) + static_cast<double>(b) * hidden_bytes);
    res.traffic.attn_host_write_bytes = L * kvStepBytes(m, b);
    res.traffic.internal_bytes = 0.0;
    res.traffic.storage_write_bytes = on_ssd ? L * kvStepBytes(m, b) : 0.0;

    // --- Busy time per decode step ---
    res.busy.gpu = L * gpu_compute;
    // The CPU runs the offloaded attention and also drives the
    // synchronous direct-I/O path (submission, memcpy staging).
    res.busy.cpu = L * std::max(cpu_attn, 0.6 * kv_io);
    res.busy.dram = L * std::max({cpu_attn, weight, kv_io});
    res.busy.storage = on_ssd ? L * (kv_io + kv_write) : 0.0;
    res.busy.fpga = 0.0;

    // --- Energy over the whole run ---
    StorageKind kind = StorageKind::None;
    unsigned devices = 0;
    if (tier_ == FlexTier::BaselineSsds) {
        kind = StorageKind::BaselineSsds;
        devices = sys_.num_baseline_ssds;
    } else if (tier_ == FlexTier::SmartSsdsNoFpga) {
        kind = StorageKind::SmartSsds;  // powered, FPGAs idle
        devices = 16;
    }
    const double steps = static_cast<double>(cfg.output_len);
    ComponentBusy run_busy;
    run_busy.gpu = res.busy.gpu * steps + res.prefill_time * 0.9;
    run_busy.cpu = res.busy.cpu * steps;
    run_busy.dram = res.busy.dram * steps + res.prefill_time * 0.5;
    run_busy.storage =
        res.busy.storage * steps +
        (on_ssd ? L * prefill_kv_write : 0.0);
    res.energy = computeEnergy(sys_, kind, devices, res.total_time,
                               run_busy, 0.0);
    return res;
}

}  // namespace hilos
