#include "runtime/flexgen.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/cost_model.h"
#include "runtime/plan_cache.h"
#include "runtime/prefill_constants.h"

namespace hilos {

FlexGenEngine::FlexGenEngine(const SystemConfig &sys, FlexTier tier)
    : sys_(sys), tier_(tier)
{
    if (tier_ != FlexTier::HostDram)
        kv_ssd_.emplace(tier_ == FlexTier::BaselineSsds
                            ? sys_.baseline_ssd
                            : sys_.smartssd.nand);
}

std::string
FlexGenEngine::name() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return "FLEX(DRAM)";
      case FlexTier::BaselineSsds:
        return "FLEX(SSD)";
      case FlexTier::SmartSsdsNoFpga:
        return "FLEX(16 PCIe3.0 SSDs)";
    }
    HILOS_PANIC("unknown tier");
}

Bandwidth
FlexGenEngine::storageReadBw() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return sys_.dram.bandwidth;
      case FlexTier::BaselineSsds:
        // Dedicated x4 gen4 host links per SSD; the drives bind.
        return static_cast<double>(sys_.num_baseline_ssds) *
               sys_.baseline_ssd.seq_read_bw;
      case FlexTier::SmartSsdsNoFpga: {
        // 16 PCIe 3.0 devices behind one x16 gen4 uplink: the shared
        // chassis uplink saturates below the fleet's aggregate rate.
        const Bandwidth fleet =
            16.0 * sys_.smartssd.nand.seq_read_bw;
        return std::min(fleet, sys_.chassis_uplink_bw);
      }
    }
    HILOS_PANIC("unknown tier");
}

Bandwidth
FlexGenEngine::storageWriteBw() const
{
    switch (tier_) {
      case FlexTier::HostDram:
        return sys_.dram.bandwidth;
      case FlexTier::BaselineSsds:
        return static_cast<double>(sys_.num_baseline_ssds) *
               sys_.baseline_ssd.seq_write_bw;
      case FlexTier::SmartSsdsNoFpga: {
        const Bandwidth fleet =
            16.0 * sys_.smartssd.nand.seq_write_bw;
        return std::min(fleet, sys_.chassis_uplink_bw);
      }
    }
    HILOS_PANIC("unknown tier");
}

std::uint64_t
FlexGenEngine::effectiveBatch(const RunConfig &cfg, std::string *note) const
{
    // Capacity: the DRAM tier must fit the whole KV cache (plus the
    // weights when they are DRAM-resident) in host memory.
    if (tier_ != FlexTier::HostDram)
        return cfg.batch;
    const ModelConfig &m = cfg.model;
    const std::uint64_t total_seq = cfg.context_len + cfg.output_len;
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const double weight_bytes =
        static_cast<double>(m.weightBytesTotal());
    const double resident =
        (home == WeightHome::HostDram ? weight_bytes : 0.0) +
        0.08 * static_cast<double>(sys_.dram.capacity);
    // Pinned, double-buffered KV allocations inflate the effective
    // per-sequence footprint (dram_kv_overhead).
    const double budget =
        (static_cast<double>(sys_.dram.capacity) - resident) /
        sys_.dram_kv_overhead;
    const std::uint64_t b =
        maxFittingBatch(m, cfg.batch, total_seq, budget, 0.0);
    if (b == 0)
        *note = "host DRAM exhausted even at batch 1";
    else if (b < cfg.batch)
        *note = "batch shrunk to fit host DRAM";
    return b;
}

void
FlexGenEngine::makePlan(const RunConfig &cfg, RunResult &res,
                        StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);
    const Cpu cpu(sys_.cpu);

    const WeightHome home =
        chooseWeightHome(m, sys_.dram.capacity);

    std::string cap_note;
    res.effective_batch = effectiveBatch(cfg, &cap_note);
    if (res.effective_batch == 0) {
        res.feasible = false;
        res.note = cap_note;
        plan.feasible = false;
        plan.note = res.note;
        return;
    }
    if (!cap_note.empty())
        res.note = cap_note;
    const std::uint64_t b = res.effective_batch;
    // Mid-generation context length drives decode-step costs.
    const std::uint64_t s_mid = midGenerationContext(cfg.context_len, cfg.output_len);

    const bool on_ssd = tier_ != FlexTier::HostDram;
    const Bandwidth read_bw = storageReadBw();
    // Host-managed KV reads run far below raw sequential bandwidth.
    const Bandwidth kv_read_bw =
        on_ssd ? read_bw * sys_.host_kv_io_efficiency : read_bw;
    // Weight streaming (large sequential reads) stays near raw rate;
    // the DRAM tier still owns the baseline SSD fleet for >100B models.
    const Bandwidth weight_storage_bw =
        on_ssd ? read_bw
               : static_cast<double>(sys_.num_baseline_ssds) *
                     sys_.baseline_ssd.seq_read_bw;

    // --- Per-layer decode costs (priced with cost_model primitives) ---
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        weight_storage_bw);
    const Seconds gpu_compute =
        qkvProjTime(gpu, m, b) + mlpTime(gpu, m, b);
    const Bytes kv_bytes = kvLayerBytes(m, b, s_mid);
    // For >100B models the weights stream from the same SSD fleet the
    // KV cache lives on: the reads serialise on the shared devices.
    const Seconds fleet_weight =
        (on_ssd && home == WeightHome::Storage)
            ? m.loadedWeightBytesPerLayer(b) / read_bw
            : Seconds(0.0);
    const Seconds kv_io =
        on_ssd ? kv_bytes / kv_read_bw + fleet_weight : Seconds(0.0);
    const Seconds cpu_attn = cpuAttentionTime(cpu, m, b, s_mid);
    // Activation round trip GPU <-> CPU for the offloaded attention.
    const Seconds act_xfer =
        Bytes(2.0 * static_cast<double>(b * m.hidden * m.dtype_bytes)) /
        sys_.host_pcie_bw;
    // New KV entries commit each step; on SSD tiers every (batch, head)
    // entry is a 256 B sub-page write.
    Seconds kv_write = 0.0;
    if (on_ssd) {
        const std::uint64_t devices =
            tier_ == FlexTier::BaselineSsds ? sys_.num_baseline_ssds : 16;
        const std::uint64_t slices = b * m.kv_heads;
        kv_write = kv_ssd_->randomWriteTime(
            ceilDiv(slices, devices),
            2 * m.headDim() * m.dtype_bytes);
    }

    // --- The decode-step plan ---
    // FlexGen overlaps weight staging, KV I/O, CPU attention, and GPU
    // compute across layers (four root ops racing); the commit of new
    // KV entries and the activation hop are serial behind all four.
    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("kv_io");
    plan.declareStage("cpu_attention");
    plan.declareStage("gpu_compute");
    plan.declareStage("kv_writeback");
    plan.declareStage("activations");
    plan.declareResource(PlanResource::HostPcie, 1);
    plan.declareResource(PlanResource::Storage, 1);

    const double hidden_bytes =
        static_cast<double>(m.hidden * m.dtype_bytes);
    const double loaded_weight = m.loadedWeightBytesPerLayer(b);
    const double kv_step = kvStepBytes(m, b);

    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::HostPcie, "weight_stage", weight,
                   loaded_weight)
            .stageTag("load_weight")
            .busyTag(kBusyDram)
            .share(TrafficField::HostRead, loaded_weight)
            .asPrefetch());
    StepOp kv_io_op =
        transferOp(PlanResource::Storage, "kv_fetch", kv_io, kv_bytes)
            .stageTag("kv_io")
            .busyTag(kBusyDram | kBusyStorage)
            .asPrefetch();
    if (on_ssd) {
        kv_io_op.share(TrafficField::HostRead, kv_bytes)
            .share(TrafficField::AttnHostRead, kv_bytes);
    }
    const std::size_t op_kv_io = plan.addOp(kv_io_op);
    const std::size_t op_attn = plan.addOp(
        computeOp(ComputeUnit::Cpu, "cpu_attention", cpu_attn)
            .stageTag("cpu_attention")
            .busyTag(kBusyCpu | kBusyDram));
    const std::size_t op_gpu = plan.addOp(
        computeOp(ComputeUnit::Gpu, "gpu_compute", gpu_compute)
            .stageTag("gpu_compute")
            .busyTag(kBusyGpu));
    StepOp kv_write_op =
        transferOp(PlanResource::Storage, "kv_commit", kv_write, kv_step)
            .stageTag("kv_writeback")
            .busyTag(kBusyStorage)
            .share(TrafficField::HostWrite, kv_step)
            .share(TrafficField::AttnHostWrite, kv_step)
            .dep(op_weight)
            .dep(op_kv_io)
            .dep(op_attn)
            .dep(op_gpu);
    if (on_ssd)
        kv_write_op.share(TrafficField::StorageWrite, kv_step);
    const std::size_t op_kv_write = plan.addOp(kv_write_op);
    plan.addOp(
        transferOp(PlanResource::HostPcie, "activation_hop", act_xfer,
                   2.0 * static_cast<double>(b) * hidden_bytes)
            .stageTag("activations")
            .share(TrafficField::HostRead,
                   static_cast<double>(b) * hidden_bytes)
            .share(TrafficField::HostWrite,
                   static_cast<double>(b) * hidden_bytes)
            .dep(op_kv_write));
    // The CPU also drives the synchronous direct-I/O path (submission,
    // memcpy staging) while the fetch is in flight: occupancy only.
    plan.addOp(computeOp(ComputeUnit::Cpu, "kv_io_drive", 0.6 * kv_io)
                   .busyTag(kBusyCpu)
                   .asOffline());

    // --- Energy spec over the whole run ---
    plan.energy.enabled = true;
    plan.energy.sys = sys_;
    if (tier_ == FlexTier::BaselineSsds) {
        plan.energy.kind = StorageKind::BaselineSsds;
        plan.energy.devices = sys_.num_baseline_ssds;
    } else if (tier_ == FlexTier::SmartSsdsNoFpga) {
        plan.energy.kind = StorageKind::SmartSsds;  // powered, FPGAs idle
        plan.energy.devices = 16;
    }
}

void
FlexGenEngine::makePrefillPlan(const RunConfig &cfg,
                               std::uint64_t chunk_index,
                               std::uint64_t chunk_count,
                               StepPlan &plan) const
{
    const ModelConfig &m = cfg.model;
    const Gpu gpu(sys_.gpu);

    plan.phase = PlanPhase::Prefill;
    plan.chunk_index = chunk_index;
    plan.chunk_count = chunk_count;

    std::string cap_note;
    const std::uint64_t b = effectiveBatch(cfg, &cap_note);
    if (b == 0) {
        plan.feasible = false;
        plan.note = cap_note;
        return;
    }

    const auto [start, end] =
        prefillChunkRange(cfg.context_len, chunk_index, chunk_count);
    plan.chunk_tokens = end - start;

    const bool on_ssd = tier_ != FlexTier::HostDram;
    const WeightHome home = chooseWeightHome(m, sys_.dram.capacity);
    const Bandwidth weight_storage_bw =
        on_ssd ? storageReadBw()
               : static_cast<double>(sys_.num_baseline_ssds) *
                     sys_.baseline_ssd.seq_read_bw;

    // Every chunk makes its own pass over the layers: weight staging is
    // re-paid per chunk, the prompt GEMMs price incrementally, and the
    // chunk's KV entries stream out to their tier.
    const Seconds weight = weightLoadTime(
        m, b, home, sys_.host_pcie_bw * sys_.baseline_weight_efficiency,
        weight_storage_bw);
    const Seconds prefill_compute =
        prefillChunkComputeTime(gpu, m, b, start, end);
    const Bytes chunk_kv_bytes = kvLayerBytes(m, b, end - start);
    const Seconds prefill_kv_write =
        on_ssd ? chunk_kv_bytes / storageWriteBw()
               : chunk_kv_bytes / sys_.dram.bandwidth;

    plan.layers = m.layers;
    plan.declareStage("load_weight");
    plan.declareStage("prefill_compute");
    plan.declareStage("kv_writeback");
    plan.declareResource(PlanResource::HostPcie, 1);
    plan.declareResource(PlanResource::Storage, 1);

    const std::size_t op_weight = plan.addOp(
        transferOp(PlanResource::HostPcie, "weight_stage", weight,
                   m.loadedWeightBytesPerLayer(b))
            .stageTag("load_weight"));
    const std::size_t op_compute = plan.addOp(
        computeOp(ComputeUnit::Gpu, "prefill_compute", prefill_compute)
            .stageTag("prefill_compute"));
    StepOp kv_commit =
        transferOp(on_ssd ? PlanResource::Storage : PlanResource::DramBus,
                   "prefill_kv_write", prefill_kv_write, chunk_kv_bytes)
            .stageTag("kv_writeback")
            .dep(op_weight)
            .dep(op_compute);
    // Only SSD tiers charge the NAND-write occupancy; the DRAM tier's
    // writeback rides the memory bus already covered by the DRAM busy
    // fraction below.
    if (on_ssd)
        kv_commit.busyTag(kBusyStorage);
    plan.addOp(kv_commit);

    plan.busy_step_fraction.gpu = kPrefillGpuBusyFraction;
    plan.busy_step_fraction.dram = kPrefillDramBusyFractionOffload;
}

RunResult
FlexGenEngine::run(const RunConfig &cfg) const
{
    RunResult res;
    StepPlan plan;
    makePlan(cfg, res, plan);
    if (!plan.feasible)
        return res;
    if (!applyPrefillPhase(*this, cfg, res))
        return res;
    applyPlan(plan, cfg, res);
    return res;
}

RunResult
FlexGenEngine::runCached(const RunConfig &cfg, PlanCache &cache) const
{
    RunResult res;
    const StepPlan &plan = cache.build(
        PlanCache::keyOf(name(), cfg.model.name), [&](StepPlan &p) {
            res = RunResult{};
            makePlan(cfg, res, p);
        });
    if (!plan.feasible)
        return res;
    const std::uint64_t prefill_key =
        PlanCache::keyOf(name(), cfg.model.name, PlanPhase::Prefill);
    for (std::uint64_t i = 0; i < cfg.prefill_chunks; ++i) {
        const StepPlan &pre = cache.build(
            prefill_key,
            [&](StepPlan &p) {
                makePrefillPlan(cfg, i, cfg.prefill_chunks, p);
            });
        if (!applyPrefillPlan(pre, res))
            return res;
    }
    applyPlan(plan, cfg, res);
    return res;
}

StepPlan
FlexGenEngine::decodeStepPlan(const RunConfig &cfg) const
{
    RunResult scratch;
    StepPlan plan;
    makePlan(cfg, scratch, plan);
    return plan;
}

StepPlan
FlexGenEngine::prefillStepPlan(const RunConfig &cfg,
                               std::uint64_t chunk_index,
                               std::uint64_t chunk_count) const
{
    StepPlan plan;
    makePrefillPlan(cfg, chunk_index, chunk_count, plan);
    return plan;
}

}  // namespace hilos
