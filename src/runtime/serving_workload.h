/**
 * @file
 * Online-serving arrival streams.
 *
 * The offline layer (`runtime/batcher`) answers "how fast does a fixed
 * request set drain"; the serving simulator asks "what happens when a
 * million users send traffic". This module produces the request streams
 * that drive it: a seeded Poisson process with a configurable class mix
 * and per-request length jitter, and a plain-text trace format so real
 * arrival logs (or hand-written scenarios) replay deterministically.
 */

#ifndef HILOS_RUNTIME_SERVING_WORKLOAD_H_
#define HILOS_RUNTIME_SERVING_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "llm/workload.h"

namespace hilos {

/** Parameters of a Poisson arrival stream. */
struct PoissonStreamConfig {
    /** Mean arrival rate in requests per second (> 0). */
    double arrival_rate = 1.0;
    /** Number of requests to generate. */
    std::size_t count = 64;
    /**
     * Relative class-mix weights (need not sum to 1; all-zero draws
     * every request from RequestClass::Small). Defaults follow the
     * Azure mix the offline benches use: mostly short, some medium,
     * a long-context tail.
     */
    double small_weight = 0.6;
    double medium_weight = 0.3;
    double long_weight = 0.1;
    /**
     * Uniform per-request jitter applied to the class's canonical
     * input/output lengths: each length scales by a factor drawn from
     * [1 - jitter, 1 + jitter], floored at one token. 0 disables.
     */
    double length_jitter = 0.25;
};

/**
 * Generate `cfg.count` requests with exponential inter-arrival gaps at
 * `cfg.arrival_rate`, sorted by arrival time (arrivals start at the
 * first gap, not at t=0). Deterministic for a given (cfg, rng state).
 */
std::vector<Request> makePoissonArrivals(const PoissonStreamConfig &cfg,
                                         Rng &rng);

/** The request class whose canonical input length is nearest. */
RequestClass classifyByInputLength(std::uint64_t input_tokens);

/**
 * Parse an arrival trace: one request per line as
 * `<arrival_seconds> <input_tokens> <output_tokens>`, `#` starts a
 * comment, blank lines are skipped. Arrivals must be non-negative and
 * token counts >= 1; the first malformed line raises an assertion
 * naming its line number. Requests are returned sorted by arrival.
 */
std::vector<Request> parseArrivalTrace(const std::string &text);

/** Inverse of parseArrivalTrace (canonical %.9g arrival times). */
std::string formatArrivalTrace(const std::vector<Request> &requests);

}  // namespace hilos

#endif  // HILOS_RUNTIME_SERVING_WORKLOAD_H_
