/**
 * @file
 * Distributed multi-GPU baseline (Fig. 17(b)): vLLM 0.9.1-style serving
 * on two nodes of four RTX A6000s, tensor parallelism inside a node and
 * pipeline parallelism across nodes over InfiniBand EDR. The KV cache
 * lives in aggregated GPU memory (paged attention), so the model is
 * batch-capacity-limited and communication-bound rather than
 * storage-bound.
 */

#ifndef HILOS_RUNTIME_VLLM_MULTIGPU_H_
#define HILOS_RUNTIME_VLLM_MULTIGPU_H_

#include <string>

#include "runtime/engine.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"

namespace hilos {

/** Cluster shape for the multi-GPU baseline. */
struct VllmClusterConfig {
    GpuConfig gpu;              ///< per-GPU model (RTX A6000 default)
    unsigned nodes = 2;
    unsigned gpus_per_node = 4; ///< tensor-parallel degree
    Bandwidth intra_node_bw = 26.8 * GB;  ///< PCIe 4.0 x16 all-reduce path
    Bandwidth inter_node_bw = 12.5 * GB;  ///< InfiniBand EDR
    Seconds allreduce_latency = usec(20);
    Seconds pp_hop_latency = usec(15);
    /**
     * Fraction of host PCIe bandwidth the KV swap path achieves
     * (paging, preemption and scheduler overhead on the overflow path).
     */
    double swap_efficiency = 0.55;
    double node_price_usd = 28000.0;  ///< 4 x A6000 + host, per node

    VllmClusterConfig() { gpu = a6000Config(); }
};

/** vLLM tensor+pipeline-parallel baseline engine. */
class VllmMultiGpuEngine : public InferenceEngine, public StepPlanSource
{
  public:
    VllmMultiGpuEngine(const SystemConfig &sys,
                       const VllmClusterConfig &cluster);

    std::string name() const override { return "vLLM(2x4xA6000)"; }
    RunResult run(const RunConfig &cfg) const override;
    RunResult runCached(const RunConfig &cfg,
                        PlanCache &cache) const override;
    StepPlan decodeStepPlan(const RunConfig &cfg) const override;
    StepPlan prefillStepPlan(const RunConfig &cfg,
                             std::uint64_t chunk_index = 0,
                             std::uint64_t chunk_count = 1) const override;

    /** Aggregate GPU memory of the cluster. */
    double totalGpuMemory() const;

    const VllmClusterConfig &cluster() const { return cluster_; }

  private:
    /** Capacity decisions into `res`, decode step into `plan`. */
    void makePlan(const RunConfig &cfg, RunResult &res,
                  StepPlan &plan) const;

    /** Prefill-phase plan for one chunk. */
    void makePrefillPlan(const RunConfig &cfg, std::uint64_t chunk_index,
                         std::uint64_t chunk_count, StepPlan &plan) const;

    SystemConfig sys_;
    VllmClusterConfig cluster_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_VLLM_MULTIGPU_H_
