/**
 * @file
 * Admission / scheduling policies for the online serving simulator.
 *
 * A policy is a deterministic total order over the pending queue; the
 * continuous batcher admits in that order at every step boundary, never
 * leapfrogging a request it cannot fit (so FCFS is starvation-free by
 * construction and the other policies starve only while strictly
 * better-ranked work keeps arriving).
 */

#ifndef HILOS_RUNTIME_SERVING_POLICY_H_
#define HILOS_RUNTIME_SERVING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** Admission orderings the serving simulator supports. */
enum class ServingPolicy {
    Fcfs,      ///< first-come first-served: (arrival, id)
    Sjf,       ///< shortest job first: least remaining decode work
    SloAware,  ///< earliest deadline first: (arrival + slo, id)
};

/** Printable policy name (also the CLI spelling). */
std::string servingPolicyName(ServingPolicy policy);

/**
 * Parse a CLI spelling ("fcfs", "sjf", "slo").
 * @return false (leaving `out` untouched) on an unknown name
 */
bool parseServingPolicy(const std::string &name, ServingPolicy *out);

/** A pending request as the admission order sees it. */
struct AdmissionCandidate {
    std::size_t id = 0;  ///< submission index; the final tiebreak
    Seconds arrival = 0.0;
    std::uint64_t input_tokens = 0;
    std::uint64_t output_tokens = 0;
    Seconds deadline = 0.0;  ///< arrival + slo (SLO-aware only)
};

/**
 * Sort `pending` into admission order. Every policy's ordering ends in
 * the (arrival, id) tiebreak, so the order is total and deterministic
 * for any input permutation.
 */
void orderForAdmission(ServingPolicy policy,
                       std::vector<AdmissionCandidate> &pending);

}  // namespace hilos

#endif  // HILOS_RUNTIME_SERVING_POLICY_H_
