/**
 * @file
 * Placement policy layer of the fleet subsystem: decides which hosts
 * serve which share of the request batch, separately from the engines
 * that execute the placement (the scheduler/server split ScaleLLM
 * uses). Policies are pure functions of (workload, alive set), so a
 * fleet run can re-place deterministically at every fault epoch.
 */

#ifndef HILOS_RUNTIME_FLEET_SCHEDULER_H_
#define HILOS_RUNTIME_FLEET_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/hilos_engine.h"
#include "runtime/system_config.h"

namespace hilos {

/** How a FleetScheduler spreads request load across hosts. */
enum class PlacementPolicy {
    Spread,      ///< even split over every alive host
    Pack,        ///< fewest hosts filled to capacity, rest idle
    FaultAware,  ///< even split, but `spare_hosts` held in reserve
};

/** Stable lower-case policy name (CLI flags, reports, serialization). */
const char *placementPolicyName(PlacementPolicy policy);

/** Parse a policy name; raises a fatal error on unknown input. */
PlacementPolicy parsePlacementPolicy(const std::string &name);

/** Share of the batch one host serves under a placement. */
struct HostAssignment {
    unsigned host = 0;
    std::uint64_t batch = 0;  ///< requests decoding on this host
    bool spare = false;       ///< alive but held empty in reserve
};

/** One deterministic placement of the batch over the alive hosts. */
struct FleetPlacement {
    std::vector<HostAssignment> assignments;  ///< one per alive host
    std::uint64_t placed_batch = 0;   ///< requests that found a host
    std::uint64_t dropped_batch = 0;  ///< requests beyond fleet capacity
    unsigned serving_hosts = 0;       ///< hosts with batch > 0
    unsigned spare_hosts = 0;         ///< alive hosts kept in reserve

    /** Largest per-host share (the host that binds the fleet step). */
    std::uint64_t maxHostBatch() const;
};

/**
 * Places request load across the alive hosts of a fleet under one
 * PlacementPolicy. Per-host capacity comes from the same analytic
 * capacity model the single-host engine applies (KV + resident bytes
 * against the fleet's aggregate device memory), so a placement is
 * feasible exactly when every per-host share is.
 */
class FleetScheduler
{
  public:
    FleetScheduler(const SystemConfig &sys, const HilosOptions &host_opts,
                   PlacementPolicy policy, unsigned spare_hosts);

    /**
     * Place `batch` requests over the hosts with `alive[h] == true`.
     * FaultAware reserves up to `spare_hosts` alive hosts (highest
     * indices first) as long as at least one host keeps serving;
     * requests beyond the serving capacity are dropped, not queued.
     */
    FleetPlacement place(const RunConfig &cfg, std::uint64_t batch,
                         const std::vector<bool> &alive) const;

    /** Requests one host can decode for this workload (may be 0). */
    std::uint64_t hostCapacity(const RunConfig &cfg) const;

    PlacementPolicy policy() const { return policy_; }
    unsigned spareHosts() const { return spare_hosts_; }

  private:
    SystemConfig sys_;
    HilosOptions host_opts_;
    PlacementPolicy policy_ = PlacementPolicy::Spread;
    unsigned spare_hosts_ = 0;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_FLEET_SCHEDULER_H_
