/**
 * @file
 * Offline request batching.
 *
 * Offline inference (§1, §2.2) tolerates latency, so the scheduler is
 * free to group requests into large homogeneous batches that maximise
 * weight reuse. This module buckets a mixed request set by context
 * length, forms batches up to the engine's batch capacity, and computes
 * the makespan and per-class throughput of serving the whole set on a
 * given engine — the system-level question behind the paper's Azure
 * workload analysis (§6.6).
 */

#ifndef HILOS_RUNTIME_BATCHER_H_
#define HILOS_RUNTIME_BATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "llm/workload.h"
#include "runtime/engine.h"

namespace hilos {

/** One scheduled batch of homogeneous requests. */
struct ScheduledBatch {
    std::uint64_t context_len = 0;  ///< bucket's padded prompt length
    std::uint64_t output_len = 0;   ///< max output length in the batch
    std::uint64_t count = 0;        ///< requests in the batch
};

/** Outcome of serving a request set. */
struct BatchPlanResult {
    std::vector<ScheduledBatch> batches;
    Seconds makespan = 0;         ///< total time to drain the queue
    double requests_per_hour = 0;
    double tokens_per_second = 0; ///< real generated tokens over makespan
    /** Padding waste: padded prompt tokens / real prompt tokens - 1. */
    double padding_overhead = 0;
    /**
     * Output padding waste: each batch decodes to its bucket's max
     * output length, so requests with shorter outputs ride along as
     * padding. Padded generated tokens / real generated tokens - 1.
     */
    double output_padding_overhead = 0;
};

/**
 * Greedy bucketing batcher.
 */
class OfflineBatcher
{
  public:
    /**
     * @param max_batch engine batch capacity
     * @param bucket_quantum contexts round up to a multiple of this
     *        (padding; power of two keeps the accelerator bursts whole)
     */
    explicit OfflineBatcher(std::uint64_t max_batch = 16,
                            std::uint64_t bucket_quantum = 1024);

    /** Group a request set into homogeneous batches. */
    std::vector<ScheduledBatch> plan(
        const std::vector<Request> &requests) const;

    /**
     * Serve a request set on an engine: plan, run each batch, sum the
     * end-to-end times.
     */
    BatchPlanResult serve(const InferenceEngine &engine,
                          const ModelConfig &model,
                          const std::vector<Request> &requests) const;

    std::uint64_t maxBatch() const { return max_batch_; }
    std::uint64_t bucketQuantum() const { return bucket_quantum_; }

  private:
    std::uint64_t max_batch_;
    std::uint64_t bucket_quantum_;
};

}  // namespace hilos

#endif  // HILOS_RUNTIME_BATCHER_H_
