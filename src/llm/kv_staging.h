/**
 * @file
 * Functional KV staging for delayed writeback (§4.3): the host-memory
 * buffer that holds newly generated KV entries, produces the
 * CPU-precomputed partial QK^T scores for the accelerator, and spills
 * page-sized chunks to storage at the configured interval.
 *
 * The analytic cost model for the same mechanism lives in
 * runtime/writeback.h; this header holds only the data path so the LLM
 * layer (e.g. TransformerLayer) can use it without depending on the
 * runtime engines.
 */

#ifndef HILOS_LLM_KV_STAGING_H_
#define HILOS_LLM_KV_STAGING_H_

#include <cstdint>
#include <vector>

#include "accel/gemv.h"
#include "common/half.h"
#include "common/units.h"

namespace hilos {

/** Spilled chunk handed to the storage layer. */
struct SpillChunk {
    std::size_t slice = 0;   ///< (batch, head) slice index
    std::uint64_t bytes = 0; ///< K+V bytes spilled
    std::uint64_t entries = 0;
    std::vector<Half> k_data;  ///< entries x d keys, row-major
    std::vector<Half> v_data;  ///< entries x d values, row-major
};

/**
 * Functional staging buffer for one layer's new KV entries.
 */
class WritebackBuffer
{
  public:
    /**
     * @param slices number of (batch, kv-head) slices
     * @param head_dim per-head dimension d
     * @param spill_interval entries buffered per slice before spilling
     */
    WritebackBuffer(std::size_t slices, std::size_t head_dim,
                    std::size_t spill_interval);

    /**
     * Stage one new (k, v) pair for a slice. If the slice reaches the
     * spill interval a chunk is queued for storage and the buffer
     * drains.
     * @return true if this append triggered a spill
     */
    bool append(std::size_t slice, const Half *k, const Half *v);

    /** Buffered entry count for a slice. */
    std::size_t buffered(std::size_t slice) const;

    /** Buffered keys view (n x d) for a slice. */
    HalfMatrixView bufferedKeys(std::size_t slice) const;
    /** Buffered values view (n x d) for a slice. */
    HalfMatrixView bufferedValues(std::size_t slice) const;

    /**
     * CPU-side partial QK^T: scores of `queries` (g x d, FP32) against
     * the buffered keys of a slice, scaled by `scale`. These are the
     * scalars shipped to the accelerator instead of the raw keys.
     * @return g x n row-major scores
     */
    std::vector<float> partialScores(std::size_t slice,
                                     const std::vector<float> &queries,
                                     std::size_t d_group,
                                     float scale) const;

    /** Drain queued spill chunks (caller forwards them to storage). */
    std::vector<SpillChunk> takeSpills();

    /** Spills produced so far. */
    std::uint64_t totalSpills() const { return total_spills_; }

    std::size_t spillInterval() const { return spill_interval_; }
    std::size_t headDim() const { return head_dim_; }
    std::size_t slices() const { return k_buf_.size(); }

  private:
    std::size_t head_dim_;
    std::size_t spill_interval_;
    std::vector<std::vector<Half>> k_buf_;
    std::vector<std::vector<Half>> v_buf_;
    std::vector<SpillChunk> pending_;
    std::uint64_t total_spills_ = 0;
};


}  // namespace hilos

#endif  // HILOS_LLM_KV_STAGING_H_
