#include "llm/kv_staging.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

WritebackBuffer::WritebackBuffer(std::size_t slices, std::size_t head_dim,
                                 std::size_t spill_interval)
    : head_dim_(head_dim), spill_interval_(spill_interval),
      k_buf_(slices), v_buf_(slices)
{
    HILOS_ASSERT(slices > 0 && head_dim > 0 && spill_interval > 0,
                 "invalid writeback buffer config");
}

bool
WritebackBuffer::append(std::size_t slice, const Half *k, const Half *v)
{
    HILOS_ASSERT(slice < k_buf_.size(), "slice out of range");
    k_buf_[slice].insert(k_buf_[slice].end(), k, k + head_dim_);
    v_buf_[slice].insert(v_buf_[slice].end(), v, v + head_dim_);
    if (buffered(slice) >= spill_interval_) {
        SpillChunk chunk;
        chunk.slice = slice;
        chunk.entries = buffered(slice);
        chunk.bytes = (k_buf_[slice].size() + v_buf_[slice].size()) *
                      sizeof(Half);
        chunk.k_data = std::move(k_buf_[slice]);
        chunk.v_data = std::move(v_buf_[slice]);
        pending_.push_back(std::move(chunk));
        total_spills_++;
        k_buf_[slice].clear();
        v_buf_[slice].clear();
        return true;
    }
    return false;
}

std::size_t
WritebackBuffer::buffered(std::size_t slice) const
{
    HILOS_ASSERT(slice < k_buf_.size(), "slice out of range");
    return k_buf_[slice].size() / head_dim_;
}

HalfMatrixView
WritebackBuffer::bufferedKeys(std::size_t slice) const
{
    HILOS_ASSERT(slice < k_buf_.size(), "slice out of range");
    const auto &buf = k_buf_[slice];
    return HalfMatrixView{buf.data(), buf.size() / head_dim_, head_dim_};
}

HalfMatrixView
WritebackBuffer::bufferedValues(std::size_t slice) const
{
    HILOS_ASSERT(slice < v_buf_.size(), "slice out of range");
    const auto &buf = v_buf_[slice];
    return HalfMatrixView{buf.data(), buf.size() / head_dim_, head_dim_};
}

std::vector<float>
WritebackBuffer::partialScores(std::size_t slice,
                               const std::vector<float> &queries,
                               std::size_t d_group, float scale) const
{
    HILOS_ASSERT(queries.size() == d_group * head_dim_,
                 "query shape mismatch");
    const HalfMatrixView keys = bufferedKeys(slice);
    std::vector<float> scores(d_group * keys.rows, 0.0f);
    for (std::size_t g = 0; g < d_group; g++) {
        for (std::size_t r = 0; r < keys.rows; r++) {
            float acc = 0.0f;
            for (std::size_t c = 0; c < head_dim_; c++) {
                acc += queries[g * head_dim_ + c] *
                       keys.at(r, c).toFloat();
            }
            scores[g * keys.rows + r] = acc * scale;
        }
    }
    return scores;
}

std::vector<SpillChunk>
WritebackBuffer::takeSpills()
{
    std::vector<SpillChunk> out;
    out.swap(pending_);
    return out;
}


}  // namespace hilos
