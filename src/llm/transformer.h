/**
 * @file
 * Functional transformer decoder layer with the three attention
 * execution paths HILOS schedules between:
 *
 *  - Reference: FP32 KV cache, textbook attention (the "GPU" path a
 *    conventional engine runs);
 *  - NearStorage: FP16 row-wise KV cache + delayed-writeback staging +
 *    the HILOS attention accelerator (§4.1/§4.3);
 *  - XCache: pre-projection activations stored instead of K/V; K and V
 *    regenerate by re-projection — re-applying RoPE per historical
 *    position — before GPU-side attention (§4.2).
 *
 * All three paths must produce the same outputs (up to FP16 storage
 * precision), which is exactly the functional claim the integration
 * tests verify. Sizes are arbitrary, so tests run miniature models.
 */

#ifndef HILOS_LLM_TRANSFORMER_H_
#define HILOS_LLM_TRANSFORMER_H_

#include <memory>
#include <optional>
#include <vector>

#include "accel/attention_kernel.h"
#include "llm/kv_cache.h"
#include "llm/rope.h"
#include "llm/tensor.h"
#include "llm/kv_staging.h"

namespace hilos {

/** Shape of a miniature transformer layer. */
struct LayerShape {
    std::size_t hidden = 64;
    std::size_t heads = 4;
    std::size_t kv_heads = 2;     ///< GQA when < heads
    std::size_t intermediate = 128;
    bool use_rope = false;
    std::size_t max_pos = 4096;

    std::size_t headDim() const { return hidden / heads; }
    std::size_t dGroup() const { return heads / kv_heads; }
    std::size_t kvWidth() const { return kv_heads * headDim(); }
};

/** Dense weights of one layer (FP32 masters). */
struct LayerWeights {
    Matrix wq;  ///< hidden x hidden
    Matrix wk;  ///< hidden x kvWidth
    Matrix wv;  ///< hidden x kvWidth
    Matrix wo;  ///< hidden x hidden
    Matrix w1;  ///< hidden x intermediate
    Matrix w2;  ///< intermediate x hidden

    /** Gaussian initialisation scaled for unit-variance activations. */
    static LayerWeights random(const LayerShape &shape, Rng &rng);
};

/** Which attention path executes the decode step. */
enum class AttentionPath {
    Reference,
    NearStorage,
    XCache,
};

/**
 * One decoder layer plus the per-path cached state for a batch.
 */
class TransformerLayer
{
  public:
    /**
     * @param spill_interval delayed-writeback interval for the
     *        NearStorage path
     */
    TransformerLayer(const LayerShape &shape, LayerWeights weights,
                     std::size_t batches, std::size_t spill_interval = 16);

    /**
     * Prefill: run `prompt` (batches x tokens x hidden, flattened as a
     * (batches*tokens) x hidden matrix, batch-major) through the layer,
     * populating every path's cache identically.
     * @return output activations with the same layout
     */
    Matrix prefill(const Matrix &prompt, std::size_t tokens);

    /**
     * One decode step: `x` is (batches x hidden). Appends this step's
     * KV to the caches and returns the layer output via the chosen
     * attention path.
     */
    Matrix decode(const Matrix &x, AttentionPath path);

    /** Current context length (same for every path). */
    std::size_t contextLen() const { return positions_; }

    const LayerShape &shape() const { return shape_; }

    /** Entries currently staged in the writeback buffer (slice 0). */
    std::size_t buffered(std::size_t slice) const
    {
        return wb_.buffered(slice);
    }

  private:
    /** Project x with RoPE applied to Q/K heads when configured. */
    void project(const Matrix &x, Matrix &q, Matrix &k, Matrix &v,
                 std::size_t pos0) const;

    /** Attention for one batch element via the chosen path. */
    std::vector<float> attendReference(std::size_t b,
                                       const Matrix &q) const;
    std::vector<float> attendNearStorage(std::size_t b, const Matrix &q);
    std::vector<float> attendXCache(std::size_t b, const Matrix &q) const;

    /** Output projection + MLP (shared by every path). */
    Matrix finish(const Matrix &attn_out) const;

    LayerShape shape_;
    LayerWeights weights_;
    std::size_t batches_;
    std::optional<RopeTable> rope_;

    // Reference path: FP32 K/V per (batch, kv_head), flat row-major.
    std::vector<std::vector<float>> ref_k_;
    std::vector<std::vector<float>> ref_v_;

    // Near-storage path: FP16 stored cache + writeback staging.
    KvCache stored_;
    WritebackBuffer wb_;
    AttentionKernel kernel_;

    // X-cache path: FP16 pre-projection activations.
    XCacheStore xcache_;

    std::size_t positions_ = 0;
};

/**
 * A miniature end-to-end model: a stack of decoder layers plus an
 * output head, with greedy token decoding. This mirrors the paper
 * artifact's functional check ("verify that the token output matches
 * the expected values"): the generated token ids must be identical
 * whichever attention path executes each step.
 */
class TransformerModel
{
  public:
    /**
     * @param layers decoder depth
     * @param vocab output vocabulary size
     */
    TransformerModel(const LayerShape &shape, std::size_t layers,
                     std::size_t vocab, std::size_t batches, Rng &rng,
                     std::size_t spill_interval = 16);

    /**
     * Prefill with a token prompt (batches x tokens ids); embeddings
     * are a fixed random codebook.
     */
    void prefill(const std::vector<std::vector<std::uint32_t>> &prompt);

    /**
     * One greedy decode step via the chosen attention path.
     * @return the argmax token id per batch element
     */
    std::vector<std::uint32_t> decodeGreedy(AttentionPath path);

    /**
     * Generate `n` tokens greedily.
     * @return batches x n token ids
     */
    std::vector<std::vector<std::uint32_t>> generate(std::size_t n,
                                                     AttentionPath path);

    std::size_t contextLen() const { return layers_.front().contextLen(); }
    std::size_t vocab() const { return vocab_; }

  private:
    /** Embedding lookup for a batch of token ids. */
    Matrix embed(const std::vector<std::uint32_t> &ids) const;

    LayerShape shape_;
    std::size_t vocab_;
    std::size_t batches_;
    Matrix embedding_;  ///< vocab x hidden codebook
    Matrix head_;       ///< hidden x vocab output projection
    std::vector<TransformerLayer> layers_;
    std::vector<std::uint32_t> last_tokens_;
};

}  // namespace hilos

#endif  // HILOS_LLM_TRANSFORMER_H_
