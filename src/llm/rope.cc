#include "llm/rope.h"

#include <cmath>

#include "common/logging.h"

namespace hilos {

RopeTable::RopeTable(std::size_t head_dim, std::size_t max_pos,
                     double theta)
    : head_dim_(head_dim), max_pos_(max_pos)
{
    HILOS_ASSERT(head_dim_ >= 2 && head_dim_ % 2 == 0,
                 "RoPE needs an even head dimension, got ", head_dim_);
    HILOS_ASSERT(max_pos_ > 0, "RoPE table needs at least one position");

    const std::size_t half = head_dim_ / 2;
    sin_.resize(max_pos_ * half);
    cos_.resize(max_pos_ * half);
    for (std::size_t i = 0; i < half; i++) {
        const double inv_freq = std::pow(
            theta, -2.0 * static_cast<double>(i) /
                       static_cast<double>(head_dim_));
        for (std::size_t pos = 0; pos < max_pos_; pos++) {
            const double angle = static_cast<double>(pos) * inv_freq;
            sin_[pos * half + i] = static_cast<float>(std::sin(angle));
            cos_[pos * half + i] = static_cast<float>(std::cos(angle));
        }
    }
}

void
RopeTable::apply(float *vec, std::size_t pos) const
{
    HILOS_ASSERT(pos < max_pos_, "position beyond RoPE table: ", pos,
                 " >= ", max_pos_);
    const std::size_t half = head_dim_ / 2;
    const float *s = &sin_[pos * half];
    const float *c = &cos_[pos * half];
    for (std::size_t i = 0; i < half; i++) {
        const float x = vec[2 * i];
        const float y = vec[2 * i + 1];
        vec[2 * i] = x * c[i] - y * s[i];
        vec[2 * i + 1] = x * s[i] + y * c[i];
    }
}

void
RopeTable::applyRows(Matrix &m, std::size_t pos0) const
{
    HILOS_ASSERT(m.cols() == head_dim_, "RoPE dimension mismatch: ",
                 m.cols(), " vs ", head_dim_);
    for (std::size_t r = 0; r < m.rows(); r++)
        apply(m.row(r), pos0 + r);
}

}  // namespace hilos
