/**
 * @file
 * Rotary position embedding (RoPE).
 *
 * Modern models (Qwen, Mixtral, Llama) rotate query/key vectors by a
 * position-dependent angle before attention. This matters for the
 * cooperative X-cache (§4.2): the X-cache stores *pre-projection*
 * activations, so regenerating K on the GPU must re-apply RoPE for
 * every historical position. The paper notes this recomputation stays
 * negligible thanks to an efficient caching strategy — reproduced here
 * as a precomputed sin/cos table shared across steps and layers.
 */

#ifndef HILOS_LLM_ROPE_H_
#define HILOS_LLM_ROPE_H_

#include <cstddef>
#include <vector>

#include "llm/tensor.h"

namespace hilos {

/**
 * Precomputed RoPE sin/cos table for a head dimension and maximum
 * position (the "efficient caching strategy": the trigonometry is
 * computed once, not per decode step).
 */
class RopeTable
{
  public:
    /**
     * @param head_dim per-head dimension d (must be even)
     * @param max_pos largest position the table covers
     * @param theta base frequency (10000 for Llama-family models)
     */
    RopeTable(std::size_t head_dim, std::size_t max_pos,
              double theta = 10000.0);

    /**
     * Rotate one d-dimensional vector in place for position `pos`.
     * Pairs (2i, 2i+1) rotate by pos * theta^(-2i/d).
     */
    void apply(float *vec, std::size_t pos) const;

    /** Rotate every row of a (rows x d) matrix, row i at `pos0 + i`. */
    void applyRows(Matrix &m, std::size_t pos0 = 0) const;

    std::size_t headDim() const { return head_dim_; }
    std::size_t maxPos() const { return max_pos_; }

    /** Table bytes (the caching cost; tiny next to the KV cache). */
    std::size_t tableBytes() const
    {
        return 2 * sin_.size() * sizeof(float);
    }

  private:
    std::size_t head_dim_;
    std::size_t max_pos_;
    /** sin/cos of pos * inv_freq(i), laid out [pos][d/2]. */
    std::vector<float> sin_;
    std::vector<float> cos_;
};

}  // namespace hilos

#endif  // HILOS_LLM_ROPE_H_
