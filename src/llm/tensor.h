/**
 * @file
 * Minimal dense matrix types used by the functional attention paths:
 * row-major FP32 matrices plus FP16 buffer conversion helpers matching
 * the accelerator's storage format.
 */

#ifndef HILOS_LLM_TENSOR_H_
#define HILOS_LLM_TENSOR_H_

#include <cstddef>
#include <vector>

#include "common/half.h"
#include "common/random.h"

namespace hilos {

/** Row-major FP32 matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    const float &
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    const std::vector<float> &vec() const { return data_; }

    /** Pointer to the start of row r. */
    const float *row(std::size_t r) const { return &data_[r * cols_]; }
    float *row(std::size_t r) { return &data_[r * cols_]; }

    /** Gaussian-filled matrix (reproducible via the supplied Rng). */
    static Matrix random(std::size_t rows, std::size_t cols, Rng &rng,
                         float stddev = 1.0f);

    /** this (m x k) times other (k x n) -> (m x n), FP32. */
    Matrix matmul(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Max absolute difference against another same-shape matrix. */
    float maxAbsDiff(const Matrix &other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** Quantise a float matrix to an FP16 buffer (row-major). */
std::vector<Half> toHalf(const Matrix &m);

/** Widen an FP16 buffer back to a rows x cols matrix. */
Matrix fromHalf(const std::vector<Half> &buf, std::size_t rows,
                std::size_t cols);

}  // namespace hilos

#endif  // HILOS_LLM_TENSOR_H_
