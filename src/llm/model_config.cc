#include "llm/model_config.h"

#include <cmath>

#include "common/logging.h"

namespace hilos {

std::uint64_t
ModelConfig::headDim() const
{
    HILOS_ASSERT(heads > 0 && hidden % heads == 0,
                 "hidden must divide evenly into heads");
    return hidden / heads;
}

std::uint64_t
ModelConfig::dGroup() const
{
    HILOS_ASSERT(kv_heads > 0 && heads % kv_heads == 0,
                 "heads must divide evenly into kv_heads");
    return heads / kv_heads;
}

std::uint64_t
ModelConfig::attnWeightBytesPerLayer() const
{
    const std::uint64_t kv_dim = kv_heads * headDim();
    const std::uint64_t params = hidden * hidden        // Wq
                                 + hidden * kv_dim      // Wk
                                 + hidden * kv_dim      // Wv
                                 + hidden * hidden;     // Wo
    return params * dtype_bytes;
}

std::uint64_t
ModelConfig::mlpWeightBytesPerLayer() const
{
    const std::uint64_t proj_count = mlp_kind == MlpKind::Gated ? 3 : 2;
    const std::uint64_t per_expert = proj_count * hidden * intermediate;
    if (!isMoe())
        return per_expert * dtype_bytes;
    // MoE layers hold all experts; a moe_layer_fraction of layers are
    // MoE, the rest dense. Report the per-layer average.
    const double moe_bytes =
        static_cast<double>(per_expert * experts * dtype_bytes);
    const double dense_bytes =
        static_cast<double>(per_expert * dtype_bytes);
    return static_cast<std::uint64_t>(moe_layer_fraction * moe_bytes +
                                      (1.0 - moe_layer_fraction) *
                                          dense_bytes);
}

std::uint64_t
ModelConfig::weightBytesPerLayer() const
{
    return attnWeightBytesPerLayer() + mlpWeightBytesPerLayer();
}

std::uint64_t
ModelConfig::weightBytesTotal() const
{
    const std::uint64_t embeddings = vocab * hidden * dtype_bytes;
    return layers * weightBytesPerLayer() + 2 * embeddings;
}

std::uint64_t
ModelConfig::paramCount() const
{
    return weightBytesTotal() / dtype_bytes;
}

Bytes
ModelConfig::loadedWeightBytesPerLayer(std::uint64_t batch) const
{
    if (!isMoe())
        return static_cast<double>(weightBytesPerLayer());
    // Expected number of distinct experts activated by `batch` tokens,
    // each routing to `active_experts` *distinct* experts:
    //   E[distinct] = experts * (1 - (1 - active/experts)^batch),
    // which is exactly `active_experts` at batch 1.
    const double e = static_cast<double>(experts);
    const double a = static_cast<double>(active_experts);
    const double distinct =
        e * (1.0 - std::pow(1.0 - a / e,
                            static_cast<double>(batch)));
    const std::uint64_t proj_count = mlp_kind == MlpKind::Gated ? 3 : 2;
    const double per_expert = static_cast<double>(
        proj_count * hidden * intermediate * dtype_bytes);
    const double moe_layer =
        static_cast<double>(attnWeightBytesPerLayer()) +
        distinct * per_expert;
    const double dense_layer =
        static_cast<double>(attnWeightBytesPerLayer()) + per_expert;
    return moe_layer_fraction * moe_layer +
           (1.0 - moe_layer_fraction) * dense_layer;
}

std::uint64_t
ModelConfig::kvBytesPerTokenPerLayer() const
{
    return 2 * kv_heads * headDim() * dtype_bytes;
}

Bytes
ModelConfig::kvBytesTotal(std::uint64_t batch, std::uint64_t seq) const
{
    return static_cast<double>(kvBytesPerTokenPerLayer()) *
           static_cast<double>(layers) * static_cast<double>(batch) *
           static_cast<double>(seq);
}

std::uint64_t
ModelConfig::xBytesPerTokenPerLayer() const
{
    return hidden * dtype_bytes;
}

Flops
ModelConfig::denseFlopsPerTokenPerLayer() const
{
    const double attn_proj =
        2.0 * static_cast<double>(attnWeightBytesPerLayer() / dtype_bytes);
    const std::uint64_t proj_count = mlp_kind == MlpKind::Gated ? 3 : 2;
    const double per_expert =
        2.0 * static_cast<double>(proj_count * hidden * intermediate);
    const double active =
        isMoe() ? static_cast<double>(active_experts) : 1.0;
    const double mlp =
        isMoe() ? moe_layer_fraction * active * per_expert +
                      (1.0 - moe_layer_fraction) * per_expert
                : per_expert;
    return attn_proj + mlp;
}

Flops
ModelConfig::attentionFlopsPerToken(std::uint64_t s) const
{
    // QK^T and PV over the context for every query head.
    return 4.0 * static_cast<double>(heads) *
           static_cast<double>(headDim()) * static_cast<double>(s);
}

ModelConfig
opt30b()
{
    ModelConfig m;
    m.name = "OPT-30B";
    m.layers = 48;
    m.hidden = 7168;
    m.intermediate = 28672;
    m.heads = 64;
    m.kv_heads = 64;
    return m;
}

ModelConfig
opt66b()
{
    ModelConfig m;
    m.name = "OPT-66B";
    m.layers = 64;
    m.hidden = 9216;
    m.intermediate = 36864;
    m.heads = 72;
    m.kv_heads = 72;
    return m;
}

ModelConfig
opt175b()
{
    ModelConfig m;
    m.name = "OPT-175B";
    m.layers = 96;
    m.hidden = 12288;
    m.intermediate = 49152;
    m.heads = 96;
    m.kv_heads = 96;
    return m;
}

ModelConfig
qwen32b()
{
    ModelConfig m;
    m.name = "Qwen2.5-32B";
    m.layers = 64;
    m.hidden = 5120;
    m.intermediate = 27648;
    m.heads = 40;
    m.kv_heads = 8;
    m.mlp_kind = MlpKind::Gated;
    m.vocab = 152064;
    return m;
}

ModelConfig
mixtral8x7b()
{
    ModelConfig m;
    m.name = "Mixtral-8x7B";
    m.layers = 32;
    m.hidden = 4096;
    m.intermediate = 14336;
    m.heads = 32;
    m.kv_heads = 8;
    m.mlp_kind = MlpKind::Gated;
    m.experts = 8;
    m.active_experts = 2;
    m.vocab = 32000;
    return m;
}

ModelConfig
glam143b()
{
    ModelConfig m;
    m.name = "GLaM-143B";
    m.layers = 32;
    m.hidden = 4096;
    m.intermediate = 16384;
    m.heads = 32;
    m.kv_heads = 32;
    m.experts = 64;
    m.active_experts = 2;
    m.moe_layer_fraction = 0.5;  // GLaM interleaves dense and MoE layers
    m.vocab = 256000;
    return m;
}

std::vector<ModelConfig>
allModels()
{
    return {opt30b(), opt66b(), opt175b(), qwen32b(), mixtral8x7b(),
            glam143b()};
}

ModelConfig
modelByName(const std::string &name)
{
    for (const auto &m : allModels()) {
        if (m.name == name)
            return m;
    }
    HILOS_FATAL("unknown model: ", name);
}

}  // namespace hilos
