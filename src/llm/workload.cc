#include "llm/workload.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace hilos {

Request
makeRequest(RequestClass cls)
{
    switch (cls) {
      case RequestClass::Small:
        return Request{cls, 256, 100};
      case RequestClass::Medium:
        return Request{cls, 1024, 350};
      case RequestClass::Long:
        return Request{cls, 8192, 350};
    }
    HILOS_PANIC("unknown request class");
}

std::string
requestClassName(RequestClass cls)
{
    switch (cls) {
      case RequestClass::Small:
        return "Small(I:256/O:100)";
      case RequestClass::Medium:
        return "Medium(I:1K/O:350)";
      case RequestClass::Long:
        return "Long(I:8K/O:350)";
    }
    HILOS_PANIC("unknown request class");
}

std::vector<Request>
makeBatch(RequestClass cls, std::size_t count)
{
    return std::vector<Request>(count, makeRequest(cls));
}

NeedleTask
makeNeedleTask(const NeedleTaskConfig &cfg, Rng &rng)
{
    HILOS_ASSERT(cfg.needles <= cfg.head_dim,
                 "needle count must fit the head dimension (one-hot ids)");
    HILOS_ASSERT(cfg.needles < cfg.context_len,
                 "more needles than context tokens");
    const std::size_t s = cfg.context_len;
    const std::size_t d = cfg.head_dim;

    NeedleTask task;

    // Shared query direction u (unit norm) plus small per-lane noise so
    // GQA lanes agree on relevance.
    std::vector<float> u = rng.normalVector(d);
    float norm = 0.0f;
    for (float v : u)
        norm += v * v;
    norm = std::sqrt(norm);
    for (auto &v : u)
        v /= norm;

    task.queries = Matrix(cfg.d_group, d);
    for (std::size_t g = 0; g < cfg.d_group; g++) {
        for (std::size_t c = 0; c < d; c++) {
            const float jitter =
                g == 0 ? 0.0f
                       : 0.05f * static_cast<float>(rng.normal());
            task.queries.at(g, c) = u[c] + jitter;
        }
    }

    // Distractor keys: per-component N(0, sigma) makes dot(u, k)
    // distribute as N(0, sigma).
    task.keys = Matrix::random(s, d, rng, cfg.noise_sigma);
    // Distractor values: low-level noise, small enough that the
    // aggregate mass of tens of thousands of irrelevant tokens stays
    // below the weakest needle's contribution.
    task.values = Matrix::random(s, d, rng, 0.001f);

    // Plant needles: key aligned with u at the configured score margin,
    // value one-hot on the needle's id dimension.
    task.needles = rng.sampleIndices(s, cfg.needles);
    std::sort(task.needles.begin(), task.needles.end());
    for (std::size_t j = 0; j < task.needles.size(); j++) {
        const std::size_t tok = task.needles[j];
        for (std::size_t c = 0; c < d; c++) {
            task.keys.at(tok, c) =
                u[c] * cfg.needle_gain +
                0.02f * static_cast<float>(rng.normal());
            task.values.at(tok, c) = (c == j) ? 1.0f : 0.0f;
        }
    }
    return task;
}

double
retrievalF1(const std::vector<std::size_t> &truth,
            const std::vector<std::size_t> &predicted)
{
    if (truth.empty() && predicted.empty())
        return 1.0;
    if (truth.empty() || predicted.empty())
        return 0.0;
    std::vector<std::size_t> t = truth, p = predicted;
    std::sort(t.begin(), t.end());
    std::sort(p.begin(), p.end());
    std::vector<std::size_t> hit;
    std::set_intersection(t.begin(), t.end(), p.begin(), p.end(),
                          std::back_inserter(hit));
    const double tp = static_cast<double>(hit.size());
    const double precision = tp / static_cast<double>(p.size());
    const double recall = tp / static_cast<double>(t.size());
    if (precision + recall == 0.0)
        return 0.0;
    return 2.0 * precision * recall / (precision + recall);
}

std::vector<std::size_t>
recoveredNeedles(const Matrix &output,
                 const std::vector<std::size_t> &needles)
{
    HILOS_ASSERT(output.rows() >= 1, "empty attention output");
    const std::size_t m = needles.size();
    const std::size_t d = output.cols();
    HILOS_ASSERT(m <= d, "needle ids exceed head dimension");

    // Rank output dimensions of the primary query lane; the top-m dims
    // are the model's retrieved ids.
    std::vector<std::size_t> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return output.at(0, a) > output.at(0, b);
                     });

    std::vector<std::size_t> predicted;
    for (std::size_t i = 0; i < m; i++) {
        const std::size_t dim = order[i];
        if (dim < m) {
            predicted.push_back(needles[dim]);  // id dim -> token index
        } else {
            // A noise dimension outranked a needle: a retrieval miss
            // surfaced as a false positive (unique non-truth token).
            predicted.push_back(SIZE_MAX - dim);
        }
    }
    return predicted;
}

}  // namespace hilos
