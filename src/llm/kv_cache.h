/**
 * @file
 * KV-cache and X-cache containers plus the device-partitioning logic.
 *
 * Layouts follow §4.3: caches are row-wise (b x h x s x d) so the
 * minimum storage access granularity is a full (s x d) row — large and
 * sequential, which is what keeps SSD bandwidth high. Decode appends
 * one (1 x d) vector per step per (batch, head). The X-cache stores the
 * pre-projection activation X (b x s x hidden) instead of K and V,
 * halving capacity and traffic (§4.2).
 */

#ifndef HILOS_LLM_KV_CACHE_H_
#define HILOS_LLM_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "accel/gemv.h"
#include "common/half.h"

namespace hilos {

/** Identifies one attention slice: a (batch, kv-head) pair. */
struct SliceId {
    std::uint32_t batch = 0;
    std::uint32_t kv_head = 0;

    bool
    operator==(const SliceId &o) const
    {
        return batch == o.batch && kv_head == o.kv_head;
    }
};

/**
 * Functional KV cache for one transformer layer: per-slice row-wise K
 * and V stores in FP16 with append semantics.
 */
class KvCache
{
  public:
    /**
     * @param batches batch size b
     * @param kv_heads KV heads per layer
     * @param head_dim per-head dimension d
     */
    KvCache(std::size_t batches, std::size_t kv_heads,
            std::size_t head_dim);

    /** Append one (k, v) pair (each `head_dim` halves) to a slice. */
    void append(const SliceId &id, const Half *k, const Half *v);

    /** Current sequence length of a slice. */
    std::size_t length(const SliceId &id) const;

    /** Row-wise key matrix view (length x d) for a slice. */
    HalfMatrixView keys(const SliceId &id) const;
    /** Row-wise value matrix view (length x d) for a slice. */
    HalfMatrixView values(const SliceId &id) const;

    /** Bytes held for one slice (K + V). */
    std::uint64_t sliceBytes(const SliceId &id) const;
    /** Total bytes across slices. */
    std::uint64_t totalBytes() const;

    std::size_t batches() const { return batches_; }
    std::size_t kvHeads() const { return kv_heads_; }
    std::size_t headDim() const { return head_dim_; }

  private:
    std::size_t index(const SliceId &id) const;

    std::size_t batches_;
    std::size_t kv_heads_;
    std::size_t head_dim_;
    std::vector<std::vector<Half>> k_store_;
    std::vector<std::vector<Half>> v_store_;
};

/**
 * X-cache: pre-projection activations, one (s x hidden) store per batch
 * element. K and V regenerate on the GPU by re-projection (§4.2).
 */
class XCacheStore
{
  public:
    XCacheStore(std::size_t batches, std::size_t hidden);

    /** Append one activation row (hidden halves) for a batch element. */
    void append(std::size_t batch, const Half *x);

    /** Sequence length stored for a batch element. */
    std::size_t length(std::size_t batch) const;

    /** Row-wise activation matrix view (length x hidden). */
    HalfMatrixView activations(std::size_t batch) const;

    /** Total bytes held (half the equivalent KV bytes). */
    std::uint64_t totalBytes() const;

    std::size_t hidden() const { return hidden_; }

  private:
    std::size_t hidden_;
    std::vector<std::vector<Half>> store_;
};

/**
 * Partition of (batch, kv-head) slices across NSP devices (§4.1):
 * attention parallelises along batch and head, never sequence.
 */
class SlicePartition
{
  public:
    /**
     * Round-robin assignment of all b x h slices over `devices`.
     */
    SlicePartition(std::size_t batches, std::size_t kv_heads,
                   std::size_t devices);

    /** Device owning a slice. */
    std::size_t deviceOf(const SliceId &id) const;

    /** Slices owned by one device. */
    const std::vector<SliceId> &slicesOf(std::size_t device) const;

    /** Max slices on any device (load balance bound). */
    std::size_t maxSlicesPerDevice() const;

    std::size_t devices() const { return assignment_.size(); }
    std::size_t totalSlices() const { return batches_ * kv_heads_; }

  private:
    std::size_t batches_;
    std::size_t kv_heads_;
    std::vector<std::vector<SliceId>> assignment_;
};

}  // namespace hilos

#endif  // HILOS_LLM_KV_CACHE_H_
