#include "llm/sparse_attention.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "llm/attention_ref.h"

namespace hilos {

SparseAttention::SparseAttention(const SparseAttentionConfig &cfg)
    : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.compression_ratio >= 1, "invalid compression ratio");
    HILOS_ASSERT(cfg_.selection_bits >= 1 && cfg_.selection_bits <= 16,
                 "invalid selection bits");
}

float
SparseAttention::quantize(float v, float stddev) const
{
    const float clip = cfg_.clip_sigma * stddev;
    const float clamped = std::clamp(v, -clip, clip);
    const float levels =
        static_cast<float>((1u << cfg_.selection_bits) - 1);
    const float step = 2.0f * clip / levels;
    if (step <= 0.0f)
        return 0.0f;
    // Snap to the grid, then re-clamp: the top rounding bucket must not
    // escape the clip range.
    return std::clamp(std::round(clamped / step) * step, -clip, clip);
}

SparseAttentionResult
SparseAttention::run(const Matrix &queries, const Matrix &keys,
                     const Matrix &values, float scale) const
{
    HILOS_ASSERT(queries.cols() == keys.cols(), "q/k dim mismatch");
    HILOS_ASSERT(keys.rows() == values.rows(), "k/v shape mismatch");
    const std::size_t g = queries.rows();
    const std::size_t s = keys.rows();
    const std::size_t d = keys.cols();

    // Quantised key copy for the selection stage: the in-storage index
    // stores keys in low precision to fit the resource budget.
    float mean = 0.0f;
    for (std::size_t i = 0; i < keys.size(); i++)
        mean += keys.data()[i];
    mean /= static_cast<float>(keys.size());
    float var = 0.0f;
    for (std::size_t i = 0; i < keys.size(); i++) {
        const float dv = keys.data()[i] - mean;
        var += dv * dv;
    }
    const float stddev =
        std::sqrt(var / static_cast<float>(keys.size()));

    // Approximate ranking scores summed across the query group (the
    // group shares one retrieval decision, like a shared KV head).
    std::vector<float> approx(s, 0.0f);
    for (std::size_t i = 0; i < s; i++) {
        for (std::size_t q = 0; q < g; q++) {
            float dot = 0.0f;
            for (std::size_t c = 0; c < d; c++)
                dot += queries.at(q, c) * quantize(keys.at(i, c), stddev);
            approx[i] += dot;
        }
    }

    // Top-k selection.
    const std::size_t keep =
        std::max<std::size_t>(1, s / cfg_.compression_ratio);
    std::vector<std::size_t> order(s);
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return approx[a] > approx[b];
                      });
    std::vector<std::size_t> selected(order.begin(), order.begin() + keep);
    std::sort(selected.begin(), selected.end());

    // Exact attention over the retrieved subset.
    Matrix sub_k(keep, d), sub_v(keep, d);
    for (std::size_t i = 0; i < keep; i++) {
        for (std::size_t c = 0; c < d; c++) {
            sub_k.at(i, c) = keys.at(selected[i], c);
            sub_v.at(i, c) = values.at(selected[i], c);
        }
    }
    SparseAttentionResult res;
    res.outputs = naiveAttention(queries, sub_k, sub_v, scale);
    res.selected = std::move(selected);
    return res;
}

}  // namespace hilos
