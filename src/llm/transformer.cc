#include "llm/transformer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "llm/attention_ref.h"

namespace hilos {

LayerWeights
LayerWeights::random(const LayerShape &shape, Rng &rng)
{
    const float scale_h =
        1.0f / std::sqrt(static_cast<float>(shape.hidden));
    const float scale_i =
        1.0f / std::sqrt(static_cast<float>(shape.intermediate));
    LayerWeights w;
    w.wq = Matrix::random(shape.hidden, shape.hidden, rng, scale_h);
    w.wk = Matrix::random(shape.hidden, shape.kvWidth(), rng, scale_h);
    w.wv = Matrix::random(shape.hidden, shape.kvWidth(), rng, scale_h);
    w.wo = Matrix::random(shape.hidden, shape.hidden, rng, scale_h);
    w.w1 = Matrix::random(shape.hidden, shape.intermediate, rng, scale_h);
    w.w2 = Matrix::random(shape.intermediate, shape.hidden, rng, scale_i);
    return w;
}

TransformerLayer::TransformerLayer(const LayerShape &shape,
                                   LayerWeights weights,
                                   std::size_t batches,
                                   std::size_t spill_interval)
    : shape_(shape), weights_(std::move(weights)), batches_(batches),
      ref_k_(batches * shape.kv_heads), ref_v_(batches * shape.kv_heads),
      stored_(batches, shape.kv_heads, shape.headDim()),
      wb_(batches * shape.kv_heads, shape.headDim(), spill_interval),
      kernel_(AttentionKernelConfig{128, shape.dGroup(), 128, 32}),
      xcache_(batches, shape.hidden)
{
    HILOS_ASSERT(shape_.hidden % shape_.heads == 0,
                 "hidden must divide into heads");
    HILOS_ASSERT(shape_.heads % shape_.kv_heads == 0,
                 "heads must divide into kv_heads");
    if (shape_.use_rope)
        rope_.emplace(shape_.headDim(), shape_.max_pos);
}

void
TransformerLayer::project(const Matrix &x, Matrix &q, Matrix &k,
                          Matrix &v, std::size_t pos0) const
{
    q = x.matmul(weights_.wq);
    k = x.matmul(weights_.wk);
    v = x.matmul(weights_.wv);
    if (rope_) {
        const std::size_t d = shape_.headDim();
        for (std::size_t b = 0; b < x.rows(); b++) {
            for (std::size_t h = 0; h < shape_.heads; h++)
                rope_->apply(q.row(b) + h * d, pos0);
            for (std::size_t h = 0; h < shape_.kv_heads; h++)
                rope_->apply(k.row(b) + h * d, pos0);
        }
    }
}

std::vector<float>
TransformerLayer::attendReference(std::size_t b, const Matrix &q) const
{
    const std::size_t d = shape_.headDim();
    const std::size_t g = shape_.dGroup();
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    std::vector<float> out(shape_.hidden, 0.0f);

    for (std::size_t h = 0; h < shape_.kv_heads; h++) {
        const auto &kbuf = ref_k_[b * shape_.kv_heads + h];
        const auto &vbuf = ref_v_[b * shape_.kv_heads + h];
        const std::size_t len = kbuf.size() / d;
        Matrix keys(len, d), values(len, d);
        std::copy(kbuf.begin(), kbuf.end(), keys.data());
        std::copy(vbuf.begin(), vbuf.end(), values.data());
        Matrix queries(g, d);
        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++)
                queries.at(gi, c) = q.at(b, head * d + c);
        }
        const Matrix res = naiveAttention(queries, keys, values, scale);
        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++)
                out[head * d + c] = res.at(gi, c);
        }
    }
    return out;
}

std::vector<float>
TransformerLayer::attendNearStorage(std::size_t b, const Matrix &q)
{
    const std::size_t d = shape_.headDim();
    const std::size_t g = shape_.dGroup();
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    std::vector<float> out(shape_.hidden, 0.0f);

    for (std::size_t h = 0; h < shape_.kv_heads; h++) {
        const SliceId slice{static_cast<std::uint32_t>(b),
                            static_cast<std::uint32_t>(h)};
        const std::size_t wslice = b * shape_.kv_heads + h;

        // Query block for this group, FP16 as the device receives it.
        std::vector<Half> qh(g * d);
        std::vector<float> qf(g * d);
        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++) {
                const float val = q.at(b, head * d + c);
                qh[gi * d + c] = Half(val);
                qf[gi * d + c] = Half(val).toFloat();
            }
        }

        AttentionRequest req;
        req.queries = viewOf(qh, g, d);
        req.keys = stored_.keys(slice);
        req.values = stored_.values(slice);
        req.valid_len = stored_.length(slice);
        req.scale = scale;
        req.partial_scores = wb_.partialScores(wslice, qf, g, scale);
        req.buffered_values = wb_.bufferedValues(wslice);
        const AttentionResult res = kernel_.run(req);

        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++)
                out[head * d + c] = res.outputs[gi * d + c];
        }
    }
    return out;
}

std::vector<float>
TransformerLayer::attendXCache(std::size_t b, const Matrix &q) const
{
    const std::size_t d = shape_.headDim();
    const std::size_t g = shape_.dGroup();
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    // Regenerate K and V from the stored pre-projection activations:
    // X (s x hidden) times W_K / W_V, re-applying RoPE per historical
    // position (§4.2; the rotation cache makes this cheap).
    const HalfMatrixView xview = xcache_.activations(b);
    const std::size_t len = xview.rows;
    Matrix x(len, shape_.hidden);
    for (std::size_t r = 0; r < len; r++)
        for (std::size_t c = 0; c < shape_.hidden; c++)
            x.at(r, c) = xview.at(r, c).toFloat();
    Matrix k = x.matmul(weights_.wk);
    const Matrix v = x.matmul(weights_.wv);
    if (rope_) {
        for (std::size_t r = 0; r < len; r++)
            for (std::size_t h = 0; h < shape_.kv_heads; h++)
                rope_->apply(k.row(r) + h * d, r);
    }

    std::vector<float> out(shape_.hidden, 0.0f);
    for (std::size_t h = 0; h < shape_.kv_heads; h++) {
        Matrix keys(len, d), values(len, d);
        for (std::size_t r = 0; r < len; r++)
            for (std::size_t c = 0; c < d; c++) {
                keys.at(r, c) = k.at(r, h * d + c);
                values.at(r, c) = v.at(r, h * d + c);
            }
        Matrix queries(g, d);
        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++)
                queries.at(gi, c) = q.at(b, head * d + c);
        }
        // The regenerated portion runs FlashAttention on the GPU.
        const Matrix res = flashAttention(queries, keys, values, scale);
        for (std::size_t gi = 0; gi < g; gi++) {
            const std::size_t head = h * g + gi;
            for (std::size_t c = 0; c < d; c++)
                out[head * d + c] = res.at(gi, c);
        }
    }
    return out;
}

Matrix
TransformerLayer::finish(const Matrix &attn_out) const
{
    const Matrix proj = attn_out.matmul(weights_.wo);
    Matrix h = proj.matmul(weights_.w1);
    for (std::size_t i = 0; i < h.size(); i++)
        h.data()[i] = std::max(0.0f, h.data()[i]);  // ReLU (OPT-style)
    Matrix y = h.matmul(weights_.w2);
    for (std::size_t i = 0; i < y.size(); i++)
        y.data()[i] += proj.data()[i];  // residual
    return y;
}

Matrix
TransformerLayer::prefill(const Matrix &prompt, std::size_t tokens)
{
    HILOS_ASSERT(prompt.rows() == batches_ * tokens,
                 "prompt layout must be batch-major (b*tokens rows)");
    HILOS_ASSERT(prompt.cols() == shape_.hidden, "prompt width mismatch");
    HILOS_ASSERT(positions_ == 0, "prefill on a non-empty layer");

    const std::size_t d = shape_.headDim();
    Matrix outputs(prompt.rows(), shape_.hidden);

    for (std::size_t t = 0; t < tokens; t++) {
        Matrix x(batches_, shape_.hidden);
        for (std::size_t b = 0; b < batches_; b++)
            for (std::size_t c = 0; c < shape_.hidden; c++)
                x.at(b, c) = prompt.at(b * tokens + t, c);

        Matrix q, k, v;
        project(x, q, k, v, positions_);

        for (std::size_t b = 0; b < batches_; b++) {
            // X-cache: store the pre-projection activation.
            std::vector<Half> xrow(shape_.hidden);
            for (std::size_t c = 0; c < shape_.hidden; c++)
                xrow[c] = Half(x.at(b, c));
            xcache_.append(b, xrow.data());

            for (std::size_t h = 0; h < shape_.kv_heads; h++) {
                const SliceId slice{static_cast<std::uint32_t>(b),
                                    static_cast<std::uint32_t>(h)};
                std::vector<Half> kr(d), vr(d);
                std::vector<float> kf(d), vf(d);
                for (std::size_t c = 0; c < d; c++) {
                    kf[c] = k.at(b, h * d + c);
                    vf[c] = v.at(b, h * d + c);
                    kr[c] = Half(kf[c]);
                    vr[c] = Half(vf[c]);
                }
                // Prefill writes row-wise directly to storage (§4.3).
                stored_.append(slice, kr.data(), vr.data());
                auto &kbuf = ref_k_[b * shape_.kv_heads + h];
                auto &vbuf = ref_v_[b * shape_.kv_heads + h];
                kbuf.insert(kbuf.end(), kf.begin(), kf.end());
                vbuf.insert(vbuf.end(), vf.begin(), vf.end());
            }
        }
        positions_++;

        // Prefill outputs via the reference path (FlashAttention in the
        // real system; identical math).
        Matrix attn(batches_, shape_.hidden);
        for (std::size_t b = 0; b < batches_; b++) {
            const std::vector<float> o = attendReference(b, q);
            std::copy(o.begin(), o.end(), attn.row(b));
        }
        const Matrix y = finish(attn);
        for (std::size_t b = 0; b < batches_; b++)
            for (std::size_t c = 0; c < shape_.hidden; c++)
                outputs.at(b * tokens + t, c) = y.at(b, c);
    }
    return outputs;
}

Matrix
TransformerLayer::decode(const Matrix &x, AttentionPath path)
{
    HILOS_ASSERT(x.rows() == batches_ && x.cols() == shape_.hidden,
                 "decode input must be batches x hidden");
    const std::size_t d = shape_.headDim();

    Matrix q, k, v;
    project(x, q, k, v, positions_);

    // Append the new token to every path's cache so paths stay
    // interchangeable step to step.
    for (std::size_t b = 0; b < batches_; b++) {
        std::vector<Half> xrow(shape_.hidden);
        for (std::size_t c = 0; c < shape_.hidden; c++)
            xrow[c] = Half(x.at(b, c));
        xcache_.append(b, xrow.data());

        for (std::size_t h = 0; h < shape_.kv_heads; h++) {
            const std::size_t wslice = b * shape_.kv_heads + h;
            std::vector<Half> kr(d), vr(d);
            std::vector<float> kf(d), vf(d);
            for (std::size_t c = 0; c < d; c++) {
                kf[c] = k.at(b, h * d + c);
                vf[c] = v.at(b, h * d + c);
                kr[c] = Half(kf[c]);
                vr[c] = Half(vf[c]);
            }
            // Decode appends stage in host memory and spill to storage
            // at the configured interval (§4.3).
            wb_.append(wslice, kr.data(), vr.data());
            auto &kbuf = ref_k_[wslice];
            auto &vbuf = ref_v_[wslice];
            kbuf.insert(kbuf.end(), kf.begin(), kf.end());
            vbuf.insert(vbuf.end(), vf.begin(), vf.end());
        }
    }
    // Commit any spilled chunks to the stored cache.
    for (SpillChunk &chunk : wb_.takeSpills()) {
        const std::size_t b = chunk.slice / shape_.kv_heads;
        const std::size_t h = chunk.slice % shape_.kv_heads;
        const SliceId slice{static_cast<std::uint32_t>(b),
                            static_cast<std::uint32_t>(h)};
        for (std::uint64_t e = 0; e < chunk.entries; e++) {
            stored_.append(slice, chunk.k_data.data() + e * d,
                           chunk.v_data.data() + e * d);
        }
    }
    positions_++;

    Matrix attn(batches_, shape_.hidden);
    for (std::size_t b = 0; b < batches_; b++) {
        std::vector<float> o;
        switch (path) {
          case AttentionPath::Reference:
            o = attendReference(b, q);
            break;
          case AttentionPath::NearStorage:
            o = attendNearStorage(b, q);
            break;
          case AttentionPath::XCache:
            o = attendXCache(b, q);
            break;
        }
        std::copy(o.begin(), o.end(), attn.row(b));
    }
    return finish(attn);
}

TransformerModel::TransformerModel(const LayerShape &shape,
                                   std::size_t layers, std::size_t vocab,
                                   std::size_t batches, Rng &rng,
                                   std::size_t spill_interval)
    : shape_(shape), vocab_(vocab), batches_(batches)
{
    HILOS_ASSERT(layers >= 1 && vocab >= 2, "invalid model shape");
    const float scale =
        1.0f / std::sqrt(static_cast<float>(shape.hidden));
    embedding_ = Matrix::random(vocab, shape.hidden, rng, 1.0f);
    head_ = Matrix::random(shape.hidden, vocab, rng, scale);
    layers_.reserve(layers);
    for (std::size_t l = 0; l < layers; l++) {
        layers_.emplace_back(shape, LayerWeights::random(shape, rng),
                             batches, spill_interval);
    }
    last_tokens_.assign(batches, 0);
}

Matrix
TransformerModel::embed(const std::vector<std::uint32_t> &ids) const
{
    HILOS_ASSERT(ids.size() == batches_, "token batch size mismatch");
    Matrix x(batches_, shape_.hidden);
    for (std::size_t b = 0; b < batches_; b++) {
        HILOS_ASSERT(ids[b] < vocab_, "token id beyond vocabulary");
        for (std::size_t c = 0; c < shape_.hidden; c++)
            x.at(b, c) = embedding_.at(ids[b], c);
    }
    return x;
}

void
TransformerModel::prefill(
    const std::vector<std::vector<std::uint32_t>> &prompt)
{
    HILOS_ASSERT(prompt.size() == batches_, "prompt batch mismatch");
    const std::size_t tokens = prompt.front().size();
    for (const auto &seq : prompt)
        HILOS_ASSERT(seq.size() == tokens, "ragged prompt");

    Matrix acts(batches_ * tokens, shape_.hidden);
    for (std::size_t b = 0; b < batches_; b++)
        for (std::size_t t = 0; t < tokens; t++) {
            HILOS_ASSERT(prompt[b][t] < vocab_, "token id beyond vocab");
            for (std::size_t c = 0; c < shape_.hidden; c++)
                acts.at(b * tokens + t, c) =
                    embedding_.at(prompt[b][t], c);
        }
    for (TransformerLayer &layer : layers_)
        acts = layer.prefill(acts, tokens);
    for (std::size_t b = 0; b < batches_; b++)
        last_tokens_[b] = prompt[b].back();
}

std::vector<std::uint32_t>
TransformerModel::decodeGreedy(AttentionPath path)
{
    Matrix x = embed(last_tokens_);
    for (TransformerLayer &layer : layers_)
        x = layer.decode(x, path);
    const Matrix logits = x.matmul(head_);
    std::vector<std::uint32_t> out(batches_);
    for (std::size_t b = 0; b < batches_; b++) {
        std::size_t best = 0;
        for (std::size_t v = 1; v < vocab_; v++) {
            if (logits.at(b, v) > logits.at(b, best))
                best = v;
        }
        out[b] = static_cast<std::uint32_t>(best);
    }
    last_tokens_ = out;
    return out;
}

std::vector<std::vector<std::uint32_t>>
TransformerModel::generate(std::size_t n, AttentionPath path)
{
    std::vector<std::vector<std::uint32_t>> out(batches_);
    for (std::size_t step = 0; step < n; step++) {
        const auto toks = decodeGreedy(path);
        for (std::size_t b = 0; b < batches_; b++)
            out[b].push_back(toks[b]);
    }
    return out;
}

}  // namespace hilos
