/**
 * @file
 * Model configurations (Table 2) and derived size arithmetic: weight
 * bytes per layer, KV-cache bytes per token, MoE active-expert loading,
 * and the memory-footprint quantities behind Figure 2(a).
 */

#ifndef HILOS_LLM_MODEL_CONFIG_H_
#define HILOS_LLM_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** Feed-forward block style. */
enum class MlpKind {
    Standard,  ///< two projections (OPT): 2 * h * i
    Gated,     ///< gated SiLU (Qwen/Mixtral): 3 * h * i
};

/** One decoder-only transformer configuration (a Table 2 row). */
struct ModelConfig {
    std::string name;
    std::uint64_t layers = 0;
    std::uint64_t hidden = 0;        ///< model width h
    std::uint64_t intermediate = 0;  ///< FFN width i
    std::uint64_t heads = 0;         ///< query heads
    std::uint64_t kv_heads = 0;      ///< KV heads (== heads for MHA)
    MlpKind mlp_kind = MlpKind::Standard;
    std::uint64_t experts = 0;        ///< 0 for dense models
    std::uint64_t active_experts = 0; ///< experts activated per token
    /** Fraction of layers that are MoE (GLaM interleaves dense/MoE). */
    double moe_layer_fraction = 1.0;
    std::uint64_t vocab = 50272;
    std::uint64_t dtype_bytes = 2;  ///< FP16
    std::uint64_t max_position = 131072;

    /** Per-head dimension d = hidden / heads. */
    std::uint64_t headDim() const;
    /** Query heads per KV head (Table 2's d_group). */
    std::uint64_t dGroup() const;
    /** True for mixture-of-experts models. */
    bool isMoe() const { return experts > 0; }

    /** Attention weight bytes of one layer (Wq, Wk, Wv, Wo). */
    std::uint64_t attnWeightBytesPerLayer() const;
    /** FFN weight bytes of one layer (all experts for MoE). */
    std::uint64_t mlpWeightBytesPerLayer() const;
    /** Total weight bytes of one layer. */
    std::uint64_t weightBytesPerLayer() const;
    /** Total model weight bytes (layers + embeddings). */
    std::uint64_t weightBytesTotal() const;
    /** Approximate parameter count. */
    std::uint64_t paramCount() const;

    /**
     * Weight bytes that must be staged per layer per decoding step for
     * a batch of `batch` tokens. Dense models load everything; MoE
     * models load the expected number of distinct activated experts.
     */
    Bytes loadedWeightBytesPerLayer(std::uint64_t batch) const;

    /** KV-cache bytes per token per layer (K and V, FP16). */
    std::uint64_t kvBytesPerTokenPerLayer() const;
    /** KV-cache bytes for `batch` sequences of `seq` tokens, all layers. */
    Bytes kvBytesTotal(std::uint64_t batch, std::uint64_t seq) const;
    /** X-cache bytes per token per layer (pre-projection activation). */
    std::uint64_t xBytesPerTokenPerLayer() const;

    /**
     * Decode-step FLOPs of one layer for one token (projections + MLP,
     * excluding attention over the context, which scales with s).
     */
    Flops denseFlopsPerTokenPerLayer() const;
    /** Attention FLOPs for one token attending to `s` context tokens. */
    Flops attentionFlopsPerToken(std::uint64_t s) const;
};

/** OPT-30B (48 x 7168, MHA). */
ModelConfig opt30b();
/** OPT-66B (64 x 9216, MHA). */
ModelConfig opt66b();
/** OPT-175B (96 x 12288, MHA). */
ModelConfig opt175b();
/** Qwen2.5-32B (64 x 5120, GQA d_group = 5). */
ModelConfig qwen32b();
/** Mixtral-8x7B (32 x 4096, GQA d_group = 4, 8 experts / 2 active). */
ModelConfig mixtral8x7b();
/** GLaM-143B (32 x 4096, MHA, 64 experts / 2 active, alternating MoE). */
ModelConfig glam143b();

/** All Table 2 models in paper order. */
std::vector<ModelConfig> allModels();

/** Look up a model by Table 2 name; fatal on unknown names. */
ModelConfig modelByName(const std::string &name);

}  // namespace hilos

#endif  // HILOS_LLM_MODEL_CONFIG_H_
