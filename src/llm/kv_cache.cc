#include "llm/kv_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

KvCache::KvCache(std::size_t batches, std::size_t kv_heads,
                 std::size_t head_dim)
    : batches_(batches), kv_heads_(kv_heads), head_dim_(head_dim),
      k_store_(batches * kv_heads), v_store_(batches * kv_heads)
{
    HILOS_ASSERT(batches > 0 && kv_heads > 0 && head_dim > 0,
                 "invalid KV cache shape");
}

std::size_t
KvCache::index(const SliceId &id) const
{
    HILOS_ASSERT(id.batch < batches_ && id.kv_head < kv_heads_,
                 "slice out of range: b=", id.batch, " h=", id.kv_head);
    return static_cast<std::size_t>(id.batch) * kv_heads_ + id.kv_head;
}

void
KvCache::append(const SliceId &id, const Half *k, const Half *v)
{
    const std::size_t i = index(id);
    k_store_[i].insert(k_store_[i].end(), k, k + head_dim_);
    v_store_[i].insert(v_store_[i].end(), v, v + head_dim_);
}

std::size_t
KvCache::length(const SliceId &id) const
{
    return k_store_[index(id)].size() / head_dim_;
}

HalfMatrixView
KvCache::keys(const SliceId &id) const
{
    const auto &buf = k_store_[index(id)];
    return HalfMatrixView{buf.data(), buf.size() / head_dim_, head_dim_};
}

HalfMatrixView
KvCache::values(const SliceId &id) const
{
    const auto &buf = v_store_[index(id)];
    return HalfMatrixView{buf.data(), buf.size() / head_dim_, head_dim_};
}

std::uint64_t
KvCache::sliceBytes(const SliceId &id) const
{
    const std::size_t i = index(id);
    return (k_store_[i].size() + v_store_[i].size()) * sizeof(Half);
}

std::uint64_t
KvCache::totalBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < k_store_.size(); i++)
        total += (k_store_[i].size() + v_store_[i].size()) * sizeof(Half);
    return total;
}

XCacheStore::XCacheStore(std::size_t batches, std::size_t hidden)
    : hidden_(hidden), store_(batches)
{
    HILOS_ASSERT(batches > 0 && hidden > 0, "invalid X-cache shape");
}

void
XCacheStore::append(std::size_t batch, const Half *x)
{
    HILOS_ASSERT(batch < store_.size(), "batch out of range");
    store_[batch].insert(store_[batch].end(), x, x + hidden_);
}

std::size_t
XCacheStore::length(std::size_t batch) const
{
    HILOS_ASSERT(batch < store_.size(), "batch out of range");
    return store_[batch].size() / hidden_;
}

HalfMatrixView
XCacheStore::activations(std::size_t batch) const
{
    HILOS_ASSERT(batch < store_.size(), "batch out of range");
    const auto &buf = store_[batch];
    return HalfMatrixView{buf.data(), buf.size() / hidden_, hidden_};
}

std::uint64_t
XCacheStore::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &b : store_)
        total += b.size() * sizeof(Half);
    return total;
}

SlicePartition::SlicePartition(std::size_t batches, std::size_t kv_heads,
                               std::size_t devices)
    : batches_(batches), kv_heads_(kv_heads), assignment_(devices)
{
    HILOS_ASSERT(devices > 0, "need at least one device");
    std::size_t next = 0;
    for (std::uint32_t b = 0; b < batches; b++) {
        for (std::uint32_t h = 0; h < kv_heads; h++) {
            assignment_[next % devices].push_back(SliceId{b, h});
            next++;
        }
    }
}

std::size_t
SlicePartition::deviceOf(const SliceId &id) const
{
    HILOS_ASSERT(id.batch < batches_ && id.kv_head < kv_heads_,
                 "slice out of range");
    const std::size_t linear =
        static_cast<std::size_t>(id.batch) * kv_heads_ + id.kv_head;
    return linear % assignment_.size();
}

const std::vector<SliceId> &
SlicePartition::slicesOf(std::size_t device) const
{
    HILOS_ASSERT(device < assignment_.size(), "device out of range");
    return assignment_[device];
}

std::size_t
SlicePartition::maxSlicesPerDevice() const
{
    std::size_t worst = 0;
    for (const auto &v : assignment_)
        worst = std::max(worst, v.size());
    return worst;
}

}  // namespace hilos
