/**
 * @file
 * Workload generators.
 *
 * Two kinds of workloads drive the evaluation:
 *  - request mixes for throughput/endurance experiments, derived from
 *    the Azure LLM-inference statistics the paper cites (Fig. 16(b)):
 *    Small (256 in / 100 out), Medium (1K/350), Long (8K/350);
 *  - synthetic long-context retrieval ("needle") tasks for the accuracy
 *    comparison (Fig. 18(c)), where ground truth is known by
 *    construction so retrieval F1 can be computed exactly.
 */

#ifndef HILOS_LLM_WORKLOAD_H_
#define HILOS_LLM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "llm/tensor.h"

namespace hilos {

/** Azure-statistics-derived request classes (Fig. 16(b)). */
enum class RequestClass {
    Small,   ///< 256 input / 100 output tokens
    Medium,  ///< 1K input / 350 output tokens
    Long,    ///< 8K input / 350 output tokens
};

/** One inference request. */
struct Request {
    RequestClass cls = RequestClass::Small;
    std::uint64_t input_tokens = 0;
    std::uint64_t output_tokens = 0;
    /** Arrival time in an online stream; 0 for offline batch sets. */
    Seconds arrival = 0.0;
};

/** Canonical (input, output) lengths of a request class. */
Request makeRequest(RequestClass cls);

/** Printable class name. */
std::string requestClassName(RequestClass cls);

/**
 * A batch of homogeneous requests (offline batching groups requests of
 * similar length).
 */
std::vector<Request> makeBatch(RequestClass cls, std::size_t count);

/**
 * Synthetic retrieval task: a long context with `needles` planted
 * relevant tokens. Exact attention recovers all planted values;
 * lossy retrieval misses some, lowering F1.
 */
struct NeedleTask {
    Matrix queries;                    ///< g x d query block
    Matrix keys;                       ///< s x d keys
    Matrix values;                     ///< s x d values
    std::vector<std::size_t> needles;  ///< planted relevant indices

    std::size_t contextLen() const { return keys.rows(); }
};

/** Parameters of the needle-retrieval generator. */
struct NeedleTaskConfig {
    std::size_t context_len = 4096;
    std::size_t head_dim = 64;
    std::size_t d_group = 1;
    std::size_t needles = 8;
    /** Needle score margin over distractors, in key-norm units. */
    float needle_gain = 2.0f;
    /** Standard deviation of distractor keys. */
    float noise_sigma = 1.0f;
};

/**
 * Generate one needle task. Each planted needle's value vector is the
 * one-hot basis vector of its needle id, so the exact-attention output
 * carries equal probability mass on every needle dimension; a retrieval
 * scheme that misses a needle zeroes that dimension.
 */
NeedleTask makeNeedleTask(const NeedleTaskConfig &cfg, Rng &rng);

/**
 * Score a predicted needle set against ground truth.
 * @return F1 in [0, 1]
 */
double retrievalF1(const std::vector<std::size_t> &truth,
                   const std::vector<std::size_t> &predicted);

/**
 * Needle set recovered from an attention output: dimensions whose mass
 * exceeds half the ideal per-needle share count as retrieved.
 *
 * @param output g x d attention output
 * @param needles ground-truth needle indices (for id -> dim mapping)
 */
std::vector<std::size_t> recoveredNeedles(
    const Matrix &output, const std::vector<std::size_t> &needles);

}  // namespace hilos

#endif  // HILOS_LLM_WORKLOAD_H_
