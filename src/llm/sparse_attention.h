/**
 * @file
 * InstAttention-style lossy sparse KV retrieval (§7.1, Fig. 18(c)).
 *
 * In-storage attention offloading under tight resource budgets
 * (InstAttention, HPCA'25) retrieves only a compressed subset of the KV
 * cache: candidate tokens are ranked with a low-precision approximation
 * of the query-key scores, the top s/ratio are fetched, and exact
 * attention runs over that subset. The approximation misses relevant
 * tokens more often as context grows — the accuracy drop HILOS's
 * lossless kernel avoids.
 */

#ifndef HILOS_LLM_SPARSE_ATTENTION_H_
#define HILOS_LLM_SPARSE_ATTENTION_H_

#include <cstdint>
#include <vector>

#include "llm/tensor.h"

namespace hilos {

/** Sparse-retrieval configuration. */
struct SparseAttentionConfig {
    /** Keep s / compression_ratio tokens (InstAttention default 8). */
    std::size_t compression_ratio = 8;
    /** Bits per element of the quantised selection index. */
    unsigned selection_bits = 4;
    /** Clamp range for quantisation, in standard deviations. */
    float clip_sigma = 3.0f;
};

/** Result of one sparse-attention invocation. */
struct SparseAttentionResult {
    Matrix outputs;                     ///< g x d attention outputs
    std::vector<std::size_t> selected;  ///< retrieved token indices
};

/**
 * Lossy top-k attention: rank tokens with quantised scores, retrieve
 * the top s/ratio, run exact attention over the retrieved subset.
 */
class SparseAttention
{
  public:
    explicit SparseAttention(const SparseAttentionConfig &cfg);

    /**
     * @param queries g x d query block
     * @param keys s x d keys
     * @param values s x d values
     * @param scale score scale; 0 means 1/sqrt(d)
     */
    SparseAttentionResult run(const Matrix &queries, const Matrix &keys,
                              const Matrix &values,
                              float scale = 0.0f) const;

    /**
     * Quantise one value to `selection_bits` with symmetric clipping at
     * clip_sigma * stddev; exposed for tests.
     */
    float quantize(float v, float stddev) const;

    const SparseAttentionConfig &config() const { return cfg_; }

  private:
    SparseAttentionConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_LLM_SPARSE_ATTENTION_H_
