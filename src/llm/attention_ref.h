/**
 * @file
 * Reference attention implementations used as ground truth:
 *  - `naiveAttention`: FP32, textbook three-pass softmax;
 *  - `flashAttention`: FP32, single-pass online-softmax (the
 *    FlashAttention recurrence the paper compares accuracy against).
 *
 * Both compute softmax(Q K^T / sqrt(d)) V for a block of d_group query
 * vectors over an s x d context.
 */

#ifndef HILOS_LLM_ATTENTION_REF_H_
#define HILOS_LLM_ATTENTION_REF_H_

#include "llm/tensor.h"

namespace hilos {

/**
 * Textbook attention: scores, stable three-pass softmax, weighted sum.
 *
 * @param queries g x d query block
 * @param keys s x d keys
 * @param values s x d values
 * @param scale score scale; 0 means 1/sqrt(d)
 * @return g x d outputs
 */
Matrix naiveAttention(const Matrix &queries, const Matrix &keys,
                      const Matrix &values, float scale = 0.0f);

/**
 * FlashAttention-style streaming attention: one pass over K/V blocks
 * with online (max, sum, accumulator) rescaling. Numerically equivalent
 * to naiveAttention up to floating-point reassociation.
 *
 * @param block_tokens KV block height processed per step
 */
Matrix flashAttention(const Matrix &queries, const Matrix &keys,
                      const Matrix &values, float scale = 0.0f,
                      std::size_t block_tokens = 128);

}  // namespace hilos

#endif  // HILOS_LLM_ATTENTION_REF_H_
