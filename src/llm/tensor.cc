#include "llm/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hilos {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::random(std::size_t rows, std::size_t cols, Rng &rng, float stddev)
{
    Matrix m(rows, cols);
    auto v = rng.normalVector(rows * cols, 0.0f, stddev);
    std::copy(v.begin(), v.end(), m.data_.begin());
    return m;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    HILOS_ASSERT(cols_ == other.rows_, "matmul shape mismatch: ", rows_,
                 "x", cols_, " @ ", other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; i++) {
        for (std::size_t k = 0; k < cols_; k++) {
            const float a = at(i, k);
            if (a == 0.0f)
                continue;
            const float *brow = other.row(k);
            float *orow = out.row(i);
            for (std::size_t j = 0; j < other.cols_; j++)
                orow[j] += a * brow[j];
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; r++)
        for (std::size_t c = 0; c < cols_; c++)
            out.at(c, r) = at(r, c);
    return out;
}

float
Matrix::maxAbsDiff(const Matrix &other) const
{
    HILOS_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                 "shape mismatch in maxAbsDiff");
    float worst = 0.0f;
    for (std::size_t i = 0; i < data_.size(); i++)
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    return worst;
}

std::vector<Half>
toHalf(const Matrix &m)
{
    std::vector<Half> buf(m.size());
    for (std::size_t i = 0; i < m.size(); i++)
        buf[i] = Half(m.data()[i]);
    return buf;
}

Matrix
fromHalf(const std::vector<Half> &buf, std::size_t rows, std::size_t cols)
{
    HILOS_ASSERT(buf.size() == rows * cols, "fromHalf shape mismatch");
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < buf.size(); i++)
        m.data()[i] = buf[i].toFloat();
    return m;
}

}  // namespace hilos
