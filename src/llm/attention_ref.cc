#include "llm/attention_ref.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hilos {

Matrix
naiveAttention(const Matrix &queries, const Matrix &keys,
               const Matrix &values, float scale)
{
    HILOS_ASSERT(queries.cols() == keys.cols(), "q/k dim mismatch");
    HILOS_ASSERT(keys.rows() == values.rows() &&
                     keys.cols() == values.cols(),
                 "k/v shape mismatch");
    const std::size_t g = queries.rows();
    const std::size_t s = keys.rows();
    const std::size_t d = keys.cols();
    const float sc =
        scale != 0.0f ? scale : 1.0f / std::sqrt(static_cast<float>(d));

    Matrix out(g, d);
    for (std::size_t q = 0; q < g; q++) {
        // Scores.
        std::vector<float> scores(s);
        for (std::size_t i = 0; i < s; i++) {
            float acc = 0.0f;
            for (std::size_t c = 0; c < d; c++)
                acc += queries.at(q, c) * keys.at(i, c);
            scores[i] = acc * sc;
        }
        // Three-pass stable softmax.
        float m = -std::numeric_limits<float>::infinity();
        for (float v : scores)
            m = std::max(m, v);
        float z = 0.0f;
        for (float v : scores)
            z += std::exp(v - m);
        // Weighted sum.
        for (std::size_t i = 0; i < s; i++) {
            const float p = std::exp(scores[i] - m) / z;
            for (std::size_t c = 0; c < d; c++)
                out.at(q, c) += p * values.at(i, c);
        }
    }
    return out;
}

Matrix
flashAttention(const Matrix &queries, const Matrix &keys,
               const Matrix &values, float scale, std::size_t block_tokens)
{
    HILOS_ASSERT(queries.cols() == keys.cols(), "q/k dim mismatch");
    HILOS_ASSERT(keys.rows() == values.rows() &&
                     keys.cols() == values.cols(),
                 "k/v shape mismatch");
    HILOS_ASSERT(block_tokens > 0, "block size must be positive");
    const std::size_t g = queries.rows();
    const std::size_t s = keys.rows();
    const std::size_t d = keys.cols();
    const float sc =
        scale != 0.0f ? scale : 1.0f / std::sqrt(static_cast<float>(d));

    Matrix out(g, d);
    for (std::size_t q = 0; q < g; q++) {
        float m = -std::numeric_limits<float>::infinity();
        float z = 0.0f;
        std::vector<float> acc(d, 0.0f);

        for (std::size_t base = 0; base < s; base += block_tokens) {
            const std::size_t end = std::min(s, base + block_tokens);
            // Block scores and local max.
            std::vector<float> scores(end - base);
            float m_b = -std::numeric_limits<float>::infinity();
            for (std::size_t i = base; i < end; i++) {
                float dot = 0.0f;
                for (std::size_t c = 0; c < d; c++)
                    dot += queries.at(q, c) * keys.at(i, c);
                scores[i - base] = dot * sc;
                m_b = std::max(m_b, scores[i - base]);
            }
            // Online rescale of the running state.
            const float m_new = std::max(m, m_b);
            const float alpha = std::exp(m - m_new);
            z *= alpha;
            for (auto &a : acc)
                a *= alpha;
            // Accumulate the block.
            for (std::size_t i = base; i < end; i++) {
                const float p = std::exp(scores[i - base] - m_new);
                z += p;
                for (std::size_t c = 0; c < d; c++)
                    acc[c] += p * values.at(i, c);
            }
            m = m_new;
        }
        HILOS_ASSERT(z > 0.0f, "flash attention with empty context");
        for (std::size_t c = 0; c < d; c++)
            out.at(q, c) = acc[c] / z;
    }
    return out;
}

}  // namespace hilos
