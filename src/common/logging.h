/**
 * @file
 * Status-message and error-reporting helpers, modelled on the gem5
 * logging discipline: `panic` for internal invariant violations, `fatal`
 * for unrecoverable user/configuration errors, and `warn`/`inform` for
 * diagnostics that do not stop the run.
 */

#ifndef HILOS_COMMON_LOGGING_H_
#define HILOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hilos {

/** Verbosity levels for non-fatal messages. */
enum class LogLevel {
    Silent = 0,  ///< Suppress everything except fatal/panic.
    Warn = 1,    ///< Warnings only.
    Inform = 2,  ///< Warnings and informational messages.
    Debug = 3,   ///< Everything, including debug traces.
};

/** Set the global verbosity. Thread-compatible, not thread-safe. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Stream-compose a message from heterogeneous pieces. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

}  // namespace detail

/**
 * Abort with a message: something happened that should never happen
 * regardless of user input (i.e., a bug in this library).
 */
#define HILOS_PANIC(...)                                                   \
    ::hilos::detail::panicImpl(__FILE__, __LINE__,                         \
                               ::hilos::detail::composeMessage(__VA_ARGS__))

/**
 * Exit with a message: the run cannot continue because of a condition
 * that is the caller's fault (bad configuration, invalid arguments).
 */
#define HILOS_FATAL(...)                                                   \
    ::hilos::detail::fatalImpl(__FILE__, __LINE__,                         \
                               ::hilos::detail::composeMessage(__VA_ARGS__))

/** Non-fatal warning, printed at LogLevel::Warn and above. */
#define HILOS_WARN(...)                                                    \
    ::hilos::detail::warnImpl(::hilos::detail::composeMessage(__VA_ARGS__))

/** Informational status message, printed at LogLevel::Inform and above. */
#define HILOS_INFORM(...)                                                  \
    ::hilos::detail::informImpl(                                           \
        ::hilos::detail::composeMessage(__VA_ARGS__))

/** Debug trace, printed at LogLevel::Debug. */
#define HILOS_DEBUG(...)                                                   \
    ::hilos::detail::debugImpl(::hilos::detail::composeMessage(__VA_ARGS__))

/** Panic unless `cond` holds. Cheap enough to keep in release builds. */
#define HILOS_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            HILOS_PANIC("assertion failed: " #cond " ",                    \
                        ::hilos::detail::composeMessage(__VA_ARGS__));     \
        }                                                                  \
    } while (0)

}  // namespace hilos

#endif  // HILOS_COMMON_LOGGING_H_
