/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style rows/series (one table or figure per bench binary).
 */

#ifndef HILOS_COMMON_TABLE_H_
#define HILOS_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace hilos {

/**
 * Column-aligned text table. Cells are strings; numeric helpers format
 * with a fixed precision. Rendered with a header rule, suitable for
 * copy-paste into EXPERIMENTS.md.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row. Cells are appended with cell()/num(). */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &s);

    /** Append a numeric cell with `precision` fractional digits. */
    TextTable &num(double v, int precision = 2);

    /** Append a "1.23x" style ratio cell. */
    TextTable &ratio(double v, int precision = 2);

    /** Render the whole table. */
    std::string str() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format bytes with a binary suffix ("3.84 TB" style uses decimal). */
std::string formatBytes(double bytes);

/** Format seconds adaptively (us/ms/s). */
std::string formatSeconds(double s);

/** Print a section banner used by bench binaries. */
void printBanner(std::ostream &os, const std::string &title);

}  // namespace hilos

#endif  // HILOS_COMMON_TABLE_H_
