#include "common/cli.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace hilos {

ArgParser::ArgParser(std::string program) : program_(std::move(program))
{
    addFlag("help", "show this help text");
}

ArgParser &
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    HILOS_ASSERT(find(name) == nullptr, "duplicate option --", name);
    options_.emplace_back(name, Option{default_value, help, false});
    return *this;
}

ArgParser &
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    HILOS_ASSERT(find(name) == nullptr, "duplicate option --", name);
    options_.emplace_back(name, Option{"", help, true});
    return *this;
}

const ArgParser::Option *
ArgParser::find(const std::string &name) const
{
    for (const auto &[n, opt] : options_) {
        if (n == name)
            return &opt;
    }
    return nullptr;
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    error_.clear();
    values_.clear();
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            error_ = "unexpected positional argument: " + arg;
            return false;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_inline_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_inline_value = true;
        }
        const Option *opt = find(arg);
        if (opt == nullptr) {
            error_ = "unknown option --" + arg;
            return false;
        }
        if (opt->is_flag) {
            if (has_inline_value) {
                error_ = "flag --" + arg + " takes no value";
                return false;
            }
            values_[arg] = "1";
            if (arg == "help")
                help_requested_ = true;
            continue;
        }
        if (!has_inline_value) {
            if (i + 1 >= argc) {
                error_ = "option --" + arg + " needs a value";
                return false;
            }
            value = argv[++i];
        }
        values_[arg] = value;
    }
    return true;
}

std::string
ArgParser::get(const std::string &name) const
{
    const Option *opt = find(name);
    HILOS_ASSERT(opt != nullptr, "undeclared option --", name);
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : opt->default_value;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    const std::string v = get(name);
    char *end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        // Leave callers an error signal without throwing mid-report.
        const_cast<ArgParser *>(this)->error_ =
            "option --" + name + " is not an integer: " + v;
        return 0;
    }
    return parsed;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string v = get(name);
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0') {
        const_cast<ArgParser *>(this)->error_ =
            "option --" + name + " is not a number: " + v;
        return 0.0;
    }
    return parsed;
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const Option *opt = find(name);
    HILOS_ASSERT(opt != nullptr && opt->is_flag, "undeclared flag --",
                 name);
    return values_.count(name) > 0;
}

std::string
ArgParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << program_ << " [options]\n";
    for (const auto &[name, opt] : options_) {
        oss << "  --" << name;
        if (!opt.is_flag)
            oss << " <value, default: "
                << (opt.default_value.empty() ? "none"
                                              : opt.default_value)
                << ">";
        oss << "\n      " << opt.help << "\n";
    }
    return oss.str();
}

}  // namespace hilos
