#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace hilos {

void
Summary::add(double x)
{
    n_++;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Summary::reset()
{
    *this = Summary();
}

double
Summary::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    HILOS_ASSERT(hi > lo && buckets > 0, "invalid histogram bounds");
}

void
Histogram::add(double x)
{
    total_++;
    if (total_ == 1) {
        min_seen_ = max_seen_ = x;
    } else {
        min_seen_ = std::min(min_seen_, x);
        max_seen_ = std::max(max_seen_, x);
    }
    if (x < lo_) {
        underflow_++;
    } else if (x >= hi_) {
        overflow_++;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);  // guard fp edge at hi_
        counts_[i]++;
    }
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
    min_seen_ = max_seen_ = 0.0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i) + width_;
}

double
Histogram::quantile(double q) const
{
    HILOS_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target && underflow_ > 0)
        return min_seen_;
    for (std::size_t i = 0; i < counts_.size(); i++) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(counts_[i]);
            return bucketLow(i) + frac * width_;
        }
        cum = next;
    }
    // The quantile lands in the overflow mass (or the in-range buckets
    // are empty): report the true maximum, not the bucket bound hi_.
    return overflow_ > 0 ? max_seen_ : hi_;
}

std::string
StatRegistry::report() const
{
    std::ostringstream oss;
    for (const auto &[key, c] : counters_)
        oss << name_ << "." << key << " = " << c.value() << "\n";
    for (const auto &[key, s] : summaries_) {
        oss << name_ << "." << key << " = mean " << s.mean() << " min "
            << s.min() << " max " << s.max() << " n " << s.count() << "\n";
    }
    return oss.str();
}

void
StatRegistry::reset()
{
    for (auto &[key, c] : counters_)
        c.reset();
    for (auto &[key, s] : summaries_)
        s.reset();
}

double
exactQuantile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    return exactQuantileSorted(samples, q);
}

double
exactQuantileSorted(const std::vector<double> &sorted, double q)
{
    HILOS_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
    HILOS_ASSERT(!sorted.empty(), "exact quantile of an empty sample set");
    const auto n = sorted.size();
    // Nearest-rank: rank = ceil(q * n), clamped to [1, n].
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::max<std::size_t>(rank, 1);
    rank = std::min(rank, n);
    return sorted[rank - 1];
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    HILOS_ASSERT(x.size() == y.size() && x.size() >= 2,
                 "pearson needs two equal-length series, got ", x.size(),
                 " and ", y.size());
    const auto n = static_cast<double>(x.size());
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < x.size(); i++) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n, my = sy / n;
    double sxy = 0, sxx = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); i++) {
        const double dx = x[i] - mx, dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace hilos
