/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that experiments are reproducible run-to-run.
 */

#ifndef HILOS_COMMON_RANDOM_H_
#define HILOS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace hilos {

/**
 * Thin wrapper around a 64-bit Mersenne Twister with convenience
 * distributions used across the codebase.
 */
class Rng
{
  public:
    /** Seeded construction; the default seed is fixed, not time-based. */
    explicit Rng(std::uint64_t seed = 0x48494c4f53ull) : gen_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(gen_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
    }

    /** Normal draw. */
    double
    normal(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(gen_);
    }

    /** Fill a float vector with N(mean, stddev) draws. */
    std::vector<float>
    normalVector(std::size_t n, float mean = 0.0f, float stddev = 1.0f)
    {
        std::vector<float> v(n);
        std::normal_distribution<float> d(mean, stddev);
        for (auto &x : v)
            x = d(gen_);
        return v;
    }

    /** Pick k distinct indices from [0, n) (k <= n). */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Underlying engine, for use with std algorithms. */
    std::mt19937_64 &engine() { return gen_; }

  private:
    std::mt19937_64 gen_;
};

}  // namespace hilos

#endif  // HILOS_COMMON_RANDOM_H_
