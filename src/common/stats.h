/**
 * @file
 * Lightweight statistics primitives: scalar counters, running summaries,
 * histograms, and a registry that groups stats per component for
 * end-of-run reporting. Inspired by the gem5 Stats package but sized for
 * this project.
 */

#ifndef HILOS_COMMON_STATS_H_
#define HILOS_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hilos {

/** Monotonic counter (events, bytes, tokens, ...). */
class Counter
{
  public:
    Counter() = default;

    void add(double x) { value_ += x; }
    void increment() { value_ += 1.0; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Streaming min/max/mean/variance summary (Welford's algorithm). */
class Summary
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    void reset();

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /**
     * Approximate quantile (0 <= q <= 1) assuming uniform density within
     * a bucket. Quantiles that land in the underflow (overflow) mass
     * return the true minimum (maximum) sample seen rather than silently
     * clamping to the histogram bounds, so q=1.0 always reports the real
     * tail even when samples fell outside [lo, hi).
     */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double min_seen_ = 0.0;
    double max_seen_ = 0.0;
};

/**
 * Named stats registry for a component. Components register named
 * counters/summaries and the registry renders a report.
 */
class StatRegistry
{
  public:
    explicit StatRegistry(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &key) { return counters_[key]; }
    Summary &summary(const std::string &key) { return summaries_[key]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Summary> &summaries() const
    {
        return summaries_;
    }

    /** Human-readable dump, one `name.key = value` line each. */
    std::string report() const;

    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Summary> summaries_;
};

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/**
 * Exact nearest-rank quantile of a sample set: the smallest value v such
 * that at least ceil(q * n) samples are <= v. Unlike Histogram::quantile
 * this never interpolates, so tail percentiles (p99/p999) are actual
 * observed samples. Sorts a copy; O(n log n). Asserts on an empty set.
 */
double exactQuantile(std::vector<double> samples, double q);

/** exactQuantile for a pre-sorted (ascending) sample set; O(1). */
double exactQuantileSorted(const std::vector<double> &sorted, double q);

}  // namespace hilos

#endif  // HILOS_COMMON_STATS_H_
