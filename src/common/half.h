/**
 * @file
 * IEEE-754 binary16 ("half") storage type.
 *
 * The HILOS accelerator stores KV-cache data in FP16 and accumulates in
 * FP32 (§5.4 of the paper). This type reproduces that behaviour in
 * software: conversion to/from float uses round-to-nearest-even, and all
 * arithmetic is performed by converting through float, exactly as a
 * load/compute/store pipeline with FP32 internal precision would.
 */

#ifndef HILOS_COMMON_HALF_H_
#define HILOS_COMMON_HALF_H_

#include <cstdint>
#include <iosfwd>

namespace hilos {

/**
 * IEEE-754 binary16 value. Trivially copyable, 2 bytes, so vectors of
 * Half model device buffers byte-for-byte.
 */
class Half
{
  public:
    /** Zero-initialised half. */
    constexpr Half() : bits_(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit Half(float value) : bits_(fromFloat(value)) {}

    /** Reinterpret raw binary16 bits. */
    static constexpr Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    /** Raw binary16 bits. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Widen to float (exact: every binary16 value is a float). */
    float toFloat() const { return halfToFloat(bits_); }

    /** Implicit widening, mirroring hardware FP16->FP32 promotion. */
    operator float() const { return toFloat(); }

    /** True if this encodes a NaN. */
    bool isNan() const;
    /** True if this encodes +/-infinity. */
    bool isInf() const;

    /** Bitwise equality (distinguishes +0 from -0; NaN == NaN). */
    constexpr bool
    operator==(const Half &other) const
    {
        return bits_ == other.bits_;
    }
    constexpr bool
    operator!=(const Half &other) const
    {
        return bits_ != other.bits_;
    }

    /** Largest finite binary16 value (65504). */
    static constexpr Half max() { return fromBits(0x7bff); }
    /** Smallest positive normal binary16 value (2^-14). */
    static constexpr Half minNormal() { return fromBits(0x0400); }
    /** Positive infinity. */
    static constexpr Half infinity() { return fromBits(0x7c00); }

    /** Round-to-nearest-even float -> binary16 bits. */
    static std::uint16_t fromFloat(float value);
    /** Exact binary16 bits -> float. */
    static float halfToFloat(std::uint16_t bits);

  private:
    std::uint16_t bits_;
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes");

std::ostream &operator<<(std::ostream &os, const Half &h);

}  // namespace hilos

#endif  // HILOS_COMMON_HALF_H_
