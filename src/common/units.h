/**
 * @file
 * Unit helpers: byte sizes, time, bandwidth, and the conversion
 * conventions used throughout the simulator.
 *
 * Conventions:
 *  - sizes are `std::uint64_t` bytes,
 *  - time is `double` seconds,
 *  - bandwidth is `double` bytes per second,
 *  - compute throughput is `double` FLOP/s,
 *  - power is `double` watts, energy `double` joules.
 *
 * Storage-industry bandwidth figures (e.g. "6,900 MB/s") are decimal;
 * capacities and page sizes are binary. Helpers exist for both.
 */

#ifndef HILOS_COMMON_UNITS_H_
#define HILOS_COMMON_UNITS_H_

#include <cstdint>

namespace hilos {

/** Bytes per second. */
using Bandwidth = double;
/** Seconds. */
using Seconds = double;
/** FLOP per second. */
using Flops = double;
/** Watts. */
using Watts = double;
/** Joules. */
using Joules = double;

// Binary sizes (capacities, page/buffer sizes).
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;
constexpr std::uint64_t TiB = 1024ull * GiB;

// Decimal sizes (datasheet bandwidth and capacity figures).
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

/** Decimal gigabytes-per-second to bytes-per-second. */
constexpr Bandwidth
gbps(double x)
{
    return x * GB;
}

/** Decimal megabytes-per-second to bytes-per-second. */
constexpr Bandwidth
mbps(double x)
{
    return x * MB;
}

/** TFLOPS to FLOP/s. */
constexpr Flops
tflops(double x)
{
    return x * 1e12;
}

/** GFLOPS to FLOP/s. */
constexpr Flops
gflops(double x)
{
    return x * 1e9;
}

/** Microseconds to seconds. */
constexpr Seconds
usec(double x)
{
    return x * 1e-6;
}

/** Milliseconds to seconds. */
constexpr Seconds
msec(double x)
{
    return x * 1e-3;
}

/** Integer ceiling division for positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round `a` up to the next multiple of `b` (b > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    return ceilDiv(a, b) * b;
}

}  // namespace hilos

#endif  // HILOS_COMMON_UNITS_H_
