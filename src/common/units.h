/**
 * @file
 * Strongly-typed physical quantities: byte sizes, time, bandwidth,
 * compute, energy, and clock-cycle types, plus the conversion
 * conventions used throughout the simulator.
 *
 * Every dimensional value the simulator reasons about is a `Quantity`
 * — a single `double` tagged at compile time with exponents over the
 * five base dimensions (bytes, seconds, FLOPs, joules, cycles). The
 * wrapper is zero-overhead (one double, trivially copyable, all
 * operations `constexpr`) and exposes only dimensionally-correct
 * arithmetic:
 *
 *  - same-dimension `+`, `-`, comparisons, and `=` work; mixing two
 *    different quantity types in any of them is a compile error
 *    (`Seconds + Bytes` does not build — see tests/compile_fail/);
 *  - `*` and `/` combine dimensions: `Bytes / BytesPerSec -> Seconds`,
 *    `Watts * Seconds -> Joules`, `Cycles / Hertz -> Seconds`;
 *  - a raw `double` is dimensionless: it scales any quantity
 *    (`2.0 * t`), and `double / Quantity` inverts the dimension, so a
 *    bare byte count divided by a bandwidth does NOT yield `Seconds`
 *    until the count is annotated as `Bytes(n)`;
 *  - quantities convert implicitly to/from `double` so they interoperate
 *    with streams, accumulators, and math functions, but never to each
 *    other: passing a `Bandwidth` where a `Seconds` parameter is
 *    expected is a compile error (two user conversions are required).
 *
 * Conventions:
 *  - discrete sizes (capacities, page/buffer sizes) are `std::uint64_t`
 *    bytes; continuous byte quantities (traffic, model footprints) are
 *    `Bytes`,
 *  - time is `Seconds`, bandwidth `BytesPerSec` (alias `Bandwidth`),
 *  - compute work is `Flops` (a count), throughput `FlopRate` (FLOP/s),
 *  - power is `Watts`, energy `Joules`,
 *  - accelerator clocks count `Cycles` at a `Hertz` rate.
 *
 * Storage-industry bandwidth figures (e.g. "6,900 MB/s") are decimal;
 * capacities and page sizes are binary. Helpers exist for both.
 *
 * Adding a dimension: extend the exponent pack below, give the new base
 * dimension an alias with exponent 1, and derived aliases fall out of
 * the algebra (see DESIGN.md §10).
 */

#ifndef HILOS_COMMON_UNITS_H_
#define HILOS_COMMON_UNITS_H_

#include <cassert>
#include <cstdint>
#include <limits>

namespace hilos {

template <int ByteE, int SecE, int FlopE, int EnergyE, int CycleE>
class Quantity;

namespace units_internal {

/** Maps a dimension vector to its quantity type; the dimensionless
 *  vector collapses to plain `double` so ratios read naturally. */
template <int B, int T, int F, int E, int C>
struct QuantityOf {
    using type = Quantity<B, T, F, E, C>;
};
template <>
struct QuantityOf<0, 0, 0, 0, 0> {
    using type = double;
};

template <int B, int T, int F, int E, int C>
using quantity_of_t = typename QuantityOf<B, T, F, E, C>::type;

}  // namespace units_internal

/**
 * A dimensioned scalar: one `double` tagged with compile-time exponents
 * over the base dimensions (bytes, seconds, FLOPs, joules, cycles).
 * See the file comment for the algebra.
 */
template <int ByteE, int SecE, int FlopE, int EnergyE, int CycleE>
class Quantity
{
  public:
    constexpr Quantity() = default;
    /** Implicit by design: raw literals carry no dimension tag, so
     *  `Seconds t = 1e-3;` must stay legal. Quantity-to-quantity
     *  conversion is still rejected (it would need two user
     *  conversions). */
    constexpr Quantity(double v) : v_(v) {}  // NOLINT(google-explicit-constructor)

    /** Implicit by design: quantities flow into plain-double sinks
     *  (streams, accumulators, cmath). */
    constexpr operator double() const { return v_; }  // NOLINT(google-explicit-constructor)

    /** The underlying value in base units (bytes, seconds, ...). */
    constexpr double value() const { return v_; }

    constexpr Quantity &operator+=(Quantity o)
    {
        v_ += o.v_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity o)
    {
        v_ -= o.v_;
        return *this;
    }
    /** Dimensionless scaling only: `q *= other_quantity` is deleted. */
    constexpr Quantity &operator*=(double s)
    {
        v_ *= s;
        return *this;
    }
    constexpr Quantity &operator/=(double s)
    {
        v_ /= s;
        return *this;
    }
    template <int B, int T, int F, int E, int C>
    Quantity &operator*=(Quantity<B, T, F, E, C>) = delete;
    template <int B, int T, int F, int E, int C>
    Quantity &operator/=(Quantity<B, T, F, E, C>) = delete;

    constexpr Quantity operator-() const { return Quantity(-v_); }
    constexpr Quantity operator+() const { return *this; }

  private:
    double v_ = 0.0;
};

// ---------------------------------------------------------------------------
// Additive and relational operators: same dimension only. The general
// mixed-dimension templates are deleted; partial ordering selects the
// more-specialised same-dimension overloads when dimensions agree, so
// `Seconds + Bytes` names the deleted operator and fails to compile.
// ---------------------------------------------------------------------------

template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator+(Quantity<B1, T1, F1, E1, C1>,
               Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator-(Quantity<B1, T1, F1, E1, C1>,
               Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator<(Quantity<B1, T1, F1, E1, C1>,
               Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator>(Quantity<B1, T1, F1, E1, C1>,
               Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator<=(Quantity<B1, T1, F1, E1, C1>,
                Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator>=(Quantity<B1, T1, F1, E1, C1>,
                Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator==(Quantity<B1, T1, F1, E1, C1>,
                Quantity<B2, T2, F2, E2, C2>) = delete;
template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
void operator!=(Quantity<B1, T1, F1, E1, C1>,
                Quantity<B2, T2, F2, E2, C2>) = delete;

template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator+(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return Quantity<B, T, F, E, C>(a.value() + b.value());
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator-(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return Quantity<B, T, F, E, C>(a.value() - b.value());
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() < b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() > b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<=(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() <= b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>=(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() >= b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator==(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() == b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator!=(Quantity<B, T, F, E, C> a, Quantity<B, T, F, E, C> b)
{
    return a.value() != b.value();
}

// Mixing with a raw double (dimensionless) is permitted in additive and
// relational positions — `t > 0.0`, `t + slack` — and resolved here
// explicitly so the builtin double operators never create ambiguity.
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator+(Quantity<B, T, F, E, C> a, double b)
{
    return Quantity<B, T, F, E, C>(a.value() + b);
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator+(double a, Quantity<B, T, F, E, C> b)
{
    return Quantity<B, T, F, E, C>(a + b.value());
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator-(Quantity<B, T, F, E, C> a, double b)
{
    return Quantity<B, T, F, E, C>(a.value() - b);
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator-(double a, Quantity<B, T, F, E, C> b)
{
    return Quantity<B, T, F, E, C>(a - b.value());
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() < b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<(double a, Quantity<B, T, F, E, C> b)
{
    return a < b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() > b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>(double a, Quantity<B, T, F, E, C> b)
{
    return a > b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<=(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() <= b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator<=(double a, Quantity<B, T, F, E, C> b)
{
    return a <= b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>=(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() >= b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator>=(double a, Quantity<B, T, F, E, C> b)
{
    return a >= b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator==(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() == b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator==(double a, Quantity<B, T, F, E, C> b)
{
    return a == b.value();
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator!=(Quantity<B, T, F, E, C> a, double b)
{
    return a.value() != b;
}
template <int B, int T, int F, int E, int C>
constexpr bool
operator!=(double a, Quantity<B, T, F, E, C> b)
{
    return a != b.value();
}

// ---------------------------------------------------------------------------
// Multiplicative operators: dimensions combine. A dimensionless result
// collapses to plain double (Seconds / Seconds is a ratio).
// ---------------------------------------------------------------------------

template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
constexpr units_internal::quantity_of_t<B1 + B2, T1 + T2, F1 + F2, E1 + E2,
                                        C1 + C2>
operator*(Quantity<B1, T1, F1, E1, C1> a, Quantity<B2, T2, F2, E2, C2> b)
{
    return units_internal::quantity_of_t<B1 + B2, T1 + T2, F1 + F2, E1 + E2,
                                         C1 + C2>(a.value() * b.value());
}

template <int B1, int T1, int F1, int E1, int C1,
          int B2, int T2, int F2, int E2, int C2>
constexpr units_internal::quantity_of_t<B1 - B2, T1 - T2, F1 - F2, E1 - E2,
                                        C1 - C2>
operator/(Quantity<B1, T1, F1, E1, C1> a, Quantity<B2, T2, F2, E2, C2> b)
{
    return units_internal::quantity_of_t<B1 - B2, T1 - T2, F1 - F2, E1 - E2,
                                         C1 - C2>(a.value() / b.value());
}

/** Dimensionless scaling: `2.0 * t`, `t * 0.5`, `bytes_q / devices`. */
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator*(Quantity<B, T, F, E, C> a, double s)
{
    return Quantity<B, T, F, E, C>(a.value() * s);
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator*(double s, Quantity<B, T, F, E, C> a)
{
    return Quantity<B, T, F, E, C>(s * a.value());
}
template <int B, int T, int F, int E, int C>
constexpr Quantity<B, T, F, E, C>
operator/(Quantity<B, T, F, E, C> a, double s)
{
    return Quantity<B, T, F, E, C>(a.value() / s);
}

/**
 * Dividing a raw double by a quantity inverts the dimension — so a bare
 * byte count over a bandwidth is seconds-per-byte-scaled junk until the
 * count is annotated: write `Bytes(n) / bw` to get `Seconds`.
 */
template <int B, int T, int F, int E, int C>
constexpr units_internal::quantity_of_t<-B, -T, -F, -E, -C>
operator/(double s, Quantity<B, T, F, E, C> a)
{
    return units_internal::quantity_of_t<-B, -T, -F, -E, -C>(s / a.value());
}

// ---------------------------------------------------------------------------
// The dimension vocabulary. Base dimensions first, derived after; new
// combinations fall out of the algebra without being named here.
// ---------------------------------------------------------------------------

/** Continuous byte quantity (traffic, footprints). Discrete sizes stay
 *  `std::uint64_t`; annotate them at dimensional boundaries:
 *  `Bytes(n) / bw -> Seconds`. */
using Bytes = Quantity<1, 0, 0, 0, 0>;
/** Seconds. */
using Seconds = Quantity<0, 1, 0, 0, 0>;
/** Floating-point operation count. */
using Flops = Quantity<0, 0, 1, 0, 0>;
/** Joules. */
using Joules = Quantity<0, 0, 0, 1, 0>;
/** Clock-cycle count. */
using Cycles = Quantity<0, 0, 0, 0, 1>;

/** Bytes per second. */
using BytesPerSec = Quantity<1, -1, 0, 0, 0>;
/** Historical name for BytesPerSec, kept for signature readability. */
using Bandwidth = BytesPerSec;
/** FLOP per second. */
using FlopRate = Quantity<0, -1, 1, 0, 0>;
/** Watts (joules per second). */
using Watts = Quantity<0, -1, 0, 1, 0>;
/** Clock frequency (cycles per second). */
using Hertz = Quantity<0, -1, 0, 0, 1>;

// Binary sizes (capacities, page/buffer sizes).
constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;
constexpr std::uint64_t TiB = 1024ull * GiB;

// Decimal sizes (datasheet bandwidth and capacity figures).
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

/** Decimal gigabytes-per-second to bytes-per-second. */
constexpr Bandwidth
gbps(double x)
{
    return Bandwidth(x * GB);
}

/** Decimal megabytes-per-second to bytes-per-second. */
constexpr Bandwidth
mbps(double x)
{
    return Bandwidth(x * MB);
}

/** TFLOPS to FLOP/s. */
constexpr FlopRate
tflops(double x)
{
    return FlopRate(x * 1e12);
}

/** GFLOPS to FLOP/s. */
constexpr FlopRate
gflops(double x)
{
    return FlopRate(x * 1e9);
}

/** Microseconds to seconds. */
constexpr Seconds
usec(double x)
{
    return Seconds(x * 1e-6);
}

/** Milliseconds to seconds. */
constexpr Seconds
msec(double x)
{
    return Seconds(x * 1e-3);
}

/** Megahertz to Hertz. */
constexpr Hertz
mhz(double x)
{
    return Hertz(x * 1e6);
}

/**
 * Period of one cycle at frequency `f`: the named conversion for what
 * used to be an inline `1.0 / freq` (whose quantity-algebra result is
 * seconds-per-cycle, not Seconds).
 */
constexpr Seconds
sec(Hertz f)
{
    return Seconds(1.0 / f.value());
}

/** Frequency whose single-cycle period is `period` (inverse of sec()). */
constexpr Hertz
hz(Seconds period)
{
    return Hertz(1.0 / period.value());
}

/** Integer ceiling division for positive integers (b > 0). */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    assert(b != 0 && "ceilDiv by zero");
    return (a + b - 1) / b;
}

/** Round `a` up to the next multiple of `b` (b > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    assert(b != 0 && "roundUp by zero");
    return ceilDiv(a, b) * b;
}

}  // namespace hilos

/**
 * Quantities inherit double's limits (infinity, epsilon, ...). Without
 * this, `std::numeric_limits<Seconds>::infinity()` would silently hit
 * the unspecialized primary template and return zero.
 */
template <int ByteE, int SecE, int FlopE, int EnergyE, int CycleE>
struct std::numeric_limits<hilos::Quantity<ByteE, SecE, FlopE, EnergyE, CycleE>>
    : std::numeric_limits<double> {
};

#endif  // HILOS_COMMON_UNITS_H_
