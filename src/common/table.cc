#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace hilos {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HILOS_ASSERT(!headers_.empty(), "table needs at least one column");
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &s)
{
    HILOS_ASSERT(!rows_.empty(), "call row() before cell()");
    rows_.back().push_back(s);
    return *this;
}

TextTable &
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return cell(oss.str());
}

TextTable &
TextTable::ratio(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v << "x";
    return cell(oss.str());
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); c++)
            widths[c] = std::max(widths[c], r[c].size());
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); c++) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            oss << "| " << v << std::string(widths[c] - v.size() + 1, ' ');
        }
        oss << "|\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < widths.size(); c++)
        oss << "|" << std::string(widths[c] + 2, '-');
    oss << "|\n";
    for (const auto &r : rows_)
        emit_row(r);
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << str();
}

std::string
formatBytes(double bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
    int i = 0;
    while (bytes >= 1024.0 && i < 5) {
        bytes /= 1024.0;
        i++;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes
        << " " << suffix[i];
    return oss.str();
}

std::string
formatSeconds(double s)
{
    std::ostringstream oss;
    oss << std::fixed;
    if (s < 1e-3)
        oss << std::setprecision(2) << s * 1e6 << " us";
    else if (s < 1.0)
        oss << std::setprecision(2) << s * 1e3 << " ms";
    else
        oss << std::setprecision(3) << s << " s";
    return oss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

}  // namespace hilos
