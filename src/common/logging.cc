#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hilos {

namespace {
// Atomic so sweep-driver worker threads can log while another thread
// adjusts verbosity without a data race.
std::atomic<LogLevel> g_level{LogLevel::Warn};
}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so that tests can assert on fatal paths;
    // uncaught, this still terminates the process with an error.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

}  // namespace detail
}  // namespace hilos
