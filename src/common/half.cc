#include "common/half.h"

#include <cmath>
#include <cstring>
#include <ostream>

namespace hilos {

namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsToFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

}  // namespace

std::uint16_t
Half::fromFloat(float value)
{
    const std::uint32_t f = floatBits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::uint32_t exp32 = (f >> 23) & 0xffu;
    std::uint32_t mant = f & 0x007fffffu;

    if (exp32 == 0xff) {
        // Inf or NaN. Preserve NaN-ness by forcing a nonzero mantissa.
        const std::uint32_t nan_payload = mant ? 0x0200u : 0u;
        return static_cast<std::uint16_t>(sign | 0x7c00u | nan_payload);
    }

    // Unbiased exponent.
    const int e = static_cast<int>(exp32) - 127;

    if (e > 15) {
        // Overflow -> infinity (round-to-nearest maps all too-large
        // magnitudes past halfway to inf).
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (e >= -14) {
        // Normal half. Keep 10 mantissa bits, round-to-nearest-even on
        // the 13 dropped bits.
        std::uint32_t half_exp = static_cast<std::uint32_t>(e + 15);
        std::uint32_t half_mant = mant >> 13;
        const std::uint32_t rem = mant & 0x1fffu;
        const std::uint32_t halfway = 0x1000u;
        if (rem > halfway || (rem == halfway && (half_mant & 1u))) {
            half_mant++;
            if (half_mant == 0x400u) {  // mantissa carry into exponent
                half_mant = 0;
                half_exp++;
                if (half_exp == 31)
                    return static_cast<std::uint16_t>(sign | 0x7c00u);
            }
        }
        return static_cast<std::uint16_t>(sign | (half_exp << 10) |
                                          half_mant);
    }

    if (e >= -24) {
        // Subnormal half: shift in the implicit leading one, then round.
        mant |= 0x00800000u;
        const int shift = -e - 14 + 13;  // 14..23
        std::uint32_t half_mant = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1u)))
            half_mant++;
        // A carry out of the subnormal range lands exactly on the
        // smallest normal (exponent field becomes 1) — the bit pattern
        // works out naturally.
        return static_cast<std::uint16_t>(sign | half_mant);
    }

    // Underflow to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
Half::halfToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u)
                               << 16;
    const std::uint32_t exp16 = (bits >> 10) & 0x1fu;
    std::uint32_t mant = bits & 0x3ffu;

    if (exp16 == 0) {
        if (mant == 0)
            return bitsToFloat(sign);  // signed zero
        // Subnormal: normalise.
        int e = -1;
        do {
            e++;
            mant <<= 1;
        } while ((mant & 0x400u) == 0);
        mant &= 0x3ffu;
        const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
        return bitsToFloat(sign | (exp32 << 23) | (mant << 13));
    }

    if (exp16 == 31) {
        // Inf or NaN.
        return bitsToFloat(sign | 0x7f800000u | (mant << 13));
    }

    const std::uint32_t exp32 = exp16 + (127 - 15);
    return bitsToFloat(sign | (exp32 << 23) | (mant << 13));
}

bool
Half::isNan() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) != 0;
}

bool
Half::isInf() const
{
    return ((bits_ >> 10) & 0x1f) == 0x1f && (bits_ & 0x3ff) == 0;
}

std::ostream &
operator<<(std::ostream &os, const Half &h)
{
    return os << h.toFloat();
}

}  // namespace hilos
