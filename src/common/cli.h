/**
 * @file
 * Minimal command-line argument parser for the tools and examples:
 * `--key value`, `--key=value`, and boolean `--flag` forms, with typed
 * accessors, defaults, and generated usage text.
 */

#ifndef HILOS_COMMON_CLI_H_
#define HILOS_COMMON_CLI_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hilos {

/** Declarative option table + parsed values. */
class ArgParser
{
  public:
    /** @param program name shown in usage text */
    explicit ArgParser(std::string program);

    /** Declare a string option with a default. */
    ArgParser &addOption(const std::string &name,
                         const std::string &default_value,
                         const std::string &help);

    /** Declare a boolean flag (false unless present). */
    ArgParser &addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options or missing values set an error state
     * (see ok()/error()) rather than exiting, so callers and tests
     * decide what to do.
     */
    bool parse(int argc, const char *const *argv);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /** True when --help was passed. */
    bool helpRequested() const { return help_requested_; }

    /** String value of an option (its default if not passed). */
    std::string get(const std::string &name) const;
    /** Integer value; error state if unparsable. */
    std::int64_t getInt(const std::string &name) const;
    /** Double value; error state if unparsable. */
    double getDouble(const std::string &name) const;
    /** Boolean flag presence. */
    bool getFlag(const std::string &name) const;

    /** Generated usage text. */
    std::string usage() const;

  private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::string program_;
    std::vector<std::pair<std::string, Option>> options_;
    std::map<std::string, std::string> values_;
    std::string error_;
    bool help_requested_ = false;

    const Option *find(const std::string &name) const;
};

}  // namespace hilos

#endif  // HILOS_COMMON_CLI_H_
