#include "common/random.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace hilos {

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    HILOS_ASSERT(k <= n, "cannot sample ", k, " from ", n);
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    // Partial Fisher-Yates: only the first k positions need shuffling.
    for (std::size_t i = 0; i < k; i++) {
        const auto j = static_cast<std::size_t>(
            uniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(n - 1)));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

}  // namespace hilos
