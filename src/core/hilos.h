/**
 * @file
 * HILOS public facade.
 *
 * One include for downstream users: build a system description, pick an
 * engine (HILOS or any baseline), run offline batched inference, and
 * get timing / traffic / energy / cost reports. The functional
 * accelerator, storage, and LLM substrates remain directly accessible
 * through their own headers for users who need the lower layers.
 *
 * Quickstart:
 * @code
 *   hilos::SystemConfig sys = hilos::defaultSystem();
 *   hilos::RunConfig run{hilos::opt66b(), 16, 32768, 64};
 *   auto engine = hilos::makeEngine(hilos::EngineKind::Hilos, sys);
 *   hilos::RunResult r = engine->run(run);
 *   std::cout << r.decodeThroughput() << " tokens/s\n";
 * @endcode
 */

#ifndef HILOS_CORE_HILOS_H_
#define HILOS_CORE_HILOS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/version.h"
#include "llm/model_config.h"
#include "runtime/deepspeed_uvm.h"
#include "runtime/engine.h"
#include "runtime/fleet_engine.h"
#include "runtime/flexgen.h"
#include "runtime/hilos_engine.h"
#include "runtime/serving.h"
#include "runtime/serving_workload.h"
#include "runtime/step_plan.h"
#include "runtime/system_config.h"
#include "runtime/vllm_multigpu.h"

namespace hilos {

/** The systems evaluated in the paper. */
enum class EngineKind {
    FlexDram,         ///< FLEX(DRAM)
    FlexSsd,          ///< FLEX(SSD)
    FlexSmartSsdRaw,  ///< FLEX(16 PCIe 3.0 SSDs), FPGAs disabled
    DeepSpeedUvm,     ///< DS+UVM(DRAM)
    VllmMultiGpu,     ///< 2-node 8-GPU vLLM
    Hilos,            ///< full HILOS
};

/**
 * Engine factory. `hilos_opts` applies only to EngineKind::Hilos.
 */
std::unique_ptr<InferenceEngine> makeEngine(
    EngineKind kind, const SystemConfig &sys,
    const HilosOptions &hilos_opts = HilosOptions{});

/**
 * Fleet factory: N hosts of HILOS SmartSSDs under one placement
 * policy (see runtime/fleet_engine.h). `host_opts` configures each
 * host's engine; its device count and fault plan are overridden by the
 * fleet shape and the device-scope subset of `fleet.fault_plan`.
 */
std::unique_ptr<InferenceEngine> makeFleetEngine(
    const SystemConfig &sys, const FleetConfig &fleet,
    const HilosOptions &host_opts = HilosOptions{});

/**
 * The decode-step plan a named engine emits for one workload (every
 * engine implements StepPlanSource). Infeasible configurations come
 * back with `feasible == false` and the reason in `note`; for
 * EngineKind::Hilos the plan describes the zero-fault ideal fleet.
 */
StepPlan decodeStepPlanFor(EngineKind kind, const SystemConfig &sys,
                           const RunConfig &run,
                           const HilosOptions &hilos_opts = HilosOptions{});

/**
 * The Prefill-phase plan a named engine emits for chunk `chunk_index`
 * of `chunk_count` (the defaults name the monolithic prefill). Same
 * conventions as decodeStepPlanFor: infeasible configurations come
 * back with `feasible == false`, and EngineKind::Hilos describes the
 * zero-fault ideal fleet.
 */
StepPlan prefillStepPlanFor(EngineKind kind, const SystemConfig &sys,
                            const RunConfig &run,
                            std::uint64_t chunk_index = 0,
                            std::uint64_t chunk_count = 1,
                            const HilosOptions &hilos_opts = HilosOptions{});

/**
 * One point of an engine sweep grid: which system to model and the
 * workload to run it on (see runGrid).
 */
struct GridPoint {
    EngineKind kind = EngineKind::Hilos;
    HilosOptions hilos;  ///< applies only to EngineKind::Hilos
    RunConfig run;
};

/**
 * Evaluate every grid point, fanning independent points across `jobs`
 * worker threads (0 = hardware concurrency, 1 = serial). Each point
 * constructs its own engine, so tasks share no mutable state; results
 * are keyed by grid index and bit-identical for every `jobs` value.
 */
std::vector<RunResult> runGrid(const SystemConfig &sys,
                               const std::vector<GridPoint> &grid,
                               unsigned jobs = 1);

/**
 * runGrid with per-worker engine and plan-structure reuse: each worker
 * thread keeps the engine it last constructed plus a PlanCache
 * (runtime/plan_cache.h), so consecutive grid points differing only in
 * scalar parameters (batch, context, output length, HILOS knobs that
 * re-price but don't reshape the plan) rebuild annotations in place
 * instead of re-deriving the op topology. Results are bit-identical to
 * runGrid for every `jobs` value: topology changes — a different
 * engine kind, a capacity decision flipping a plan infeasible — are
 * caught by the cache's verified rebuild and fall back to a cold
 * build. This is the sweep fast path benchmarked by bench_sim_perf.
 */
std::vector<RunResult> runGridCached(const SystemConfig &sys,
                                     const std::vector<GridPoint> &grid,
                                     unsigned jobs = 1);

/** One row of a cross-engine comparison. */
struct EngineComparison {
    std::string engine;
    RunResult result;
};

/**
 * Run every paper system on one workload.
 * @param smartssds SmartSSD count for the HILOS entry
 */
std::vector<EngineComparison> compareEngines(const SystemConfig &sys,
                                             const RunConfig &run,
                                             unsigned smartssds = 8);

/**
 * Throughput of `result` normalised to the FLEX(SSD) baseline on the
 * same workload (the Fig. 10 presentation); 0 when either side is
 * infeasible.
 */
double normalizedThroughput(const RunResult &result,
                            const RunResult &flex_ssd_baseline);

}  // namespace hilos

#endif  // HILOS_CORE_HILOS_H_
