#include "core/hilos.h"

#include "common/logging.h"
#include "runtime/plan_cache.h"
#include "sim/parallel.h"

namespace hilos {

const char *
versionString()
{
    return "1.0.0";
}

std::unique_ptr<InferenceEngine>
makeEngine(EngineKind kind, const SystemConfig &sys,
           const HilosOptions &hilos_opts)
{
    switch (kind) {
      case EngineKind::FlexDram:
        return std::make_unique<FlexGenEngine>(sys, FlexTier::HostDram);
      case EngineKind::FlexSsd:
        return std::make_unique<FlexGenEngine>(sys,
                                               FlexTier::BaselineSsds);
      case EngineKind::FlexSmartSsdRaw:
        return std::make_unique<FlexGenEngine>(
            sys, FlexTier::SmartSsdsNoFpga);
      case EngineKind::DeepSpeedUvm:
        return std::make_unique<DeepSpeedUvmEngine>(sys);
      case EngineKind::VllmMultiGpu:
        return std::make_unique<VllmMultiGpuEngine>(sys,
                                                    VllmClusterConfig{});
      case EngineKind::Hilos:
        return std::make_unique<HilosEngine>(sys, hilos_opts);
    }
    HILOS_PANIC("unknown engine kind");
}

std::unique_ptr<InferenceEngine>
makeFleetEngine(const SystemConfig &sys, const FleetConfig &fleet,
                const HilosOptions &host_opts)
{
    return std::make_unique<FleetEngine>(sys, fleet, host_opts);
}

StepPlan
decodeStepPlanFor(EngineKind kind, const SystemConfig &sys,
                  const RunConfig &run, const HilosOptions &hilos_opts)
{
    const std::unique_ptr<InferenceEngine> engine =
        makeEngine(kind, sys, hilos_opts);
    const auto *source = dynamic_cast<const StepPlanSource *>(engine.get());
    HILOS_ASSERT(source != nullptr, "engine '", engine->name(),
                 "' does not emit step plans");
    return source->decodeStepPlan(run);
}

StepPlan
prefillStepPlanFor(EngineKind kind, const SystemConfig &sys,
                   const RunConfig &run, std::uint64_t chunk_index,
                   std::uint64_t chunk_count,
                   const HilosOptions &hilos_opts)
{
    const std::unique_ptr<InferenceEngine> engine =
        makeEngine(kind, sys, hilos_opts);
    const auto *source = dynamic_cast<const StepPlanSource *>(engine.get());
    HILOS_ASSERT(source != nullptr, "engine '", engine->name(),
                 "' does not emit step plans");
    return source->prefillStepPlan(run, chunk_index, chunk_count);
}

std::vector<RunResult>
runGrid(const SystemConfig &sys, const std::vector<GridPoint> &grid,
        unsigned jobs)
{
    SweepDriver driver(jobs);
    return driver.map(grid, [&sys](const GridPoint &p) {
        return makeEngine(p.kind, sys, p.hilos)->run(p.run);
    });
}

std::vector<RunResult>
runGridCached(const SystemConfig &sys, const std::vector<GridPoint> &grid,
              unsigned jobs)
{
    SweepDriver driver(jobs);
    struct Slot {
        bool valid = false;
        EngineKind kind = EngineKind::Hilos;
        std::unique_ptr<InferenceEngine> engine;
        PlanCache cache;
    };
    std::vector<Slot> slots(driver.jobs());
    return driver.mapWorker(grid, [&](unsigned worker, const GridPoint &p) {
        Slot &slot = slots[worker];
        // HilosOptions carries a FaultPlan with no cheap equality, so
        // Hilos points always refresh the engine (a config copy); the
        // worker's PlanCache persists regardless — a verified rebuild
        // re-annotates under the new options, and any topology change
        // falls back to a cold build.
        if (!slot.valid || slot.kind != p.kind ||
            p.kind == EngineKind::Hilos) {
            slot.engine = makeEngine(p.kind, sys, p.hilos);
            slot.kind = p.kind;
            slot.valid = true;
        }
        return slot.engine->runCached(p.run, slot.cache);
    });
}

std::vector<EngineComparison>
compareEngines(const SystemConfig &sys, const RunConfig &run,
               unsigned smartssds)
{
    HilosOptions opts;
    opts.num_devices = smartssds;
    std::vector<EngineComparison> rows;
    for (EngineKind kind :
         {EngineKind::FlexSsd, EngineKind::FlexDram,
          EngineKind::FlexSmartSsdRaw, EngineKind::DeepSpeedUvm,
          EngineKind::Hilos}) {
        auto engine = makeEngine(kind, sys, opts);
        rows.push_back(EngineComparison{engine->name(), engine->run(run)});
    }
    return rows;
}

double
normalizedThroughput(const RunResult &result,
                     const RunResult &flex_ssd_baseline)
{
    const double base = flex_ssd_baseline.decodeThroughput();
    const double mine = result.decodeThroughput();
    if (base <= 0.0 || mine <= 0.0)
        return 0.0;
    return mine / base;
}

}  // namespace hilos
