/**
 * @file
 * Library version.
 */

#ifndef HILOS_CORE_VERSION_H_
#define HILOS_CORE_VERSION_H_

namespace hilos {

constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;
constexpr int kVersionPatch = 0;

/** "major.minor.patch" string. */
const char *versionString();

}  // namespace hilos

#endif  // HILOS_CORE_VERSION_H_
