/**
 * @file
 * Roofline GPU model.
 *
 * LLM decoding is memory-bound (§1), so a roofline — time is the max of
 * compute time at peak FLOPS and data time at memory bandwidth —
 * reproduces every GPU-side effect the paper measures. Presets cover the
 * testbed GPUs: A100 40 GB, H100 80 GB, and the RTX A6000 nodes used in
 * the multi-GPU comparison (Fig. 17b).
 */

#ifndef HILOS_DEVICE_GPU_H_
#define HILOS_DEVICE_GPU_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hilos {

/** Datasheet-style GPU parameters. */
struct GpuConfig {
    std::string name = "a100-40g";
    std::uint64_t memory_capacity = 40ull * GiB;
    Bandwidth memory_bandwidth = gbps(1555);
    FlopRate fp16_peak = tflops(312);  ///< dense FP16 tensor-core peak
    double gemm_efficiency = 0.6;   ///< achieved fraction of peak on GEMM
    double gemv_efficiency = 0.8;   ///< achieved fraction of mem-bw on GEMV
    Watts tdp = 300.0;
    Watts idle_power = 60.0;
    double price_usd = 7000.0;
};

/**
 * Roofline execution-time oracle for one GPU.
 */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig &cfg);

    /**
     * Time of a compute kernel touching `bytes` of device memory and
     * executing `flops` floating-point operations: the roofline max of
     * the compute and memory times.
     */
    Seconds kernelTime(Flops flops, Bytes bytes) const;

    /** Memory-bound operation (GEMV / attention during decode). */
    Seconds memoryTime(Bytes bytes) const;

    /** Compute-bound operation at GEMM efficiency. */
    Seconds computeTime(Flops flops) const;

    /** True if `bytes` of state fit in device memory. */
    bool fits(Bytes bytes) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
};

/** NVIDIA A100 40 GB (PCIe). */
GpuConfig a100Config();
/** NVIDIA H100 80 GB (PCIe). */
GpuConfig h100Config();
/** NVIDIA RTX A6000 48 GB. */
GpuConfig a6000Config();

}  // namespace hilos

#endif  // HILOS_DEVICE_GPU_H_
