/**
 * @file
 * Host CPU model.
 *
 * The baselines offload decoding attention to the CPU (§6.1), and HILOS
 * uses the CPU to precompute partial QK^T scores for buffered KV entries
 * (§4.3). CPU attention is memory-bandwidth-bound; the model is a
 * roofline over DRAM bandwidth and an AVX-512 FLOPS peak.
 */

#ifndef HILOS_DEVICE_CPU_H_
#define HILOS_DEVICE_CPU_H_

#include <string>

#include "common/units.h"

namespace hilos {

/** Host CPU parameters (Xeon Gold 6342 preset). */
struct CpuConfig {
    std::string name = "xeon-6342";
    unsigned cores = 24;
    FlopRate fp32_peak = tflops(2.4);        ///< AVX-512 FMA across cores
    Bandwidth dram_bandwidth = gbps(160); ///< effective 8ch DDR4-3200
    /**
     * Achieved fraction of peak on the offloaded attention kernel. The
     * baselines' CPU attention (torch CPU kernels over per-head slices)
     * lands far below stream bandwidth in practice.
     */
    double attention_efficiency = 0.25;
    Watts tdp = 230.0;
    Watts idle_power = 80.0;
};

/** Roofline time oracle for CPU-side kernels. */
class Cpu
{
  public:
    explicit Cpu(const CpuConfig &cfg);

    /** Roofline time for `flops` over `bytes` of DRAM traffic. */
    Seconds kernelTime(Flops flops, Bytes bytes) const;

    /** Memory-bound time (streams `bytes` once). */
    Seconds memoryTime(Bytes bytes) const;

    /** Compute-bound time. */
    Seconds computeTime(Flops flops) const;

    const CpuConfig &config() const { return cfg_; }

  private:
    CpuConfig cfg_;
};

/** Intel Xeon Gold 6342 (24C/48T) preset from Table 1. */
CpuConfig xeon6342Config();

}  // namespace hilos

#endif  // HILOS_DEVICE_CPU_H_
