/**
 * @file
 * Host DRAM model: capacity and bandwidth of the server's main memory
 * (16 x 32 GB DDR4-3200 in the paper's testbed), used both as the
 * FLEX(DRAM) KV-cache tier and as the staging buffer for delayed KV
 * writeback.
 */

#ifndef HILOS_DEVICE_DRAM_H_
#define HILOS_DEVICE_DRAM_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hilos {

/** Host memory parameters. */
struct DramConfig {
    std::string name = "ddr4-3200x16";
    std::uint64_t capacity = 512ull * GiB;
    Bandwidth bandwidth = gbps(160);  ///< effective, 8 channels
    Watts active_power = 40.0;
    Watts idle_power = 15.0;
    double price_per_gb_usd = 3.0;  ///< DRAM $/GB (§8.2)
};

/** Host DRAM capacity/bandwidth oracle with an allocation ledger. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg);

    /** Time to stream `bytes` through memory once. */
    Seconds accessTime(Bytes bytes) const;

    /**
     * Reserve `bytes`; returns false (and reserves nothing) when the
     * remaining capacity is insufficient.
     */
    bool reserve(std::uint64_t bytes);

    /** Release a prior reservation. */
    void release(std::uint64_t bytes);

    std::uint64_t reserved() const { return reserved_; }
    std::uint64_t available() const { return cfg_.capacity - reserved_; }
    const DramConfig &config() const { return cfg_; }

  private:
    DramConfig cfg_;
    std::uint64_t reserved_ = 0;
};

/** Testbed host memory: 16 x 32 GB DDR4-3200 (Table 1). */
DramConfig hostDramConfig();

}  // namespace hilos

#endif  // HILOS_DEVICE_DRAM_H_
