#include "device/cpu.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Cpu::Cpu(const CpuConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.fp32_peak > 0 && cfg_.dram_bandwidth > 0,
                 "invalid CPU config");
}

Seconds
Cpu::kernelTime(Flops flops, Bytes bytes) const
{
    return std::max(computeTime(flops), memoryTime(bytes));
}

Seconds
Cpu::memoryTime(Bytes bytes) const
{
    HILOS_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / (cfg_.dram_bandwidth * cfg_.attention_efficiency);
}

Seconds
Cpu::computeTime(Flops flops) const
{
    HILOS_ASSERT(flops >= 0.0, "negative flops");
    return flops / (cfg_.fp32_peak * cfg_.attention_efficiency);
}

CpuConfig
xeon6342Config()
{
    return CpuConfig{};
}

}  // namespace hilos
