/**
 * @file
 * SmartSSD composite device: a 3.84 TB NVMe SSD, a Kintex UltraScale+
 * KU15P FPGA with 4 GB of DDR4-2400, and an internal PCIe 3.0 x4 P2P
 * path between them (§2.3, §5.3). The FPGA's attention-kernel throughput
 * is supplied by the accelerator cycle model at runtime; this class owns
 * the storage/memory/link characteristics and the P2P timing.
 */

#ifndef HILOS_DEVICE_SMARTSSD_H_
#define HILOS_DEVICE_SMARTSSD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "storage/ssd.h"

namespace hilos {

/** SmartSSD-specific parameters beyond the embedded SSD config. */
struct SmartSsdConfig {
    std::string name = "smartssd";
    SsdConfig nand;                      ///< the internal NVMe SSD
    std::uint64_t fpga_dram_capacity = 4ull * GiB;
    Bandwidth fpga_dram_bandwidth = gbps(19.2);  ///< 1ch DDR4-2400
    Bandwidth p2p_read_bw = gbps(3.0);   ///< NAND -> FPGA DRAM, internal
    Bandwidth p2p_write_bw = gbps(2.1);  ///< FPGA DRAM -> NAND, internal
    Hertz clock_hz = 296.05e6;           ///< achieved kernel clock (§6.2)
    Watts fpga_idle_power = 6.0;
    double price_usd = 2400.0;

    SmartSsdConfig() { nand = smartSsdNandConfig(); }
};

/** Health of a composite SmartSSD (NAND + FPGA + internal link). */
enum class DeviceHealth {
    Healthy,
    Degraded,  ///< operational with a derated internal P2P path
    Failed,    ///< offline; its shards must re-dispatch elsewhere
};

/**
 * One SmartSSD. Owns its SSD model (with wear accounting); exposes P2P
 * transfer timing on the internal path that bypasses the host fabric.
 */
class SmartSsd
{
  public:
    explicit SmartSsd(const SmartSsdConfig &cfg);

    /** Internal NAND -> FPGA DRAM read time (the P2P path, §2.3). */
    Seconds p2pReadTime(std::uint64_t bytes) const;

    /** Internal FPGA DRAM -> NAND write time. */
    Seconds p2pWriteTime(std::uint64_t bytes) const;

    /** FPGA on-board DRAM streaming time. */
    Seconds dramTime(Bytes bytes) const;

    /** Current health state (Healthy on construction). */
    DeviceHealth health() const { return health_; }

    /**
     * Derate the internal P2P path by `bw_multiplier` in (0, 1]
     * (link retraining at lower width/speed). Repeated calls compound;
     * the device reports Degraded.
     */
    void degradeP2p(double bw_multiplier);

    /** Take the device offline; further P2P access is a panic. */
    void fail();

    /** Current P2P bandwidth multiplier (1 when healthy). */
    double p2pDerate() const { return p2p_derate_; }

    /** The embedded SSD (for host-path I/O and endurance accounting). */
    Ssd &ssd() { return *ssd_; }
    const Ssd &ssd() const { return *ssd_; }

    const SmartSsdConfig &config() const { return cfg_; }

  private:
    SmartSsdConfig cfg_;
    std::unique_ptr<Ssd> ssd_;
    DeviceHealth health_ = DeviceHealth::Healthy;
    double p2p_derate_ = 1.0;
};

/** Default SmartSSD preset (Table 1). */
SmartSsdConfig smartSsdConfig();

/**
 * Envisioned ISP device (§7.1): 16 TB NAND over eight 2,000 MT/s flash
 * channels (16 GB/s internal), LPDDR5X at 68 GB/s, one PCIe 4.0 x4 host
 * link. The paper argues one such device matches four SmartSSDs.
 */
SmartSsdConfig ispDeviceConfig();

}  // namespace hilos

#endif  // HILOS_DEVICE_SMARTSSD_H_
