#include "device/smartssd.h"

#include "common/logging.h"

namespace hilos {

SmartSsd::SmartSsd(const SmartSsdConfig &cfg)
    : cfg_(cfg), ssd_(std::make_unique<Ssd>(cfg.nand))
{
    HILOS_ASSERT(cfg_.p2p_read_bw > 0 && cfg_.fpga_dram_bandwidth > 0,
                 "invalid SmartSSD config");
}

Seconds
SmartSsd::p2pReadTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(health_ != DeviceHealth::Failed,
                 "P2P read on failed SmartSSD '", cfg_.name, "'");
    if (bytes == 0)
        return 0.0;
    return cfg_.nand.read_latency +
           Bytes(static_cast<double>(bytes)) / (cfg_.p2p_read_bw * p2p_derate_);
}

Seconds
SmartSsd::p2pWriteTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(health_ != DeviceHealth::Failed,
                 "P2P write on failed SmartSSD '", cfg_.name, "'");
    if (bytes == 0)
        return 0.0;
    return cfg_.nand.write_latency +
           Bytes(static_cast<double>(bytes)) /
               (cfg_.p2p_write_bw * p2p_derate_);
}

void
SmartSsd::degradeP2p(double bw_multiplier)
{
    HILOS_ASSERT(bw_multiplier > 0.0 && bw_multiplier <= 1.0,
                 "P2P derate must be in (0, 1]: ", bw_multiplier);
    HILOS_ASSERT(health_ != DeviceHealth::Failed,
                 "cannot degrade a failed SmartSSD");
    health_ = DeviceHealth::Degraded;
    p2p_derate_ *= bw_multiplier;
}

void
SmartSsd::fail()
{
    health_ = DeviceHealth::Failed;
    ssd_->fail();
}

Seconds
SmartSsd::dramTime(Bytes bytes) const
{
    HILOS_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / cfg_.fpga_dram_bandwidth;
}

SmartSsdConfig
smartSsdConfig()
{
    return SmartSsdConfig{};
}

SmartSsdConfig
ispDeviceConfig()
{
    SmartSsdConfig cfg;
    cfg.name = "isp-envisioned";
    cfg.nand.name = "isp-nand";
    cfg.nand.capacity = 16ull * 1000 * 1000 * 1000 * 1000;  // 16 TB
    // Eight 2,000 MT/s flash channels: 16 GB/s internal read path.
    cfg.nand.seq_read_bw = gbps(16.0);
    cfg.nand.seq_write_bw = gbps(6.0);
    cfg.p2p_read_bw = gbps(16.0);
    cfg.p2p_write_bw = gbps(6.0);
    // Single-package LPDDR5X, four 16-bit channels: 68 GB/s.
    cfg.fpga_dram_bandwidth = gbps(68.0);
    cfg.fpga_dram_capacity = 8ull * GiB;
    cfg.fpga_idle_power = 0.5;
    cfg.price_usd = 2000.0;
    return cfg;
}

}  // namespace hilos
