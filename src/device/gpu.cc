#include "device/gpu.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Gpu::Gpu(const GpuConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.memory_bandwidth > 0 && cfg_.fp16_peak > 0,
                 "invalid GPU config");
    HILOS_ASSERT(cfg_.gemm_efficiency > 0 && cfg_.gemm_efficiency <= 1.0,
                 "invalid gemm efficiency");
    HILOS_ASSERT(cfg_.gemv_efficiency > 0 && cfg_.gemv_efficiency <= 1.0,
                 "invalid gemv efficiency");
}

Seconds
Gpu::kernelTime(Flops flops, Bytes bytes) const
{
    return std::max(computeTime(flops), memoryTime(bytes));
}

Seconds
Gpu::memoryTime(Bytes bytes) const
{
    HILOS_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / (cfg_.memory_bandwidth * cfg_.gemv_efficiency);
}

Seconds
Gpu::computeTime(Flops flops) const
{
    HILOS_ASSERT(flops >= 0.0, "negative flops");
    return flops / (cfg_.fp16_peak * cfg_.gemm_efficiency);
}

bool
Gpu::fits(Bytes bytes) const
{
    return bytes <= static_cast<double>(cfg_.memory_capacity);
}

GpuConfig
a100Config()
{
    GpuConfig cfg;
    cfg.name = "a100-40g";
    cfg.memory_capacity = 40ull * GiB;
    cfg.memory_bandwidth = gbps(1555);
    cfg.fp16_peak = tflops(312);
    cfg.tdp = 300.0;
    cfg.idle_power = 60.0;
    cfg.price_usd = 7000.0;
    return cfg;
}

GpuConfig
h100Config()
{
    GpuConfig cfg;
    cfg.name = "h100-80g";
    cfg.memory_capacity = 80ull * GiB;
    cfg.memory_bandwidth = gbps(2000);
    cfg.fp16_peak = tflops(756);
    cfg.tdp = 350.0;
    cfg.idle_power = 70.0;
    cfg.price_usd = 30000.0;
    return cfg;
}

GpuConfig
a6000Config()
{
    GpuConfig cfg;
    cfg.name = "rtx-a6000";
    cfg.memory_capacity = 48ull * GiB;
    cfg.memory_bandwidth = gbps(768);
    cfg.fp16_peak = tflops(155);
    cfg.tdp = 300.0;
    cfg.idle_power = 55.0;
    cfg.price_usd = 4500.0;
    return cfg;
}

}  // namespace hilos
