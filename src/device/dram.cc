#include "device/dram.h"

#include "common/logging.h"

namespace hilos {

Dram::Dram(const DramConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.capacity > 0 && cfg_.bandwidth > 0,
                 "invalid DRAM config");
}

Seconds
Dram::accessTime(Bytes bytes) const
{
    HILOS_ASSERT(bytes >= 0.0, "negative bytes");
    return bytes / cfg_.bandwidth;
}

bool
Dram::reserve(std::uint64_t bytes)
{
    if (bytes > available())
        return false;
    reserved_ += bytes;
    return true;
}

void
Dram::release(std::uint64_t bytes)
{
    HILOS_ASSERT(bytes <= reserved_, "releasing more than reserved");
    reserved_ -= bytes;
}

DramConfig
hostDramConfig()
{
    return DramConfig{};
}

}  // namespace hilos
