#include "sim/bandwidth.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hilos {

BandwidthResource::BandwidthResource(std::string name, Bandwidth rate,
                                     Seconds latency)
    : name_(std::move(name)), rate_(rate), latency_(latency),
      stats_(name_)
{
    HILOS_ASSERT(rate_ > 0.0, "bandwidth must be positive: ", rate_);
    HILOS_ASSERT(latency_ >= 0.0, "latency must be non-negative");
}

Seconds
BandwidthResource::serviceTime(std::uint64_t bytes) const
{
    return latency_ + Bytes(static_cast<double>(bytes)) / rate_;
}

Seconds
BandwidthResource::transfer(Seconds start, std::uint64_t bytes)
{
    const Seconds begin = std::max(start, busy_until_);
    const Seconds service = serviceTime(bytes);
    busy_until_ = begin + service;
    busy_time_ += service;
    stats_.counter("bytes").add(static_cast<double>(bytes));
    stats_.counter("transfers").increment();
    stats_.summary("queue_delay").add(begin - start);
    return busy_until_;
}

Seconds
BandwidthResource::occupy(Seconds start, Seconds duration)
{
    HILOS_ASSERT(duration >= 0.0, "negative stall duration");
    if (duration == 0.0)
        return std::max(start, busy_until_);
    const Seconds begin = std::max(start, busy_until_);
    busy_until_ = begin + duration;
    busy_time_ += duration;
    stats_.summary("stall").add(duration);
    return busy_until_;
}

void
BandwidthResource::setRate(Bandwidth rate)
{
    HILOS_ASSERT(rate > 0.0, "bandwidth must be positive: ", rate);
    rate_ = rate;
}

double
BandwidthResource::utilization(Seconds horizon) const
{
    if (horizon <= 0.0)
        return 0.0;
    const double util = busy_time_ / horizon;
    // A serialised channel cannot be busy for longer than the window
    // that contains all of its service; a value above 1 means the
    // caller queried mid-flight (horizon < busyUntil()) or busy-time
    // accounting double-counted somewhere. Surface it instead of
    // silently saturating at 1.0.
    HILOS_ASSERT(util <= 1.0 + 1e-9,
                 "utilization of '", name_, "' exceeds 1: busy ",
                 busy_time_, " s over horizon ", horizon,
                 " s (busy until ", busy_until_,
                 " s); query after the window completes");
    return util;
}

void
BandwidthResource::reset()
{
    busy_until_ = 0.0;
    busy_time_ = 0.0;
    stats_.reset();
}

BandwidthPool::BandwidthPool(std::string name, unsigned instances,
                             Bandwidth rate, Seconds latency)
    : name_(std::move(name))
{
    HILOS_ASSERT(instances >= 1, "pool '", name_,
                 "' needs at least one instance");
    links_.reserve(instances);
    for (unsigned i = 0; i < instances; ++i)
        links_.emplace_back(name_ + "[" + std::to_string(i) + "]", rate,
                            latency);
}

Seconds
BandwidthPool::occupyOn(std::uint64_t i, Seconds start, Seconds duration)
{
    return links_[i % links_.size()].occupy(start, duration);
}

Seconds
BandwidthPool::occupyNext(Seconds start, Seconds duration)
{
    const Seconds done = links_[next_].occupy(start, duration);
    next_ = (next_ + 1) % links_.size();
    return done;
}

const BandwidthResource &
BandwidthPool::instance(unsigned i) const
{
    HILOS_ASSERT(i < links_.size(), "pool '", name_, "' has ",
                 links_.size(), " instances, asked for ", i);
    return links_[i];
}

Seconds
BandwidthPool::maxBusyUntil() const
{
    Seconds latest = 0.0;
    for (const BandwidthResource &link : links_)
        latest = std::max(latest, link.busyUntil());
    return latest;
}

double
BandwidthPool::meanUtilization(Seconds horizon) const
{
    double sum = 0.0;
    for (const BandwidthResource &link : links_)
        sum += link.utilization(horizon);
    return sum / static_cast<double>(links_.size());
}

void
BandwidthPool::reset()
{
    for (BandwidthResource &link : links_)
        link.reset();
    next_ = 0;
}

}  // namespace hilos
