#include "sim/trace.h"

#include <map>
#include <ostream>

#include "common/logging.h"

namespace hilos {

void
TraceRecorder::record(const std::string &track, const std::string &name,
                      Seconds begin, Seconds end)
{
    HILOS_ASSERT(end >= begin, "trace interval ends before it begins: ",
                 name);
    events_.push_back(TraceEvent{track, name, begin, end});
}

std::vector<TraceEvent>
TraceRecorder::track(const std::string &name) const
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events_) {
        if (e.track == name)
            out.push_back(e);
    }
    return out;
}

Seconds
TraceRecorder::busyTime(const std::string &track) const
{
    Seconds total = 0;
    for (const TraceEvent &e : events_) {
        if (e.track == track)
            total += e.end - e.begin;
    }
    return total;
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    // Stable tid per track, in order of first appearance.
    std::map<std::string, int> tids;
    for (const TraceEvent &e : events_) {
        tids.emplace(e.track, static_cast<int>(tids.size()) + 1);
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &[track, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\"" << track << "\"}}";
    }
    for (const TraceEvent &e : events_) {
        os << ",{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,"
           << "\"tid\":" << tids.at(e.track) << ",\"ts\":"
           << e.begin * 1e6 << ",\"dur\":" << (e.end - e.begin) * 1e6
           << "}";
    }
    os << "]}";
}

}  // namespace hilos
