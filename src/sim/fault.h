/**
 * @file
 * Seeded, schedule-driven fault injection for the HILOS simulator.
 *
 * The paper's evaluation assumes a perfectly healthy fleet of 4-16
 * SmartSSDs; this subsystem makes non-ideal conditions representable
 * without sacrificing reproducibility. A FaultPlan is a declarative
 * list of events — probabilistic per-operation faults (NAND read errors
 * that trigger an ECC read-retry ladder, NVMe command timeouts with
 * bounded exponential backoff) and timed state changes (P2P/uplink
 * bandwidth degradation, whole-device failure). A FaultInjector
 * evaluates the plan with one deterministic RNG stream per device, so
 * the same seed and plan always reproduce bit-identical results.
 *
 * Invariants the rest of the stack relies on:
 *  - an empty plan injects nothing and draws no random numbers, so the
 *    zero-fault path is byte-identical to a build without this layer;
 *  - faults perturb timing, traffic, and availability only — never the
 *    attention numerics;
 *  - probabilistic penalties have closed-form expectations (used by the
 *    analytic engine) alongside the sampled draws (used by the event
 *    simulator), so the two models stay comparable under faults.
 */

#ifndef HILOS_SIM_FAULT_H_
#define HILOS_SIM_FAULT_H_

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** Event target sentinel: applies to every SmartSSD in the fleet. */
constexpr unsigned kAllDevices = std::numeric_limits<unsigned>::max();
/** Event target sentinel: applies to the shared chassis uplink. */
constexpr unsigned kUplinkTarget = kAllDevices - 1;

/** The fault classes the simulator can inject. */
enum class FaultKind {
    NandReadError,  ///< probabilistic, per NAND read: ECC retry ladder
    NvmeTimeout,    ///< probabilistic, per command: timeout + backoff
    LinkDegrade,    ///< timed: bandwidth multiplier from `at` onward
    DeviceFail,     ///< timed: device permanently fails at `at`
};

/** One entry of a FaultPlan. */
struct FaultEvent {
    FaultKind kind = FaultKind::NandReadError;
    /** Target device index, kAllDevices, or kUplinkTarget. */
    unsigned device = kAllDevices;
    /** Activation time for timed events (absolute run seconds). */
    Seconds at = 0.0;
    /** Per-operation probability for probabilistic events. */
    double probability = 0.0;
    /** Bandwidth multiplier in (0, 1] for LinkDegrade. */
    double bw_multiplier = 1.0;
};

/**
 * Retry/timeout knobs shared by the NVMe and NAND recovery paths.
 *
 * An NVMe command that times out is re-issued after a bounded
 * exponential backoff; a NAND read whose ECC fails walks a read-retry
 * ladder of re-reads at shifted reference voltages.
 */
struct RetryPolicy {
    unsigned nvme_max_attempts = 5;       ///< total tries incl. first
    Seconds nvme_timeout = msec(10);      ///< host-side command timeout
    Seconds backoff_base = usec(100);     ///< first retry delay
    double backoff_multiplier = 2.0;      ///< per-retry growth
    Seconds backoff_cap = msec(50);       ///< delay ceiling
    unsigned ecc_max_steps = 8;           ///< read-retry ladder depth
    Seconds ecc_step_latency = usec(70);  ///< extra tR per ladder step

    /** Backoff delay before retry `attempt` (1-based), capped. */
    Seconds backoffDelay(unsigned attempt) const;

    /**
     * Expected extra latency per NVMe command when each attempt times
     * out independently with probability `timeout_prob`.
     */
    Seconds expectedNvmePenalty(double timeout_prob) const;

    /**
     * Expected extra latency per NAND read at ECC failure probability
     * `error_prob` (mean ladder depth at uniform step draws).
     */
    Seconds expectedEccPenalty(double error_prob) const;
};

/**
 * A declarative, seeded schedule of faults for one run.
 */
struct FaultPlan {
    std::uint64_t seed = 0x48494c4f53ull;
    RetryPolicy retry;
    std::vector<FaultEvent> events;

    /** True when the plan injects nothing (the zero-fault fast path). */
    bool empty() const { return events.empty(); }

    FaultPlan &addNandReadError(double probability,
                                unsigned device = kAllDevices);
    FaultPlan &addNvmeTimeout(double probability,
                              unsigned device = kAllDevices);
    FaultPlan &addLinkDegrade(Seconds at, double bw_multiplier,
                              unsigned device = kAllDevices);
    FaultPlan &addUplinkDegrade(Seconds at, double bw_multiplier);
    FaultPlan &addDeviceFailure(Seconds at, unsigned device);
    /** Fail the whole fleet at `at` (degenerate-plan error handling). */
    FaultPlan &addFleetFailure(Seconds at);
};

/**
 * Parse a semicolon/comma-separated fault-plan spec, e.g.
 *   "seed=7;nand-err=1e-3;nvme-timeout=1e-4:2;fail@2.5=3;"
 *   "degrade@1.0=0.5:2;uplink@4.0=0.8;fail@9=all"
 * Clauses:
 *   seed=<u64>            RNG seed
 *   nand-err=<p>[:dev]    per-read ECC error probability
 *   nvme-timeout=<p>[:dev] per-command timeout probability
 *   degrade@<t>=<m>[:dev] P2P bandwidth multiplier m from t seconds
 *   uplink@<t>=<m>        chassis-uplink multiplier from t seconds
 *   fail@<t>=<dev|all>    device (or fleet) failure at t seconds
 * Raises a fatal error on malformed input.
 */
FaultPlan parseFaultPlan(const std::string &spec);

/** Counters accumulated by a FaultInjector over one simulation. */
struct FaultStats {
    std::uint64_t nand_read_errors = 0;
    std::uint64_t nand_retry_steps = 0;
    std::uint64_t nvme_timeouts = 0;
    std::uint64_t nvme_retries = 0;
    std::uint64_t nvme_failures = 0;  ///< retries exhausted
    std::uint64_t redispatched_slices = 0;
    Seconds retry_time = 0.0;  ///< total latency added by recovery

    bool any() const;
};

/**
 * Evaluates a FaultPlan against per-operation queries.
 *
 * Probabilistic queries (nandReadPenalty, nvmeCommand) consume one
 * deterministic per-device RNG stream each, so results depend only on
 * (seed, plan, per-device call order) — the event simulator issues them
 * in deterministic loop order. Timed queries (deviceFailed, linkDerate)
 * are pure functions of the plan and the supplied clock.
 */
class FaultInjector
{
  public:
    /** Null injector: nothing ever faults, no RNG state. */
    FaultInjector();

    FaultInjector(const FaultPlan &plan, unsigned num_devices);

    /** True when the plan contains at least one event. */
    bool active() const { return active_; }

    /** Outcome of one NVMe command on device `dev`. */
    struct NvmeOutcome {
        Seconds extra_latency = 0.0;
        unsigned retries = 0;
        bool failed = false;  ///< retries exhausted; re-dispatch needed
    };

    /**
     * Sample the ECC read-retry penalty of one NAND read on `dev`
     * (0 when the read succeeds first try).
     */
    Seconds nandReadPenalty(unsigned dev);

    /** Sample the timeout/backoff outcome of one NVMe command. */
    NvmeOutcome nvmeCommand(unsigned dev);

    /** Configured per-read ECC error probability of `dev`. */
    double nandErrorProbability(unsigned dev) const;
    /** Configured per-command timeout probability of `dev`. */
    double nvmeTimeoutProbability(unsigned dev) const;

    /** Product of active P2P degradations on `dev` at time `now`. */
    double linkDerate(unsigned dev, Seconds now) const;
    /** Product of active chassis-uplink degradations at time `now`. */
    double uplinkDerate(Seconds now) const;

    /** Whether `dev` has failed by time `now`. */
    bool deviceFailed(unsigned dev, Seconds now) const;
    /** Failure time of `dev` (infinity when it never fails). */
    Seconds deviceFailTime(unsigned dev) const;
    /** Number of devices still alive at time `now`. */
    unsigned survivingDevices(Seconds now) const;
    /** Sorted finite times at which any timed event activates. */
    std::vector<Seconds> eventTimes() const;

    /** Record one slice re-dispatched off a failed device. */
    void noteRedispatch() { stats_.redispatched_slices++; }

    const RetryPolicy &retryPolicy() const { return retry_; }
    const FaultStats &stats() const { return stats_; }
    unsigned numDevices() const { return num_devices_; }

  private:
    std::mt19937_64 &rngFor(unsigned dev);

    bool active_ = false;
    unsigned num_devices_ = 0;
    RetryPolicy retry_;
    std::vector<double> nand_prob_;
    std::vector<double> nvme_prob_;
    std::vector<Seconds> fail_at_;
    std::vector<FaultEvent> degrades_;
    std::vector<std::mt19937_64> rng_;
    FaultStats stats_;
};

}  // namespace hilos

#endif  // HILOS_SIM_FAULT_H_
