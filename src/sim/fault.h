/**
 * @file
 * Seeded, schedule-driven fault injection for the HILOS simulator.
 *
 * The paper's evaluation assumes a perfectly healthy fleet of 4-16
 * SmartSSDs; this subsystem makes non-ideal conditions representable
 * without sacrificing reproducibility. A FaultPlan is a declarative
 * list of events — probabilistic per-operation faults (NAND read errors
 * that trigger an ECC read-retry ladder, NVMe command timeouts with
 * bounded exponential backoff) and timed state changes (P2P/uplink
 * bandwidth degradation, whole-device failure). A FaultInjector
 * evaluates the plan with one deterministic RNG stream per device, so
 * the same seed and plan always reproduce bit-identical results.
 *
 * Invariants the rest of the stack relies on:
 *  - an empty plan injects nothing and draws no random numbers, so the
 *    zero-fault path is byte-identical to a build without this layer;
 *  - faults perturb timing, traffic, and availability only — never the
 *    attention numerics;
 *  - probabilistic penalties have closed-form expectations (used by the
 *    analytic engine) alongside the sampled draws (used by the event
 *    simulator), so the two models stay comparable under faults.
 */

#ifndef HILOS_SIM_FAULT_H_
#define HILOS_SIM_FAULT_H_

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** Event target sentinel: applies to every SmartSSD in the fleet. */
constexpr unsigned kAllDevices = std::numeric_limits<unsigned>::max();
/** Event target sentinel: applies to the shared chassis uplink. */
constexpr unsigned kUplinkTarget = kAllDevices - 1;
/**
 * Exclusive upper bound on real device/host indices. Targets in
 * [kMaxRealTarget, kUplinkTarget) are the reserved gap between real
 * indices and the sentinels; FaultPlan::validate() rejects them so a
 * typo can never silently alias a future sentinel.
 */
constexpr unsigned kMaxRealTarget = 1u << 16;

/** The fault classes the simulator can inject. */
enum class FaultKind {
    NandReadError,    ///< probabilistic, per NAND read: ECC retry ladder
    NvmeTimeout,      ///< probabilistic, per command: timeout + backoff
    LinkDegrade,      ///< timed: bandwidth multiplier from `at` onward
    DeviceFail,       ///< timed: device permanently fails at `at`
    HostFail,         ///< timed: whole host permanently lost at `at`
    HostLinkDegrade,  ///< timed: inter-host interconnect multiplier
    HostStall,        ///< timed: host pauses for `duration`, retried
};

/** True for cluster-granularity kinds consumed by HostFaultView. */
bool isHostScope(FaultKind kind);

/** Stable lower-case name of a fault kind (diagnostics, serialization). */
const char *faultKindName(FaultKind kind);

/** One entry of a FaultPlan. */
struct FaultEvent {
    FaultKind kind = FaultKind::NandReadError;
    /**
     * Target device index, kAllDevices, or kUplinkTarget. Host-scope
     * kinds reuse this field as the host index (or kAllDevices).
     */
    unsigned device = kAllDevices;
    /** Activation time for timed events (absolute run seconds). */
    Seconds at = 0.0;
    /** Per-operation probability for probabilistic events. */
    double probability = 0.0;
    /** Bandwidth multiplier in (0, 1] for *LinkDegrade. */
    double bw_multiplier = 1.0;
    /** Unresponsive interval for HostStall (escalates past the ladder). */
    Seconds duration = 0.0;
};

/**
 * Retry/timeout knobs shared by the NVMe and NAND recovery paths.
 *
 * An NVMe command that times out is re-issued after a bounded
 * exponential backoff; a NAND read whose ECC fails walks a read-retry
 * ladder of re-reads at shifted reference voltages.
 */
struct RetryPolicy {
    unsigned nvme_max_attempts = 5;       ///< total tries incl. first
    Seconds nvme_timeout = msec(10);      ///< host-side command timeout
    Seconds backoff_base = usec(100);     ///< first retry delay
    double backoff_multiplier = 2.0;      ///< per-retry growth
    Seconds backoff_cap = msec(50);       ///< delay ceiling
    unsigned ecc_max_steps = 8;           ///< read-retry ladder depth
    Seconds ecc_step_latency = usec(70);  ///< extra tR per ladder step

    /** Backoff delay before retry `attempt` (1-based), capped. */
    Seconds backoffDelay(unsigned attempt) const;

    /**
     * Expected extra latency per NVMe command when each attempt times
     * out independently with probability `timeout_prob`.
     */
    Seconds expectedNvmePenalty(double timeout_prob) const;

    /**
     * Expected extra latency per NAND read at ECC failure probability
     * `error_prob` (mean ladder depth at uniform step draws).
     */
    Seconds expectedEccPenalty(double error_prob) const;
};

/**
 * A declarative, seeded schedule of faults for one run.
 */
struct FaultPlan {
    std::uint64_t seed = 0x48494c4f53ull;
    RetryPolicy retry;
    std::vector<FaultEvent> events;

    /** True when the plan injects nothing (the zero-fault fast path). */
    bool empty() const { return events.empty(); }

    /**
     * Check every event against the representable ranges: probability
     * in [0, 1], *LinkDegrade multiplier in (0, 1], finite non-negative
     * `at` and `duration`, and no target inside the reserved gap
     * between real indices and the kUplinkTarget/kAllDevices sentinels.
     * Returns one named diagnostic per violation (empty = valid), in
     * the style of StepPlan::validate(); FaultInjector and
     * HostFaultView construction are gated on it.
     */
    std::vector<std::string> validate() const;

    /**
     * The device-scope subset of this plan (same seed and retry
     * policy, host-scope events dropped): what each host's own
     * injector sees when a fleet run fans the plan out per host.
     */
    FaultPlan deviceScope() const;

    /** True when the plan contains at least one host-scope event. */
    bool hasHostEvents() const;

    FaultPlan &addNandReadError(double probability,
                                unsigned device = kAllDevices);
    FaultPlan &addNvmeTimeout(double probability,
                              unsigned device = kAllDevices);
    FaultPlan &addLinkDegrade(Seconds at, double bw_multiplier,
                              unsigned device = kAllDevices);
    FaultPlan &addUplinkDegrade(Seconds at, double bw_multiplier);
    FaultPlan &addDeviceFailure(Seconds at, unsigned device);
    /** Fail the whole fleet at `at` (degenerate-plan error handling). */
    FaultPlan &addFleetFailure(Seconds at);
    FaultPlan &addHostFailure(Seconds at, unsigned host);
    /** Degrade the inter-host interconnect from `at` onward. */
    FaultPlan &addHostLinkDegrade(Seconds at, double bw_multiplier);
    /** Stall `host` for `duration` seconds starting at `at`. */
    FaultPlan &addHostStall(Seconds at, Seconds duration,
                            unsigned host = kAllDevices);
};

/**
 * Parse a semicolon/comma-separated fault-plan spec, e.g.
 *   "seed=7;nand-err=1e-3;nvme-timeout=1e-4:2;fail@2.5=3;"
 *   "degrade@1.0=0.5:2;uplink@4.0=0.8;fail@9=all"
 * Clauses:
 *   seed=<u64>            RNG seed
 *   nand-err=<p>[:dev]    per-read ECC error probability
 *   nvme-timeout=<p>[:dev] per-command timeout probability
 *   degrade@<t>=<m>[:dev] P2P bandwidth multiplier m from t seconds
 *   uplink@<t>=<m>        chassis-uplink multiplier from t seconds
 *   fail@<t>=<dev|all>    device (or fleet) failure at t seconds
 *   host-fail@<t>=<h|all> host h (or every host) lost at t seconds
 *   host-degrade@<t>=<m>  inter-host interconnect multiplier from t
 *   host-stall@<t>=<d>[:h] host h unresponsive for d seconds from t
 * Raises a fatal error on malformed input.
 */
FaultPlan parseFaultPlan(const std::string &spec);

/** Counters accumulated by a FaultInjector over one simulation. */
struct FaultStats {
    std::uint64_t nand_read_errors = 0;
    std::uint64_t nand_retry_steps = 0;
    std::uint64_t nvme_timeouts = 0;
    std::uint64_t nvme_retries = 0;
    std::uint64_t nvme_failures = 0;  ///< retries exhausted
    std::uint64_t redispatched_slices = 0;
    Seconds retry_time = 0.0;  ///< total latency added by recovery

    bool any() const;
};

/**
 * Evaluates a FaultPlan against per-operation queries.
 *
 * Probabilistic queries (nandReadPenalty, nvmeCommand) consume one
 * deterministic per-device RNG stream each, so results depend only on
 * (seed, plan, per-device call order) — the event simulator issues them
 * in deterministic loop order. Timed queries (deviceFailed, linkDerate)
 * are pure functions of the plan and the supplied clock.
 */
class FaultInjector
{
  public:
    /** Null injector: nothing ever faults, no RNG state. */
    FaultInjector();

    FaultInjector(const FaultPlan &plan, unsigned num_devices);

    /** True when the plan contains at least one event. */
    bool active() const { return active_; }

    /** Outcome of one NVMe command on device `dev`. */
    struct NvmeOutcome {
        Seconds extra_latency = 0.0;
        unsigned retries = 0;
        bool failed = false;  ///< retries exhausted; re-dispatch needed
    };

    /**
     * Sample the ECC read-retry penalty of one NAND read on `dev`
     * (0 when the read succeeds first try).
     */
    Seconds nandReadPenalty(unsigned dev);

    /** Sample the timeout/backoff outcome of one NVMe command. */
    NvmeOutcome nvmeCommand(unsigned dev);

    /** Configured per-read ECC error probability of `dev`. */
    double nandErrorProbability(unsigned dev) const;
    /** Configured per-command timeout probability of `dev`. */
    double nvmeTimeoutProbability(unsigned dev) const;

    /** Product of active P2P degradations on `dev` at time `now`. */
    double linkDerate(unsigned dev, Seconds now) const;
    /** Product of active chassis-uplink degradations at time `now`. */
    double uplinkDerate(Seconds now) const;

    /** Whether `dev` has failed by time `now`. */
    bool deviceFailed(unsigned dev, Seconds now) const;
    /** Failure time of `dev` (infinity when it never fails). */
    Seconds deviceFailTime(unsigned dev) const;
    /** Number of devices still alive at time `now`. */
    unsigned survivingDevices(Seconds now) const;
    /** Sorted finite times at which any timed event activates. */
    std::vector<Seconds> eventTimes() const;

    /** Record one slice re-dispatched off a failed device. */
    void noteRedispatch() { stats_.redispatched_slices++; }

    const RetryPolicy &retryPolicy() const { return retry_; }
    const FaultStats &stats() const { return stats_; }
    unsigned numDevices() const { return num_devices_; }

  private:
    std::mt19937_64 &rngFor(unsigned dev);

    bool active_ = false;
    unsigned num_devices_ = 0;
    RetryPolicy retry_;
    std::vector<double> nand_prob_;
    std::vector<double> nvme_prob_;
    std::vector<Seconds> fail_at_;
    std::vector<FaultEvent> degrades_;
    std::vector<std::mt19937_64> rng_;
    FaultStats stats_;
};

/**
 * Cluster-granularity companion to FaultInjector: evaluates the
 * host-scope events of a FaultPlan against a fleet of `num_hosts`
 * hosts. Pure function of (plan, num_hosts) — no RNG state — so the
 * analytic and event-sim fleet backends share one view.
 *
 * A HostStall mirrors the NVMe-timeout ladder at host granularity: the
 * scheduler probes the silent host at the ladder's timeout+backoff
 * boundaries and either observes recovery at the first probe at or
 * after the stall ends, or exhausts the ladder and escalates the stall
 * to a permanent HostFail at `begin + ladderBudget`.
 */
class HostFaultView
{
  public:
    /** One evaluated stall interval of a host. */
    struct StallWindow {
        unsigned host = 0;
        Seconds begin = 0.0;
        /** Recovery-probe time, or escalation time when escalated. */
        Seconds end = 0.0;
        bool escalated = false;  ///< stall outlived the retry ladder
    };

    /** Null view: every host healthy forever. */
    HostFaultView();

    HostFaultView(const FaultPlan &plan, unsigned num_hosts);

    /** True when the plan contains at least one host-scope event. */
    bool active() const { return active_; }
    unsigned numHosts() const { return num_hosts_; }

    /** Whether `host` is permanently lost by time `now`. */
    bool hostFailed(unsigned host, Seconds now) const;
    /** Whether `host` is inside a stall window at time `now`. */
    bool hostStalled(unsigned host, Seconds now) const;
    /** Failure time of `host` (infinity when it never fails). */
    Seconds hostFailTime(unsigned host) const;
    /** Hosts neither failed nor stalled at time `now`. */
    unsigned servingHosts(Seconds now) const;
    /** Hosts stalled (but not failed) at time `now`. */
    unsigned stalledHosts(Seconds now) const;
    /** Product of active inter-host degradations at time `now`. */
    double interHostDerate(Seconds now) const;
    /** Sorted finite times at which the fleet state changes. */
    std::vector<Seconds> eventTimes() const;
    const std::vector<StallWindow> &stalls() const { return stalls_; }

    /**
     * Total time the retry ladder spends before declaring a silent
     * host dead: sum of timeout + backoff over every allowed retry.
     */
    static Seconds ladderBudget(const RetryPolicy &retry);
    /**
     * Time to observe recovery of a stall of `duration`: the first
     * probe boundary at or after the stall ends (== ladderBudget when
     * the ladder would be exhausted first).
     */
    static Seconds probeRecovery(const RetryPolicy &retry,
                                 Seconds duration);

  private:
    bool active_ = false;
    unsigned num_hosts_ = 0;
    std::vector<Seconds> fail_at_;
    std::vector<StallWindow> stalls_;
    std::vector<FaultEvent> degrades_;
};

}  // namespace hilos

#endif  // HILOS_SIM_FAULT_H_
