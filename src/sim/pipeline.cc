#include "sim/pipeline.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hilos {

void
PipelineModel::addStage(std::string name, Seconds time)
{
    HILOS_ASSERT(time >= 0.0, "negative stage time for ", name);
    stages_.push_back(Stage{std::move(name), time});
}

Seconds
PipelineModel::bottleneck() const
{
    Seconds best = 0.0;
    for (const auto &s : stages_)
        best = std::max(best, s.time);
    return best;
}

std::string
PipelineModel::bottleneckName() const
{
    Seconds best = -1.0;
    std::string name;
    for (const auto &s : stages_) {
        if (s.time > best) {
            best = s.time;
            name = s.name;
        }
    }
    return name;
}

Seconds
PipelineModel::latency() const
{
    Seconds total = 0.0;
    for (const auto &s : stages_)
        total += s.time;
    return total;
}

Seconds
PipelineModel::totalTime(std::uint64_t items) const
{
    if (items == 0 || stages_.empty())
        return 0.0;
    return latency() +
           static_cast<double>(items - 1) * bottleneck();
}

Seconds
overlapMax(std::initializer_list<Seconds> times)
{
    Seconds best = 0.0;
    for (Seconds t : times)
        best = std::max(best, t);
    return best;
}

Seconds
overlapMax(const std::vector<Seconds> &times)
{
    Seconds best = 0.0;
    for (Seconds t : times)
        best = std::max(best, t);
    return best;
}

Seconds
serialSum(std::initializer_list<Seconds> times)
{
    Seconds total = 0.0;
    for (Seconds t : times)
        total += t;
    return total;
}

Seconds
serialSum(const std::vector<Seconds> &times)
{
    Seconds total = 0.0;
    for (Seconds t : times)
        total += t;
    return total;
}

}  // namespace hilos
