/**
 * @file
 * Parallel sweep execution: a small work-stealing thread pool plus a
 * SweepDriver that fans independent grid points across threads with
 * deterministic result ordering.
 *
 * Every paper figure re-runs the analytic engines and the event
 * simulator over large config grids (devices x batch x context x
 * model). The grid points are independent — each engine `run()` is
 * const and builds all of its state (BandwidthResource instances,
 * fault-injector RNG streams, trace buffers) locally — so they
 * parallelise embarrassingly. The driver guarantees:
 *
 *  - results are keyed by grid index, never by completion order, so a
 *    sweep renders byte-identically regardless of thread count;
 *  - `jobs == 1` executes inline on the calling thread with no worker
 *    threads at all (the serial reference path);
 *  - tasks never share mutable state through the driver — each task
 *    owns whatever engines/simulators/recorders it constructs.
 */

#ifndef HILOS_SIM_PARALLEL_H_
#define HILOS_SIM_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hilos {

/**
 * Work-stealing thread pool over index ranges.
 *
 * Workers are spawned once and reused across parallelFor() calls.
 * Indices are dealt round-robin into per-worker deques; a worker pops
 * from the front of its own deque and, when empty, steals from the
 * back of a victim's. parallelFor() is not reentrant: one sweep at a
 * time per pool.
 */
class ThreadPool
{
  public:
    /** Hard ceiling on the worker count, so absurd requests (e.g. a
     *  negative CLI value cast to unsigned) degrade to a large pool
     *  instead of exhausting the process's thread limit. */
    static constexpr unsigned kMaxJobs = 256;

    /**
     * @param jobs worker count; 0 picks the hardware concurrency,
     *        1 runs everything inline on the calling thread. Clamped
     *        to kMaxJobs.
     */
    explicit ThreadPool(unsigned jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Effective parallelism (>= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * Run `fn(i)` for every i in [0, n), blocking until all complete.
     * The first exception thrown by any task is rethrown here after
     * the remaining queued work is cancelled.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Worker-aware form: run `fn(worker, i)` for every i in [0, n),
     * where `worker` identifies the executing worker in [0, jobs()).
     * Serial execution (jobs() == 1 or n == 1) uses worker 0. A worker
     * id never runs two tasks concurrently, so callers can keep
     * per-worker scratch state (engine instances, plan caches) in a
     * jobs()-sized vector without locking.
     */
    void parallelForWorker(
        std::size_t n,
        const std::function<void(unsigned, std::size_t)> &fn);

    /** Default worker count for `jobs == 0`. */
    static unsigned defaultJobs();

  private:
    /** One worker's share of the current sweep. */
    struct Shard {
        std::mutex mu;
        std::deque<std::size_t> indices;
    };

    void workerLoop(unsigned self);
    void runShare(unsigned self);
    bool popOwn(unsigned self, std::size_t &idx);
    bool stealFrom(unsigned self, std::size_t &idx);
    void cancelPending();

    unsigned jobs_ = 1;
    std::vector<std::thread> threads_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex mu_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool stop_ = false;
    const std::function<void(unsigned, std::size_t)> *fn_ = nullptr;
    std::exception_ptr error_;
};

/**
 * Fans a grid of independent sweep points across a ThreadPool.
 *
 * The driver owns nothing about the point type: callers pass a vector
 * of tasks (RunConfig grid points, scenario structs, plain indices)
 * and a function evaluating one of them. Results come back in a
 * vector parallel to the input — element i is always the result of
 * task i, whatever order the threads finished in.
 */
class SweepDriver
{
  public:
    /** @param jobs see ThreadPool; 1 = serial reference execution. */
    explicit SweepDriver(unsigned jobs = 0) : pool_(jobs) {}

    unsigned jobs() const { return pool_.jobs(); }

    /**
     * Evaluate `fn(task)` for every task, results keyed by task index.
     * `fn` must treat tasks as independent: any engine, simulator,
     * RNG, or trace state it needs is constructed inside the call.
     */
    template <typename Task, typename Fn>
    auto map(const std::vector<Task> &tasks, Fn &&fn)
        -> std::vector<decltype(fn(tasks.front()))>
    {
        std::vector<decltype(fn(tasks.front()))> results(tasks.size());
        pool_.parallelFor(tasks.size(), [&](std::size_t i) {
            results[i] = fn(tasks[i]);
        });
        return results;
    }

    /**
     * Index-based form: evaluate `fn(i)` for i in [0, n), results
     * keyed by i.
     */
    template <typename Fn>
    auto sweep(std::size_t n, Fn &&fn) -> std::vector<decltype(fn(0u))>
    {
        std::vector<decltype(fn(0u))> results(n);
        pool_.parallelFor(n,
                          [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /**
     * Worker-aware map: evaluate `fn(worker, task)` with the executing
     * worker id as the first argument (see parallelForWorker), results
     * still keyed by task index. Use when tasks want to reuse
     * expensive per-worker state across the sweep.
     */
    template <typename Task, typename Fn>
    auto mapWorker(const std::vector<Task> &tasks, Fn &&fn)
        -> std::vector<decltype(fn(0u, tasks.front()))>
    {
        std::vector<decltype(fn(0u, tasks.front()))> results(tasks.size());
        pool_.parallelForWorker(
            tasks.size(), [&](unsigned worker, std::size_t i) {
                results[i] = fn(worker, tasks[i]);
            });
        return results;
    }

  private:
    ThreadPool pool_;
};

}  // namespace hilos

#endif  // HILOS_SIM_PARALLEL_H_
