#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace hilos {

void
EventQueue::scheduleAt(Seconds when, Callback fn)
{
    HILOS_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                 now_);
    heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(Seconds delay, Callback fn)
{
    HILOS_ASSERT(delay >= 0.0, "negative delay: ", delay);
    scheduleAt(now_ + delay, std::move(fn));
}

Seconds
EventQueue::run()
{
    while (!heap_.empty()) {
        // Copy out before pop: the callback may schedule new events.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
    }
    return now_;
}

Seconds
EventQueue::runUntil(Seconds limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

Seconds
EventQueue::peekNext() const
{
    HILOS_ASSERT(!heap_.empty(), "peekNext on an empty event queue");
    return heap_.top().when;
}

void
EventQueue::reset()
{
    heap_ = {};
    now_ = 0.0;
    next_seq_ = 0;
}

}  // namespace hilos
