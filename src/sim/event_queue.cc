#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace hilos {

std::uint64_t
EventQueue::dayOf(Seconds when) const
{
    const double day = when / bucket_width_;
    // Clamp far-future times to one shared terminal day so the index
    // never overflows; both insert and findMin classify through this
    // function, so clamped events still meet in the same bucket.
    constexpr double kMaxDay = 9.0e18;
    if (day >= kMaxDay)
        return static_cast<std::uint64_t>(kMaxDay);
    return day <= 0.0 ? 0ull : static_cast<std::uint64_t>(day);
}

void
EventQueue::insert(Seconds when, Callback fn)
{
    maybeGrow();
    const std::uint64_t day = dayOf(when);
    search_day_ = std::min(search_day_, day);
    buckets_[day & (buckets_.size() - 1)].push_back(
        Entry{when, next_seq_++, std::move(fn)});
    count_++;
}

EventQueue::MinRef
EventQueue::findMin() const
{
    MinRef best;
    if (count_ == 0)
        return best;
    const std::size_t n = buckets_.size();
    const std::uint64_t start = std::max(search_day_, dayOf(now_));
    Seconds best_when = 0.0;
    std::uint64_t best_seq = 0;

    // One calendar lap: the first day with a resident event holds the
    // global minimum, because earlier days are empty and later days
    // start later. Entries in a bucket belonging to other days (the
    // ring aliases day d and d + n) are filtered out.
    for (std::uint64_t day = start; day < start + n; day++) {
        const std::vector<Entry> &bucket = buckets_[day & (n - 1)];
        for (std::size_t i = 0; i < bucket.size(); i++) {
            const Entry &e = bucket[i];
            if (dayOf(e.when) != day)
                continue;
            if (!best.found || e.when < best_when ||
                (e.when == best_when && e.seq < best_seq)) {
                best = MinRef{day & (n - 1), i, true};
                best_when = e.when;
                best_seq = e.seq;
            }
        }
        if (best.found) {
            search_day_ = day;
            return best;
        }
    }

    // Sparse tail: every pending event lies more than one lap ahead.
    // Direct scan, then jump the search cursor to the day found.
    for (std::size_t b = 0; b < n; b++) {
        const std::vector<Entry> &bucket = buckets_[b];
        for (std::size_t i = 0; i < bucket.size(); i++) {
            const Entry &e = bucket[i];
            if (!best.found || e.when < best_when ||
                (e.when == best_when && e.seq < best_seq)) {
                best = MinRef{b, i, true};
                best_when = e.when;
                best_seq = e.seq;
            }
        }
    }
    search_day_ = dayOf(best_when);
    return best;
}

EventQueue::Entry
EventQueue::extract(const MinRef &ref)
{
    std::vector<Entry> &bucket = buckets_[ref.bucket];
    Entry out = std::move(bucket[ref.index]);
    // Order within a bucket is irrelevant (findMin scans it), so fill
    // the hole with the last entry instead of shifting.
    if (ref.index + 1 != bucket.size())
        bucket[ref.index] = std::move(bucket.back());
    bucket.pop_back();
    count_--;
    return out;
}

void
EventQueue::maybeGrow()
{
    if (count_ < buckets_.size() * kGrowLoad)
        return;
    // Double the ring and re-fit the day width to the observed event
    // spacing (span / population), so a deep queue keeps roughly one
    // event per day regardless of the caller's time scale.
    Seconds lo = std::numeric_limits<Seconds>::infinity();
    Seconds hi = -std::numeric_limits<Seconds>::infinity();
    for (const std::vector<Entry> &bucket : buckets_) {
        for (const Entry &e : bucket) {
            lo = std::min(lo, e.when);
            hi = std::max(hi, e.when);
        }
    }
    std::vector<std::vector<Entry>> old = std::move(buckets_);
    const std::size_t n = old.size() * 2;
    buckets_ = std::vector<std::vector<Entry>>(n);
    if (hi > lo)
        bucket_width_ =
            std::max(kMinWidth, (hi - lo) / static_cast<double>(count_));
    for (std::vector<Entry> &bucket : old) {
        for (Entry &e : bucket)
            buckets_[dayOf(e.when) & (n - 1)].push_back(std::move(e));
    }
    search_day_ = 0;  // widths changed; findMin re-establishes the cursor
}

Seconds
EventQueue::run()
{
    while (count_ > 0) {
        // Move the entry out of its bucket before invoking: the
        // callback may schedule (or trigger growth of) new events.
        Entry e = extract(findMin());
        now_ = e.when;
        e.fn();
    }
    return now_;
}

Seconds
EventQueue::runUntil(Seconds limit)
{
    while (count_ > 0) {
        const MinRef head = findMin();
        if (buckets_[head.bucket][head.index].when > limit)
            break;
        Entry e = extract(head);
        now_ = e.when;
        e.fn();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

Seconds
EventQueue::peekNext() const
{
    HILOS_ASSERT(count_ > 0, "peekNext on an empty event queue");
    const MinRef head = findMin();
    return buckets_[head.bucket][head.index].when;
}

void
EventQueue::reset()
{
    for (std::vector<Entry> &bucket : buckets_)
        bucket.clear();
    count_ = 0;
    now_ = 0.0;
    next_seq_ = 0;
    search_day_ = 0;
}

}  // namespace hilos
