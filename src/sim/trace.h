/**
 * @file
 * Execution-trace recording.
 *
 * Simulators record named intervals per track (device, link, GPU) and
 * export them in the Chrome trace-event JSON format, viewable in
 * chrome://tracing or Perfetto — the standard way to eyeball a decode
 * step's pipeline occupancy.
 */

#ifndef HILOS_SIM_TRACE_H_
#define HILOS_SIM_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** One complete interval on a track. */
struct TraceEvent {
    std::string track;  ///< e.g. "p2p3", "uplink", "gpu"
    std::string name;   ///< e.g. "layer12/slice88"
    Seconds begin = 0;
    Seconds end = 0;
};

/**
 * Interval recorder with Chrome trace-event export.
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Record an interval; zero-length intervals are kept. */
    void record(const std::string &track, const std::string &name,
                Seconds begin, Seconds end);

    /** All events, in insertion order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events on one track, in insertion order. */
    std::vector<TraceEvent> track(const std::string &name) const;

    /** Busy time of one track (sum of interval lengths). */
    Seconds busyTime(const std::string &track) const;

    /**
     * Serialise as Chrome trace-event JSON ("X" complete events;
     * timestamps in microseconds, one pid, one tid per track).
     */
    void writeChromeTrace(std::ostream &os) const;

    void clear() { events_.clear(); }
    std::size_t size() const { return events_.size(); }

  private:
    std::vector<TraceEvent> events_;
};

}  // namespace hilos

#endif  // HILOS_SIM_TRACE_H_
