#include "sim/parallel.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

unsigned
ThreadPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(std::min(jobs == 0 ? defaultJobs() : jobs, kMaxJobs))
{
    if (jobs_ <= 1)
        return;  // inline execution, no worker threads
    shards_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; i++)
        shards_.push_back(std::make_unique<Shard>());
    threads_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelForWorker(n, [&fn](unsigned, std::size_t i) { fn(i); });
}

void
ThreadPool::parallelForWorker(
    std::size_t n, const std::function<void(unsigned, std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_.empty() || n == 1) {
        // Serial reference path: same code the workers run, same
        // index order a 1-wide deal would produce.
        for (std::size_t i = 0; i < n; i++)
            fn(0, i);
        return;
    }

    // Deal indices round-robin before publishing the job, so workers
    // never observe a partially filled shard.
    for (std::size_t i = 0; i < n; i++) {
        Shard &sh = *shards_[i % jobs_];
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.indices.push_back(i);
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        HILOS_ASSERT(fn_ == nullptr, "parallelFor is not reentrant");
        fn_ = &fn;
        error_ = nullptr;
        running_ = jobs_;
        generation_++;
    }
    start_cv_.notify_all();

    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return running_ == 0; });
    fn_ = nullptr;
    if (error_)
        std::rethrow_exception(error_);
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            start_cv_.wait(lk, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        runShare(self);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--running_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::runShare(unsigned self)
{
    const std::function<void(unsigned, std::size_t)> &fn = *fn_;
    std::size_t idx = 0;
    while (popOwn(self, idx) || stealFrom(self, idx)) {
        try {
            fn(self, idx);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (!error_)
                    error_ = std::current_exception();
            }
            cancelPending();
        }
    }
}

bool
ThreadPool::popOwn(unsigned self, std::size_t &idx)
{
    Shard &sh = *shards_[self];
    std::lock_guard<std::mutex> lk(sh.mu);
    if (sh.indices.empty())
        return false;
    idx = sh.indices.front();
    sh.indices.pop_front();
    return true;
}

bool
ThreadPool::stealFrom(unsigned self, std::size_t &idx)
{
    for (unsigned off = 1; off < jobs_; off++) {
        Shard &victim = *shards_[(self + off) % jobs_];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (victim.indices.empty())
            continue;
        idx = victim.indices.back();
        victim.indices.pop_back();
        return true;
    }
    return false;
}

void
ThreadPool::cancelPending()
{
    for (std::unique_ptr<Shard> &sh : shards_) {
        std::lock_guard<std::mutex> lk(sh->mu);
        sh->indices.clear();
    }
}

}  // namespace hilos
