/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events are (time, callback)
 * pairs; ties break in insertion order so runs are reproducible. Used by
 * the storage / interconnect models to simulate overlapped transfers and
 * by the end-to-end engine simulations.
 */

#ifndef HILOS_SIM_EVENT_QUEUE_H_
#define HILOS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace hilos {

/**
 * Deterministic discrete-event queue over simulated seconds.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /** Schedule `fn` at absolute time `when` (>= now). */
    void scheduleAt(Seconds when, Callback fn);

    /** Schedule `fn` at now() + delay (delay >= 0). */
    void scheduleAfter(Seconds delay, Callback fn);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Run events until the queue is empty.
     * @return the time of the last executed event (now()).
     */
    Seconds run();

    /**
     * Run events with time <= `limit`; leaves later events queued and
     * always advances now() to `limit` (even if the queue drains early
     * or the next pending event lies past the limit).
     */
    Seconds runUntil(Seconds limit);

    /** Time of the earliest pending event. Asserts the queue is non-empty. */
    Seconds peekNext() const;

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Entry {
        Seconds when;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Seconds now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace hilos

#endif  // HILOS_SIM_EVENT_QUEUE_H_
