/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events are (time, callback)
 * pairs; ties break in insertion order so runs are reproducible. Used by
 * the storage / interconnect models to simulate overlapped transfers and
 * by the end-to-end engine simulations.
 *
 * Hot-path implementation notes (the contract above is unchanged):
 *
 *  - Events live in a calendar queue (a power-of-two ring of buckets,
 *    each covering one `bucket_width_`-wide "day" of simulated time)
 *    instead of a binary heap. Insertion is O(1); extraction scans
 *    forward from the current day and, because events cluster near
 *    `now()` in every simulation this repo runs, almost always finds
 *    the minimum in the first occupied bucket. The ring grows and the
 *    day width re-fits to the observed event spacing when the queue
 *    deepens, so throughput stays flat as schedules scale.
 *
 *  - Callbacks are `InlineCallback`s: move-only callables stored in a
 *    small in-object buffer. Every callback the simulator schedules is
 *    a tiny capture-by-value-or-reference lambda, and `std::function`
 *    both heap-allocated some of them and was copied on dispatch;
 *    InlineCallback never allocates for captures up to kInlineBytes
 *    and is only ever moved.
 */

#ifndef HILOS_SIM_EVENT_QUEUE_H_
#define HILOS_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace hilos {

/**
 * Move-only type-erased `void()` callable with a small-buffer store.
 *
 * Callables up to kInlineBytes whose move constructor cannot throw are
 * stored in-object; larger (or throwing-move) ones fall back to a heap
 * allocation. Dispatch goes through a static per-type operations table
 * (invoke / relocate / destroy), so the object is two pointers-worth of
 * overhead beyond the buffer and never copies the wrapped callable.
 */
class InlineCallback
{
  public:
    InlineCallback() = default;

    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, InlineCallback>>>
    InlineCallback(Fn &&fn)  // NOLINT(google-explicit-constructor)
    {
        using Decayed = std::decay_t<Fn>;
        static_assert(std::is_invocable_r_v<void, Decayed &>,
                      "InlineCallback wraps void() callables");
        if constexpr (fitsInline<Decayed>()) {
            new (storage_) Decayed(std::forward<Fn>(fn));
            ops_ = &InlineOps<Decayed>::ops;
        } else {
            *reinterpret_cast<Decayed **>(storage_) =
                new Decayed(std::forward<Fn>(fn));
            ops_ = &HeapOps<Decayed>::ops;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { destroy(); }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        HILOS_ASSERT(ops_ != nullptr, "invoking an empty InlineCallback");
        ops_->invoke(storage_);
    }

    /** Capture budget before a callable spills to the heap. */
    static constexpr std::size_t kInlineBytes = 48;

  private:
    struct Ops {
        void (*invoke)(void *storage);
        void (*relocate)(void *dst, void *src);  // move-construct + destroy src
        void (*destroy)(void *storage);
    };

    template <typename Decayed>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Decayed) <= kInlineBytes &&
               alignof(Decayed) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Decayed>;
    }

    template <typename Decayed>
    struct InlineOps {
        static void
        invoke(void *s)
        {
            (*static_cast<Decayed *>(s))();
        }
        static void
        relocate(void *dst, void *src)
        {
            Decayed *from = static_cast<Decayed *>(src);
            new (dst) Decayed(std::move(*from));
            from->~Decayed();
        }
        static void
        destroy(void *s)
        {
            static_cast<Decayed *>(s)->~Decayed();
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    template <typename Decayed>
    struct HeapOps {
        static Decayed *&
        slot(void *s)
        {
            return *static_cast<Decayed **>(s);
        }
        static void
        invoke(void *s)
        {
            (*slot(s))();
        }
        static void
        relocate(void *dst, void *src)
        {
            std::memcpy(dst, src, sizeof(Decayed *));
        }
        static void
        destroy(void *s)
        {
            delete slot(s);
        }
        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    void
    moveFrom(InlineCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr)
            ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
    }

    void
    destroy()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * Deterministic discrete-event queue over simulated seconds.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() { buckets_.resize(kInitialBuckets); }

    /** Current simulated time. */
    Seconds now() const { return now_; }

    /**
     * Schedule `fn` at absolute time `when` (>= now). The callable is
     * forwarded — moved when an rvalue is passed, never copied after
     * construction of its InlineCallback.
     */
    template <typename Fn>
    void
    scheduleAt(Seconds when, Fn &&fn)
    {
        HILOS_ASSERT(when >= now_, "scheduling into the past: ", when,
                     " < ", now_);
        insert(when, Callback(std::forward<Fn>(fn)));
    }

    /** Schedule `fn` at now() + delay (delay >= 0). */
    template <typename Fn>
    void
    scheduleAfter(Seconds delay, Fn &&fn)
    {
        HILOS_ASSERT(delay >= 0.0, "negative delay: ", delay);
        insert(now_ + delay, Callback(std::forward<Fn>(fn)));
    }

    /** Number of pending events. */
    std::size_t pending() const { return count_; }

    /**
     * Run events until the queue is empty.
     * @return the time of the last executed event (now()).
     */
    Seconds run();

    /**
     * Run events with time <= `limit`; leaves later events queued and
     * always advances now() to `limit` (even if the queue drains early
     * or the next pending event lies past the limit).
     */
    Seconds runUntil(Seconds limit);

    /** Time of the earliest pending event. Asserts the queue is non-empty. */
    Seconds peekNext() const;

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Entry {
        Seconds when = 0.0;
        std::uint64_t seq = 0;
        Callback fn;
    };

    /** Position of the minimum entry; `found` is false only when empty. */
    struct MinRef {
        std::size_t bucket = 0;
        std::size_t index = 0;
        bool found = false;
    };

    static constexpr std::size_t kInitialBuckets = 16;  // power of two
    static constexpr std::size_t kGrowLoad = 4;  // entries per bucket
    static constexpr Seconds kMinWidth = Seconds(1e-12);

    std::uint64_t dayOf(Seconds when) const;
    void insert(Seconds when, Callback fn);
    MinRef findMin() const;
    Entry extract(const MinRef &ref);
    void maybeGrow();

    Seconds now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::size_t count_ = 0;
    /** Span of simulated time each bucket covers ("day" length). */
    Seconds bucket_width_ = usec(1.0);
    /**
     * First calendar day that might hold an event; findMin starts its
     * forward scan here instead of at dayOf(now()) so repeated lookups
     * don't re-walk known-empty days. Maintained as a lower bound
     * (inserts can only lower it toward the true minimum), refreshed by
     * findMin, hence mutable.
     */
    mutable std::uint64_t search_day_ = 0;
    std::vector<std::vector<Entry>> buckets_;
};

}  // namespace hilos

#endif  // HILOS_SIM_EVENT_QUEUE_H_
