/**
 * @file
 * Pipelined-stage timing helpers.
 *
 * The paper's cost models (§4.2) assume that per-layer stages (GPU
 * recompute, SSD reads, PCIe transfers) are well pipelined and overlap,
 * so effective time is the max of the stage times plus fill/drain terms.
 * These helpers centralise that arithmetic so every engine composes
 * stages the same way.
 */

#ifndef HILOS_SIM_PIPELINE_H_
#define HILOS_SIM_PIPELINE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/units.h"

namespace hilos {

/** One named stage of a pipeline and its per-item service time. */
struct Stage {
    std::string name;
    Seconds time;
};

/**
 * Timing of a linear pipeline processing `items` identical items.
 */
class PipelineModel
{
  public:
    PipelineModel() = default;

    /** Append a stage. Zero-time stages are allowed and ignored. */
    void addStage(std::string name, Seconds time);

    /** The bottleneck stage time (max over stages); 0 if empty. */
    Seconds bottleneck() const;

    /** Name of the bottleneck stage; empty if no stages. */
    std::string bottleneckName() const;

    /** Sum of all stage times (the unpipelined latency of one item). */
    Seconds latency() const;

    /**
     * Total time for `items` items with full overlap between stages:
     * latency() + (items - 1) * bottleneck().
     */
    Seconds totalTime(std::uint64_t items) const;

    /**
     * Steady-state throughput-determining time per item; equals
     * bottleneck() when items is large.
     */
    Seconds steadyStatePerItem() const { return bottleneck(); }

    const std::vector<Stage> &stages() const { return stages_; }

  private:
    std::vector<Stage> stages_;
};

/**
 * Effective time of a set of fully-overlapped concurrent activities:
 * max of the inputs (the paper's T_effective = max(T_GPU, T_SSD, T_PCI)).
 */
Seconds overlapMax(std::initializer_list<Seconds> times);

/** Overload for dynamically-sized activity sets (e.g. plan op finishes). */
Seconds overlapMax(const std::vector<Seconds> &times);

/** Serial composition: sum of the inputs. */
Seconds serialSum(std::initializer_list<Seconds> times);

/** Overload for dynamically-sized serial chains. */
Seconds serialSum(const std::vector<Seconds> &times);

}  // namespace hilos

#endif  // HILOS_SIM_PIPELINE_H_
