/**
 * @file
 * Bandwidth-resource model.
 *
 * A BandwidthResource is a shared channel (a PCIe link, a flash channel,
 * a DRAM interface) that serialises transfers at a fixed byte rate with
 * an optional fixed per-request latency. Transfers issued while the
 * channel is busy queue behind it — this is what creates the contention
 * effects (host PCIe saturation) central to the paper's motivation.
 */

#ifndef HILOS_SIM_BANDWIDTH_H_
#define HILOS_SIM_BANDWIDTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace hilos {

/**
 * A serialised, fixed-rate channel.
 *
 * The model is analytic: `transfer(start, bytes)` returns the completion
 * time assuming FIFO service, and advances the channel's busy horizon.
 * Utilisation statistics accumulate so benches can report per-link
 * occupancy (Fig. 4(c)).
 */
class BandwidthResource
{
  public:
    /**
     * @param name stat-reporting name
     * @param rate channel bandwidth in bytes/second
     * @param latency fixed per-request latency in seconds
     */
    BandwidthResource(std::string name, Bandwidth rate,
                      Seconds latency = 0.0);

    /**
     * Issue a transfer of `bytes` that becomes ready at `start`.
     * @return completion time (>= start + latency + bytes/rate).
     */
    Seconds transfer(Seconds start, std::uint64_t bytes);

    /**
     * Pure service time of `bytes` on an idle channel (no queueing).
     */
    Seconds serviceTime(std::uint64_t bytes) const;

    /**
     * Occupy the channel for a fixed `duration` starting no earlier
     * than `start` (retry stalls, ECC recovery): the channel is busy
     * but moves no payload bytes.
     * @return completion time of the stall
     */
    Seconds occupy(Seconds start, Seconds duration);

    /**
     * Change the service rate for future transfers (fault-injected
     * bandwidth degradation); in-flight history is unaffected.
     */
    void setRate(Bandwidth rate);

    /** Earliest time a new transfer could begin service. */
    Seconds busyUntil() const { return busy_until_; }

    /** Total bytes moved so far. */
    double totalBytes() const { return stats_.counter("bytes").value(); }

    /** Total time the channel spent busy. */
    Seconds busyTime() const { return busy_time_; }

    /**
     * Fraction of [0, horizon] the channel was busy. Reports the true
     * busy_time/horizon ratio with no clamping; querying with a
     * horizon that does not cover the full busy span (i.e. before
     * busyUntil()) is an accounting error and asserts once the ratio
     * exceeds 1 + epsilon, so bugs surface instead of saturating.
     */
    double utilization(Seconds horizon) const;

    /**
     * Reset busy horizon and all statistics, including the queue_delay
     * and stall summaries, back to the freshly constructed state (the
     * configured rate and latency are preserved).
     */
    void reset();

    Bandwidth rate() const { return rate_; }
    Seconds latency() const { return latency_; }
    const std::string &name() const { return name_; }
    const StatRegistry &stats() const { return stats_; }

  private:
    std::string name_;
    Bandwidth rate_;
    Seconds latency_;
    Seconds busy_until_ = 0.0;
    Seconds busy_time_ = 0.0;
    mutable StatRegistry stats_;
};

/**
 * A fleet of identical BandwidthResource instances behind one logical
 * resource kind (the SmartSSD P2P links, the NAND channels). Callers
 * address instances directly (deterministic striping) or round-robin;
 * contention within an instance serialises exactly as for a single
 * BandwidthResource.
 */
class BandwidthPool
{
  public:
    /** `instances` channels named "<name>[i]", all with `rate`. */
    BandwidthPool(std::string name, unsigned instances, Bandwidth rate,
                  Seconds latency = 0.0);

    /** Occupy instance `i % size()` for `duration` from `start`. */
    Seconds occupyOn(std::uint64_t i, Seconds start, Seconds duration);

    /** Occupy the next instance in round-robin order. */
    Seconds occupyNext(Seconds start, Seconds duration);

    unsigned size() const
    {
        return static_cast<unsigned>(links_.size());
    }

    const BandwidthResource &instance(unsigned i) const;

    /** Latest busy horizon across all instances. */
    Seconds maxBusyUntil() const;

    /** Mean utilisation over all instances at `horizon`. */
    double meanUtilization(Seconds horizon) const;

    /** Reset every instance and the round-robin cursor. */
    void reset();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<BandwidthResource> links_;
    std::size_t next_ = 0;
};

}  // namespace hilos

#endif  // HILOS_SIM_BANDWIDTH_H_
