#include "sim/fault.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace hilos {

Seconds
RetryPolicy::backoffDelay(unsigned attempt) const
{
    HILOS_ASSERT(attempt >= 1, "backoff attempt is 1-based");
    Seconds delay = backoff_base;
    for (unsigned i = 1; i < attempt; i++) {
        delay *= backoff_multiplier;
        if (delay >= backoff_cap)
            return backoff_cap;
    }
    return std::min(delay, backoff_cap);
}

Seconds
RetryPolicy::expectedNvmePenalty(double timeout_prob) const
{
    if (timeout_prob <= 0.0)
        return 0.0;
    HILOS_ASSERT(timeout_prob <= 1.0, "invalid timeout probability");
    // Attempt k (1-based) happens with probability p^k of the previous
    // k attempts all timing out; each timeout pays the command timeout
    // plus the k-th backoff delay before re-issue.
    Seconds expected = 0.0;
    double p_k = 1.0;
    for (unsigned k = 1; k < nvme_max_attempts; k++) {
        p_k *= timeout_prob;
        expected += p_k * (nvme_timeout + backoffDelay(k));
    }
    return expected;
}

Seconds
RetryPolicy::expectedEccPenalty(double error_prob) const
{
    if (error_prob <= 0.0)
        return 0.0;
    HILOS_ASSERT(error_prob <= 1.0, "invalid ECC error probability");
    // Ladder depth is drawn uniformly in [1, ecc_max_steps].
    const double mean_steps =
        (1.0 + static_cast<double>(ecc_max_steps)) / 2.0;
    return error_prob * mean_steps * ecc_step_latency;
}

FaultPlan &
FaultPlan::addNandReadError(double probability, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::NandReadError;
    ev.device = device;
    ev.probability = probability;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addNvmeTimeout(double probability, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::NvmeTimeout;
    ev.device = device;
    ev.probability = probability;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addLinkDegrade(Seconds at, double bw_multiplier,
                          unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::LinkDegrade;
    ev.device = device;
    ev.at = at;
    ev.bw_multiplier = bw_multiplier;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addUplinkDegrade(Seconds at, double bw_multiplier)
{
    return addLinkDegrade(at, bw_multiplier, kUplinkTarget);
}

FaultPlan &
FaultPlan::addDeviceFailure(Seconds at, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::DeviceFail;
    ev.device = device;
    ev.at = at;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addFleetFailure(Seconds at)
{
    return addDeviceFailure(at, kAllDevices);
}

namespace {

std::vector<std::string>
splitClauses(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : spec) {
        if (c == ';' || c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

double
parseDouble(const std::string &s, const std::string &clause)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        HILOS_FATAL("fault plan: bad number '", s, "' in '", clause, "'");
    return v;
}

unsigned
parseDevice(const std::string &s, const std::string &clause)
{
    if (s == "all")
        return kAllDevices;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        HILOS_FATAL("fault plan: bad device '", s, "' in '", clause, "'");
    return static_cast<unsigned>(v);
}

/** Split "value[:dev]" into the value string and a device target. */
std::pair<std::string, unsigned>
splitDeviceSuffix(const std::string &s, const std::string &clause)
{
    const auto colon = s.find(':');
    if (colon == std::string::npos)
        return {s, kAllDevices};
    return {s.substr(0, colon),
            parseDevice(s.substr(colon + 1), clause)};
}

}  // namespace

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &clause : splitClauses(spec)) {
        const auto eq = clause.find('=');
        if (eq == std::string::npos)
            HILOS_FATAL("fault plan: missing '=' in '", clause, "'");
        std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        Seconds at = 0.0;
        const auto at_pos = key.find('@');
        if (at_pos != std::string::npos) {
            at = parseDouble(key.substr(at_pos + 1), clause);
            key = key.substr(0, at_pos);
        }

        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (key == "nand-err") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addNandReadError(parseDouble(v, clause), dev);
        } else if (key == "nvme-timeout") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addNvmeTimeout(parseDouble(v, clause), dev);
        } else if (key == "degrade") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addLinkDegrade(at, parseDouble(v, clause), dev);
        } else if (key == "uplink") {
            plan.addUplinkDegrade(at, parseDouble(value, clause));
        } else if (key == "fail") {
            plan.addDeviceFailure(at, parseDevice(value, clause));
        } else {
            HILOS_FATAL("fault plan: unknown clause '", clause,
                        "' (seed, nand-err, nvme-timeout, degrade, "
                        "uplink, fail)");
        }
    }
    return plan;
}

bool
FaultStats::any() const
{
    return nand_read_errors > 0 || nvme_timeouts > 0 ||
           nvme_failures > 0 || redispatched_slices > 0 ||
           retry_time > 0.0;
}

FaultInjector::FaultInjector() = default;

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned num_devices)
    : active_(!plan.empty()), num_devices_(num_devices),
      retry_(plan.retry),
      nand_prob_(num_devices, 0.0), nvme_prob_(num_devices, 0.0),
      fail_at_(num_devices, std::numeric_limits<Seconds>::infinity())
{
    HILOS_ASSERT(num_devices >= 1, "fault injector needs >= 1 device");
    for (const FaultEvent &ev : plan.events) {
        const bool fleet_wide = ev.device == kAllDevices;
        HILOS_ASSERT(fleet_wide || ev.device == kUplinkTarget ||
                         ev.device < num_devices,
                     "fault event targets device ", ev.device,
                     " but the fleet has ", num_devices);
        switch (ev.kind) {
          case FaultKind::NandReadError:
            HILOS_ASSERT(ev.probability >= 0.0 && ev.probability <= 1.0,
                         "invalid NAND error probability");
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d) {
                    nand_prob_[d] = std::min(
                        1.0, nand_prob_[d] + ev.probability);
                }
            }
            break;
          case FaultKind::NvmeTimeout:
            HILOS_ASSERT(ev.probability >= 0.0 && ev.probability <= 1.0,
                         "invalid NVMe timeout probability");
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d) {
                    nvme_prob_[d] = std::min(
                        1.0, nvme_prob_[d] + ev.probability);
                }
            }
            break;
          case FaultKind::LinkDegrade:
            HILOS_ASSERT(ev.bw_multiplier > 0.0 &&
                             ev.bw_multiplier <= 1.0,
                         "degradation multiplier must be in (0, 1]");
            degrades_.push_back(ev);
            break;
          case FaultKind::DeviceFail:
            HILOS_ASSERT(ev.at >= 0.0, "failure time must be >= 0");
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d)
                    fail_at_[d] = std::min(fail_at_[d], ev.at);
            }
            break;
        }
    }
    if (active_) {
        // One independent stream per device: draws on one device never
        // shift another device's sequence (splitmix-style seeding).
        rng_.reserve(num_devices);
        for (unsigned d = 0; d < num_devices; d++) {
            std::uint64_t z =
                plan.seed + 0x9e3779b97f4a7c15ull *
                                (static_cast<std::uint64_t>(d) + 1);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            rng_.emplace_back(z ^ (z >> 31));
        }
    }
}

std::mt19937_64 &
FaultInjector::rngFor(unsigned dev)
{
    HILOS_ASSERT(dev < rng_.size(), "no RNG stream for device ", dev);
    return rng_[dev];
}

Seconds
FaultInjector::nandReadPenalty(unsigned dev)
{
    if (!active_ || nand_prob_[dev] <= 0.0)
        return 0.0;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rngFor(dev)) >= nand_prob_[dev])
        return 0.0;
    std::uniform_int_distribution<unsigned> steps_dist(
        1, retry_.ecc_max_steps);
    const unsigned steps = steps_dist(rngFor(dev));
    const Seconds penalty =
        static_cast<double>(steps) * retry_.ecc_step_latency;
    stats_.nand_read_errors++;
    stats_.nand_retry_steps += steps;
    stats_.retry_time += penalty;
    return penalty;
}

FaultInjector::NvmeOutcome
FaultInjector::nvmeCommand(unsigned dev)
{
    NvmeOutcome out;
    if (!active_ || nvme_prob_[dev] <= 0.0)
        return out;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (unsigned attempt = 1; attempt <= retry_.nvme_max_attempts;
         attempt++) {
        if (u(rngFor(dev)) >= nvme_prob_[dev])
            return out;  // this attempt completed
        stats_.nvme_timeouts++;
        if (attempt == retry_.nvme_max_attempts) {
            out.failed = true;  // retries exhausted
            stats_.nvme_failures++;
            return out;
        }
        const Seconds delay =
            retry_.nvme_timeout + retry_.backoffDelay(attempt);
        out.extra_latency += delay;
        out.retries++;
        stats_.nvme_retries++;
        stats_.retry_time += delay;
    }
    return out;
}

double
FaultInjector::nandErrorProbability(unsigned dev) const
{
    return active_ ? nand_prob_.at(dev) : 0.0;
}

double
FaultInjector::nvmeTimeoutProbability(unsigned dev) const
{
    return active_ ? nvme_prob_.at(dev) : 0.0;
}

double
FaultInjector::linkDerate(unsigned dev, Seconds now) const
{
    double derate = 1.0;
    for (const FaultEvent &ev : degrades_) {
        if (ev.device == kUplinkTarget)
            continue;
        if ((ev.device == kAllDevices || ev.device == dev) &&
            now >= ev.at) {
            derate *= ev.bw_multiplier;
        }
    }
    return derate;
}

double
FaultInjector::uplinkDerate(Seconds now) const
{
    double derate = 1.0;
    for (const FaultEvent &ev : degrades_) {
        if (ev.device == kUplinkTarget && now >= ev.at)
            derate *= ev.bw_multiplier;
    }
    return derate;
}

bool
FaultInjector::deviceFailed(unsigned dev, Seconds now) const
{
    return active_ && now >= fail_at_.at(dev);
}

Seconds
FaultInjector::deviceFailTime(unsigned dev) const
{
    if (!active_)
        return std::numeric_limits<Seconds>::infinity();
    return fail_at_.at(dev);
}

unsigned
FaultInjector::survivingDevices(Seconds now) const
{
    if (!active_)
        return num_devices_;
    unsigned alive = 0;
    for (unsigned d = 0; d < num_devices_; d++) {
        if (!deviceFailed(d, now))
            alive++;
    }
    return alive;
}

std::vector<Seconds>
FaultInjector::eventTimes() const
{
    std::vector<Seconds> times;
    for (Seconds t : fail_at_) {
        if (std::isfinite(t))
            times.push_back(t);
    }
    for (const FaultEvent &ev : degrades_)
        times.push_back(ev.at);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
}

}  // namespace hilos
