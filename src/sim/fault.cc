#include "sim/fault.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace hilos {

bool
isHostScope(FaultKind kind)
{
    return kind == FaultKind::HostFail ||
           kind == FaultKind::HostLinkDegrade ||
           kind == FaultKind::HostStall;
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::NandReadError:
        return "nand-read-error";
      case FaultKind::NvmeTimeout:
        return "nvme-timeout";
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::DeviceFail:
        return "device-fail";
      case FaultKind::HostFail:
        return "host-fail";
      case FaultKind::HostLinkDegrade:
        return "host-link-degrade";
      case FaultKind::HostStall:
        return "host-stall";
    }
    return "unknown";
}

Seconds
RetryPolicy::backoffDelay(unsigned attempt) const
{
    HILOS_ASSERT(attempt >= 1, "backoff attempt is 1-based");
    Seconds delay = backoff_base;
    for (unsigned i = 1; i < attempt; i++) {
        delay *= backoff_multiplier;
        if (delay >= backoff_cap)
            return backoff_cap;
    }
    return std::min(delay, backoff_cap);
}

Seconds
RetryPolicy::expectedNvmePenalty(double timeout_prob) const
{
    if (timeout_prob <= 0.0)
        return 0.0;
    HILOS_ASSERT(timeout_prob <= 1.0, "invalid timeout probability");
    // Attempt k (1-based) happens with probability p^k of the previous
    // k attempts all timing out; each timeout pays the command timeout
    // plus the k-th backoff delay before re-issue.
    Seconds expected = 0.0;
    double p_k = 1.0;
    for (unsigned k = 1; k < nvme_max_attempts; k++) {
        p_k *= timeout_prob;
        expected += p_k * (nvme_timeout + backoffDelay(k));
    }
    return expected;
}

Seconds
RetryPolicy::expectedEccPenalty(double error_prob) const
{
    if (error_prob <= 0.0)
        return 0.0;
    HILOS_ASSERT(error_prob <= 1.0, "invalid ECC error probability");
    // Ladder depth is drawn uniformly in [1, ecc_max_steps].
    const double mean_steps =
        (1.0 + static_cast<double>(ecc_max_steps)) / 2.0;
    return error_prob * mean_steps * ecc_step_latency;
}

FaultPlan &
FaultPlan::addNandReadError(double probability, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::NandReadError;
    ev.device = device;
    ev.probability = probability;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addNvmeTimeout(double probability, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::NvmeTimeout;
    ev.device = device;
    ev.probability = probability;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addLinkDegrade(Seconds at, double bw_multiplier,
                          unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::LinkDegrade;
    ev.device = device;
    ev.at = at;
    ev.bw_multiplier = bw_multiplier;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addUplinkDegrade(Seconds at, double bw_multiplier)
{
    return addLinkDegrade(at, bw_multiplier, kUplinkTarget);
}

FaultPlan &
FaultPlan::addDeviceFailure(Seconds at, unsigned device)
{
    FaultEvent ev;
    ev.kind = FaultKind::DeviceFail;
    ev.device = device;
    ev.at = at;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addFleetFailure(Seconds at)
{
    return addDeviceFailure(at, kAllDevices);
}

FaultPlan &
FaultPlan::addHostFailure(Seconds at, unsigned host)
{
    FaultEvent ev;
    ev.kind = FaultKind::HostFail;
    ev.device = host;
    ev.at = at;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addHostLinkDegrade(Seconds at, double bw_multiplier)
{
    FaultEvent ev;
    ev.kind = FaultKind::HostLinkDegrade;
    ev.device = kAllDevices;
    ev.at = at;
    ev.bw_multiplier = bw_multiplier;
    events.push_back(ev);
    return *this;
}

FaultPlan &
FaultPlan::addHostStall(Seconds at, Seconds duration, unsigned host)
{
    FaultEvent ev;
    ev.kind = FaultKind::HostStall;
    ev.device = host;
    ev.at = at;
    ev.duration = duration;
    events.push_back(ev);
    return *this;
}

std::vector<std::string>
FaultPlan::validate() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &ev = events[i];
        const std::string ref = "event[" + std::to_string(i) + "] " +
                                faultKindName(ev.kind);
        const bool probabilistic = ev.kind == FaultKind::NandReadError ||
                                   ev.kind == FaultKind::NvmeTimeout;
        const bool degrade = ev.kind == FaultKind::LinkDegrade ||
                             ev.kind == FaultKind::HostLinkDegrade;
        if (probabilistic &&
            !(ev.probability >= 0.0 && ev.probability <= 1.0)) {
            out.push_back(ref + ": probability " +
                          std::to_string(ev.probability) +
                          " is outside [0, 1]");
        }
        if (degrade &&
            !(ev.bw_multiplier > 0.0 && ev.bw_multiplier <= 1.0)) {
            out.push_back(ref + ": bandwidth multiplier " +
                          std::to_string(ev.bw_multiplier) +
                          " is outside (0, 1]");
        }
        if (!(std::isfinite(ev.at) && ev.at >= 0.0)) {
            out.push_back(ref + ": activation time " +
                          std::to_string(ev.at) +
                          " is not finite and non-negative");
        }
        if (ev.kind == FaultKind::HostStall &&
            !(std::isfinite(ev.duration) && ev.duration >= 0.0)) {
            out.push_back(ref + ": stall duration " +
                          std::to_string(ev.duration) +
                          " is not finite and non-negative");
        }
        if (ev.device != kAllDevices && ev.device != kUplinkTarget &&
            ev.device >= kMaxRealTarget) {
            out.push_back(ref + ": target " + std::to_string(ev.device) +
                          " is inside the reserved sentinel gap [" +
                          std::to_string(kMaxRealTarget) + ", " +
                          std::to_string(kUplinkTarget) + ")");
        }
        if (isHostScope(ev.kind) && ev.device == kUplinkTarget) {
            out.push_back(ref + ": the chassis-uplink sentinel is not a "
                                "valid host target");
        }
        if (ev.kind == FaultKind::HostLinkDegrade &&
            ev.device != kAllDevices) {
            out.push_back(ref + ": the inter-host interconnect is "
                                "shared; a per-host target " +
                          std::to_string(ev.device) + " is meaningless");
        }
    }
    return out;
}

FaultPlan
FaultPlan::deviceScope() const
{
    FaultPlan out;
    out.seed = seed;
    out.retry = retry;
    for (const FaultEvent &ev : events) {
        if (!isHostScope(ev.kind))
            out.events.push_back(ev);
    }
    return out;
}

bool
FaultPlan::hasHostEvents() const
{
    for (const FaultEvent &ev : events) {
        if (isHostScope(ev.kind))
            return true;
    }
    return false;
}

namespace {

std::vector<std::string>
splitClauses(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : spec) {
        if (c == ';' || c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

double
parseDouble(const std::string &s, const std::string &clause)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0')
        HILOS_FATAL("fault plan: bad number '", s, "' in '", clause, "'");
    return v;
}

unsigned
parseDevice(const std::string &s, const std::string &clause)
{
    if (s == "all")
        return kAllDevices;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        HILOS_FATAL("fault plan: bad device '", s, "' in '", clause, "'");
    return static_cast<unsigned>(v);
}

/** Split "value[:dev]" into the value string and a device target. */
std::pair<std::string, unsigned>
splitDeviceSuffix(const std::string &s, const std::string &clause)
{
    const auto colon = s.find(':');
    if (colon == std::string::npos)
        return {s, kAllDevices};
    return {s.substr(0, colon),
            parseDevice(s.substr(colon + 1), clause)};
}

}  // namespace

FaultPlan
parseFaultPlan(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &clause : splitClauses(spec)) {
        const auto eq = clause.find('=');
        if (eq == std::string::npos)
            HILOS_FATAL("fault plan: missing '=' in '", clause, "'");
        std::string key = clause.substr(0, eq);
        const std::string value = clause.substr(eq + 1);
        Seconds at = 0.0;
        const auto at_pos = key.find('@');
        if (at_pos != std::string::npos) {
            at = parseDouble(key.substr(at_pos + 1), clause);
            key = key.substr(0, at_pos);
        }

        if (key == "seed") {
            plan.seed = static_cast<std::uint64_t>(
                std::strtoull(value.c_str(), nullptr, 10));
        } else if (key == "nand-err") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addNandReadError(parseDouble(v, clause), dev);
        } else if (key == "nvme-timeout") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addNvmeTimeout(parseDouble(v, clause), dev);
        } else if (key == "degrade") {
            const auto [v, dev] = splitDeviceSuffix(value, clause);
            plan.addLinkDegrade(at, parseDouble(v, clause), dev);
        } else if (key == "uplink") {
            plan.addUplinkDegrade(at, parseDouble(value, clause));
        } else if (key == "fail") {
            plan.addDeviceFailure(at, parseDevice(value, clause));
        } else if (key == "host-fail") {
            plan.addHostFailure(at, parseDevice(value, clause));
        } else if (key == "host-degrade") {
            plan.addHostLinkDegrade(at, parseDouble(value, clause));
        } else if (key == "host-stall") {
            const auto [v, host] = splitDeviceSuffix(value, clause);
            plan.addHostStall(at, parseDouble(v, clause), host);
        } else {
            HILOS_FATAL("fault plan: unknown clause '", clause,
                        "' (seed, nand-err, nvme-timeout, degrade, "
                        "uplink, fail, host-fail, host-degrade, "
                        "host-stall)");
        }
    }
    return plan;
}

bool
FaultStats::any() const
{
    return nand_read_errors > 0 || nvme_timeouts > 0 ||
           nvme_failures > 0 || redispatched_slices > 0 ||
           retry_time > 0.0;
}

FaultInjector::FaultInjector() = default;

FaultInjector::FaultInjector(const FaultPlan &plan, unsigned num_devices)
    : active_(!plan.empty()), num_devices_(num_devices),
      retry_(plan.retry),
      nand_prob_(num_devices, 0.0), nvme_prob_(num_devices, 0.0),
      fail_at_(num_devices, std::numeric_limits<Seconds>::infinity())
{
    HILOS_ASSERT(num_devices >= 1, "fault injector needs >= 1 device");
    const std::vector<std::string> diags = plan.validate();
    if (!diags.empty())
        HILOS_FATAL("invalid fault plan: ", diags.front());
    for (const FaultEvent &ev : plan.events) {
        // Host-scope events are HostFaultView's business; a device
        // injector sees only the device-scope subset.
        if (isHostScope(ev.kind))
            continue;
        const bool fleet_wide = ev.device == kAllDevices;
        HILOS_ASSERT(fleet_wide || ev.device == kUplinkTarget ||
                         ev.device < num_devices,
                     "fault event targets device ", ev.device,
                     " but the fleet has ", num_devices);
        switch (ev.kind) {
          case FaultKind::NandReadError:
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d) {
                    nand_prob_[d] = std::min(
                        1.0, nand_prob_[d] + ev.probability);
                }
            }
            break;
          case FaultKind::NvmeTimeout:
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d) {
                    nvme_prob_[d] = std::min(
                        1.0, nvme_prob_[d] + ev.probability);
                }
            }
            break;
          case FaultKind::LinkDegrade:
            degrades_.push_back(ev);
            break;
          case FaultKind::DeviceFail:
            for (unsigned d = 0; d < num_devices; d++) {
                if (fleet_wide || ev.device == d)
                    fail_at_[d] = std::min(fail_at_[d], ev.at);
            }
            break;
          default:
            break;
        }
    }
    if (active_) {
        // One independent stream per device: draws on one device never
        // shift another device's sequence (splitmix-style seeding).
        rng_.reserve(num_devices);
        for (unsigned d = 0; d < num_devices; d++) {
            std::uint64_t z =
                plan.seed + 0x9e3779b97f4a7c15ull *
                                (static_cast<std::uint64_t>(d) + 1);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            rng_.emplace_back(z ^ (z >> 31));
        }
    }
}

std::mt19937_64 &
FaultInjector::rngFor(unsigned dev)
{
    HILOS_ASSERT(dev < rng_.size(), "no RNG stream for device ", dev);
    return rng_[dev];
}

Seconds
FaultInjector::nandReadPenalty(unsigned dev)
{
    if (!active_ || nand_prob_[dev] <= 0.0)
        return 0.0;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rngFor(dev)) >= nand_prob_[dev])
        return 0.0;
    std::uniform_int_distribution<unsigned> steps_dist(
        1, retry_.ecc_max_steps);
    const unsigned steps = steps_dist(rngFor(dev));
    const Seconds penalty =
        static_cast<double>(steps) * retry_.ecc_step_latency;
    stats_.nand_read_errors++;
    stats_.nand_retry_steps += steps;
    stats_.retry_time += penalty;
    return penalty;
}

FaultInjector::NvmeOutcome
FaultInjector::nvmeCommand(unsigned dev)
{
    NvmeOutcome out;
    if (!active_ || nvme_prob_[dev] <= 0.0)
        return out;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    for (unsigned attempt = 1; attempt <= retry_.nvme_max_attempts;
         attempt++) {
        if (u(rngFor(dev)) >= nvme_prob_[dev])
            return out;  // this attempt completed
        stats_.nvme_timeouts++;
        if (attempt == retry_.nvme_max_attempts) {
            out.failed = true;  // retries exhausted
            stats_.nvme_failures++;
            return out;
        }
        const Seconds delay =
            retry_.nvme_timeout + retry_.backoffDelay(attempt);
        out.extra_latency += delay;
        out.retries++;
        stats_.nvme_retries++;
        stats_.retry_time += delay;
    }
    return out;
}

double
FaultInjector::nandErrorProbability(unsigned dev) const
{
    return active_ ? nand_prob_.at(dev) : 0.0;
}

double
FaultInjector::nvmeTimeoutProbability(unsigned dev) const
{
    return active_ ? nvme_prob_.at(dev) : 0.0;
}

double
FaultInjector::linkDerate(unsigned dev, Seconds now) const
{
    double derate = 1.0;
    for (const FaultEvent &ev : degrades_) {
        if (ev.device == kUplinkTarget)
            continue;
        if ((ev.device == kAllDevices || ev.device == dev) &&
            now >= ev.at) {
            derate *= ev.bw_multiplier;
        }
    }
    return derate;
}

double
FaultInjector::uplinkDerate(Seconds now) const
{
    double derate = 1.0;
    for (const FaultEvent &ev : degrades_) {
        if (ev.device == kUplinkTarget && now >= ev.at)
            derate *= ev.bw_multiplier;
    }
    return derate;
}

bool
FaultInjector::deviceFailed(unsigned dev, Seconds now) const
{
    return active_ && now >= fail_at_.at(dev);
}

Seconds
FaultInjector::deviceFailTime(unsigned dev) const
{
    if (!active_)
        return std::numeric_limits<Seconds>::infinity();
    return fail_at_.at(dev);
}

unsigned
FaultInjector::survivingDevices(Seconds now) const
{
    if (!active_)
        return num_devices_;
    unsigned alive = 0;
    for (unsigned d = 0; d < num_devices_; d++) {
        if (!deviceFailed(d, now))
            alive++;
    }
    return alive;
}

std::vector<Seconds>
FaultInjector::eventTimes() const
{
    std::vector<Seconds> times;
    for (Seconds t : fail_at_) {
        if (std::isfinite(t))
            times.push_back(t);
    }
    for (const FaultEvent &ev : degrades_)
        times.push_back(ev.at);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
}

HostFaultView::HostFaultView() = default;

HostFaultView::HostFaultView(const FaultPlan &plan, unsigned num_hosts)
    : num_hosts_(num_hosts),
      fail_at_(num_hosts, std::numeric_limits<Seconds>::infinity())
{
    HILOS_ASSERT(num_hosts >= 1, "host fault view needs >= 1 host");
    const std::vector<std::string> diags = plan.validate();
    if (!diags.empty())
        HILOS_FATAL("invalid fault plan: ", diags.front());
    for (const FaultEvent &ev : plan.events) {
        if (!isHostScope(ev.kind))
            continue;
        active_ = true;
        const bool fleet_wide = ev.device == kAllDevices;
        HILOS_ASSERT(fleet_wide || ev.device < num_hosts,
                     "host event targets host ", ev.device,
                     " but the fleet has ", num_hosts, " hosts");
        switch (ev.kind) {
          case FaultKind::HostFail:
            for (unsigned h = 0; h < num_hosts; h++) {
                if (fleet_wide || ev.device == h)
                    fail_at_[h] = std::min(fail_at_[h], ev.at);
            }
            break;
          case FaultKind::HostLinkDegrade:
            degrades_.push_back(ev);
            break;
          case FaultKind::HostStall:
            if (ev.duration <= 0.0)
                break;  // a zero-length stall is unobservable
            for (unsigned h = 0; h < num_hosts; h++) {
                if (!fleet_wide && ev.device != h)
                    continue;
                StallWindow w;
                w.host = h;
                w.begin = ev.at;
                const Seconds budget = ladderBudget(plan.retry);
                w.escalated = ev.duration > budget;
                w.end = ev.at + (w.escalated
                                     ? budget
                                     : probeRecovery(plan.retry,
                                                     ev.duration));
                stalls_.push_back(w);
                if (w.escalated)
                    fail_at_[h] = std::min(fail_at_[h], w.end);
            }
            break;
          default:
            break;
        }
    }
}

bool
HostFaultView::hostFailed(unsigned host, Seconds now) const
{
    return active_ && now >= fail_at_.at(host);
}

bool
HostFaultView::hostStalled(unsigned host, Seconds now) const
{
    if (!active_ || hostFailed(host, now))
        return false;
    for (const StallWindow &w : stalls_) {
        if (w.host == host && now >= w.begin && now < w.end)
            return true;
    }
    return false;
}

Seconds
HostFaultView::hostFailTime(unsigned host) const
{
    if (!active_)
        return std::numeric_limits<Seconds>::infinity();
    return fail_at_.at(host);
}

unsigned
HostFaultView::servingHosts(Seconds now) const
{
    if (!active_)
        return num_hosts_;
    unsigned serving = 0;
    for (unsigned h = 0; h < num_hosts_; h++) {
        if (!hostFailed(h, now) && !hostStalled(h, now))
            serving++;
    }
    return serving;
}

unsigned
HostFaultView::stalledHosts(Seconds now) const
{
    if (!active_)
        return 0;
    unsigned stalled = 0;
    for (unsigned h = 0; h < num_hosts_; h++) {
        if (hostStalled(h, now))
            stalled++;
    }
    return stalled;
}

double
HostFaultView::interHostDerate(Seconds now) const
{
    double derate = 1.0;
    for (const FaultEvent &ev : degrades_) {
        if (now >= ev.at)
            derate *= ev.bw_multiplier;
    }
    return derate;
}

std::vector<Seconds>
HostFaultView::eventTimes() const
{
    std::vector<Seconds> times;
    for (Seconds t : fail_at_) {
        if (std::isfinite(t))
            times.push_back(t);
    }
    for (const StallWindow &w : stalls_) {
        times.push_back(w.begin);
        times.push_back(w.end);
    }
    for (const FaultEvent &ev : degrades_)
        times.push_back(ev.at);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    return times;
}

Seconds
HostFaultView::ladderBudget(const RetryPolicy &retry)
{
    Seconds budget = 0.0;
    for (unsigned k = 1; k < retry.nvme_max_attempts; k++)
        budget += retry.nvme_timeout + retry.backoffDelay(k);
    return budget;
}

Seconds
HostFaultView::probeRecovery(const RetryPolicy &retry, Seconds duration)
{
    Seconds probe = 0.0;
    for (unsigned k = 1; k < retry.nvme_max_attempts; k++) {
        probe += retry.nvme_timeout + retry.backoffDelay(k);
        if (probe >= duration)
            return probe;
    }
    return probe;  // ladder exhausted: caller escalates instead
}

}  // namespace hilos
