/**
 * @file
 * PCIe link model: generation/lane bandwidth table, protocol efficiency,
 * and a link type that layers queueing on a BandwidthResource.
 */

#ifndef HILOS_INTERCONNECT_PCIE_H_
#define HILOS_INTERCONNECT_PCIE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "sim/bandwidth.h"

namespace hilos {

/** PCI Express generation. */
enum class PcieGen {
    Gen3,  ///< 8 GT/s, 128b/130b
    Gen4,  ///< 16 GT/s
    Gen5,  ///< 32 GT/s
};

/** Raw per-lane data rate (after line coding, before protocol). */
Bandwidth pcieLaneRate(PcieGen gen);

/**
 * Effective payload bandwidth of a link: lanes x lane rate x protocol
 * efficiency (TLP headers, flow control; ~0.85 for large payloads).
 */
Bandwidth pcieEffectiveBandwidth(PcieGen gen, unsigned lanes,
                                 double efficiency = 0.85);

/** Human-readable link name like "pcie4x16". */
std::string pcieLinkName(PcieGen gen, unsigned lanes);

/**
 * A PCIe link with FIFO queueing and utilisation stats.
 */
class PcieLink
{
  public:
    /**
     * @param name reporting name
     * @param gen PCIe generation
     * @param lanes lane count (1..16)
     * @param efficiency protocol efficiency in (0, 1]
     */
    PcieLink(std::string name, PcieGen gen, unsigned lanes,
             double efficiency = 0.85);

    /** Queue a transfer arriving at `start`; returns completion time. */
    Seconds transfer(Seconds start, std::uint64_t bytes);

    /** Idle-channel service time of `bytes`. */
    Seconds serviceTime(std::uint64_t bytes) const;

    /**
     * Derate the link by `bw_multiplier` in (0, 1] (fault-injected
     * retraining at reduced width/speed). Compounds on repeat.
     */
    void derate(double bw_multiplier);

    /** Current cumulative derating multiplier (1 when healthy). */
    double derating() const { return derate_; }

    Bandwidth bandwidth() const { return resource_.rate(); }
    PcieGen gen() const { return gen_; }
    unsigned lanes() const { return lanes_; }
    const std::string &name() const { return resource_.name(); }
    BandwidthResource &resource() { return resource_; }
    const BandwidthResource &resource() const { return resource_; }

    void reset() { resource_.reset(); }

  private:
    PcieGen gen_;
    unsigned lanes_;
    double derate_ = 1.0;
    BandwidthResource resource_;
};

}  // namespace hilos

#endif  // HILOS_INTERCONNECT_PCIE_H_
