#include "interconnect/pcie.h"

#include <utility>

#include "common/logging.h"

namespace hilos {

Bandwidth
pcieLaneRate(PcieGen gen)
{
    switch (gen) {
      case PcieGen::Gen3:
        return 0.985 * GB;  // 8 GT/s x 128/130
      case PcieGen::Gen4:
        return 1.969 * GB;
      case PcieGen::Gen5:
        return 3.938 * GB;
    }
    HILOS_PANIC("unknown PCIe generation");
}

Bandwidth
pcieEffectiveBandwidth(PcieGen gen, unsigned lanes, double efficiency)
{
    HILOS_ASSERT(lanes >= 1 && lanes <= 16, "invalid lane count: ", lanes);
    HILOS_ASSERT(efficiency > 0.0 && efficiency <= 1.0,
                 "invalid efficiency: ", efficiency);
    return pcieLaneRate(gen) * static_cast<double>(lanes) * efficiency;
}

std::string
pcieLinkName(PcieGen gen, unsigned lanes)
{
    const char *g = gen == PcieGen::Gen3   ? "pcie3"
                    : gen == PcieGen::Gen4 ? "pcie4"
                                           : "pcie5";
    return std::string(g) + "x" + std::to_string(lanes);
}

PcieLink::PcieLink(std::string name, PcieGen gen, unsigned lanes,
                   double efficiency)
    : gen_(gen), lanes_(lanes),
      resource_(std::move(name),
                pcieEffectiveBandwidth(gen, lanes, efficiency),
                usec(1.0))  // DMA setup / doorbell latency
{
}

Seconds
PcieLink::transfer(Seconds start, std::uint64_t bytes)
{
    return resource_.transfer(start, bytes);
}

Seconds
PcieLink::serviceTime(std::uint64_t bytes) const
{
    return resource_.serviceTime(bytes);
}

void
PcieLink::derate(double bw_multiplier)
{
    HILOS_ASSERT(bw_multiplier > 0.0 && bw_multiplier <= 1.0,
                 "link derate must be in (0, 1]: ", bw_multiplier);
    derate_ *= bw_multiplier;
    resource_.setRate(resource_.rate() * bw_multiplier);
}

}  // namespace hilos
