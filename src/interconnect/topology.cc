#include "interconnect/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Bandwidth
PciePath::bandwidth() const
{
    HILOS_ASSERT(!links.empty(), "empty PCIe path");
    Bandwidth best = links.front()->bandwidth();
    for (const auto *l : links)
        best = std::min(best, l->bandwidth());
    return best;
}

Seconds
PciePath::transfer(Seconds start, std::uint64_t bytes)
{
    HILOS_ASSERT(!links.empty(), "empty PCIe path");
    Seconds done = start;
    for (auto *l : links)
        done = std::max(done, l->transfer(start, bytes));
    return done;
}

Seconds
PciePath::serviceTime(std::uint64_t bytes) const
{
    HILOS_ASSERT(!links.empty(), "empty PCIe path");
    Seconds worst = 0.0;
    for (const auto *l : links)
        worst = std::max(worst, l->serviceTime(bytes));
    return worst;
}

std::size_t
PcieTopology::newLink(const std::string &name, PcieGen gen, unsigned lanes)
{
    links_.push_back(std::make_unique<PcieLink>(name, gen, lanes));
    return links_.size() - 1;
}

std::size_t
PcieTopology::addHostLink(const std::string &name, PcieGen gen,
                          unsigned lanes)
{
    return newLink(name, gen, lanes);
}

std::size_t
PcieTopology::addSwitch(const std::string &name, std::size_t uplink_idx)
{
    HILOS_ASSERT(uplink_idx < links_.size(), "bad uplink for switch ",
                 name);
    switches_.push_back(Switch{uplink_idx});
    return switches_.size() - 1;
}

std::size_t
PcieTopology::addSwitchPort(std::size_t switch_id, const std::string &name,
                            PcieGen gen, unsigned lanes)
{
    HILOS_ASSERT(switch_id < switches_.size(), "bad switch id");
    return newLink(name, gen, lanes);
}

std::size_t
PcieTopology::addSwitchedDevice(std::size_t switch_id,
                                std::size_t port_link_idx,
                                const std::string &name, PcieGen gen,
                                unsigned lanes)
{
    HILOS_ASSERT(switch_id < switches_.size(), "bad switch id");
    HILOS_ASSERT(port_link_idx < links_.size(), "bad port link");
    const std::size_t dev_link = newLink(name, gen, lanes);
    devices_.push_back(SwitchedDevice{switch_id, port_link_idx, dev_link});
    return devices_.size() - 1;
}

PciePath
PcieTopology::hostPath(std::size_t idx)
{
    HILOS_ASSERT(idx < links_.size(), "bad host link index");
    return PciePath{{links_[idx].get()}};
}

PciePath
PcieTopology::switchedPath(std::size_t dev_id)
{
    HILOS_ASSERT(dev_id < devices_.size(), "bad device id");
    const SwitchedDevice &d = devices_[dev_id];
    const Switch &sw = switches_[d.switch_id];
    return PciePath{{links_[sw.uplink].get(), links_[d.port_link].get(),
                     links_[d.device_link].get()}};
}

void
PcieTopology::reset()
{
    for (auto &l : links_)
        l->reset();
}

std::unique_ptr<PcieTopology>
buildConventionalTopology(unsigned ssds)
{
    auto topo = std::make_unique<PcieTopology>();
    topo->addHostLink("gpu", PcieGen::Gen4, 16);
    for (unsigned i = 0; i < ssds; i++) {
        topo->addHostLink("ssd" + std::to_string(i), PcieGen::Gen4, 4);
    }
    return topo;
}

ChassisTopology
buildChassisTopology(unsigned smartssds)
{
    HILOS_ASSERT(smartssds >= 1 && smartssds <= 16,
                 "chassis supports 1..16 SmartSSDs, got ", smartssds);
    ChassisTopology out;
    out.fabric = std::make_unique<PcieTopology>();
    out.gpu_link = out.fabric->addHostLink("gpu", PcieGen::Gen4, 16);
    const std::size_t uplink =
        out.fabric->addHostLink("chassis-uplink", PcieGen::Gen4, 16);
    const std::size_t sw = out.fabric->addSwitch("falcon4109", uplink);

    const unsigned ports = (smartssds + 1) / 2;
    std::vector<std::size_t> port_links;
    for (unsigned p = 0; p < ports; p++) {
        port_links.push_back(out.fabric->addSwitchPort(
            sw, "port" + std::to_string(p), PcieGen::Gen3, 8));
    }
    for (unsigned i = 0; i < smartssds; i++) {
        const std::size_t port = port_links[i / 2];
        out.smartssd_devices.push_back(out.fabric->addSwitchedDevice(
            sw, port, "smartssd" + std::to_string(i), PcieGen::Gen3, 4));
    }
    return out;
}

}  // namespace hilos
