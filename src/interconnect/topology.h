/**
 * @file
 * PCIe topology: host root complex, expansion-chassis switch, and the
 * device endpoints hanging off them (Figure 3 / §5.3 of the paper).
 *
 * Two canonical topologies:
 *  - Conventional: GPU on a x16 gen4 host link; four SSDs each on a
 *    dedicated x4 gen4 host link (16 host lanes total for storage).
 *  - NSP chassis: an H3 Falcon 4109-style switch on a x16 gen4 uplink,
 *    eight x8 downstream ports, two SmartSSDs (x4 gen3 each) per port.
 *    Each SmartSSD additionally has an *internal* P2P path between its
 *    SSD and FPGA that never touches the shared fabric.
 */

#ifndef HILOS_INTERCONNECT_TOPOLOGY_H_
#define HILOS_INTERCONNECT_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "interconnect/pcie.h"

namespace hilos {

/** A path from host memory to a device: the ordered links it crosses. */
struct PciePath {
    std::vector<PcieLink *> links;

    /** Min effective bandwidth along the path. */
    Bandwidth bandwidth() const;

    /**
     * Queue a transfer of `bytes` across every link on the path starting
     * at `start`; store-and-forward at switch granularity is ignored
     * (cut-through), so completion is the max of the per-link finishes.
     */
    Seconds transfer(Seconds start, std::uint64_t bytes);

    /** Idle-path service time. */
    Seconds serviceTime(std::uint64_t bytes) const;
};

/**
 * The PCIe fabric of one server.
 */
class PcieTopology
{
  public:
    PcieTopology() = default;

    /** Non-copyable (owns links referenced by paths). */
    PcieTopology(const PcieTopology &) = delete;
    PcieTopology &operator=(const PcieTopology &) = delete;

    /** Add a root-port link directly off the host. @return link index */
    std::size_t addHostLink(const std::string &name, PcieGen gen,
                            unsigned lanes);

    /**
     * Add a switch behind host link `uplink_idx`; downstream devices
     * attach with addSwitchedDevice.
     * @return switch id
     */
    std::size_t addSwitch(const std::string &name, std::size_t uplink_idx);

    /**
     * Attach a device below switch `switch_id` through a port link and a
     * device link (port links may be shared by passing the same
     * port_link index returned from addSwitchPort).
     */
    std::size_t addSwitchPort(std::size_t switch_id, const std::string &name,
                              PcieGen gen, unsigned lanes);
    std::size_t addSwitchedDevice(std::size_t switch_id,
                                  std::size_t port_link_idx,
                                  const std::string &name, PcieGen gen,
                                  unsigned lanes);

    /** Path from host to a direct device on host link `idx`. */
    PciePath hostPath(std::size_t idx);

    /** Path from host to switched device `dev_id`. */
    PciePath switchedPath(std::size_t dev_id);

    /** Access a link by index for stats inspection. */
    PcieLink &link(std::size_t idx) { return *links_.at(idx); }
    std::size_t linkCount() const { return links_.size(); }

    void reset();

  private:
    struct Switch {
        std::size_t uplink;
    };
    struct SwitchedDevice {
        std::size_t switch_id;
        std::size_t port_link;
        std::size_t device_link;
    };

    std::size_t newLink(const std::string &name, PcieGen gen,
                        unsigned lanes);

    std::vector<std::unique_ptr<PcieLink>> links_;
    std::vector<Switch> switches_;
    std::vector<SwitchedDevice> devices_;
};

/**
 * Build the conventional baseline fabric: GPU x16 gen4 + `ssds` x4 gen4
 * root ports. Link 0 is the GPU; links 1..ssds are the SSDs.
 */
std::unique_ptr<PcieTopology> buildConventionalTopology(unsigned ssds);

/**
 * Build the SmartSSD chassis fabric: GPU x16 gen4 (link 0), switch on a
 * x16 gen4 uplink, ceil(n/2) x8 gen3 ports, two SmartSSDs (x4 gen3) per
 * port. Returned device ids 0..n-1 map to SmartSSDs.
 */
struct ChassisTopology {
    std::unique_ptr<PcieTopology> fabric;
    std::size_t gpu_link = 0;
    std::vector<std::size_t> smartssd_devices;
};
ChassisTopology buildChassisTopology(unsigned smartssds);

}  // namespace hilos

#endif  // HILOS_INTERCONNECT_TOPOLOGY_H_
