/**
 * @file
 * Accelerator performance estimator (§5.1).
 *
 * The paper ships a cycle-count/clock-frequency performance estimator
 * for the attention kernel that achieves a 0.93 Pearson correlation
 * against hardware across 4K-32K sequence lengths. This module is that
 * estimator: per-unit cycle counts for the four pipelined units plus a
 * DRAM-traffic bound, calibrated so the d_group = 1/4/5 kernels land on
 * the published 11.9 / 46.8 / 56.3 GFLOPS peaks (Table 3).
 */

#ifndef HILOS_ACCEL_CYCLE_MODEL_H_
#define HILOS_ACCEL_CYCLE_MODEL_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hilos {

/** Hardware parameters of the synthesised kernel. */
struct CycleModelConfig {
    Hertz clock_hz = 296.05e6;         ///< achieved kernel clock (§6.2)
    Bandwidth dram_bandwidth = gbps(19.2);  ///< 1ch DDR4-2400 on the FPGA
    double dram_efficiency = 0.62;     ///< achieved fraction (calibrated)
    std::size_t mac_units = 128;       ///< per GEMV unit
    std::size_t exp_unroll = 2;        ///< exponential-unit unroll (§5.4)
    std::size_t block_tokens = 128;
    std::size_t burst_elems = 32;      ///< AXI burst width in halves
    std::size_t pipeline_stages = 4;   ///< dataflow depth (fill/drain)
};

/** Per-unit cycle breakdown for one kernel invocation. */
struct CycleBreakdown {
    Cycles qk_gemv_cycles = 0;
    Cycles softmax_stats_cycles = 0;
    Cycles softmax_norm_cycles = 0;
    Cycles sv_gemv_cycles = 0;
    Cycles dram_cycles = 0;  ///< traffic bound expressed in cycles

    /** The binding constraint in cycles per invocation. */
    Cycles bottleneckCycles() const;
    /** Name of the binding unit ("dram", "qk_gemv", ...). */
    std::string bottleneckName() const;
};

/**
 * Analytic kernel-time estimator.
 */
class CycleModel
{
  public:
    explicit CycleModel(const CycleModelConfig &cfg);

    /**
     * Cycle breakdown for attention over `s` context tokens with head
     * dimension `d` and `d_group` grouped queries.
     */
    CycleBreakdown breakdown(std::size_t s, std::size_t d,
                             std::size_t d_group) const;

    /** Estimated kernel execution time. */
    Seconds kernelTime(std::size_t s, std::size_t d,
                       std::size_t d_group) const;

    /** Floating-point operations for the invocation. */
    Flops kernelFlops(std::size_t s, std::size_t d,
                      std::size_t d_group) const;

    /** Achieved GFLOPS at steady state (long s). */
    double gflops(std::size_t s, std::size_t d, std::size_t d_group) const;

    /** KV-cache consumption rate in bytes/second (Fig. 12a). */
    Bandwidth kvBytesPerSec(std::size_t s, std::size_t d,
                            std::size_t d_group) const;

    /** DRAM traffic in bytes for one invocation (incl. score traffic). */
    Bytes dramTrafficBytes(std::size_t s, std::size_t d,
                           std::size_t d_group) const;

    const CycleModelConfig &config() const { return cfg_; }

  private:
    std::size_t paddedLen(std::size_t s) const;

    CycleModelConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_ACCEL_CYCLE_MODEL_H_
