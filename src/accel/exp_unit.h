/**
 * @file
 * Hardware exponential unit.
 *
 * The softmax pipelines consume most of the design's DSPs on
 * floating-point exponentials (Table 3, §7.2); on the FPGA these are
 * not libm calls but a fixed-depth datapath: range reduction to
 * 2^i * 2^f, an integer exponent path, and a low-degree polynomial for
 * the fractional part — the structure the Vitis HLS math library maps
 * to DSP slices. This module implements that datapath bit-for-bit in
 * software so its accuracy can be characterised against std::exp and
 * its DSP footprint justified in the resource model.
 */

#ifndef HILOS_ACCEL_EXP_UNIT_H_
#define HILOS_ACCEL_EXP_UNIT_H_

#include <cstddef>

namespace hilos {

/**
 * Hardware-style exp(x): range-reduced base-2 evaluation with a
 * degree-5 polynomial fraction path. Matches std::exp to ~1e-7
 * relative over the softmax-relevant range and saturates cleanly
 * outside it (no NaN/Inf datapath in the unit).
 */
float hwExp(float x);

/**
 * DSP slices one pipelined hwExp lane consumes (multipliers of the
 * polynomial and the range-reduction product), used by the resource
 * accounting.
 */
constexpr std::size_t kExpUnitDsps = 7;

/**
 * Maximum relative error of hwExp against std::exp over [lo, hi],
 * sampled at `samples` points (test/characterisation helper).
 */
double hwExpMaxRelError(float lo, float hi, std::size_t samples);

}  // namespace hilos

#endif  // HILOS_ACCEL_EXP_UNIT_H_
