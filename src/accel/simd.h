/**
 * @file
 * Runtime SIMD dispatch for the functional accelerator kernels.
 *
 * The FPGA-mirroring kernels (gemv, softmax, attention_kernel) carry an
 * AVX2+F16C fast path next to their scalar reference loops. Dispatch is
 * resolved once at startup from CPUID and can be overridden — by tests
 * and benches through setSimdLevel(), or externally with the HILOS_SIMD
 * environment variable ("scalar" or "avx2").
 *
 * Contract: every vector path is bit-identical to its scalar loop for
 * non-NaN data. The vector code therefore never uses FMA (a fused
 * multiply-add rounds once where the scalar loop rounds twice); it
 * vectorises across independent output lanes, keeping each lane's
 * operation sequence exactly the scalar one, and relies on VCVTPH2PS
 * being the same exact widening as Half::halfToFloat (both are checked
 * by differential tests, the conversion exhaustively over all 65536
 * half patterns).
 */

#ifndef HILOS_ACCEL_SIMD_H_
#define HILOS_ACCEL_SIMD_H_

#include <cstddef>

#include "common/half.h"

namespace hilos {

/** Instruction-set tiers the kernels dispatch over. */
enum class SimdLevel {
    Scalar,  ///< portable reference loops
    Avx2,    ///< AVX2 + F16C lanes (x86-64 only)
};

/** Human-readable tier name ("scalar" / "avx2"). */
const char *simdLevelName(SimdLevel level);

/** True when this CPU (and build) can execute `level`. */
bool simdLevelSupported(SimdLevel level);

/**
 * The tier kernels currently dispatch to. Defaults to the best
 * supported tier, downgraded by HILOS_SIMD=scalar if set.
 */
SimdLevel activeSimdLevel();

/**
 * Override the active tier (tests pin both sides of a differential
 * check; benches measure each tier in one process). Asserts the level
 * is supported. Not thread-safe against concurrently running kernels.
 */
void setSimdLevel(SimdLevel level);

/**
 * Batch F16C widening: out[i] = float(in[i]) via VCVTPH2PS, any n.
 * Only callable when Avx2 is supported; exists so tests can compare
 * the hardware conversion against Half::halfToFloat exhaustively.
 */
void cvtHalfToFloatAvx2(const Half *in, float *out, std::size_t n);

}  // namespace hilos

#endif  // HILOS_ACCEL_SIMD_H_
