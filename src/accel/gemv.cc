#include "accel/gemv.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

HalfMatrixView
viewOf(const std::vector<Half> &buf, std::size_t rows, std::size_t cols)
{
    HILOS_ASSERT(buf.size() == rows * cols, "view shape mismatch: ",
                 buf.size(), " != ", rows, "x", cols);
    return HalfMatrixView{buf.data(), rows, cols};
}

void
blockTranspose(const HalfMatrixView &src, std::size_t row0,
               std::size_t col0, std::size_t n, std::size_t m,
               std::vector<Half> &dst)
{
    HILOS_ASSERT(row0 + n <= src.rows && col0 + m <= src.cols,
                 "block transpose out of range");
    dst.resize(m * n);
    for (std::size_t r = 0; r < n; r++) {
        for (std::size_t c = 0; c < m; c++) {
            dst[c * n + r] = src.at(row0 + r, col0 + c);
        }
    }
}

std::vector<float>
qkGemv(const HalfMatrixView &queries, const HalfMatrixView &keys,
       float scale, std::size_t block_tokens)
{
    HILOS_ASSERT(queries.cols == keys.cols,
                 "query/key head dimension mismatch: ", queries.cols,
                 " vs ", keys.cols);
    HILOS_ASSERT(block_tokens > 0, "block size must be positive");

    const std::size_t d_group = queries.rows;
    const std::size_t s = keys.rows;
    const std::size_t d = keys.cols;
    std::vector<float> scores(d_group * s, 0.0f);
    std::vector<Half> kt_buf;  // K^T-Buf, reused across blocks

    for (std::size_t base = 0; base < s; base += block_tokens) {
        const std::size_t n = std::min(block_tokens, s - base);
        // The hardware transposes 128x128 tiles; the head dimension is
        // tiled too when d > block_tokens.
        for (std::size_t cbase = 0; cbase < d; cbase += block_tokens) {
            const std::size_t m = std::min(block_tokens, d - cbase);
            blockTranspose(keys, base, cbase, n, m, kt_buf);
            // kt_buf is m x n: element (c, r) = K[base + r][cbase + c].
            // MAC array: for each query lane, accumulate partial dots.
            for (std::size_t g = 0; g < d_group; g++) {
                for (std::size_t r = 0; r < n; r++) {
                    float acc = 0.0f;  // FP32 accumulator per output
                    for (std::size_t c = 0; c < m; c++) {
                        acc += queries.at(g, cbase + c).toFloat() *
                               kt_buf[c * n + r].toFloat();
                    }
                    scores[g * s + base + r] += acc;
                }
            }
        }
    }
    for (auto &v : scores)
        v *= scale;
    return scores;
}

std::vector<float>
svGemv(const std::vector<float> &probs, std::size_t d_group,
       const HalfMatrixView &values, std::size_t block_tokens)
{
    const std::size_t s = values.rows;
    const std::size_t d = values.cols;
    HILOS_ASSERT(probs.size() == d_group * s,
                 "probability shape mismatch: ", probs.size(), " != ",
                 d_group, "x", s);

    std::vector<float> out(d_group * d, 0.0f);
    for (std::size_t base = 0; base < s; base += block_tokens) {
        const std::size_t n = std::min(block_tokens, s - base);
        // V rows stream block by block; every query lane in the group
        // consumes the same broadcast V data (GQA sharing).
        for (std::size_t r = 0; r < n; r++) {
            const std::size_t row = base + r;
            for (std::size_t g = 0; g < d_group; g++) {
                const float p = probs[g * s + row];
                for (std::size_t c = 0; c < d; c++) {
                    out[g * d + c] += p * values.at(row, c).toFloat();
                }
            }
        }
    }
    return out;
}

}  // namespace hilos
