#include "accel/gemv.h"

#include <algorithm>
#include <vector>

#include "accel/simd.h"
#include "common/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HILOS_SIMD_X86 1
#include <immintrin.h>
#else
#define HILOS_SIMD_X86 0
#endif

namespace hilos {

namespace {

// ---------------------------------------------------------------------------
// Inner MAC loops. The AVX2 variants vectorise across *output* lanes
// (8 scores / 8 output columns at a time) while each lane accumulates
// in exactly the scalar order — multiply then add, no FMA — so both
// tiers produce bit-identical FP32 results (see accel/simd.h).
// ---------------------------------------------------------------------------

/** out[r] += sum_c q[c] * kt[c * n + r], r in [0, n), c in [0, m). */
void
qkMacScalar(const float *q, const Half *kt, std::size_t n, std::size_t m,
            float *out)
{
    for (std::size_t r = 0; r < n; r++) {
        float acc = 0.0f;  // FP32 accumulator per output
        for (std::size_t c = 0; c < m; c++)
            acc += q[c] * kt[c * n + r].toFloat();
        out[r] += acc;
    }
}

/** out[c] += p * v[c], c in [0, d). */
void
svMacScalar(float p, const Half *v, std::size_t d, float *out)
{
    for (std::size_t c = 0; c < d; c++)
        out[c] += p * v[c].toFloat();
}

#if HILOS_SIMD_X86

__attribute__((target("avx2,f16c"))) void
qkMacAvx2(const float *q, const Half *kt, std::size_t n, std::size_t m,
          float *out)
{
    std::size_t r = 0;
    for (; r + 8 <= n; r += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (std::size_t c = 0; c < m; c++) {
            const __m256 k = _mm256_cvtph_ps(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(kt + c * n + r)));
            acc = _mm256_add_ps(acc,
                                _mm256_mul_ps(_mm256_set1_ps(q[c]), k));
        }
        _mm256_storeu_ps(out + r,
                         _mm256_add_ps(_mm256_loadu_ps(out + r), acc));
    }
    for (; r < n; r++) {  // tail lanes, same row stride n
        float acc = 0.0f;
        for (std::size_t c = 0; c < m; c++)
            acc += q[c] * kt[c * n + r].toFloat();
        out[r] += acc;
    }
}

__attribute__((target("avx2,f16c"))) void
svMacAvx2(float p, const Half *v, std::size_t d, float *out)
{
    const __m256 pv = _mm256_set1_ps(p);
    std::size_t c = 0;
    for (; c + 8 <= d; c += 8) {
        const __m256 vv = _mm256_cvtph_ps(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(v + c)));
        _mm256_storeu_ps(
            out + c, _mm256_add_ps(_mm256_loadu_ps(out + c),
                                   _mm256_mul_ps(pv, vv)));
    }
    for (; c < d; c++)
        out[c] += p * v[c].toFloat();
}

#endif  // HILOS_SIMD_X86

void
qkMac(const float *q, const Half *kt, std::size_t n, std::size_t m,
      float *out)
{
#if HILOS_SIMD_X86
    if (activeSimdLevel() == SimdLevel::Avx2) {
        qkMacAvx2(q, kt, n, m, out);
        return;
    }
#endif
    qkMacScalar(q, kt, n, m, out);
}

void
svMac(float p, const Half *v, std::size_t d, float *out)
{
#if HILOS_SIMD_X86
    if (activeSimdLevel() == SimdLevel::Avx2) {
        svMacAvx2(p, v, d, out);
        return;
    }
#endif
    svMacScalar(p, v, d, out);
}

}  // namespace

HalfMatrixView
viewOf(const std::vector<Half> &buf, std::size_t rows, std::size_t cols)
{
    HILOS_ASSERT(buf.size() == rows * cols, "view shape mismatch: ",
                 buf.size(), " != ", rows, "x", cols);
    return HalfMatrixView{buf.data(), rows, cols};
}

void
blockTranspose(const HalfMatrixView &src, std::size_t row0,
               std::size_t col0, std::size_t n, std::size_t m,
               std::vector<Half> &dst)
{
    HILOS_ASSERT(row0 + n <= src.rows && col0 + m <= src.cols,
                 "block transpose out of range");
    dst.resize(m * n);
    for (std::size_t r = 0; r < n; r++) {
        for (std::size_t c = 0; c < m; c++) {
            dst[c * n + r] = src.at(row0 + r, col0 + c);
        }
    }
}

std::vector<float>
qkGemv(const HalfMatrixView &queries, const HalfMatrixView &keys,
       float scale, std::size_t block_tokens)
{
    HILOS_ASSERT(queries.cols == keys.cols,
                 "query/key head dimension mismatch: ", queries.cols,
                 " vs ", keys.cols);
    HILOS_ASSERT(block_tokens > 0, "block size must be positive");

    const std::size_t d_group = queries.rows;
    const std::size_t s = keys.rows;
    const std::size_t d = keys.cols;
    std::vector<float> scores(d_group * s, 0.0f);
    std::vector<Half> kt_buf;  // K^T-Buf, reused across blocks
    std::vector<float> q_lane;  // query slice widened once per (g, tile)

    for (std::size_t base = 0; base < s; base += block_tokens) {
        const std::size_t n = std::min(block_tokens, s - base);
        // The hardware transposes 128x128 tiles; the head dimension is
        // tiled too when d > block_tokens.
        for (std::size_t cbase = 0; cbase < d; cbase += block_tokens) {
            const std::size_t m = std::min(block_tokens, d - cbase);
            blockTranspose(keys, base, cbase, n, m, kt_buf);
            // kt_buf is m x n: element (c, r) = K[base + r][cbase + c].
            // MAC array: for each query lane, accumulate partial dots.
            q_lane.resize(m);
            for (std::size_t g = 0; g < d_group; g++) {
                for (std::size_t c = 0; c < m; c++)
                    q_lane[c] = queries.at(g, cbase + c).toFloat();
                qkMac(q_lane.data(), kt_buf.data(), n, m,
                      &scores[g * s + base]);
            }
        }
    }
    for (auto &v : scores)
        v *= scale;
    return scores;
}

std::vector<float>
svGemv(const std::vector<float> &probs, std::size_t d_group,
       const HalfMatrixView &values, std::size_t block_tokens)
{
    const std::size_t s = values.rows;
    const std::size_t d = values.cols;
    HILOS_ASSERT(probs.size() == d_group * s,
                 "probability shape mismatch: ", probs.size(), " != ",
                 d_group, "x", s);

    std::vector<float> out(d_group * d, 0.0f);
    for (std::size_t base = 0; base < s; base += block_tokens) {
        const std::size_t n = std::min(block_tokens, s - base);
        // V rows stream block by block; every query lane in the group
        // consumes the same broadcast V data (GQA sharing).
        for (std::size_t r = 0; r < n; r++) {
            const std::size_t row = base + r;
            for (std::size_t g = 0; g < d_group; g++) {
                svMac(probs[g * s + row], values.data + row * d, d,
                      &out[g * d]);
            }
        }
    }
    return out;
}

}  // namespace hilos
