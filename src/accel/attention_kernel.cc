#include "accel/attention_kernel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace hilos {

AttentionKernel::AttentionKernel(const AttentionKernelConfig &cfg)
    : cfg_(cfg), softmax_(cfg.block_tokens)
{
    HILOS_ASSERT(cfg_.block_tokens > 0 && cfg_.d_group > 0,
                 "invalid kernel config");
    HILOS_ASSERT(cfg_.burst_elems > 0, "invalid burst width");
}

std::size_t
AttentionKernel::paddedLength(std::size_t s) const
{
    return static_cast<std::size_t>(
        roundUp(static_cast<std::uint64_t>(s),
                static_cast<std::uint64_t>(cfg_.burst_elems)));
}

AttentionResult
AttentionKernel::run(const AttentionRequest &req) const
{
    const std::size_t d_group = cfg_.d_group;
    const std::size_t s = req.keys.rows;
    const std::size_t d = req.keys.cols;
    const std::size_t n_buf = req.buffered_values.rows;

    HILOS_ASSERT(req.queries.rows == d_group,
                 "query rows must equal d_group: ", req.queries.rows,
                 " vs ", d_group);
    HILOS_ASSERT(req.queries.cols == d, "query/key dim mismatch");
    HILOS_ASSERT(req.values.rows == s && req.values.cols == d,
                 "key/value shape mismatch");
    HILOS_ASSERT(req.valid_len <= s, "valid_len beyond stored context");
    HILOS_ASSERT(req.partial_scores.size() == d_group * n_buf,
                 "partial score shape mismatch: ",
                 req.partial_scores.size(), " != ", d_group, "x", n_buf);
    HILOS_ASSERT(n_buf == 0 || req.buffered_values.cols == d,
                 "buffered value dim mismatch");
    HILOS_ASSERT(req.valid_len + n_buf > 0, "empty attention context");
    HILOS_ASSERT(req.window_start <= req.valid_len,
                 "window start beyond valid context");
    // The context is non-empty when the window still covers stored
    // tokens, when attention sinks keep the leading tokens visible
    // (StreamingLLM-style: even window_start == valid_len leaves the
    // sinks attended), or when host-buffered entries exist.
    const bool sinks_attended =
        req.sink_tokens > 0 && req.valid_len > 0;
    HILOS_ASSERT(req.window_start < req.valid_len || sinks_attended ||
                     n_buf > 0,
                 "sliding window empties the attention context");

    const float scale =
        req.scale != 0.0f ? req.scale
                          : 1.0f / std::sqrt(static_cast<float>(d));

    AttentionResult res;

    // Unit 1: QK GEMV with online transpose over the stored context.
    std::vector<float> stored_scores =
        s > 0 ? qkGemv(req.queries, req.keys, scale, cfg_.block_tokens)
              : std::vector<float>();

    // Units 2+3: two-pass softmax over stored ++ buffered scores. The
    // MASK module forces padding scores to the padding constant; the
    // host-injected partial scores are always valid (§4.3).
    const SoftmaxMask mask;  // defaults: everything valid, pad = -1e4
    std::vector<float> stored_probs(d_group * s);
    std::vector<float> buffered_probs(d_group * n_buf);
    std::vector<float> lane(s + n_buf);  // reused across query lanes
    for (std::size_t g = 0; g < d_group; g++) {
        for (std::size_t i = 0; i < s; i++) {
            const bool in_window =
                (i >= req.window_start || i < req.sink_tokens) &&
                i < req.valid_len;
            lane[i] = in_window ? stored_scores[g * s + i]
                                : mask.padding_value;
        }
        for (std::size_t i = 0; i < n_buf; i++)
            lane[s + i] = req.partial_scores[g * n_buf + i];
        softmax_.apply(lane, mask);
        for (std::size_t i = 0; i < s; i++)
            stored_probs[g * s + i] = lane[i];
        for (std::size_t i = 0; i < n_buf; i++)
            buffered_probs[g * n_buf + i] = lane[s + i];
    }

    // Unit 4: score-V GEMV over stored values, plus the buffered tail
    // streamed from the host staging buffer.
    res.outputs.assign(d_group * d, 0.0f);
    if (s > 0) {
        std::vector<float> stored_out =
            svGemv(stored_probs, d_group, req.values, cfg_.block_tokens);
        for (std::size_t i = 0; i < res.outputs.size(); i++)
            res.outputs[i] += stored_out[i];
    }
    if (n_buf > 0) {
        std::vector<float> buf_out = svGemv(buffered_probs, d_group,
                                            req.buffered_values,
                                            cfg_.block_tokens);
        for (std::size_t i = 0; i < res.outputs.size(); i++)
            res.outputs[i] += buf_out[i];
    }

    // Observability counters.
    const std::size_t s_pad = paddedLength(s);
    res.blocks = ceilDiv(s_pad, cfg_.block_tokens);
    res.kv_bytes = static_cast<std::uint64_t>(2) * s_pad * d * sizeof(Half);
    const std::uint64_t qk_flops =
        2ull * d_group * req.valid_len * d;
    const std::uint64_t sv_flops =
        2ull * d_group * (req.valid_len + n_buf) * d;
    const std::uint64_t softmax_flops =
        5ull * d_group * (req.valid_len + n_buf);
    res.flops = qk_flops + sv_flops + softmax_flops;
    return res;
}

}  // namespace hilos
