/**
 * @file
 * Two-pass streaming softmax (Algorithm 1 of the paper).
 *
 * The classic numerically-stable softmax needs three passes over the
 * score vector (global max, sum of exponentials, normalisation), which
 * triples off-chip traffic for long sequences. HILOS's accelerator does
 * it in two: pass one streams blocks through a max-reduction tree and
 * exponentiation units stabilised by the *local* block maximum, merging
 * (max, sum) pairs in a streaming update unit; pass two normalises.
 *
 * This module implements the algorithm functionally, mirroring the
 * hardware block structure (128-element blocks, masking in both passes)
 * so that tests can verify exact equivalence with the reference softmax
 * and the cycle model can count traffic per pass.
 */

#ifndef HILOS_ACCEL_SOFTMAX_H_
#define HILOS_ACCEL_SOFTMAX_H_

#include <cstdint>
#include <vector>

namespace hilos {

/** Masking configuration applied inside the softmax units (§5.4). */
struct SoftmaxMask {
    /**
     * Scores at positions < valid_start are masked: sliding-window
     * attention variants (§5.1 customisation) exclude tokens that fell
     * out of the window.
     */
    std::size_t valid_start = 0;
    /**
     * Scores at positions >= valid_len are padding: the MASK module
     * replaces them with `padding_value` so they contribute (practically)
     * nothing after exponentiation.
     */
    std::size_t valid_len = SIZE_MAX;
    /** Constant assigned to padding tokens (-1e4 per §5.4). */
    float padding_value = -1.0e4f;

    /** True if position i passes the mask. */
    bool
    valid(std::size_t i) const
    {
        return i >= valid_start && i < valid_len;
    }
};

/** Running (max, sum) statistics produced by the first pass. */
struct SoftmaxStats {
    float max;  ///< global maximum m
    float sum;  ///< global denominator Z, referenced to `max`
};

/**
 * Streaming update unit (Algorithm 1 lines 5-9): merge a block's local
 * statistics (m_B, S_B) into the running (m, Z).
 */
SoftmaxStats streamingUpdate(SoftmaxStats running, float block_max,
                             float block_sum);

/**
 * Two-pass softmax engine with a fixed hardware block size.
 */
class TwoPassSoftmax
{
  public:
    /** @param block_elems elements per hardware block (default 128) */
    explicit TwoPassSoftmax(std::size_t block_elems = 128);

    /**
     * First pass: compute global statistics over `scores` with `mask`
     * applied (scores itself is not modified).
     */
    SoftmaxStats computeStats(const std::vector<float> &scores,
                              const SoftmaxMask &mask) const;

    /**
     * Second pass: normalise in place using precomputed statistics;
     * masked positions come out as exp(padding - m)/Z (effectively 0).
     */
    void normalize(std::vector<float> &scores, const SoftmaxStats &stats,
                   const SoftmaxMask &mask) const;

    /** Convenience: both passes. */
    void apply(std::vector<float> &scores, const SoftmaxMask &mask) const;

    /**
     * Off-chip element traffic of the two-pass scheme for a vector of
     * `n` scores: one read per pass plus one write (3n total).
     */
    static std::uint64_t trafficElements(std::uint64_t n) { return 3 * n; }

    /** Off-chip element traffic of the three-pass scheme (4n). */
    static std::uint64_t threePassTrafficElements(std::uint64_t n)
    {
        return 4 * n;
    }

    std::size_t blockElems() const { return block_elems_; }

  private:
    std::size_t block_elems_;
};

/**
 * Reference three-pass softmax (global max, then sum, then normalise),
 * the textbook formulation the accelerator must match.
 */
void threePassSoftmax(std::vector<float> &scores, const SoftmaxMask &mask);

}  // namespace hilos

#endif  // HILOS_ACCEL_SOFTMAX_H_
