#include "accel/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HILOS_SIMD_X86 1
#include <immintrin.h>
#else
#define HILOS_SIMD_X86 0
#endif

namespace hilos {

namespace {

bool
cpuHasAvx2F16c()
{
#if HILOS_SIMD_X86
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("f16c") != 0;
#else
    return false;
#endif
}

SimdLevel
detectSimdLevel()
{
    const char *env = std::getenv("HILOS_SIMD");
    if (env != nullptr && std::strcmp(env, "scalar") == 0)
        return SimdLevel::Scalar;
    if (env != nullptr && std::strcmp(env, "avx2") == 0) {
        HILOS_ASSERT(cpuHasAvx2F16c(),
                     "HILOS_SIMD=avx2 but the CPU lacks AVX2/F16C");
        return SimdLevel::Avx2;
    }
    HILOS_ASSERT(env == nullptr || env[0] == '\0',
                 "unknown HILOS_SIMD value: ", env,
                 " (expected 'scalar' or 'avx2')");
    return cpuHasAvx2F16c() ? SimdLevel::Avx2 : SimdLevel::Scalar;
}

SimdLevel &
activeLevelRef()
{
    static SimdLevel level = detectSimdLevel();
    return level;
}

}  // namespace

const char *
simdLevelName(SimdLevel level)
{
    return level == SimdLevel::Avx2 ? "avx2" : "scalar";
}

bool
simdLevelSupported(SimdLevel level)
{
    return level == SimdLevel::Scalar || cpuHasAvx2F16c();
}

SimdLevel
activeSimdLevel()
{
    return activeLevelRef();
}

void
setSimdLevel(SimdLevel level)
{
    HILOS_ASSERT(simdLevelSupported(level), "SIMD level ",
                 simdLevelName(level), " is not supported on this CPU");
    activeLevelRef() = level;
}

#if HILOS_SIMD_X86

__attribute__((target("avx2,f16c"))) void
cvtHalfToFloatAvx2(const Half *in, float *out, std::size_t n)
{
    static_assert(sizeof(Half) == sizeof(std::uint16_t));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i bits = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + i));
        _mm256_storeu_ps(out + i, _mm256_cvtph_ps(bits));
    }
    for (; i < n; i++) {
        // Single-value tail through the same instruction.
        const __m128i bits = _mm_cvtsi32_si128(in[i].bits());
        out[i] = _mm_cvtss_f32(_mm_cvtph_ps(bits));
    }
}

#else

void
cvtHalfToFloatAvx2(const Half *, float *, std::size_t)
{
    HILOS_PANIC("cvtHalfToFloatAvx2 called without AVX2 support");
}

#endif  // HILOS_SIMD_X86

}  // namespace hilos
