#include "accel/kernel_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "sim/bandwidth.h"

namespace hilos {

KernelSimulator::KernelSimulator(const KernelSimConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.hw.clock_hz > 0, "invalid clock");
}

Seconds
KernelSimulator::simulate(std::size_t s, std::size_t d,
                          std::size_t d_group) const
{
    const CycleModelConfig &hw = cfg_.hw;
    const double clk = hw.clock_hz;
    BandwidthResource dram("fpga-dram",
                           hw.dram_bandwidth * hw.dram_efficiency,
                           cfg_.dram_command_latency);

    const std::size_t s_pad =
        roundUp(std::max<std::size_t>(s, 1),
                static_cast<std::uint64_t>(hw.burst_elems));
    const std::size_t blocks = ceilDiv(s_pad, hw.block_tokens);

    Seconds ready = cfg_.launch_overhead;
    for (std::size_t blk = 0; blk < blocks; blk++) {
        const std::size_t tokens = std::min<std::size_t>(
            hw.block_tokens, s_pad - blk * hw.block_tokens);
        // K + V burst transfers for the block (whole bursts only).
        const std::uint64_t bytes =
            roundUp(2ull * tokens * d * 2, hw.burst_elems * 2);
        const Seconds io_done = dram.transfer(ready, bytes);
        // Unit compute: integer cycles per block, bottleneck unit.
        const double qk = std::ceil(
            static_cast<double>(tokens) * static_cast<double>(d) *
            static_cast<double>(d_group) /
            static_cast<double>(hw.mac_units));
        const double sm = std::ceil(
            static_cast<double>(tokens) * static_cast<double>(d_group) /
            static_cast<double>(hw.exp_unroll));
        const double unit_cycles =
            std::max(qk, sm) + cfg_.pipeline_fill_cycles;
        const Seconds compute_done = ready + unit_cycles / clk;
        ready = std::max(io_done, compute_done);
        // DDR refresh: a stall per tREFI window of activity.
        ready += cfg_.refresh_stall *
                 ((unit_cycles / clk) / cfg_.refresh_interval);
    }

    if (cfg_.measurement_noise > 0.0) {
        Rng noise(s * 31 + d_group * 7919);
        ready *= 1.0 + cfg_.measurement_noise * noise.normal();
        ready = std::max(ready, cfg_.launch_overhead);
    }
    return ready;
}

}  // namespace hilos
