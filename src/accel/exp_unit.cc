#include "accel/exp_unit.h"

#include <cmath>

namespace hilos {

namespace {

// Degree-6 polynomial for 2^f on f in [-1/2, 1/2] (Taylor of 2^f; the
// halved range keeps the truncation error near single-precision ulp,
// matching the HLS math library's fixed-depth datapath).
constexpr double kC0 = 1.0;
constexpr double kC1 = 0.6931471805599453;
constexpr double kC2 = 0.2402265069591007;
constexpr double kC3 = 0.0555041086648216;
constexpr double kC4 = 0.009618129107628477;
constexpr double kC5 = 0.0013333558146428443;
constexpr double kC6 = 0.00015403530393381608;

constexpr float kLog2E = 1.44269504088896f;

}  // namespace

float
hwExp(float x)
{
    // Saturation instead of Inf/NaN: the unit clamps its input range
    // (softmax inputs are max-stabilised, so the range is generous).
    if (x > 88.0f)
        x = 88.0f;
    if (x < -87.0f)
        return 0.0f;  // below FP32 subnormal range after exp

    // Range reduction: e^x = 2^(x * log2 e) = 2^i * 2^f with
    // f in [-1/2, 1/2] (round-to-nearest integer exponent).
    const float t = x * kLog2E;
    const float fi = std::nearbyint(t);
    const int i = static_cast<int>(fi);
    const double f = static_cast<double>(t) - static_cast<double>(fi);

    // Horner evaluation of 2^f — six multiply-adds, one DSP each,
    // plus the range-reduction multiply (kExpUnitDsps total).
    const double p =
        kC0 +
        f * (kC1 +
             f * (kC2 + f * (kC3 + f * (kC4 + f * (kC5 + f * kC6)))));

    return static_cast<float>(std::ldexp(p, i));
}

double
hwExpMaxRelError(float lo, float hi, std::size_t samples)
{
    double worst = 0.0;
    for (std::size_t k = 0; k < samples; k++) {
        const float x =
            lo + (hi - lo) * static_cast<float>(k) /
                     static_cast<float>(samples - 1);
        const double expect = std::exp(static_cast<double>(x));
        if (expect == 0.0)
            continue;
        const double got = static_cast<double>(hwExp(x));
        const double rel = std::fabs(got - expect) / expect;
        worst = rel > worst ? rel : worst;
    }
    return worst;
}

}  // namespace hilos
