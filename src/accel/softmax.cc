#include "accel/softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hilos {

SoftmaxStats
streamingUpdate(SoftmaxStats running, float block_max, float block_sum)
{
    // Algorithm 1, lines 5-9.
    if (block_max > running.max) {
        running.sum =
            running.sum * std::exp(running.max - block_max) + block_sum;
        running.max = block_max;
    } else {
        running.sum += block_sum * std::exp(block_max - running.max);
    }
    return running;
}

TwoPassSoftmax::TwoPassSoftmax(std::size_t block_elems)
    : block_elems_(block_elems)
{
    HILOS_ASSERT(block_elems_ > 0, "block size must be positive");
}

SoftmaxStats
TwoPassSoftmax::computeStats(const std::vector<float> &scores,
                             const SoftmaxMask &mask) const
{
    SoftmaxStats running{-std::numeric_limits<float>::infinity(), 0.0f};

    for (std::size_t base = 0; base < scores.size(); base += block_elems_) {
        const std::size_t end =
            std::min(scores.size(), base + block_elems_);
        // MASK + local max reduction tree (line 3).
        float m_b = -std::numeric_limits<float>::infinity();
        for (std::size_t i = base; i < end; i++) {
            const float v =
                mask.valid(i) ? scores[i] : mask.padding_value;
            m_b = std::max(m_b, v);
        }
        // Parallel exponentiation stabilised by the local max, then the
        // adder tree (line 4).
        float s_b = 0.0f;
        for (std::size_t i = base; i < end; i++) {
            const float v =
                mask.valid(i) ? scores[i] : mask.padding_value;
            s_b += std::exp(v - m_b);
        }
        running = streamingUpdate(running, m_b, s_b);
    }
    return running;
}

void
TwoPassSoftmax::normalize(std::vector<float> &scores,
                          const SoftmaxStats &stats,
                          const SoftmaxMask &mask) const
{
    HILOS_ASSERT(stats.sum > 0.0f || scores.empty(),
                 "softmax normalisation with zero denominator");
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        scores[i] = std::exp(v - stats.max) / stats.sum;
    }
}

void
TwoPassSoftmax::apply(std::vector<float> &scores,
                      const SoftmaxMask &mask) const
{
    if (scores.empty())
        return;
    const SoftmaxStats stats = computeStats(scores, mask);
    normalize(scores, stats, mask);
}

void
threePassSoftmax(std::vector<float> &scores, const SoftmaxMask &mask)
{
    if (scores.empty())
        return;
    // Pass 1: global max.
    float m = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        m = std::max(m, v);
    }
    // Pass 2: sum of exponentials.
    float z = 0.0f;
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        z += std::exp(v - m);
    }
    // Pass 3: normalise.
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        scores[i] = std::exp(v - m) / z;
    }
}

}  // namespace hilos
