#include "accel/softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "accel/simd.h"
#include "common/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HILOS_SIMD_X86 1
#include <immintrin.h>
#else
#define HILOS_SIMD_X86 0
#endif

namespace hilos {

namespace {

#if HILOS_SIMD_X86

/** max over v[0..n) (n >= 1) by lane-wise max + horizontal fold. */
__attribute__((target("avx2"))) float
maxOverAvx2(const float *v, std::size_t n)
{
    std::size_t i = 0;
    __m256 m8 = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    for (; i + 8 <= n; i += 8)
        m8 = _mm256_max_ps(m8, _mm256_loadu_ps(v + i));
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(m8),
                           _mm256_extractf128_ps(m8, 1));
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ps(m4, _mm_shuffle_ps(m4, m4, 1));
    float best = _mm_cvtss_f32(m4);
    for (; i < n; i++)
        best = std::max(best, v[i]);
    return best;
}

#endif  // HILOS_SIMD_X86

/**
 * MASK + local max reduction tree over one block (Algorithm 1 line 3).
 * Max is order-invariant over values, so the AVX2 path may reduce the
 * valid span vector-wise and fold the padding constant in once for any
 * masked positions: the result equals the scalar per-element fold.
 */
float
blockMaskedMax(const std::vector<float> &scores, std::size_t base,
               std::size_t end, const SoftmaxMask &mask)
{
#if HILOS_SIMD_X86
    if (activeSimdLevel() == SimdLevel::Avx2) {
        const std::size_t vstart = std::max(base, mask.valid_start);
        const std::size_t vend = std::min(end, mask.valid_len);
        if (vstart >= vend)
            return mask.padding_value;  // fully masked block
        float m_b = maxOverAvx2(scores.data() + vstart, vend - vstart);
        if (vstart > base || vend < end)
            m_b = std::max(m_b, mask.padding_value);
        return m_b;
    }
#endif
    float m_b = -std::numeric_limits<float>::infinity();
    for (std::size_t i = base; i < end; i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        m_b = std::max(m_b, v);
    }
    return m_b;
}

}  // namespace

SoftmaxStats
streamingUpdate(SoftmaxStats running, float block_max, float block_sum)
{
    // Algorithm 1, lines 5-9.
    if (block_max > running.max) {
        running.sum =
            running.sum * std::exp(running.max - block_max) + block_sum;
        running.max = block_max;
    } else {
        running.sum += block_sum * std::exp(block_max - running.max);
    }
    return running;
}

TwoPassSoftmax::TwoPassSoftmax(std::size_t block_elems)
    : block_elems_(block_elems)
{
    HILOS_ASSERT(block_elems_ > 0, "block size must be positive");
}

SoftmaxStats
TwoPassSoftmax::computeStats(const std::vector<float> &scores,
                             const SoftmaxMask &mask) const
{
    SoftmaxStats running{-std::numeric_limits<float>::infinity(), 0.0f};

    for (std::size_t base = 0; base < scores.size(); base += block_elems_) {
        const std::size_t end =
            std::min(scores.size(), base + block_elems_);
        // MASK + local max reduction tree (line 3).
        const float m_b = blockMaskedMax(scores, base, end, mask);
        // Parallel exponentiation stabilised by the local max, then the
        // adder tree (line 4).
        float s_b = 0.0f;
        for (std::size_t i = base; i < end; i++) {
            const float v =
                mask.valid(i) ? scores[i] : mask.padding_value;
            s_b += std::exp(v - m_b);
        }
        running = streamingUpdate(running, m_b, s_b);
    }
    return running;
}

void
TwoPassSoftmax::normalize(std::vector<float> &scores,
                          const SoftmaxStats &stats,
                          const SoftmaxMask &mask) const
{
    HILOS_ASSERT(stats.sum > 0.0f || scores.empty(),
                 "softmax normalisation with zero denominator");
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        scores[i] = std::exp(v - stats.max) / stats.sum;
    }
}

void
TwoPassSoftmax::apply(std::vector<float> &scores,
                      const SoftmaxMask &mask) const
{
    if (scores.empty())
        return;
    const SoftmaxStats stats = computeStats(scores, mask);
    normalize(scores, stats, mask);
}

void
threePassSoftmax(std::vector<float> &scores, const SoftmaxMask &mask)
{
    if (scores.empty())
        return;
    // Pass 1: global max.
    float m = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        m = std::max(m, v);
    }
    // Pass 2: sum of exponentials.
    float z = 0.0f;
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        z += std::exp(v - m);
    }
    // Pass 3: normalise.
    for (std::size_t i = 0; i < scores.size(); i++) {
        const float v = mask.valid(i) ? scores[i] : mask.padding_value;
        scores[i] = std::exp(v - m) / z;
    }
}

}  // namespace hilos
