/**
 * @file
 * FPGA resource and power model for the attention accelerator on the
 * Kintex UltraScale+ KU15P inside a SmartSSD (Table 3, §5.4, §7.2).
 *
 * The model decomposes the design into the shell/infrastructure, the
 * softmax units (DSP-heavy exponentials), and the GEMV units (LUT-heavy
 * transposition and MAC control), calibrated against the three published
 * utilisation rows (d_group = 1, 4, 5). Utilisation for other group
 * sizes interpolates between the calibration anchors; the model also
 * answers the §7.2 scaling question (DSPs needed for a 4x-throughput
 * PCIe 5.0 design exceed the chip's capacity).
 */

#ifndef HILOS_ACCEL_RESOURCE_MODEL_H_
#define HILOS_ACCEL_RESOURCE_MODEL_H_

#include <cstdint>
#include <string>

#include "common/units.h"

namespace hilos {

/** Resource capacity of the KU15P FPGA. */
struct FpgaBudget {
    std::uint64_t luts = 522720;
    std::uint64_t ffs = 1045440;
    std::uint64_t bram36 = 984;
    std::uint64_t uram = 128;
    std::uint64_t dsps = 1968;
};

/** Utilisation of one configuration, in percent of each budget. */
struct ResourceUtilization {
    double lut_pct = 0;
    double ff_pct = 0;
    double bram_pct = 0;
    double uram_pct = 0;
    double dsp_pct = 0;

    /** True if everything fits (all < 100%). */
    bool fits() const;
};

/**
 * Resource/power/performance accounting for one kernel configuration.
 */
class ResourceModel
{
  public:
    explicit ResourceModel(const FpgaBudget &budget = FpgaBudget{});

    /**
     * Utilisation for a given GQA group size. Exact at the calibration
     * anchors d_group = 1, 4, 5; linear interpolation/extrapolation
     * elsewhere (d_group >= 1).
     */
    ResourceUtilization utilization(std::size_t d_group) const;

    /** Total on-chip power (static + dynamic + transceivers), watts. */
    Watts powerWatts(std::size_t d_group) const;

    /** Peak kernel throughput at this configuration, GFLOPS (Table 3). */
    double peakGflops(std::size_t d_group) const;

    /** Achieved clock frequency, Hz. */
    Hertz clockHz() const { return 296.05e6; }

    /** Absolute DSP count used. */
    std::uint64_t dspCount(std::size_t d_group) const;

    /**
     * Fraction of the design's DSPs consumed by the softmax exponential
     * pipelines; grows with d_group (§7.2: softmax dominates DSPs).
     */
    double softmaxDspShare(std::size_t d_group) const;

    /**
     * DSPs required to scale kernel throughput by `factor` via DSP
     * parallelisation (the §7.2 PCIe 5.0 thought experiment). A result
     * above the budget means the chip cannot host the design.
     */
    std::uint64_t dspsForThroughputScale(std::size_t d_group,
                                         double factor) const;

    const FpgaBudget &budget() const { return budget_; }

  private:
    double interpolate(std::size_t d_group, double v1, double v4,
                       double v5) const;

    FpgaBudget budget_;
};

}  // namespace hilos

#endif  // HILOS_ACCEL_RESOURCE_MODEL_H_
