#include "accel/resource_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hilos {

namespace {

// Calibration anchors from Table 3 (d_group = 1, 4, 5):
// {LUT%, FF%, BRAM%, URAM%, DSP%, power W, peak GFLOPS}.
struct Anchor {
    double lut, ff, bram, uram, dsp, power, gflops;
};
constexpr Anchor kAnchor1{38.76, 28.57, 51.02, 9.38, 10.06, 11.25, 11.9};
constexpr Anchor kAnchor4{56.60, 39.70, 59.30, 9.38, 20.27, 15.39, 46.8};
constexpr Anchor kAnchor5{67.40, 46.15, 58.49, 9.38, 27.79, 16.08, 56.3};

}  // namespace

bool
ResourceUtilization::fits() const
{
    return lut_pct < 100.0 && ff_pct < 100.0 && bram_pct < 100.0 &&
           uram_pct < 100.0 && dsp_pct < 100.0;
}

ResourceModel::ResourceModel(const FpgaBudget &budget) : budget_(budget) {}

double
ResourceModel::interpolate(std::size_t d_group, double v1, double v4,
                           double v5) const
{
    HILOS_ASSERT(d_group >= 1, "d_group must be >= 1");
    const double d = static_cast<double>(d_group);
    if (d_group <= 4) {
        // Between the d=1 and d=4 anchors (exact at both).
        return v1 + (v4 - v1) * (d - 1.0) / 3.0;
    }
    // At or beyond d=4: extend along the d=4 -> d=5 slope.
    return v4 + (v5 - v4) * (d - 4.0);
}

ResourceUtilization
ResourceModel::utilization(std::size_t d_group) const
{
    ResourceUtilization u;
    u.lut_pct = interpolate(d_group, kAnchor1.lut, kAnchor4.lut,
                            kAnchor5.lut);
    u.ff_pct = interpolate(d_group, kAnchor1.ff, kAnchor4.ff, kAnchor5.ff);
    u.bram_pct = interpolate(d_group, kAnchor1.bram, kAnchor4.bram,
                             kAnchor5.bram);
    u.uram_pct = kAnchor1.uram;  // URAM partitioning is d_group-invariant
    u.dsp_pct = interpolate(d_group, kAnchor1.dsp, kAnchor4.dsp,
                            kAnchor5.dsp);
    return u;
}

Watts
ResourceModel::powerWatts(std::size_t d_group) const
{
    return interpolate(d_group, kAnchor1.power, kAnchor4.power,
                       kAnchor5.power);
}

double
ResourceModel::peakGflops(std::size_t d_group) const
{
    return interpolate(d_group, kAnchor1.gflops, kAnchor4.gflops,
                       kAnchor5.gflops);
}

std::uint64_t
ResourceModel::dspCount(std::size_t d_group) const
{
    return static_cast<std::uint64_t>(
        std::llround(utilization(d_group).dsp_pct / 100.0 *
                     static_cast<double>(budget_.dsps)));
}

double
ResourceModel::softmaxDspShare(std::size_t d_group) const
{
    // The GEMV MAC datapath is DSP-light (LUT-based control dominates;
    // §6.2); the exponential pipelines account for the growth in DSPs
    // with d_group. Base design: ~55% of DSPs in softmax at d_group=1,
    // rising as exp lanes multiply.
    const double base = 0.55;
    const double grown =
        base + 0.06 * static_cast<double>(std::min<std::size_t>(d_group, 8) -
                                          1);
    return std::min(0.9, grown);
}

std::uint64_t
ResourceModel::dspsForThroughputScale(std::size_t d_group,
                                      double factor) const
{
    HILOS_ASSERT(factor >= 1.0, "scale factor must be >= 1");
    // Throughput scaling by parallelisation replicates the DSP-bound
    // datapaths `factor` times.
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(dspCount(d_group)) * factor));
}

}  // namespace hilos
