/**
 * @file
 * Blocked GEMV units with online transpose (§4.4, Figure 7(d)/(e)).
 *
 * The key matrix is stored row-wise (append-friendly for KV writeback)
 * but the query-key product needs K^T. Instead of storing a transposed
 * copy (extra writes) the accelerator loads 128x128 blocks of K into an
 * on-chip buffer, transposes locally, and streams the transposed block
 * to the MAC array. The score-value product reads V row-wise directly.
 *
 * Functional model: FP16 operands, FP32 multiply-accumulate, matching
 * the hardware's numerical behaviour. d_group query rows share one K/V
 * stream (GQA broadcast).
 */

#ifndef HILOS_ACCEL_GEMV_H_
#define HILOS_ACCEL_GEMV_H_

#include <cstddef>
#include <vector>

#include "common/half.h"

namespace hilos {

/** Read-only view of a row-major Half matrix. */
struct HalfMatrixView {
    const Half *data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;

    const Half &
    at(std::size_t r, std::size_t c) const
    {
        return data[r * cols + c];
    }
};

/** Make a view over a vector holding rows x cols halves. */
HalfMatrixView viewOf(const std::vector<Half> &buf, std::size_t rows,
                      std::size_t cols);

/**
 * Local block transpose: copy the [row0, row0+n) x [col0, col0+m) block
 * of `src` into `dst` transposed (dst is m x n row-major). Mirrors the
 * K-Buf -> K^T-Buf on-chip copy.
 */
void blockTranspose(const HalfMatrixView &src, std::size_t row0,
                    std::size_t col0, std::size_t n, std::size_t m,
                    std::vector<Half> &dst);

/**
 * Query-key GEMV with online transpose.
 *
 * @param queries d_group x d row-major query block (FP16)
 * @param keys s x d row-major key matrix (FP16)
 * @param scale 1/sqrt(d) applied to each score
 * @param block_tokens hardware block height (default 128)
 * @return d_group x s row-major scores (FP32)
 *
 * Functionally identical to direct dot products; the blocked loop order
 * and the explicit transpose mirror the hardware so tests can assert
 * the equivalence the design relies on.
 */
std::vector<float> qkGemv(const HalfMatrixView &queries,
                          const HalfMatrixView &keys, float scale,
                          std::size_t block_tokens = 128);

/**
 * Attention-score x value GEMV.
 *
 * @param probs d_group x s row-major attention probabilities (FP32)
 * @param values s x d row-major value matrix (FP16)
 * @param block_tokens hardware block height
 * @return d_group x d row-major outputs (FP32)
 */
std::vector<float> svGemv(const std::vector<float> &probs,
                          std::size_t d_group, const HalfMatrixView &values,
                          std::size_t block_tokens = 128);

}  // namespace hilos

#endif  // HILOS_ACCEL_GEMV_H_
