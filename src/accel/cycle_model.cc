#include "accel/cycle_model.h"

#include <algorithm>

#include "common/logging.h"

namespace hilos {

Cycles
CycleBreakdown::bottleneckCycles() const
{
    return std::max({qk_gemv_cycles, softmax_stats_cycles,
                     softmax_norm_cycles, sv_gemv_cycles, dram_cycles});
}

std::string
CycleBreakdown::bottleneckName() const
{
    const Cycles b = bottleneckCycles();
    if (b == dram_cycles)
        return "dram";
    if (b == qk_gemv_cycles)
        return "qk_gemv";
    if (b == sv_gemv_cycles)
        return "sv_gemv";
    if (b == softmax_stats_cycles)
        return "softmax_stats";
    return "softmax_norm";
}

CycleModel::CycleModel(const CycleModelConfig &cfg) : cfg_(cfg)
{
    HILOS_ASSERT(cfg_.clock_hz > 0 && cfg_.dram_bandwidth > 0,
                 "invalid cycle-model config");
    HILOS_ASSERT(cfg_.mac_units > 0 && cfg_.exp_unroll > 0,
                 "invalid unit counts");
}

std::size_t
CycleModel::paddedLen(std::size_t s) const
{
    return static_cast<std::size_t>(
        roundUp(static_cast<std::uint64_t>(std::max<std::size_t>(s, 1)),
                static_cast<std::uint64_t>(cfg_.burst_elems)));
}

Bytes
CycleModel::dramTrafficBytes(std::size_t s, std::size_t d,
                             std::size_t d_group) const
{
    const double s_pad = static_cast<double>(paddedLen(s));
    const double dd = static_cast<double>(d);
    const double dg = static_cast<double>(d_group);
    // K and V stream once each (FP16); scores are written once after
    // pass one and re-read by the normalisation and SV units (FP16).
    const double kv = 2.0 * s_pad * dd * 2.0;
    const double scores = s_pad * dg * 2.0 * 3.0;
    return kv + scores;
}

CycleBreakdown
CycleModel::breakdown(std::size_t s, std::size_t d,
                      std::size_t d_group) const
{
    const double s_pad = static_cast<double>(paddedLen(s));
    const double dd = static_cast<double>(d);
    const double dg = static_cast<double>(d_group);

    CycleBreakdown b;
    // Each GEMV unit retires mac_units MACs per cycle; per token it
    // needs d * d_group MACs.
    b.qk_gemv_cycles = s_pad * dd * dg / static_cast<double>(cfg_.mac_units);
    b.sv_gemv_cycles = b.qk_gemv_cycles;
    // The exponential pipeline retires exp_unroll values per cycle; each
    // pass touches d_group scores per token.
    b.softmax_stats_cycles = s_pad * dg / static_cast<double>(cfg_.exp_unroll);
    b.softmax_norm_cycles = b.softmax_stats_cycles;
    // DRAM-traffic bound expressed in kernel cycles.
    const Bandwidth eff_bw = cfg_.dram_bandwidth * cfg_.dram_efficiency;
    b.dram_cycles = dramTrafficBytes(s, d, d_group) / eff_bw * cfg_.clock_hz;
    return b;
}

Seconds
CycleModel::kernelTime(std::size_t s, std::size_t d,
                       std::size_t d_group) const
{
    const CycleBreakdown b = breakdown(s, d, d_group);
    // Task-level (DATAFLOW) pipelining: the bottleneck unit sets the
    // steady-state rate; fill/drain adds one block per extra stage.
    const Cycles fill_cycles =
        static_cast<double>(cfg_.pipeline_stages - 1) *
        static_cast<double>(cfg_.block_tokens) *
        static_cast<double>(d) / static_cast<double>(cfg_.mac_units);
    return (b.bottleneckCycles() + fill_cycles) / cfg_.clock_hz;
}

Flops
CycleModel::kernelFlops(std::size_t s, std::size_t d,
                        std::size_t d_group) const
{
    const double ss = static_cast<double>(s);
    const double dd = static_cast<double>(d);
    const double dg = static_cast<double>(d_group);
    // QK and SV each: 2 flops per (token, dim, query); softmax ~5 flops
    // per score.
    return 2.0 * ss * dd * dg * 2.0 + 5.0 * ss * dg;
}

double
CycleModel::gflops(std::size_t s, std::size_t d, std::size_t d_group) const
{
    return kernelFlops(s, d, d_group) / kernelTime(s, d, d_group) / 1e9;
}

Bandwidth
CycleModel::kvBytesPerSec(std::size_t s, std::size_t d,
                          std::size_t d_group) const
{
    const double kv_bytes =
        2.0 * static_cast<double>(paddedLen(s)) * static_cast<double>(d) *
        2.0;
    return Bytes(kv_bytes) / kernelTime(s, d, d_group);
}

}  // namespace hilos
