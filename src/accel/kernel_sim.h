/**
 * @file
 * Block-level kernel simulator.
 *
 * Replays one attention-kernel invocation block by block with
 * integer-cycle unit latencies, burst-granular DRAM transfers (with
 * command latency), periodic DDR refresh stalls, a fixed launch
 * overhead, and an optional deterministic measurement-noise model.
 * This is the "measured hardware" stand-in that validates the smooth
 * analytic estimator (§5.1's Pearson-0.93 experiment) — the two models
 * share calibration but differ structurally, so their correlation is a
 * meaningful check rather than an identity.
 */

#ifndef HILOS_ACCEL_KERNEL_SIM_H_
#define HILOS_ACCEL_KERNEL_SIM_H_

#include <cstddef>

#include "accel/cycle_model.h"
#include "common/units.h"

namespace hilos {

/** Simulator knobs beyond the shared CycleModelConfig. */
struct KernelSimConfig {
    CycleModelConfig hw;              ///< shared hardware parameters
    Seconds launch_overhead = 5e-6;   ///< kernel start / doorbell
    Seconds dram_command_latency = 200e-9;
    Seconds refresh_stall = 350e-9;   ///< per tREFI window
    Seconds refresh_interval = 3.9e-6;
    double pipeline_fill_cycles = 12; ///< per-block unit latency
    /**
     * Deterministic multiplicative run-to-run variation (0 disables);
     * models host scheduling / SSD interference on the real device.
     */
    double measurement_noise = 0.0;
};

/**
 * Block-granular replay of the attention kernel.
 */
class KernelSimulator
{
  public:
    explicit KernelSimulator(const KernelSimConfig &cfg = KernelSimConfig{});

    /** Simulated execution time of one kernel invocation. */
    Seconds simulate(std::size_t s, std::size_t d,
                     std::size_t d_group) const;

    const KernelSimConfig &config() const { return cfg_; }

  private:
    KernelSimConfig cfg_;
};

}  // namespace hilos

#endif  // HILOS_ACCEL_KERNEL_SIM_H_
